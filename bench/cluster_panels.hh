/**
 * @file
 * Shared budget/threshold sweep setup and panel renderers for the
 * cluster figures (Figs. 4, 5 and 9).
 *
 * Every cluster figure evaluates a cross product of inefficiency
 * budgets and cluster thresholds over one grid.  The helpers here
 * build the sweep points in panel order, run them through
 * AnalysisSweep (optionally fanned over a thread pool — bit-identical
 * to serial), and render the per-sample cluster-extent panels of
 * Figs. 4/5.
 */

#ifndef MCDVFS_BENCH_CLUSTER_PANELS_HH
#define MCDVFS_BENCH_CLUSTER_PANELS_HH

#include <algorithm>
#include <cstdio>
#include <initializer_list>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/analysis_sweep.hh"
#include "exec/thread_pool.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"

namespace mcdvfs
{

/** Cross product of budgets x thresholds, in panel order. */
inline std::vector<SweepPoint>
sweepGrid(std::initializer_list<double> budgets,
          std::initializer_list<double> thresholds)
{
    std::vector<SweepPoint> points;
    points.reserve(budgets.size() * thresholds.size());
    for (const double budget : budgets) {
        for (const double threshold : thresholds)
            points.push_back({budget, threshold});
    }
    return points;
}

/** "1.3/3%" row label of one sweep point. */
inline std::string
sweepLabel(const SweepPoint &point)
{
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f/%.0f%%", point.budget,
                  point.threshold * 100.0);
    return label;
}

/** Render one (budget, threshold) cluster panel for a workload. */
inline void
printClusterPanel(const MeasuredGrid &grid, GridAnalyses &a,
                  const SweepResult &result)
{
    const double budget = result.point.budget;
    const double threshold = result.point.threshold;
    Table table({"sample", "cpu lo", "cpu hi", "mem lo", "mem hi",
                 "size", "opt"});
    char title[128];
    std::snprintf(title, sizeof(title),
                  "clusters: %s, I=%.1f, threshold=%.0f%%",
                  grid.workload().c_str(), budget, threshold * 100.0);
    table.setTitle(title);

    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        const PerformanceCluster cluster = result.table.materialize(s);
        Hertz cpu_lo = grid.space().cpuLadder().highest();
        Hertz cpu_hi = grid.space().cpuLadder().lowest();
        Hertz mem_lo = grid.space().memLadder().highest();
        Hertz mem_hi = grid.space().memLadder().lowest();
        for (const std::size_t k : cluster.settings) {
            const FrequencySetting setting = grid.space().at(k);
            cpu_lo = std::min(cpu_lo, setting.cpu);
            cpu_hi = std::max(cpu_hi, setting.cpu);
            mem_lo = std::min(mem_lo, setting.mem);
            mem_hi = std::max(mem_hi, setting.mem);
        }
        table.addRow({Table::num(static_cast<long long>(s)),
                      Table::num(toMegaHertz(cpu_lo), 0),
                      Table::num(toMegaHertz(cpu_hi), 0),
                      Table::num(toMegaHertz(mem_lo), 0),
                      Table::num(toMegaHertz(mem_hi), 0),
                      Table::num(static_cast<long long>(
                          cluster.settings.size())),
                      cluster.optimal.setting.label()});
    }
    table.print(std::cout);

    std::cout << "avg cluster size: "
              << Table::num(result.avgClusterSize(), 2)
              << "; stable regions: " << result.regions.size()
              << "; transitions: "
              << a.transitions.forClusterPolicy(budget, threshold)
                     .transitions
              << "\n\n";
}

/**
 * Render the full four-panel figure for one workload: budgets
 * {1.0, 1.3} x thresholds {1%, 5%}.  @c pool optionally fans the
 * sweep's per-sample kernel out (bit-identical to serial).
 */
inline void
printClusterPanels(ReproSuite &suite, const std::string &workload,
                   exec::ThreadPool *pool = nullptr)
{
    const MeasuredGrid &grid = suite.grid(workload);
    GridAnalyses a(grid);
    AnalysisSweep sweep(a.clusters);
    for (const SweepResult &result :
         sweep.run(sweepGrid({1.0, 1.3}, {0.01, 0.05}), pool))
        printClusterPanel(grid, a, result);
}

} // namespace mcdvfs

#endif // MCDVFS_BENCH_CLUSTER_PANELS_HH
