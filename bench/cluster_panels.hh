/**
 * @file
 * Shared renderer for the Figure 4/5 performance-cluster panels:
 * per-sample cluster extents for budgets {1.0, 1.3} x thresholds
 * {1%, 5%}.
 */

#ifndef MCDVFS_BENCH_CLUSTER_PANELS_HH
#define MCDVFS_BENCH_CLUSTER_PANELS_HH

#include <algorithm>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"

namespace mcdvfs
{

/** Render one (budget, threshold) cluster panel for a workload. */
inline void
printClusterPanel(const MeasuredGrid &grid, GridAnalyses &a,
                  double budget, double threshold)
{
    Table table({"sample", "cpu lo", "cpu hi", "mem lo", "mem hi",
                 "size", "opt"});
    char title[128];
    std::snprintf(title, sizeof(title),
                  "clusters: %s, I=%.1f, threshold=%.0f%%",
                  grid.workload().c_str(), budget, threshold * 100.0);
    table.setTitle(title);

    std::size_t total_settings = 0;
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        const PerformanceCluster cluster =
            a.clusters.clusterForSample(s, budget, threshold);
        Hertz cpu_lo = grid.space().cpuLadder().highest();
        Hertz cpu_hi = grid.space().cpuLadder().lowest();
        Hertz mem_lo = grid.space().memLadder().highest();
        Hertz mem_hi = grid.space().memLadder().lowest();
        for (const std::size_t k : cluster.settings) {
            const FrequencySetting setting = grid.space().at(k);
            cpu_lo = std::min(cpu_lo, setting.cpu);
            cpu_hi = std::max(cpu_hi, setting.cpu);
            mem_lo = std::min(mem_lo, setting.mem);
            mem_hi = std::max(mem_hi, setting.mem);
        }
        total_settings += cluster.settings.size();
        table.addRow({Table::num(static_cast<long long>(s)),
                      Table::num(toMegaHertz(cpu_lo), 0),
                      Table::num(toMegaHertz(cpu_hi), 0),
                      Table::num(toMegaHertz(mem_lo), 0),
                      Table::num(toMegaHertz(mem_hi), 0),
                      Table::num(static_cast<long long>(
                          cluster.settings.size())),
                      cluster.optimal.setting.label()});
    }
    table.print(std::cout);

    const auto regions = a.regions.find(budget, threshold);
    std::cout << "avg cluster size: "
              << Table::num(static_cast<double>(total_settings) /
                                static_cast<double>(grid.sampleCount()),
                            2)
              << "; stable regions: " << regions.size()
              << "; transitions: "
              << a.transitions.forClusterPolicy(budget, threshold)
                     .transitions
              << "\n\n";
}

/** Render the full four-panel figure for one workload. */
inline void
printClusterPanels(ReproSuite &suite, const std::string &workload)
{
    const MeasuredGrid &grid = suite.grid(workload);
    GridAnalyses a(grid);
    for (const double budget : {1.0, 1.3}) {
        for (const double threshold : {0.01, 0.05})
            printClusterPanel(grid, a, budget, threshold);
    }
}

} // namespace mcdvfs

#endif // MCDVFS_BENCH_CLUSTER_PANELS_HH
