/**
 * @file
 * Figure-style cluster panels over the three-domain settings space:
 * glrender (the GPU render loop) on the 560-setting
 * CPU x mem x GPU coarse3 cross product, budgets {1.0, 1.3} x
 * thresholds {1%, 5%}.
 *
 * The panels extend Figs. 4/5 with the GPU extent of each per-sample
 * cluster: submit-heavy frames pull the cluster's GPU band up while
 * prepare-heavy frames widen the CPU band, which is the structure the
 * budget arbiter's priority variants act on.
 *
 * --jobs N fans the sweep's per-sample kernel over a thread pool
 * (bit-identical to serial); --tiny shrinks the workload for smoke
 * runs.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_json.hh"
#include "cluster_panels.hh"
#include "common/args.hh"
#include "obs/metrics.hh"
#include "sim/grid_runner.hh"
#include "trace/workloads.hh"

using namespace mcdvfs;

namespace
{

/** Shortened render loop for --tiny runs. */
WorkloadProfile
tinyRenderWorkload()
{
    const WorkloadProfile full = makeGlrender();
    return WorkloadProfile(
        "glrender-tiny", 16,
        [full](std::size_t s) { return full.phaseFor(s); }, 31,
        /*jitter=*/0.0);
}

/** One cluster panel with per-domain frequency extents. */
void
printGpuClusterPanel(const MeasuredGrid &grid, GridAnalyses &a,
                     const SweepResult &result)
{
    const double budget = result.point.budget;
    const double threshold = result.point.threshold;
    Table table({"sample", "cpu lo", "cpu hi", "mem lo", "mem hi",
                 "gpu lo", "gpu hi", "size", "opt"});
    char title[128];
    std::snprintf(title, sizeof(title),
                  "3-domain clusters: %s, I=%.1f, threshold=%.0f%%",
                  grid.workload().c_str(), budget, threshold * 100.0);
    table.setTitle(title);

    const SettingsSpace &space = grid.space();
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        const PerformanceCluster cluster = result.table.materialize(s);
        Hertz cpu_lo = space.cpuLadder().highest();
        Hertz cpu_hi = space.cpuLadder().lowest();
        Hertz mem_lo = space.memLadder().highest();
        Hertz mem_hi = space.memLadder().lowest();
        Hertz gpu_lo = space.gpuLadder().highest();
        Hertz gpu_hi = space.gpuLadder().lowest();
        for (const std::size_t k : cluster.settings) {
            const FrequencySetting setting = space.at(k);
            cpu_lo = std::min(cpu_lo, setting.cpu);
            cpu_hi = std::max(cpu_hi, setting.cpu);
            mem_lo = std::min(mem_lo, setting.mem);
            mem_hi = std::max(mem_hi, setting.mem);
            gpu_lo = std::min(gpu_lo, setting.gpu);
            gpu_hi = std::max(gpu_hi, setting.gpu);
        }
        table.addRow({Table::num(static_cast<long long>(s)),
                      Table::num(toMegaHertz(cpu_lo), 0),
                      Table::num(toMegaHertz(cpu_hi), 0),
                      Table::num(toMegaHertz(mem_lo), 0),
                      Table::num(toMegaHertz(mem_hi), 0),
                      Table::num(toMegaHertz(gpu_lo), 0),
                      Table::num(toMegaHertz(gpu_hi), 0),
                      Table::num(static_cast<long long>(
                          cluster.settings.size())),
                      cluster.optimal.setting.label()});
    }
    table.print(std::cout);

    std::cout << "avg cluster size: "
              << Table::num(result.avgClusterSize(), 2)
              << "; stable regions: " << result.regions.size()
              << "; transitions: "
              << a.transitions.forClusterPolicy(budget, threshold)
                     .transitions
              << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("fig13_gpu_clusters");
    args.addOption("jobs");
    args.addOption("out");
    args.addFlag("tiny");
    std::size_t jobs = 0;
    bool tiny = false;
    std::string out_path;
    try {
        args.parse(argc, argv);
        jobs = static_cast<std::size_t>(args.getInt("jobs", 0, 0, 1024));
        tiny = args.flag("tiny");
        out_path = args.get("out");
    } catch (const FatalError &err) {
        std::cerr << "error: " << err.what() << '\n';
        return 2;
    }

    using Fig13Clock = std::chrono::steady_clock;
    SystemConfig config;
    config.sampler.simInstructionsPerSample = tiny ? 20'000 : 100'000;
    GridRunner runner(config);
    const auto grid_start = Fig13Clock::now();
    const MeasuredGrid grid = runner.run(
        tiny ? tinyRenderWorkload() : makeGlrender(),
        SettingsSpace::coarse3());
    const double grid_seconds =
        std::chrono::duration<double>(Fig13Clock::now() - grid_start)
            .count();

    GridAnalyses a(grid);
    AnalysisSweep sweep(a.clusters);
    const std::vector<SweepPoint> points =
        sweepGrid({1.0, 1.3}, {0.01, 0.05});
    const auto sweep_start = Fig13Clock::now();
    if (jobs > 0) {
        exec::ThreadPool pool(jobs);
        for (const SweepResult &result : sweep.run(points, &pool))
            printGpuClusterPanel(grid, a, result);
    } else {
        for (const SweepResult &result : sweep.run(points))
            printGpuClusterPanel(grid, a, result);
    }
    const double sweep_seconds =
        std::chrono::duration<double>(Fig13Clock::now() - sweep_start)
            .count();

    if (!out_path.empty()) {
        const double cells = static_cast<double>(grid.sampleCount()) *
                             static_cast<double>(grid.settingCount());
        std::vector<bench::GridBenchRecord> records;
        bench::GridBenchRecord build;
        build.name = grid.workload() + " 3-domain grid";
        build.kernel = "grid";
        build.settings = grid.settingCount();
        build.samples = grid.sampleCount();
        build.jobs = 0; // the GridRunner sweep is serial here
        build.buildSeconds = grid_seconds;
        build.cellsPerSec = grid_seconds > 0 ? cells / grid_seconds : 0;
        records.push_back(build);
        bench::GridBenchRecord panels;
        panels.name = grid.workload() + " 4-point cluster sweep";
        panels.kernel = "sweep";
        panels.settings = grid.settingCount();
        panels.samples = grid.sampleCount();
        panels.jobs = jobs;
        panels.buildSeconds = sweep_seconds;
        panels.cellsPerSec =
            sweep_seconds > 0
                ? cells * static_cast<double>(points.size()) /
                      sweep_seconds
                : 0;
        records.push_back(panels);
        bench::writeBenchGridJson(out_path, "fig13_gpu_clusters",
                                  records, "mcdvfs-bench-fig13-v1");
        obs::writeMetricsJson(bench::metricsSidecarPath(out_path));
        std::cout << "wrote " << out_path << " and "
                  << bench::metricsSidecarPath(out_path) << "\n";
    }
    return 0;
}
