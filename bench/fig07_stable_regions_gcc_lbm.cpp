/**
 * @file
 * Figure 7: stable regions of gcc and lbm at inefficiency budget 1.3
 * for cluster thresholds 3% and 5% (plus the budget sweep the
 * figure's legend shows).
 *
 * Reproduced observations (§VI-B): raising the threshold from 3% to
 * 5% sharply cuts gcc's transitions at lower budgets; lbm starts with
 * few transitions so the absolute drop is small; at high budgets the
 * system runs unconstrained throughout.
 */

#include <iostream>

#include "common/table.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"

using namespace mcdvfs;

namespace
{

void
printRegions(const MeasuredGrid &grid, GridAnalyses &a, double budget,
             double threshold)
{
    const auto regions = a.regions.find(budget, threshold);
    Table table({"region", "samples", "cpu MHz", "mem MHz"});
    char title[128];
    std::snprintf(title, sizeof(title),
                  "%s stable regions (I=%.1f, threshold=%.0f%%): %zu "
                  "regions",
                  grid.workload().c_str(), budget, threshold * 100.0,
                  regions.size());
    table.setTitle(title);
    for (std::size_t r = 0; r < regions.size(); ++r) {
        const StableRegion &region = regions[r];
        table.addRow(
            {Table::num(static_cast<long long>(r)),
             Table::num(static_cast<long long>(region.first)) + "-" +
                 Table::num(static_cast<long long>(region.last)),
             Table::num(toMegaHertz(region.chosenSetting.cpu), 0),
             Table::num(toMegaHertz(region.chosenSetting.mem), 0)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    ReproSuite suite;

    for (const std::string workload : {"gcc", "lbm"}) {
        const MeasuredGrid &grid = suite.grid(workload);
        GridAnalyses a(grid);
        for (const double threshold : {0.03, 0.05})
            printRegions(grid, a, 1.3, threshold);

        // Budget sweep summary (the figure's 1 / 1.3 / inf legend).
        Table sweep({"budget", "transitions @3%", "transitions @5%"});
        sweep.setTitle(workload + " transitions across budgets");
        for (const double budget : {1.0, 1.3, kUnboundedBudget}) {
            sweep.addRow(
                {budget == kUnboundedBudget ? "inf"
                                            : Table::num(budget, 1),
                 Table::num(static_cast<long long>(
                     a.transitions.forClusterPolicy(budget, 0.03)
                         .transitions)),
                 Table::num(static_cast<long long>(
                     a.transitions.forClusterPolicy(budget, 0.05)
                         .transitions))});
        }
        sweep.print(std::cout);
        std::cout << '\n';
    }
    return 0;
}
