/**
 * @file
 * Figure 8: transitions per billion instructions for every benchmark,
 * at inefficiency budgets {1.0, 1.3, 1.6} and policies {optimal
 * tracking, 1%, 3%, 5% cluster thresholds}.
 *
 * Reproduced observations (§VI-B): tracking the optimal settings
 * produces the most transitions; transitions fall as the cluster
 * threshold grows; how much they fall varies with benchmark and
 * budget (bzip2 collapses to almost none at 1.6, gobmk's rapidly
 * changing phases keep the count high).
 */

#include <iostream>

#include "common/table.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"

using namespace mcdvfs;

int
main()
{
    ReproSuite suite;

    for (const double budget : {1.0, 1.3, 1.6}) {
        Table table({"benchmark", "optimal", "1%", "3%", "5%"});
        char title[96];
        std::snprintf(title, sizeof(title),
                      "Fig 8: transitions per billion instructions, "
                      "I=%.1f",
                      budget);
        table.setTitle(title);
        for (const std::string &name : ReproSuite::benchmarkNames()) {
            const MeasuredGrid &grid = suite.grid(name);
            GridAnalyses a(grid);
            std::vector<std::string> row = {name};
            row.push_back(Table::num(
                a.transitions.forOptimalTracking(budget)
                    .perBillionInstructions,
                1));
            for (const double threshold : {0.01, 0.03, 0.05}) {
                row.push_back(Table::num(
                    a.transitions.forClusterPolicy(budget, threshold)
                        .perBillionInstructions,
                    1));
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
        std::cout << '\n';
    }
    return 0;
}
