/**
 * @file
 * Measurement-noise sensitivity (DESIGN.md §6): how the transition
 * phenomenology depends on grid noise.
 *
 * Sweeps the per-cell noise amplitude and reports, for gobmk and
 * libquantum at I=1.3: optimal-tracking transitions and what a 1%/5%
 * cluster threshold absorbs.  The paper's 0.5% tie window implies its
 * measured grids carried sub-half-percent noise; this sweep shows the
 * cluster machinery is exactly the tool that absorbs it — until the
 * noise exceeds the threshold.
 */

#include <iostream>

#include "common/table.hh"
#include "repro/analyses.hh"
#include "sim/grid_runner.hh"
#include "trace/workloads.hh"

using namespace mcdvfs;

int
main()
{
    const double budget = 1.3;

    for (const std::string workload : {"gobmk", "libq."}) {
        Table table({"noise %", "optimal", "@1%", "@5%",
                     "regions @5%"});
        table.setTitle("noise sensitivity: " + workload +
                       " transitions at I=1.3");
        for (const double noise :
             {0.0, 0.001, 0.002, 0.004, 0.008}) {
            SystemConfig config;
            config.measurementNoise = noise;
            GridRunner runner(config);
            const MeasuredGrid grid = runner.run(
                workloadByName(workload), SettingsSpace::coarse());
            GridAnalyses a(grid);

            table.addRow(
                {Table::num(noise * 100.0, 1),
                 Table::num(static_cast<long long>(
                     a.transitions.forOptimalTracking(budget)
                         .transitions)),
                 Table::num(static_cast<long long>(
                     a.transitions.forClusterPolicy(budget, 0.01)
                         .transitions)),
                 Table::num(static_cast<long long>(
                     a.transitions.forClusterPolicy(budget, 0.05)
                         .transitions)),
                 Table::num(static_cast<long long>(
                     a.regions.find(budget, 0.05).size()))});
        }
        table.print(std::cout);
        std::cout << '\n';
    }
    return 0;
}
