/**
 * @file
 * Profile-memoization micro-benchmark: dedup characterization + grid
 * evaluation vs the per-sample paths (docs/PERF.md).
 *
 * A phase-keyed synthetic workload (PerPhase seeding, N samples over a
 * handful of distinct phases) is characterized three ways — the
 * historical warm-state pass, a cold memoized pass (every distinct
 * phase simulates canonically once, the rest hit sim::ProfileCache)
 * and a warm memoized pass (every sample hits) — and the repeated
 * profiles then drive GridRunner's unique-row grid evaluation against
 * the cell-at-a-time reference kernel.
 *
 * Correctness gates (the binary fatals otherwise):
 *  - the memoized grid is bit-identical to referenceGridWithProfiles
 *    over the same profiles, serial and fanned over a pool;
 *  - a warm-cache re-characterization reproduces the cold profiles
 *    byte for byte, and its grid matches the first build exactly.
 *
 * Results go to stdout and BENCH_profile.json (--out overrides; see
 * bench/bench_json.hh).  --tiny shrinks the workload so the binary
 * doubles as the tier-1 "perf_smoke" ctest.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>

#include "bench_json.hh"
#include "common/args.hh"
#include "common/logging.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "sim/profile_cache.hh"
#include "sim/reference_kernel.hh"
#include "trace/workloads.hh"

using namespace mcdvfs;

namespace
{

/**
 * Phase-keyed synthetic workload: @c samples samples cycling over
 * @c distinct phases, seeded per phase so repeated phases share their
 * characterization key.
 */
WorkloadProfile
dedupWorkload(std::size_t samples, std::size_t distinct)
{
    return WorkloadProfile(
        "profile-dedup", samples,
        [distinct](std::size_t s) {
            const std::size_t v = s % distinct;
            PhaseSpec spec;
            if (v % 2 == 0) {
                spec.name = "cpu" + std::to_string(v);
                spec.baseCpi = 0.7 + 0.05 * static_cast<double>(v);
                spec.hotFrac = 0.97;
                spec.warmFrac = 0.02;
            } else {
                spec.name = "mem" + std::to_string(v);
                spec.baseCpi = 1.0 + 0.04 * static_cast<double>(v);
                spec.hotFrac = 0.82;
                spec.warmFrac = 0.10;
                spec.coldSeqFrac = 0.25;
                spec.mlp = 1.2 + 0.1 * static_cast<double>(v % 3);
            }
            return spec;
        },
        7, /*jitter=*/0.0, WorkloadProfile::SeedMode::PerPhase);
}

/** Best-of-@c reps wall time of @c fn, in seconds. */
double
bestOf(int reps, const std::function<void()> &fn)
{
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

/** Fatal unless @c a and @c b agree bit for bit on every cell. */
void
requireBitIdentical(const MeasuredGrid &a, const MeasuredGrid &b,
                    const char *what)
{
    if (a.sampleCount() != b.sampleCount() ||
        a.settingCount() != b.settingCount())
        fatal("profile dedup bench: ", what, ": grid shapes differ");
    for (std::size_t s = 0; s < a.sampleCount(); ++s) {
        for (std::size_t k = 0; k < a.settingCount(); ++k) {
            if (a.secondsAt(s, k) != b.secondsAt(s, k) ||
                a.cpuEnergyAt(s, k) != b.cpuEnergyAt(s, k) ||
                a.memEnergyAt(s, k) != b.memEnergyAt(s, k) ||
                a.busyFracAt(s, k) != b.busyFracAt(s, k) ||
                a.bwUtilAt(s, k) != b.bwUtilAt(s, k)) {
                fatal("profile dedup bench: ", what,
                      ": grids diverge at sample ", s, ", setting ", k);
            }
        }
    }
}

/** Fatal unless two characterizations are byte-identical. */
void
requireSameProfiles(const std::vector<SampleProfile> &a,
                    const std::vector<SampleProfile> &b, const char *what)
{
    if (a.size() != b.size())
        fatal("profile dedup bench: ", what, ": profile counts differ");
    for (std::size_t s = 0; s < a.size(); ++s) {
        if (a[s].baseCpi != b[s].baseCpi ||
            a[s].activity != b[s].activity || a[s].mlp != b[s].mlp ||
            a[s].l1Mpki != b[s].l1Mpki || a[s].l2Mpki != b[s].l2Mpki ||
            a[s].l2PerInstr != b[s].l2PerInstr ||
            a[s].dramReadsPerInstr != b[s].dramReadsPerInstr ||
            a[s].dramWritesPerInstr != b[s].dramWritesPerInstr ||
            a[s].dramPrefetchPerInstr != b[s].dramPrefetchPerInstr ||
            a[s].rowHitFrac != b[s].rowHitFrac ||
            a[s].rowClosedFrac != b[s].rowClosedFrac ||
            a[s].rowConflictFrac != b[s].rowConflictFrac)
            fatal("profile dedup bench: ", what,
                  ": profiles diverge at sample ", s);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("micro_profile_dedup");
    args.addFlag("tiny");
    args.addOption("jobs");
    args.addOption("reps");
    args.addOption("samples");
    args.addOption("out");
    bool tiny = false;
    std::size_t jobs = 0;
    std::size_t samples = 0;
    int reps = 0;
    std::string out_path;
    try {
        args.parse(argc, argv);
        tiny = args.flag("tiny");
        jobs = static_cast<std::size_t>(args.getInt("jobs", 0, 0, 1024));
        samples = static_cast<std::size_t>(args.getInt(
            "samples", tiny ? 16 : 96, 2, 1'000'000));
        reps = static_cast<int>(
            args.getInt("reps", tiny ? 2 : 5, 1, 1000));
        out_path = args.get("out", "BENCH_profile.json");
    } catch (const FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 2;
    }

    SystemConfig config = SystemConfig::paperDefault();
    if (tiny) {
        config.sampler.simInstructionsPerSample = 20'000;
        config.sampler.warmupInstructions = 100'000;
        config.sampler.profileWarmupInstructions = 40'000;
    }
    const std::size_t distinct = tiny ? 4 : 8;
    const WorkloadProfile workload = dedupWorkload(samples, distinct);
    const Count ips = workload.modeledInstructionsPerSample();
    const SettingsSpace space = SettingsSpace::coarse();

    // --- Characterization: warm-state baseline vs memoized. ---

    SampleSimulator baseline_sim(config.sampler);
    const double baseline_seconds = bestOf(
        reps, [&] { baseline_sim.characterize(workload); });

    // Cold: a fresh cache per repetition, so every distinct phase
    // canonically characterizes once and the repeats hit.
    std::vector<SampleProfile> profiles;
    const double cold_seconds = bestOf(reps, [&] {
        ProfileCache cache(256);
        SampleSimulator sim(config.sampler);
        sim.setProfileCache(&cache);
        profiles = sim.characterize(workload);
        const SampleSimulator::CharacterizeStats &stats =
            sim.lastCharacterizeStats();
        if (stats.cacheMisses != distinct)
            fatal("profile dedup bench: expected ", distinct,
                  " cold misses, saw ", stats.cacheMisses);
        if (stats.cacheHits != samples - distinct)
            fatal("profile dedup bench: expected ", samples - distinct,
                  " cold hits, saw ", stats.cacheHits);
    });

    // Warm: one persistent cache; after the first pass every sample
    // hits, and the result must reproduce the cold profiles exactly.
    ProfileCache warm_cache(256);
    SampleSimulator warm_sim(config.sampler);
    warm_sim.setProfileCache(&warm_cache);
    std::vector<SampleProfile> warm_profiles =
        warm_sim.characterize(workload);
    requireSameProfiles(profiles, warm_profiles, "cold vs warm pass");
    const double warm_seconds = bestOf(reps, [&] {
        warm_profiles = warm_sim.characterize(workload);
        if (warm_sim.lastCharacterizeStats().cacheMisses != 0)
            fatal("profile dedup bench: warm pass missed the cache");
    });
    requireSameProfiles(profiles, warm_profiles, "warm re-pass");

    std::printf("characterize %zu samples (%zu distinct phases):\n",
                samples, distinct);
    std::printf("  baseline %9.3f ms   memoized cold %9.3f ms "
                "(%.2fx)   warm %9.3f ms (%.2fx)\n",
                baseline_seconds * 1e3, cold_seconds * 1e3,
                baseline_seconds / cold_seconds, warm_seconds * 1e3,
                baseline_seconds / warm_seconds);

    // --- Grid evaluation: unique-row dedup vs the reference kernel. ---

    const double cells =
        static_cast<double>(profiles.size() * space.size());
    GridRunner runner(config);
    const MeasuredGrid dedup_grid =
        runner.runWithProfiles(workload.name(), profiles, space, ips);
    const MeasuredGrid reference_grid = referenceGridWithProfiles(
        config, workload.name(), profiles, space, ips);
    requireBitIdentical(dedup_grid, reference_grid, "dedup vs reference");
    requireBitIdentical(
        dedup_grid,
        runner.runWithProfiles(workload.name(), profiles, space, ips),
        "rebuild vs first build");

    const double ref_seconds = bestOf(reps, [&] {
        referenceGridWithProfiles(config, workload.name(), profiles,
                                  space, ips);
    });
    const double dedup_seconds = bestOf(reps, [&] {
        runner.runWithProfiles(workload.name(), profiles, space, ips);
    });
    std::printf("grid %zux%zu: reference %9.3f ms   dedup %9.3f ms   "
                "speedup %.2fx\n",
                profiles.size(), space.size(), ref_seconds * 1e3,
                dedup_seconds * 1e3, ref_seconds / dedup_seconds);

    double par_seconds = 0.0;
    if (jobs > 0) {
        exec::ThreadPool pool(jobs);
        GridRunner parallel(config);
        parallel.setThreadPool(&pool);
        requireBitIdentical(dedup_grid,
                            parallel.runWithProfiles(workload.name(),
                                                     profiles, space, ips),
                            "pooled dedup vs serial");
        par_seconds = bestOf(reps, [&] {
            parallel.runWithProfiles(workload.name(), profiles, space,
                                     ips);
        });
        std::printf("grid %zux%zu: dedup --jobs %zu %9.3f ms   "
                    "speedup %.2fx vs reference\n",
                    profiles.size(), space.size(), jobs,
                    par_seconds * 1e3, ref_seconds / par_seconds);
    }

    std::vector<bench::GridBenchRecord> records;
    records.push_back({"characterize baseline serial", "reference", 0,
                       samples, 0, baseline_seconds,
                       static_cast<double>(samples) / baseline_seconds,
                       0.0});
    records.push_back({"characterize memoized cold", "memoized", 0,
                       samples, 0, cold_seconds,
                       static_cast<double>(samples) / cold_seconds,
                       baseline_seconds / cold_seconds});
    records.push_back({"characterize memoized warm", "memoized", 0,
                       samples, 0, warm_seconds,
                       static_cast<double>(samples) / warm_seconds,
                       baseline_seconds / warm_seconds});
    records.push_back({"grid reference serial", "reference", space.size(),
                       samples, 0, ref_seconds, cells / ref_seconds,
                       0.0});
    records.push_back({"grid dedup serial", "dedup", space.size(),
                       samples, 0, dedup_seconds, cells / dedup_seconds,
                       ref_seconds / dedup_seconds});
    if (jobs > 0)
        records.push_back({"grid dedup jobs=" + std::to_string(jobs),
                           "dedup", space.size(), samples, jobs,
                           par_seconds, cells / par_seconds,
                           ref_seconds / par_seconds});

    bench::writeBenchGridJson(out_path, "micro_profile_dedup", records,
                              "mcdvfs-bench-profile-v1");
    const std::string metrics_path =
        bench::metricsSidecarPath(out_path);
    obs::writeMetricsJson(metrics_path);
    std::printf("wrote %s and %s\n", out_path.c_str(),
                metrics_path.c_str());
    return 0;
}
