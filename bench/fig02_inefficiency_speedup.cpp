/**
 * @file
 * Figure 2: inefficiency vs. speedup for bzip2, gobmk and milc over
 * the full 70-setting CPU x memory frequency grid.
 *
 * Reproduced observations (§IV):
 *  - running slower doesn't mean running efficiently (the lowest
 *    setting has inefficiency well above 1);
 *  - higher inefficiency doesn't always buy performance (settings
 *    exist that burn more energy and run slower);
 *  - bzip2's speedup depends only on CPU frequency, gobmk's on both.
 */

#include <iostream>

#include "common/table.hh"
#include "core/pareto.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"

using namespace mcdvfs;

int
main()
{
    ReproSuite suite;

    for (const std::string workload : {"bzip2", "gobmk", "milc"}) {
        const MeasuredGrid &grid = suite.grid(workload);
        GridAnalyses a(grid);

        Table table({"cpu MHz", "mem MHz", "speedup", "inefficiency"});
        table.setTitle("Fig 2 series: " + workload);
        for (std::size_t k = 0; k < grid.settingCount(); ++k) {
            const FrequencySetting setting = grid.space().at(k);
            table.addRow({Table::num(toMegaHertz(setting.cpu), 0),
                          Table::num(toMegaHertz(setting.mem), 0),
                          Table::num(a.analysis.runSpeedup(k), 3),
                          Table::num(a.analysis.runInefficiency(k), 3)});
        }
        table.print(std::cout);

        // Headline observations the paper calls out on this figure.
        const SettingsSpace &space = grid.space();
        const std::size_t lowest = space.indexOf(space.minSetting());
        const std::size_t highest = space.indexOf(space.maxSetting());
        std::size_t fastest = 0;
        for (std::size_t k = 1; k < grid.settingCount(); ++k) {
            if (a.analysis.runSpeedup(k) >
                a.analysis.runSpeedup(fastest)) {
                fastest = k;
            }
        }
        // gobmk example from the text: forced to burn budget at
        // 1000 MHz CPU / 200 MHz memory.
        const std::size_t forced = space.indexOf(
            FrequencySetting{space.cpuLadder().highest(),
                             space.memLadder().lowest()});
        std::cout << "\nobservations (" << workload << "):\n"
                  << "  lowest setting " << space.minSetting().label()
                  << ": inefficiency "
                  << Table::num(a.analysis.runInefficiency(lowest), 2)
                  << " at speedup 1 (slow != efficient)\n"
                  << "  fastest setting " << space.at(fastest).label()
                  << ": inefficiency "
                  << Table::num(a.analysis.runInefficiency(fastest), 2)
                  << "\n"
                  << "  max-CPU/min-mem " << space.at(forced).label()
                  << ": " << Table::num(a.analysis.runSpeedup(fastest) /
                                            a.analysis.runSpeedup(forced),
                                        2)
                  << "x slower than fastest at inefficiency "
                  << Table::num(a.analysis.runInefficiency(forced), 2)
                  << "\n"
                  << "  Imax = "
                  << Table::num(a.analysis.maxRunInefficiency(), 2)
                  << " (vs max setting I="
                  << Table::num(a.analysis.runInefficiency(highest), 2)
                  << ")\n";

        // The intro's claim quantified: most of the joint space is
        // dominated ("incorrect") settings.
        ParetoAnalysis pareto(a.analysis);
        std::cout << "  pareto frontier: "
                  << pareto.runFrontier().size() << " of "
                  << grid.settingCount() << " settings ("
                  << Table::num(pareto.dominatedFraction() * 100.0, 0)
                  << "% dominated/incorrect)\n\n";
    }
    return 0;
}
