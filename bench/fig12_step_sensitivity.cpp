/**
 * @file
 * Figure 12: sensitivity of performance clusters to frequency step
 * size — gobmk at budget 1.3, threshold 1%, over the coarse
 * 70-setting grid (100 MHz steps) vs. the fine 496-setting grid
 * (30 MHz CPU / 40 MHz memory steps).
 *
 * Reproduced observations (§VI-D): finer steps offer more (and
 * slightly better) choices, so average stable-region length stays the
 * same or shrinks; the performance gain with free tuning is below 1%
 * because the coarse optimum is only a few MHz off; the tuning-
 * overhead/search-space balance decides the right granularity.
 */

#include <iostream>
#include <memory>

#include "common/args.hh"
#include "common/table.hh"
#include "core/step_sensitivity.hh"
#include "core/tuning_cost.hh"
#include "exec/thread_pool.hh"
#include "repro/suite.hh"
#include "trace/workloads.hh"

using namespace mcdvfs;

int
main(int argc, char **argv)
{
    const double budget = 1.3;
    const double threshold = 0.01;

    ArgParser args("fig12_step_sensitivity");
    args.addOption("jobs");
    std::size_t jobs = 0;
    try {
        args.parse(argc, argv);
        jobs = static_cast<std::size_t>(args.getInt("jobs", 0, 0, 1024));
    } catch (const FatalError &err) {
        std::cerr << "error: " << err.what() << '\n';
        return 2;
    }

    ReproSuite suite;
    StepSensitivity sensitivity(suite.runner());
    std::unique_ptr<exec::ThreadPool> pool;
    if (jobs > 0) {
        // Fans the per-sample cluster kernel of both characterizations
        // out; the table is bit-identical to the serial run.
        pool = std::make_unique<exec::ThreadPool>(jobs);
        sensitivity.setThreadPool(pool.get());
    }
    const StepSensitivityResult result = sensitivity.compare(
        workloadByName("gobmk"), budget, threshold,
        SettingsSpace::coarse(), SettingsSpace::fine());

    Table table({"grid", "settings", "avg cluster", "avg region len",
                 "transitions"});
    table.setTitle("Fig 12: gobmk clusters, coarse vs fine steps "
                   "(I=1.3, threshold=1%)");
    table.addRow({"coarse (100MHz)",
                  Table::num(static_cast<long long>(
                      result.coarse.settings)),
                  Table::num(result.coarse.avgClusterSize, 2),
                  Table::num(result.coarse.avgRegionLength, 2),
                  Table::num(static_cast<long long>(
                      result.coarse.transitions))});
    table.addRow({"fine (30/40MHz)",
                  Table::num(static_cast<long long>(
                      result.fine.settings)),
                  Table::num(result.fine.avgClusterSize, 2),
                  Table::num(result.fine.avgRegionLength, 2),
                  Table::num(static_cast<long long>(
                      result.fine.transitions))});
    table.print(std::cout);

    std::cout << "\nperformance gain of fine grid with free tuning: "
              << Table::num(result.finePerfImprovementPct(), 3) << "%\n";

    // The balance the paper calls out: search cost scales with the
    // space, so the fine grid's tuning events are ~7x as expensive.
    TuningCostModel cost;
    std::cout << "tuning event latency: coarse "
              << Table::num(toNanoSeconds(cost.eventLatency(
                                result.coarse.settings)) / 1000.0, 0)
              << " us vs fine "
              << Table::num(toNanoSeconds(cost.eventLatency(
                                result.fine.settings)) / 1000.0, 0)
              << " us\n";
    return 0;
}
