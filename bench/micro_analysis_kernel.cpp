/**
 * @file
 * Analysis-kernel micro-benchmark: bitset cluster/region kernel vs the
 * scalar reference chain (docs/PERF.md).
 *
 * Times a nine-point budget x threshold sweep — per-sample clusters
 * plus stable regions at every point — with both analysis paths: the
 * pre-bitset scalar reference (core/reference_analysis.hh) and the
 * SettingMask kernel behind ClusterFinder/StableRegionFinder.  Runs on
 * the coarse 70-setting and fine 496-setting spaces, verifies the two
 * paths agree exactly on every cluster and region, and reports the
 * speedup.  Optionally also times the sweep fanned over a thread pool
 * (--jobs N), verified bit-identical to the serial sweep.
 *
 * Results go to stdout and, machine-readable, to BENCH_analysis.json
 * (--out overrides the path; schema mcdvfs-bench-analysis-v1, same
 * record layout as BENCH_grid.json).  "cells" here are
 * samples x settings x sweep points.
 *
 * --tiny shrinks the workload and skips the fine space so the binary
 * doubles as the tier-1 "perf_smoke" ctest: a fast end-to-end check
 * that both analysis paths still agree exactly.
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <limits>

#include "bench_json.hh"
#include "common/args.hh"
#include "common/logging.hh"
#include "core/analysis_sweep.hh"
#include "core/reference_analysis.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "trace/workloads.hh"

using namespace mcdvfs;

namespace
{

/** Small synthetic workload for --tiny runs. */
WorkloadProfile
tinyWorkload()
{
    PhaseSpec cpu;
    cpu.name = "cpu";
    cpu.hotFrac = 0.98;
    cpu.warmFrac = 0.015;
    PhaseSpec mem;
    mem.name = "mem";
    mem.hotFrac = 0.80;
    mem.warmFrac = 0.10;
    mem.coldSeqFrac = 0.3;
    return WorkloadProfile(
        "tiny", 6,
        [cpu, mem](std::size_t s) { return s % 2 ? mem : cpu; }, 5,
        /*jitter=*/0.0);
}

/** Best-of-@c reps wall time of @c fn, in seconds. */
double
bestOf(int reps, const std::function<void()> &fn)
{
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

/** One sweep point's scalar-reference output. */
struct ReferencePoint
{
    std::vector<PerformanceCluster> clusters;
    std::vector<StableRegion> regions;
};

/** The scalar reference chain over every sweep point, in order. */
std::vector<ReferencePoint>
runReferenceSweep(const OptimalSettingsFinder &finder,
                  const SettingsSpace &space,
                  const std::vector<SweepPoint> &points)
{
    std::vector<ReferencePoint> out;
    out.reserve(points.size());
    for (const SweepPoint &point : points) {
        ReferencePoint ref;
        ref.clusters =
            referenceClusters(finder, point.budget, point.threshold);
        ref.regions = referenceStableRegions(space, ref.clusters);
        out.push_back(std::move(ref));
    }
    return out;
}

bool
sameChoice(const OptimalChoice &a, const OptimalChoice &b)
{
    return a.settingIndex == b.settingIndex && a.setting == b.setting &&
           a.speedup == b.speedup && a.inefficiency == b.inefficiency;
}

bool
sameRegions(const std::vector<StableRegion> &a,
            const std::vector<StableRegion> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].first != b[i].first || a[i].last != b[i].last ||
            a[i].availableSettings != b[i].availableSettings ||
            a[i].chosenSettingIndex != b[i].chosenSettingIndex ||
            !(a[i].chosenSetting == b[i].chosenSetting))
            return false;
    }
    return true;
}

/** Fatal unless the kernel sweep matches the reference exactly. */
void
requireMatchesReference(const std::vector<SweepResult> &kernel,
                        const std::vector<ReferencePoint> &reference)
{
    MCDVFS_ASSERT(kernel.size() == reference.size(),
                  "sweep sizes differ");
    for (std::size_t p = 0; p < kernel.size(); ++p) {
        const SweepResult &k = kernel[p];
        const ReferencePoint &r = reference[p];
        if (k.table.sampleCount() != r.clusters.size())
            fatal("analysis bench: sample counts differ at point ", p);
        for (std::size_t s = 0; s < r.clusters.size(); ++s) {
            const PerformanceCluster cluster = k.table.materialize(s);
            if (!sameChoice(cluster.optimal, r.clusters[s].optimal) ||
                cluster.settings != r.clusters[s].settings) {
                fatal("analysis bench: kernel cluster diverges from "
                      "the reference at point ",
                      p, ", sample ", s);
            }
        }
        if (!sameRegions(k.regions, r.regions))
            fatal("analysis bench: kernel regions diverge from the "
                  "reference at point ", p);
    }
}

/** Fatal unless two kernel sweeps agree exactly (serial vs pooled). */
void
requireIdenticalSweeps(const std::vector<SweepResult> &a,
                       const std::vector<SweepResult> &b)
{
    MCDVFS_ASSERT(a.size() == b.size(), "sweep sizes differ");
    for (std::size_t p = 0; p < a.size(); ++p) {
        if (a[p].table.masks != b[p].table.masks)
            fatal("analysis bench: pooled sweep masks diverge at "
                  "point ", p);
        for (std::size_t s = 0; s < a[p].table.sampleCount(); ++s) {
            if (!sameChoice(a[p].table.optimal[s], b[p].table.optimal[s]))
                fatal("analysis bench: pooled sweep optima diverge at "
                      "point ", p, ", sample ", s);
        }
        if (!sameRegions(a[p].regions, b[p].regions))
            fatal("analysis bench: pooled sweep regions diverge at "
                  "point ", p);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("micro_analysis_kernel");
    args.addFlag("tiny");
    args.addOption("jobs");
    args.addOption("reps");
    args.addOption("out");
    bool tiny = false;
    std::size_t jobs = 0;
    int reps = 0;
    std::string out_path;
    try {
        args.parse(argc, argv);
        tiny = args.flag("tiny");
        jobs = static_cast<std::size_t>(args.getInt("jobs", 0, 0, 1024));
        reps = static_cast<int>(
            args.getInt("reps", tiny ? 2 : 5, 1, 1000));
        out_path = args.get("out", "BENCH_analysis.json");
    } catch (const FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 2;
    }

    SystemConfig config = SystemConfig::paperDefault();
    if (tiny) {
        config.sampler.simInstructionsPerSample = 20'000;
        config.sampler.warmupInstructions = 100'000;
    }
    const WorkloadProfile workload =
        tiny ? tinyWorkload() : workloadByName("gobmk");

    const std::vector<SweepPoint> points = [] {
        std::vector<SweepPoint> out;
        for (const double budget : {1.0, 1.3, 1.6}) {
            for (const double threshold : {0.01, 0.03, 0.05})
                out.push_back({budget, threshold});
        }
        return out;
    }();

    std::vector<SettingsSpace> spaces;
    spaces.push_back(SettingsSpace::coarse());
    if (!tiny)
        spaces.push_back(SettingsSpace::fine());

    std::vector<bench::GridBenchRecord> records;
    for (const SettingsSpace &space : spaces) {
        GridRunner runner(config);
        const MeasuredGrid grid = runner.run(workload, space);
        InefficiencyAnalysis analysis(grid);
        OptimalSettingsFinder finder(analysis);
        ClusterFinder cluster_finder(finder);
        AnalysisSweep sweep(cluster_finder);

        const std::vector<SweepResult> kernel_results =
            sweep.run(points);
        requireMatchesReference(
            kernel_results, runReferenceSweep(finder, space, points));

        const double cells = static_cast<double>(
            grid.sampleCount() * space.size() * points.size());
        const double ref_seconds = bestOf(reps, [&] {
            runReferenceSweep(finder, space, points);
        });
        const double kernel_seconds =
            bestOf(reps, [&] { sweep.run(points); });
        const double speedup = ref_seconds / kernel_seconds;

        const std::string label =
            std::to_string(space.size()) + "-setting";
        records.push_back({label + " reference serial", "reference",
                           space.size(), grid.sampleCount(), 0,
                           ref_seconds, cells / ref_seconds, 0.0});
        records.push_back({label + " bitset serial", "bitset",
                           space.size(), grid.sampleCount(), 0,
                           kernel_seconds, cells / kernel_seconds,
                           speedup});
        std::printf("%-24s reference %9.3f ms   bitset %9.3f ms   "
                    "speedup %.2fx\n",
                    label.c_str(), ref_seconds * 1e3,
                    kernel_seconds * 1e3, speedup);

        if (jobs > 0) {
            exec::ThreadPool pool(jobs);
            requireIdenticalSweeps(kernel_results,
                                   sweep.run(points, &pool));
            const double par_seconds =
                bestOf(reps, [&] { sweep.run(points, &pool); });
            records.push_back({label + " bitset jobs=" +
                                   std::to_string(jobs),
                               "bitset", space.size(), grid.sampleCount(),
                               jobs, par_seconds, cells / par_seconds,
                               ref_seconds / par_seconds});
            std::printf("%-24s bitset --jobs %zu %9.3f ms   "
                        "speedup %.2fx vs reference\n",
                        label.c_str(), jobs, par_seconds * 1e3,
                        ref_seconds / par_seconds);
        }
    }

    bench::writeBenchGridJson(out_path, "micro_analysis_kernel", records,
                              "mcdvfs-bench-analysis-v1");
    // Metrics sidecar: the process metrics snapshot after the timed
    // runs, so analysis counters travel with the throughput numbers.
    const std::string metrics_path = bench::metricsSidecarPath(out_path);
    obs::writeMetricsJson(metrics_path);
    std::printf("wrote %s and %s\n", out_path.c_str(),
                metrics_path.c_str());
    return 0;
}
