/**
 * @file
 * Figure 4: performance clusters of gobmk for budgets {1.0, 1.3} and
 * cluster thresholds {1%, 5%}.
 *
 * Reproduced observations (§VI-A): raising the threshold widens the
 * per-sample cluster (more settings available), which raises the
 * chance of consecutive samples sharing a setting and so reduces
 * transitions; whether a higher budget lengthens stable regions is
 * workload dependent.
 *
 * --jobs N fans the sweep's per-sample cluster kernel over a thread
 * pool (output is bit-identical to the serial run).
 */

#include <iostream>

#include "cluster_panels.hh"
#include "common/args.hh"

int
main(int argc, char **argv)
{
    mcdvfs::ArgParser args("fig04_clusters_gobmk");
    args.addOption("jobs");
    std::size_t jobs = 0;
    try {
        args.parse(argc, argv);
        jobs = static_cast<std::size_t>(args.getInt("jobs", 0, 0, 1024));
    } catch (const mcdvfs::FatalError &err) {
        std::cerr << "error: " << err.what() << '\n';
        return 2;
    }

    mcdvfs::ReproSuite suite;
    if (jobs > 0) {
        mcdvfs::exec::ThreadPool pool(jobs);
        mcdvfs::printClusterPanels(suite, "gobmk", &pool);
    } else {
        mcdvfs::printClusterPanels(suite, "gobmk");
    }
    return 0;
}
