/**
 * @file
 * Figure 4: performance clusters of gobmk for budgets {1.0, 1.3} and
 * cluster thresholds {1%, 5%}.
 *
 * Reproduced observations (§VI-A): raising the threshold widens the
 * per-sample cluster (more settings available), which raises the
 * chance of consecutive samples sharing a setting and so reduces
 * transitions; whether a higher budget lengthens stable regions is
 * workload dependent.
 */

#include "cluster_panels.hh"

int
main()
{
    mcdvfs::ReproSuite suite;
    mcdvfs::printClusterPanels(suite, "gobmk");
    return 0;
}
