/**
 * @file
 * Budget-arbiter comparison benchmark over the three-domain space.
 *
 * Replays the glrender run through the plain inefficiency governor
 * and through BudgetArbiter under a sysedp-style cap table at several
 * system power budgets and both priorities, charging each sample the
 * grid cell of the setting in force (last-value replay, as
 * impl_baseline_comparison does).  Reports per-policy run energy,
 * run time, transition count and the kept/retuned/capped decision
 * split, plus the arbiter's decision throughput.
 *
 * Two invariants are enforced (the binary fatals otherwise), which is
 * what makes the --tiny run a tier-1 perf_smoke ctest:
 *  - unconstrained arbiter decisions are bit-identical to the plain
 *    governor's, sample for sample;
 *  - every capped decision lies within the caps in force when it was
 *    made.
 *
 * Results go to stdout and, machine-readable, to BENCH_arbiter.json
 * (--out overrides; schema mcdvfs-bench-arbiter-v1).
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "repro/analyses.hh"
#include "runtime/budget_arbiter.hh"
#include "runtime/inefficiency_governor.hh"
#include "sim/grid_runner.hh"
#include "trace/workloads.hh"

using namespace mcdvfs;
using runtime::BudgetArbiter;
using runtime::CapRow;
using runtime::DomainCaps;
using runtime::Priority;

namespace
{

/** Shortened render loop for --tiny runs. */
WorkloadProfile
tinyRenderWorkload()
{
    const WorkloadProfile full = makeGlrender();
    return WorkloadProfile(
        "glrender-tiny", 16,
        [full](std::size_t s) { return full.phaseFor(s); }, 31,
        /*jitter=*/0.0);
}

/** Calibrated sysedp-style cap table over the coarse3 ladders. */
std::vector<CapRow>
capTable()
{
    CapRow low;
    low.budget = 1.0;
    low.cpuPriority = {megaHertz(600), megaHertz(400), megaHertz(300)};
    low.gpuPriority = {megaHertz(300), megaHertz(400), megaHertz(600)};
    CapRow mid;
    mid.budget = 2.0;
    mid.cpuPriority = {megaHertz(800), megaHertz(600), megaHertz(500)};
    mid.gpuPriority = {megaHertz(500), megaHertz(600), megaHertz(800)};
    CapRow high;
    high.budget = 4.0;
    high.cpuPriority = {megaHertz(1000), megaHertz(800), megaHertz(900)};
    high.gpuPriority = {megaHertz(1000), megaHertz(800), megaHertz(900)};
    return {low, mid, high};
}

/** Accumulated cost of one replayed policy. */
struct Replay
{
    std::string name;
    double systemBudget = 0.0;  ///< 0 = unconstrained
    std::string priority;       ///< "cpu", "gpu" or "-"
    double energy = 0.0;
    double seconds = 0.0;
    std::size_t transitions = 0;
    std::size_t kept = 0;
    std::size_t retuned = 0;
    std::size_t capped = 0;
    double decisionsPerSec = 0.0;
    std::vector<FrequencySetting> choices;
};

/**
 * Replay the run under @c governor: sample s executes at the setting
 * decided after sample s-1 (last-value prediction), charged from the
 * grid.
 */
Replay
replay(const MeasuredGrid &grid, Governor &governor,
       const std::string &name)
{
    Replay result;
    result.name = name;

    const auto start = std::chrono::steady_clock::now();
    FrequencySetting current = governor.decide(nullptr);
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        result.choices.push_back(current);
        const std::size_t k = grid.space().indexOf(current);
        const GridCell cell = grid.cell(s, k);
        result.energy +=
            (cell.cpuEnergy + cell.memEnergy) + cell.gpuEnergy;
        result.seconds += cell.seconds;

        SampleObservation obs;
        obs.sampleIndex = s;
        obs.setting = current;
        obs.duration = cell.seconds;
        obs.energy = (cell.cpuEnergy + cell.memEnergy) + cell.gpuEnergy;
        obs.cpuBusyFrac = cell.busyFrac;
        obs.memBwUtil = cell.bwUtil;
        const FrequencySetting next = governor.decide(&obs);
        if (!(next == current))
            ++result.transitions;
        current = next;
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    result.decisionsPerSec =
        elapsed.count() > 0.0
            ? static_cast<double>(grid.sampleCount() + 1) /
                  elapsed.count()
            : 0.0;
    return result;
}

bool
sameBits(const FrequencySetting &a, const FrequencySetting &b)
{
    return std::memcmp(&a.cpu, &b.cpu, sizeof(double)) == 0 &&
           std::memcmp(&a.mem, &b.mem, sizeof(double)) == 0 &&
           std::memcmp(&a.gpu, &b.gpu, sizeof(double)) == 0;
}

void
writeArbiterJson(const std::string &path,
                 const std::vector<Replay> &replays)
{
    std::ofstream out(path);
    if (!out)
        fatal("bench json: cannot open ", path, " for writing");
    out.precision(17);
    out << "{\n";
    out << "  \"schema\": \"mcdvfs-bench-arbiter-v1\",\n";
    out << "  \"benchmark\": \"impl_budget_arbiter\",\n";
    out << "  \"results\": [\n";
    for (std::size_t i = 0; i < replays.size(); ++i) {
        const Replay &r = replays[i];
        out << "    {\"name\": \"" << r.name << "\", \"budget_watts\": "
            << r.systemBudget << ", \"priority\": \"" << r.priority
            << "\",\n     \"energy_j\": " << r.energy
            << ", \"seconds\": " << r.seconds
            << ", \"transitions\": " << r.transitions
            << ",\n     \"kept\": " << r.kept << ", \"retuned\": "
            << r.retuned << ", \"capped\": " << r.capped
            << ", \"decisions_per_sec\": " << r.decisionsPerSec << "}"
            << (i + 1 < replays.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    if (!out)
        fatal("bench json: failed writing ", path);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("impl_budget_arbiter");
    args.addOption("out");
    args.addFlag("tiny");
    std::string out_path = "BENCH_arbiter.json";
    bool tiny = false;
    try {
        args.parse(argc, argv);
        out_path = args.get("out", out_path);
        tiny = args.flag("tiny");
    } catch (const FatalError &err) {
        std::cerr << "error: " << err.what() << '\n';
        return 2;
    }

    SystemConfig config;
    config.sampler.simInstructionsPerSample = tiny ? 20'000 : 100'000;
    GridRunner runner(config);
    const MeasuredGrid grid = runner.run(
        tiny ? tinyRenderWorkload() : makeGlrender(),
        SettingsSpace::coarse3());
    GridAnalyses a(grid);

    const double budget = 1.3;
    const double threshold = 0.03;
    std::vector<Replay> replays;

    // Baseline: the plain cluster policy, no power cap.
    InefficiencyGovernor governor(a.clusters, budget, threshold);
    Replay base = replay(grid, governor, "inefficiency");
    base.priority = "-";
    base.kept = governor.keptSetting();
    base.retuned = governor.retuned();
    replays.push_back(base);

    // Invariant 1: an unconstrained arbiter replays bit-identically.
    BudgetArbiter unconstrained(a.clusters, budget, threshold, {});
    Replay bare = replay(grid, unconstrained, "arbiter-unconstrained");
    bare.priority = "-";
    bare.kept = unconstrained.keptSetting();
    bare.retuned = unconstrained.retuned();
    bare.capped = unconstrained.capped();
    for (std::size_t s = 0; s < base.choices.size(); ++s) {
        if (!sameBits(base.choices[s], bare.choices[s]))
            fatal("unconstrained arbiter diverged from the "
                  "inefficiency governor at sample ", s);
    }
    if (bare.capped != 0)
        fatal("unconstrained arbiter reported capped decisions");
    replays.push_back(bare);

    // Capped runs: the table at several budgets, both priorities.
    for (const double watts : {0.5, 1.5, 3.0, 8.0}) {
        for (const Priority priority : {Priority::Cpu, Priority::Gpu}) {
            const bool cpu_first = priority == Priority::Cpu;
            BudgetArbiter arbiter(a.clusters, budget, threshold,
                                  capTable(), priority);
            arbiter.setSystemBudget(watts);
            const DomainCaps caps = arbiter.activeCaps();

            char name[64];
            std::snprintf(name, sizeof(name), "arbiter-%.1fW-%s",
                          watts, cpu_first ? "cpu" : "gpu");
            Replay capped = replay(grid, arbiter, name);
            capped.systemBudget = watts;
            capped.priority = cpu_first ? "cpu" : "gpu";
            capped.kept = arbiter.keptSetting();
            capped.retuned = arbiter.retuned();
            capped.capped = arbiter.capped();

            // Invariant 2: every decision honoured the caps in force
            // (the budget is constant across this replay).
            for (std::size_t s = 0; s < capped.choices.size(); ++s) {
                const FrequencySetting &chosen = capped.choices[s];
                if (chosen.cpu > caps.cpu || chosen.mem > caps.mem ||
                    chosen.gpu > caps.gpu)
                    fatal(name, ": decision at sample ", s,
                          " exceeds the active caps");
            }
            replays.push_back(std::move(capped));
        }
    }

    Table table({"policy", "budget W", "prio", "energy J", "seconds",
                 "trans", "kept", "retuned", "capped"});
    table.setTitle("budget arbiter vs inefficiency governor (" +
                   grid.workload() + ", coarse3)");
    for (const Replay &r : replays) {
        table.addRow({r.name,
                      r.systemBudget > 0.0
                          ? Table::num(r.systemBudget, 1)
                          : "-",
                      r.priority, Table::num(r.energy, 4),
                      Table::num(r.seconds, 4),
                      Table::num(static_cast<long long>(r.transitions)),
                      Table::num(static_cast<long long>(r.kept)),
                      Table::num(static_cast<long long>(r.retuned)),
                      Table::num(static_cast<long long>(r.capped))});
    }
    table.print(std::cout);

    writeArbiterJson(out_path, replays);
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
