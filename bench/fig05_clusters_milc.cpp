/**
 * @file
 * Figure 5: performance clusters of milc for budgets {1.0, 1.3} and
 * cluster thresholds {1%, 5%}.
 *
 * Reproduced observation (§VI-A): milc is largely CPU intensive with
 * memory-intensive bursts; at higher thresholds the CPU frequency
 * stays tightly bound while the cluster spans a wide range of memory
 * frequencies (small performance difference across memory settings).
 *
 * --jobs N fans the sweep's per-sample cluster kernel over a thread
 * pool (output is bit-identical to the serial run).
 */

#include <iostream>

#include "cluster_panels.hh"
#include "common/args.hh"

int
main(int argc, char **argv)
{
    mcdvfs::ArgParser args("fig05_clusters_milc");
    args.addOption("jobs");
    std::size_t jobs = 0;
    try {
        args.parse(argc, argv);
        jobs = static_cast<std::size_t>(args.getInt("jobs", 0, 0, 1024));
    } catch (const mcdvfs::FatalError &err) {
        std::cerr << "error: " << err.what() << '\n';
        return 2;
    }

    mcdvfs::ReproSuite suite;
    if (jobs > 0) {
        mcdvfs::exec::ThreadPool pool(jobs);
        mcdvfs::printClusterPanels(suite, "milc", &pool);
    } else {
        mcdvfs::printClusterPanels(suite, "milc");
    }
    return 0;
}
