/**
 * @file
 * Figure 5: performance clusters of milc for budgets {1.0, 1.3} and
 * cluster thresholds {1%, 5%}.
 *
 * Reproduced observation (§VI-A): milc is largely CPU intensive with
 * memory-intensive bursts; at higher thresholds the CPU frequency
 * stays tightly bound while the cluster spans a wide range of memory
 * frequencies (small performance difference across memory settings).
 */

#include "cluster_panels.hh"

int
main()
{
    mcdvfs::ReproSuite suite;
    mcdvfs::printClusterPanels(suite, "milc");
    return 0;
}
