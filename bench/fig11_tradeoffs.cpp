/**
 * @file
 * Figure 11: energy-performance trade-offs of the cluster policy vs.
 * optimal tracking at budget 1.3 for thresholds {1%, 3%, 5%}, without
 * and with the 500 us / 30 uJ per-event tuning overhead.
 *
 * Reproduced observations (§VI-C): performance degradation always
 * stays within the cluster threshold; energy consumption falls as the
 * threshold grows (lower-frequency settings become admissible); and
 * once tuning overhead is charged, the cluster policy can be *faster*
 * than per-sample optimal tracking because it tunes so much less
 * often.
 */

#include <iostream>

#include "common/table.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"

using namespace mcdvfs;

int
main()
{
    ReproSuite suite;
    const double budget = 1.3;

    for (const bool with_overhead : {false, true}) {
        Table table({"benchmark", "perf 1% ", "perf 3%", "perf 5%",
                     "energy 1%", "energy 3%", "energy 5%"});
        table.setTitle(with_overhead
                           ? "Fig 11(b): % vs optimal tracking, with "
                             "tuning overhead"
                           : "Fig 11(a): % vs optimal tracking, no "
                             "tuning overhead");
        for (const std::string &name : ReproSuite::benchmarkNames()) {
            const MeasuredGrid &grid = suite.grid(name);
            GridAnalyses a(grid);
            std::vector<std::string> row = {name};
            std::vector<std::string> energy_cells;
            for (const double threshold : {0.01, 0.03, 0.05}) {
                const TradeoffRow r =
                    a.tradeoff.compare(budget, threshold);
                row.push_back(Table::num(
                    with_overhead ? r.perfPctWithOverhead : r.perfPct,
                    2));
                energy_cells.push_back(Table::num(
                    with_overhead ? r.energyPctWithOverhead
                                  : r.energyPct,
                    2));
            }
            row.insert(row.end(), energy_cells.begin(),
                       energy_cells.end());
            table.addRow(std::move(row));
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "(negative perf = slower than optimal tracking; "
                 "negative energy = saves energy)\n";
    return 0;
}
