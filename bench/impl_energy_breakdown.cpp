/**
 * @file
 * Energy breakdown per benchmark at representative operating points:
 * where does the energy actually go (CPU dynamic / background /
 * leakage, DRAM background / activate / data), and how does the split
 * move between the max setting, the per-sample Emin settings, and the
 * budget-1.3 optimal trajectory.
 *
 * This is the accounting behind the paper's §V bzip2 example (memory
 * background energy as the price of high memory frequency in
 * CPU-bound phases).
 */

#include <iostream>

#include "common/table.hh"
#include "power/cpu_power.hh"
#include "power/dram_power.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"

using namespace mcdvfs;

namespace
{

struct Breakdown
{
    Joules cpuDynamic = 0.0;
    Joules cpuStatic = 0.0;  // background + leakage
    Joules memBackground = 0.0;
    Joules memOperations = 0.0;  // activate + read/write

    Joules
    total() const
    {
        return cpuDynamic + cpuStatic + memBackground + memOperations;
    }
};

/** Recompute the decomposition of one (sample, setting) cell. */
Breakdown
decompose(const MeasuredGrid &grid, std::size_t sample,
          std::size_t setting, const CpuPowerModel &cpu,
          const DramPowerModel &dram)
{
    const GridCell &cell = grid.cell(sample, setting);
    const SampleProfile &profile = grid.profile(sample);
    const FrequencySetting freqs = grid.space().at(setting);

    const Seconds busy = cell.seconds * cell.busyFrac;
    const Seconds stall = cell.seconds - busy;

    Breakdown out;
    const CpuPowerBreakdown busy_power =
        cpu.power(freqs.cpu, profile.activity);
    const CpuPowerBreakdown stall_power = cpu.power(
        freqs.cpu, profile.activity * cpu.params().stallActivity);
    out.cpuDynamic = busy_power.dynamic * busy +
                     stall_power.dynamic * stall;
    out.cpuStatic =
        (busy_power.background + busy_power.leakage) * cell.seconds;

    DramStats stats;
    const double n =
        static_cast<double>(grid.instructionsPerSample());
    stats.reads = static_cast<Count>(
        n * (profile.dramReadsPerInstr + profile.dramPrefetchPerInstr));
    stats.writes =
        static_cast<Count>(n * profile.dramWritesPerInstr);
    const double total =
        static_cast<double>(stats.reads + stats.writes);
    stats.rowHits = static_cast<Count>(total * profile.rowHitFrac);
    stats.rowClosed =
        static_cast<Count>(total * profile.rowClosedFrac);
    stats.rowConflicts =
        static_cast<Count>(total * profile.rowConflictFrac);

    const DramEnergyBreakdown mem =
        dram.energy(stats, freqs.mem, cell.seconds, cell.bwUtil);
    out.memBackground = mem.background;
    out.memOperations = mem.activate + mem.readWrite;
    return out;
}

} // namespace

int
main()
{
    ReproSuite suite;
    const CpuPowerModel cpu = CpuPowerModel::paperDefault();
    const DramPowerModel dram = DramPowerModel::paperDefault();

    Table table({"benchmark", "operating point", "cpu dyn %",
                 "cpu static %", "mem bg %", "mem ops %",
                 "total (mJ)"});
    table.setTitle("energy breakdown by component");

    for (const std::string &name : ReproSuite::benchmarkNames()) {
        const MeasuredGrid &grid = suite.grid(name);
        GridAnalyses a(grid);

        const std::size_t max_idx =
            grid.space().indexOf(grid.space().maxSetting());
        const auto trajectory = a.finder.optimalTrajectory(1.3);

        struct Point
        {
            const char *label;
            std::vector<std::size_t> settings;
        };
        std::vector<std::size_t> max_settings(grid.sampleCount(),
                                              max_idx);
        std::vector<std::size_t> emin_settings;
        std::vector<std::size_t> budget_settings;
        for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
            emin_settings.push_back(
                a.finder.optimalForSample(s, 1.0).settingIndex);
            budget_settings.push_back(trajectory[s].settingIndex);
        }
        const Point points[] = {
            {"max (1000/800)", max_settings},
            {"per-sample Emin", emin_settings},
            {"optimal @ I=1.3", budget_settings},
        };

        for (const Point &point : points) {
            Breakdown sum;
            for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
                const Breakdown b = decompose(grid, s,
                                              point.settings[s], cpu,
                                              dram);
                sum.cpuDynamic += b.cpuDynamic;
                sum.cpuStatic += b.cpuStatic;
                sum.memBackground += b.memBackground;
                sum.memOperations += b.memOperations;
            }
            const double total = sum.total();
            table.addRow(
                {name, point.label,
                 Table::num(sum.cpuDynamic / total * 100, 1),
                 Table::num(sum.cpuStatic / total * 100, 1),
                 Table::num(sum.memBackground / total * 100, 1),
                 Table::num(sum.memOperations / total * 100, 1),
                 Table::num(total * 1e3, 1)});
        }
    }
    table.print(std::cout);

    std::cout << "\n(the paper's bzip2 example: at max settings the "
                 "memory background share is what dropping to 200 MHz "
                 "memory recovers)\n";
    return 0;
}
