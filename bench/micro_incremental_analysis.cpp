/**
 * @file
 * Incremental-analysis micro-benchmark: append vs recompute
 * (docs/PERF.md).
 *
 * A streaming tuner sees the same workload grow a few samples per
 * batch.  This benchmark builds synthetic grids with H history samples
 * plus A appended samples, then times the two ways of producing the
 * (optimal, clusters, regions) chain over all H+A samples:
 *
 *  - recompute: IncrementalAnalyzer::build from sample zero (what the
 *    service did before checkpoints existed);
 *  - append: extend a checkpoint covering the first H samples over
 *    just the A new ones, through a tail-range ClusterFinder so even
 *    the per-sample table fill is O(A).
 *
 * The appended chain is verified bit-identical to the recompute before
 * anything is timed (the binary fatals otherwise).  Across growing H
 * at fixed A the append time should stay flat while recompute grows
 * linearly — the point of the incremental path.
 *
 * Results go to stdout and, machine-readable, to
 * BENCH_incremental.json (--out overrides; schema
 * mcdvfs-bench-incremental-v1, same record layout as BENCH_grid.json:
 * "samples" is H+A, append records report appended cells/sec and
 * speedup_vs_reference = recompute/append).  --tiny shrinks the
 * history lengths so the binary doubles as the tier-1 "perf_smoke"
 * ctest pinning append == recompute.
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <limits>

#include "bench_json.hh"
#include "common/args.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/incremental_analysis.hh"
#include "obs/metrics.hh"

using namespace mcdvfs;

namespace
{

/** Best-of-@c reps wall time of @c fn, in seconds. */
double
bestOf(int reps, const std::function<void()> &fn)
{
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

/**
 * Deterministic synthetic grid, filled directly (no characterization):
 * per-cell values come from an Rng seeded by (name, sample, setting),
 * so a longer grid of the same name is a bit-identical extension of a
 * shorter one — exactly the streaming-growth shape.
 */
MeasuredGrid
makeGrid(const std::string &name, const SettingsSpace &space,
         std::size_t samples)
{
    MeasuredGrid grid(name, space, samples, 1'000'000);
    const std::uint64_t name_hash = fnv1aString(kFnvOffsetBasis, name);
    for (std::size_t s = 0; s < samples; ++s) {
        MeasuredGrid::RowView row = grid.fillRow(s);
        const std::uint64_t row_seed = fnv1aMixWord(name_hash, s);
        for (std::size_t k = 0; k < space.size(); ++k) {
            Rng rng(fnv1aMixWord(row_seed, k));
            row.seconds[k] = 0.5 + rng.uniform();
            row.cpuEnergy[k] = 1.0 + rng.uniform();
            row.memEnergy[k] = 0.2 + 0.5 * rng.uniform();
            row.busyFrac[k] = 0.5 + 0.5 * rng.uniform();
            row.bwUtil[k] = rng.uniform();
        }
        grid.updateSampleAggregates(s);
    }
    grid.sealAggregates();
    return grid;
}

bool
sameChoice(const OptimalChoice &a, const OptimalChoice &b)
{
    return a.settingIndex == b.settingIndex && a.setting == b.setting &&
           a.speedup == b.speedup && a.inefficiency == b.inefficiency;
}

/** Fatal unless two checkpoints carry identical analysis output. */
void
requireIdentical(const AnalysisCheckpoint &oracle,
                 const AnalysisCheckpoint &appended,
                 const SettingsSpace &space)
{
    if (oracle.samples != appended.samples)
        fatal("incremental bench: sample counts differ");
    if (oracle.masks != appended.masks)
        fatal("incremental bench: appended masks diverge from the "
              "recompute");
    for (std::size_t s = 0; s < oracle.samples; ++s) {
        if (!sameChoice(oracle.optimal[s], appended.optimal[s]))
            fatal("incremental bench: appended optimum diverges from "
                  "the recompute at sample ", s);
    }
    const std::vector<StableRegion> a = oracle.regions.regions(space);
    const std::vector<StableRegion> b = appended.regions.regions(space);
    if (a.size() != b.size())
        fatal("incremental bench: region counts differ");
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].first != b[i].first || a[i].last != b[i].last ||
            a[i].availableSettings != b[i].availableSettings ||
            a[i].chosenSettingIndex != b[i].chosenSettingIndex ||
            !(a[i].chosenSetting == b[i].chosenSetting)) {
            fatal("incremental bench: appended region ", i,
                  " diverges from the recompute");
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("micro_incremental_analysis");
    args.addFlag("tiny");
    args.addOption("reps");
    args.addOption("out");
    bool tiny = false;
    int reps = 0;
    std::string out_path;
    try {
        args.parse(argc, argv);
        tiny = args.flag("tiny");
        reps = static_cast<int>(
            args.getInt("reps", tiny ? 2 : 5, 1, 1000));
        out_path = args.get("out", "BENCH_incremental.json");
    } catch (const FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 2;
    }

    const SettingsSpace space = SettingsSpace::coarse();
    const std::vector<std::size_t> histories =
        tiny ? std::vector<std::size_t>{32, 128}
             : std::vector<std::size_t>{256, 1024, 4096};
    const std::size_t append = tiny ? 8 : 64;
    const double budget = 1.3;
    const double threshold = 0.03;

    std::vector<bench::GridBenchRecord> records;
    for (const std::size_t history : histories) {
        const std::size_t total = history + append;
        const MeasuredGrid grid = makeGrid("incremental", space, total);
        InefficiencyAnalysis analysis(grid);
        OptimalSettingsFinder finder(analysis);
        ClusterFinder full(finder);

        // The recompute oracle and the checkpoint covering the first
        // `history` samples that every append rep extends.
        const AnalysisCheckpoint oracle =
            IncrementalAnalyzer::build(full, budget, threshold, total);
        const AnalysisCheckpoint base = IncrementalAnalyzer::build(
            full, budget, threshold, history);

        {
            AnalysisCheckpoint appended = base;
            ClusterFinder tail(finder, history);
            IncrementalAnalyzer::extend(appended, tail, total);
            requireIdentical(oracle, appended, space);
        }

        const double recompute_seconds = bestOf(reps, [&] {
            ClusterFinder clusters(finder);
            IncrementalAnalyzer::build(clusters, budget, threshold,
                                       total);
        });
        // Per rep: clone outside the timer (the service clones its
        // cached checkpoint the same way), time the tail-range table
        // fill plus the extend — the cost a streaming batch pays.
        double append_seconds =
            std::numeric_limits<double>::infinity();
        for (int r = 0; r < reps; ++r) {
            AnalysisCheckpoint cp = base;
            const auto start = std::chrono::steady_clock::now();
            ClusterFinder tail(finder, history);
            IncrementalAnalyzer::extend(cp, tail, total);
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            append_seconds = std::min(append_seconds, elapsed.count());
        }
        const double speedup = recompute_seconds / append_seconds;

        const std::string label = "H=" + std::to_string(history) +
                                  " A=" + std::to_string(append);
        records.push_back({label + " recompute", "recompute",
                           space.size(), total, 0, recompute_seconds,
                           static_cast<double>(total * space.size()) /
                               recompute_seconds,
                           0.0});
        records.push_back({label + " append", "append", space.size(),
                           total, 0, append_seconds,
                           static_cast<double>(append * space.size()) /
                               append_seconds,
                           speedup});
        std::printf("%-16s recompute %9.3f ms   append %9.3f ms   "
                    "speedup %.2fx\n",
                    label.c_str(), recompute_seconds * 1e3,
                    append_seconds * 1e3, speedup);
    }

    bench::writeBenchGridJson(out_path, "micro_incremental_analysis",
                              records, "mcdvfs-bench-incremental-v1");
    const std::string metrics_path = bench::metricsSidecarPath(out_path);
    obs::writeMetricsJson(metrics_path);
    std::printf("wrote %s and %s\n", out_path.c_str(),
                metrics_path.c_str());
    return 0;
}
