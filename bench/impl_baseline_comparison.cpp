/**
 * @file
 * §II/§IV implications: inefficiency-constrained tuning vs. the
 * baselines the paper positions against.
 *
 *  - CoScale-style perf-constrained search (both restart-from-max and
 *    the warm start §VI-A recommends: warm starting evaluates far
 *    fewer candidate settings);
 *  - absolute-energy rate limiting (pauses burn idle energy while no
 *    work gets done — the waste inefficiency avoids by tying the
 *    budget to work);
 *  - static performance governor.
 */

#include <iostream>

#include "baselines/comparison.hh"
#include "baselines/coscale.hh"
#include "common/table.hh"
#include "repro/suite.hh"

using namespace mcdvfs;

int
main()
{
    const double budget = 1.3;
    const double threshold = 0.03;
    const double slack = 0.10;

    ReproSuite suite;

    for (const std::string workload : {"gobmk", "lbm"}) {
        const MeasuredGrid &grid = suite.grid(workload);
        BaselineComparison comparison(grid);

        Table table({"policy", "time (ms)", "energy (mJ)",
                     "achieved I", "transitions", "events/evals",
                     "note"});
        table.setTitle("policy comparison: " + workload +
                       " (budget 1.3, threshold 3%, slack 10%)");
        for (const PolicyComparisonRow &row :
             comparison.compare(budget, threshold, slack)) {
            table.addRow(
                {row.policy, Table::num(row.time * 1e3, 2),
                 Table::num(row.energy * 1e3, 2),
                 Table::num(row.achievedInefficiency, 3),
                 Table::num(static_cast<long long>(row.transitions)),
                 Table::num(static_cast<long long>(row.workDone)),
                 row.note});
        }
        table.print(std::cout);

        // §VI-A: search-cost claim in isolation.
        CoScaleSearch coscale(grid, slack);
        const std::size_t from_max =
            coscale.runFromMax().settingsEvaluated;
        const std::size_t warm =
            coscale.runWarmStart().settingsEvaluated;
        std::cout << "coscale candidates evaluated: from-max "
                  << from_max << " vs warm-start " << warm << " ("
                  << Table::num(
                         100.0 * (1.0 - static_cast<double>(warm) /
                                            static_cast<double>(
                                                from_max)),
                         1)
                  << "% fewer)\n\n";
    }
    return 0;
}
