/**
 * @file
 * §VI-C micro-benchmarks: the cost of one tuning event's software
 * components, measured with google-benchmark.
 *
 * The paper reports ~500 us per tuning event over 70 settings
 * (inefficiency computation + optimal-settings search + hardware
 * transition) on its simulated platform.  These benchmarks measure
 * the analogous software costs in this implementation — the
 * optimal-settings search and cluster computation over the 70- and
 * 496-setting spaces — plus the per-sample characterization and
 * whole-grid construction costs that bound offline profiling.
 *
 * The metrics snapshot is written next to MCDVFS_BENCH_OUT (default
 * BENCH_search.json) as a .metrics.json sidecar, so counter deltas
 * travel with the timing numbers; a --benchmark_filter=70 run doubles
 * as the tier-1 "perf_smoke" ctest without ever building the fine
 * grid (fixtures are lazy per space).
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "bench_json.hh"
#include "core/search_strategies.hh"
#include "obs/metrics.hh"
#include "repro/analyses.hh"
#include "sim/grid_runner.hh"
#include "sim/sample_simulator.hh"
#include "trace/workloads.hh"

using namespace mcdvfs;

namespace
{

/**
 * Lazily built shared fixtures: each grid is built on first use, so a
 * filtered run (e.g. the perf_smoke 70-setting subset) never pays for
 * the spaces it skips.
 */
struct Fixtures
{
    static const MeasuredGrid &
    coarse()
    {
        static const MeasuredGrid grid =
            buildGrid(SettingsSpace::coarse());
        return grid;
    }

    static const MeasuredGrid &
    fine()
    {
        static const MeasuredGrid grid =
            buildGrid(SettingsSpace::fine());
        return grid;
    }

  private:
    static MeasuredGrid
    buildGrid(const SettingsSpace &space)
    {
        GridRunner runner;
        return runner.run(workloadByName("gobmk"), space);
    }
};

void
BM_OptimalSearch70(benchmark::State &state)
{
    const MeasuredGrid &grid = Fixtures::coarse();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    std::size_t s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(finder.optimalForSample(s, 1.3));
        s = (s + 1) % grid.sampleCount();
    }
}
BENCHMARK(BM_OptimalSearch70);

void
BM_OptimalSearch496(benchmark::State &state)
{
    const MeasuredGrid &grid = Fixtures::fine();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    std::size_t s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(finder.optimalForSample(s, 1.3));
        s = (s + 1) % grid.sampleCount();
    }
}
BENCHMARK(BM_OptimalSearch496);

void
BM_ClusterSearch70(benchmark::State &state)
{
    const MeasuredGrid &grid = Fixtures::coarse();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    std::size_t s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            clusters.clusterForSample(s, 1.3, 0.03));
        s = (s + 1) % grid.sampleCount();
    }
}
BENCHMARK(BM_ClusterSearch70);

void
BM_StableRegions70(benchmark::State &state)
{
    const MeasuredGrid &grid = Fixtures::coarse();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    StableRegionFinder regions(clusters);
    for (auto _ : state)
        benchmark::DoNotOptimize(regions.find(1.3, 0.03));
}
BENCHMARK(BM_StableRegions70);

void
BM_TimingModelEval(benchmark::State &state)
{
    const MeasuredGrid &grid = Fixtures::coarse();
    TimingModel model;
    const SampleProfile &profile = grid.profile(0);
    const FrequencySetting setting{megaHertz(700), megaHertz(500)};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(profile, setting, 10'000'000));
    }
}
BENCHMARK(BM_TimingModelEval);

void
BM_CharacterizeSample(benchmark::State &state)
{
    SampleSimulator simulator;
    const WorkloadProfile workload = workloadByName("gobmk");
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulator.characterizeOne(
            workload.phaseFor(0), workload.traceSeedFor(0), 50'000));
    }
}
BENCHMARK(BM_CharacterizeSample);

void
BM_HillClimbCold70(benchmark::State &state)
{
    const MeasuredGrid &grid = Fixtures::coarse();
    InefficiencyAnalysis analysis(grid);
    SettingsSearch search(analysis);
    const std::size_t min_idx =
        grid.space().indexOf(grid.space().minSetting());
    std::size_t s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(search.hillClimb(s, 1.3, min_idx));
        s = (s + 1) % grid.sampleCount();
    }
}
BENCHMARK(BM_HillClimbCold70);

void
BM_HillClimbWarm70(benchmark::State &state)
{
    const MeasuredGrid &grid = Fixtures::coarse();
    InefficiencyAnalysis analysis(grid);
    SettingsSearch search(analysis);
    std::size_t s = 0;
    std::size_t start = grid.space().indexOf(grid.space().minSetting());
    for (auto _ : state) {
        const SearchOutcome outcome = search.hillClimb(s, 1.3, start);
        benchmark::DoNotOptimize(outcome);
        start = outcome.settingIndex;
        s = (s + 1) % grid.sampleCount();
    }
}
BENCHMARK(BM_HillClimbWarm70);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();

    // Metrics sidecar alongside the timing numbers (the .json itself
    // comes from google-benchmark's own --benchmark_out, if asked).
    const char *out = std::getenv("MCDVFS_BENCH_OUT");
    const std::string out_path = out != nullptr ? out : "BENCH_search.json";
    obs::writeMetricsJson(bench::metricsSidecarPath(out_path));

    benchmark::Shutdown();
    return 0;
}
