/**
 * @file
 * §VI-C micro-benchmarks: the cost of one tuning event's software
 * components, measured with google-benchmark.
 *
 * The paper reports ~500 us per tuning event over 70 settings
 * (inefficiency computation + optimal-settings search + hardware
 * transition) on its simulated platform.  These benchmarks measure
 * the analogous software costs in this implementation — the
 * optimal-settings search and cluster computation over the 70- and
 * 496-setting spaces — plus the per-sample characterization and
 * whole-grid construction costs that bound offline profiling.
 */

#include <benchmark/benchmark.h>

#include "core/search_strategies.hh"
#include "repro/analyses.hh"
#include "sim/grid_runner.hh"
#include "sim/sample_simulator.hh"
#include "trace/workloads.hh"

using namespace mcdvfs;

namespace
{

/** Lazily built shared fixtures (grids are expensive to construct). */
struct Fixtures
{
    MeasuredGrid coarse;
    MeasuredGrid fine;

    static const Fixtures &
    get()
    {
        static const Fixtures fixtures;
        return fixtures;
    }

  private:
    Fixtures()
        : coarse(buildGrid(SettingsSpace::coarse())),
          fine(buildGrid(SettingsSpace::fine()))
    {
    }

    static MeasuredGrid
    buildGrid(const SettingsSpace &space)
    {
        GridRunner runner;
        return runner.run(workloadByName("gobmk"), space);
    }
};

void
BM_OptimalSearch70(benchmark::State &state)
{
    const MeasuredGrid &grid = Fixtures::get().coarse;
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    std::size_t s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(finder.optimalForSample(s, 1.3));
        s = (s + 1) % grid.sampleCount();
    }
}
BENCHMARK(BM_OptimalSearch70);

void
BM_OptimalSearch496(benchmark::State &state)
{
    const MeasuredGrid &grid = Fixtures::get().fine;
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    std::size_t s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(finder.optimalForSample(s, 1.3));
        s = (s + 1) % grid.sampleCount();
    }
}
BENCHMARK(BM_OptimalSearch496);

void
BM_ClusterSearch70(benchmark::State &state)
{
    const MeasuredGrid &grid = Fixtures::get().coarse;
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    std::size_t s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            clusters.clusterForSample(s, 1.3, 0.03));
        s = (s + 1) % grid.sampleCount();
    }
}
BENCHMARK(BM_ClusterSearch70);

void
BM_StableRegions70(benchmark::State &state)
{
    const MeasuredGrid &grid = Fixtures::get().coarse;
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    StableRegionFinder regions(clusters);
    for (auto _ : state)
        benchmark::DoNotOptimize(regions.find(1.3, 0.03));
}
BENCHMARK(BM_StableRegions70);

void
BM_TimingModelEval(benchmark::State &state)
{
    const MeasuredGrid &grid = Fixtures::get().coarse;
    TimingModel model;
    const SampleProfile &profile = grid.profile(0);
    const FrequencySetting setting{megaHertz(700), megaHertz(500)};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(profile, setting, 10'000'000));
    }
}
BENCHMARK(BM_TimingModelEval);

void
BM_CharacterizeSample(benchmark::State &state)
{
    SampleSimulator simulator;
    const WorkloadProfile workload = workloadByName("gobmk");
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulator.characterizeOne(
            workload.phaseFor(0), workload.traceSeedFor(0), 50'000));
    }
}
BENCHMARK(BM_CharacterizeSample);

void
BM_HillClimbCold70(benchmark::State &state)
{
    const MeasuredGrid &grid = Fixtures::get().coarse;
    InefficiencyAnalysis analysis(grid);
    SettingsSearch search(analysis);
    const std::size_t min_idx =
        grid.space().indexOf(grid.space().minSetting());
    std::size_t s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(search.hillClimb(s, 1.3, min_idx));
        s = (s + 1) % grid.sampleCount();
    }
}
BENCHMARK(BM_HillClimbCold70);

void
BM_HillClimbWarm70(benchmark::State &state)
{
    const MeasuredGrid &grid = Fixtures::get().coarse;
    InefficiencyAnalysis analysis(grid);
    SettingsSearch search(analysis);
    std::size_t s = 0;
    std::size_t start = grid.space().indexOf(grid.space().minSetting());
    for (auto _ : state) {
        const SearchOutcome outcome = search.hillClimb(s, 1.3, start);
        benchmark::DoNotOptimize(outcome);
        start = outcome.settingIndex;
        s = (s + 1) % grid.sampleCount();
    }
}
BENCHMARK(BM_HillClimbWarm70);

} // namespace

BENCHMARK_MAIN();
