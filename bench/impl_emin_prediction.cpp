/**
 * @file
 * §II-B "Predicting and learning": can a counter-driven model replace
 * the brute-force Emin search?
 *
 * For every benchmark, the recursive-least-squares predictor is
 * trained online (each sample's true Emin arrives one sample later,
 * as a background brute-force evaluation would provide it) and its
 * predictions are scored on (a) relative Emin error and (b) the
 * budget-conformance consequences of using predicted inefficiency for
 * the budget filter at I=1.3.
 */

#include <cmath>
#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"
#include "runtime/emin_predictor.hh"

using namespace mcdvfs;

int
main()
{
    const double budget = 1.3;

    ReproSuite suite;
    Table table({"benchmark", "mean |err| %", "p95 |err| %",
                 "violations %", "over-conservative %"});
    table.setTitle("online Emin prediction vs brute force (I=1.3)");

    for (const std::string &name : ReproSuite::benchmarkNames()) {
        const MeasuredGrid &grid = suite.grid(name);
        GridAnalyses a(grid);

        EminPredictor predictor;
        Distribution errors;
        std::size_t violations = 0;
        std::size_t conservative = 0;
        std::size_t scored = 0;

        for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
            if (predictor.trained()) {
                const Joules predicted = predictor.predict(grid.profile(s));
                const Joules truth = grid.sampleEmin(s);
                errors.add(std::abs(predicted - truth) / truth * 100.0);

                // What the predicted budget filter would do to the
                // sample's true optimal choice.
                const OptimalChoice choice =
                    a.finder.optimalForSample(s, budget);
                const Joules energy =
                    grid.cell(s, choice.settingIndex).energy();
                const double predicted_i = energy / predicted;
                const double true_i = energy / truth;
                ++scored;
                if (predicted_i <= budget && true_i > budget + 1e-9)
                    ++violations;  // filter admits an over-budget point
                if (predicted_i > budget && true_i <= budget)
                    ++conservative;  // filter rejects a valid point
            }
            // One-sample-delayed training signal.
            predictor.observe(grid.profile(s), grid.sampleEmin(s));
        }

        table.addRow(
            {name, Table::num(errors.mean(), 1),
             Table::num(errors.quantile(0.95), 1),
             Table::num(100.0 * static_cast<double>(violations) /
                            static_cast<double>(scored),
                        1),
             Table::num(100.0 * static_cast<double>(conservative) /
                            static_cast<double>(scored),
                        1)});
    }
    table.print(std::cout);
    std::cout << "\n(brute force evaluates all 70 settings per sample; "
                 "the predictor needs one model evaluation)\n";
    return 0;
}
