/**
 * @file
 * Ablations of the substrate's design choices (DESIGN.md §5 / §6):
 *
 *  1. bandwidth modelling off (pure latency model) — quantifies how
 *     much the saturation term shapes memory-bound grids;
 *  2. measurement noise off — shows the optimal-tracking transition
 *     counts collapse, i.e. the paper's transition phenomenology
 *     depends on measured grids being noisy;
 *  3. warm-up off — shows the cold-start transient that would
 *     otherwise masquerade as a phase;
 *  4. next-line prefetch on — how latency hiding shifts the
 *     energy-performance frontier;
 *  5. DRAM power-down on — how much background energy a deeper
 *     memory low-power mode would recover.
 */

#include <iostream>

#include "common/table.hh"
#include "repro/analyses.hh"
#include "sim/grid_runner.hh"
#include "trace/workloads.hh"

using namespace mcdvfs;

namespace
{

struct Row
{
    std::string name;
    double imax;
    double time_at_13;      // optimal tracking, seconds
    std::size_t transitions_13;
    double mem_energy_frac; // at max setting
};

Row
evaluate(const std::string &name, const SystemConfig &config,
         const std::string &workload)
{
    GridRunner runner(config);
    const MeasuredGrid grid =
        runner.run(workloadByName(workload), SettingsSpace::coarse());
    GridAnalyses a(grid);

    Row row;
    row.name = name;
    row.imax = a.analysis.maxRunInefficiency();
    const PolicyOutcome outcome = a.tradeoff.optimalTracking(1.3);
    row.time_at_13 = outcome.time;
    row.transitions_13 = outcome.transitions;
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());
    double mem = 0.0;
    double total = 0.0;
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        mem += grid.cell(s, max_idx).memEnergy;
        total += grid.cell(s, max_idx).energy();
    }
    row.mem_energy_frac = mem / total;
    return row;
}

} // namespace

int
main()
{
    for (const std::string workload : {"gobmk", "lbm"}) {
        Table table({"variant", "Imax", "time@1.3 (ms)",
                     "transitions@1.3", "mem E share @max"});
        table.setTitle("model ablations: " + workload);

        SystemConfig base;
        table.addRow([&] {
            const Row r = evaluate("baseline", base, workload);
            return std::vector<std::string>{
                r.name, Table::num(r.imax, 2),
                Table::num(r.time_at_13 * 1e3, 1),
                Table::num(static_cast<long long>(r.transitions_13)),
                Table::num(r.mem_energy_frac * 100, 1) + "%"};
        }());

        SystemConfig no_bw = base;
        no_bw.timing.modelBandwidth = false;
        table.addRow([&] {
            const Row r = evaluate("no-bandwidth-model", no_bw, workload);
            return std::vector<std::string>{
                r.name, Table::num(r.imax, 2),
                Table::num(r.time_at_13 * 1e3, 1),
                Table::num(static_cast<long long>(r.transitions_13)),
                Table::num(r.mem_energy_frac * 100, 1) + "%"};
        }());

        SystemConfig no_noise = base;
        no_noise.measurementNoise = 0.0;
        table.addRow([&] {
            const Row r =
                evaluate("no-measurement-noise", no_noise, workload);
            return std::vector<std::string>{
                r.name, Table::num(r.imax, 2),
                Table::num(r.time_at_13 * 1e3, 1),
                Table::num(static_cast<long long>(r.transitions_13)),
                Table::num(r.mem_energy_frac * 100, 1) + "%"};
        }());

        SystemConfig no_warmup = base;
        no_warmup.sampler.warmupInstructions = 0;
        table.addRow([&] {
            const Row r = evaluate("no-warmup", no_warmup, workload);
            return std::vector<std::string>{
                r.name, Table::num(r.imax, 2),
                Table::num(r.time_at_13 * 1e3, 1),
                Table::num(static_cast<long long>(r.transitions_13)),
                Table::num(r.mem_energy_frac * 100, 1) + "%"};
        }());

        SystemConfig prefetch = base;
        prefetch.sampler.hierarchy.nextLinePrefetch = true;
        table.addRow([&] {
            const Row r =
                evaluate("next-line-prefetch", prefetch, workload);
            return std::vector<std::string>{
                r.name, Table::num(r.imax, 2),
                Table::num(r.time_at_13 * 1e3, 1),
                Table::num(static_cast<long long>(r.transitions_13)),
                Table::num(r.mem_energy_frac * 100, 1) + "%"};
        }());

        SystemConfig powerdown = base;
        powerdown.dramPower.enablePowerDown = true;
        table.addRow([&] {
            const Row r =
                evaluate("dram-power-down", powerdown, workload);
            return std::vector<std::string>{
                r.name, Table::num(r.imax, 2),
                Table::num(r.time_at_13 * 1e3, 1),
                Table::num(static_cast<long long>(r.transitions_13)),
                Table::num(r.mem_energy_frac * 100, 1) + "%"};
        }());

        table.print(std::cout);
        std::cout << '\n';
    }
    return 0;
}
