/**
 * @file
 * §II-A at system scale: several apps with priority-derived
 * inefficiency budgets share one device.  Compares sample-granular
 * round robin against run-to-completion batching: per-app budgets
 * hold under both, but interleaving apps whose budgets choose
 * different settings multiplies frequency transitions.
 */

#include <iostream>

#include "common/table.hh"
#include "repro/suite.hh"
#include "sched/scheduler.hh"

using namespace mcdvfs;

int
main()
{
    ReproSuite suite;

    std::vector<AppTask> apps(4);
    apps[0].name = "gobmk";
    apps[0].grid = &suite.grid("gobmk");
    apps[0].budget = 1.5;
    apps[0].threshold = 0.01;
    apps[1].name = "bzip2";
    apps[1].grid = &suite.grid("bzip2");
    apps[1].budget = 1.1;
    apps[1].threshold = 0.05;
    apps[2].name = "lbm";
    apps[2].grid = &suite.grid("lbm");
    apps[2].budget = 1.15;
    apps[2].threshold = 0.05;
    apps[3].name = "milc";
    apps[3].grid = &suite.grid("milc");
    apps[3].budget = 1.3;
    apps[3].threshold = 0.03;

    BudgetScheduler scheduler;
    Table table({"policy", "makespan (ms)", "energy (mJ)",
                 "ctx switches", "freq transitions",
                 "transition time (ms)", "budgets held"});
    table.setTitle("multi-app scheduling under per-app budgets");

    for (const auto [policy, label] :
         {std::pair{SchedPolicy::RoundRobin, "round-robin"},
          std::pair{SchedPolicy::RunToCompletion,
                    "run-to-completion"}}) {
        const ScheduleResult result = scheduler.run(apps, policy);
        bool held = true;
        for (std::size_t i = 0; i < apps.size(); ++i) {
            held &= result.apps[i].achievedInefficiency <=
                    apps[i].budget + 1e-9;
        }
        table.addRow(
            {label, Table::num(result.makespan * 1e3, 1),
             Table::num(result.totalEnergy * 1e3, 1),
             Table::num(static_cast<long long>(result.contextSwitches)),
             Table::num(static_cast<long long>(
                 result.frequencyTransitions)),
             Table::num(result.transitionLatency * 1e3, 2),
             held ? "yes" : "NO"});
    }
    table.print(std::cout);

    std::cout << "\nper-app outcomes are identical across policies "
                 "(the budget is tied to the app's work, not to the "
                 "schedule).\n";
    return 0;
}
