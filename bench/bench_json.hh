/**
 * @file
 * Machine-readable grid-benchmark output.
 *
 * Both grid micro-benchmarks (micro_grid_kernel, micro_parallel_grid)
 * emit the same flat JSON document — BENCH_grid.json — so tooling can
 * track grid-build throughput across commits without scraping console
 * output.  One record per timed configuration:
 *
 *   {
 *     "schema": "mcdvfs-bench-grid-v1",
 *     "benchmark": "<emitting binary>",
 *     "results": [
 *       {"name": ..., "kernel": "table"|"reference",
 *        "settings": N, "samples": N, "jobs": N,
 *        "build_seconds": ..., "cells_per_sec": ...,
 *        "speedup_vs_reference": ...},
 *       ...
 *     ]
 *   }
 *
 * "jobs" is 0 for a serial build; "speedup_vs_reference" is 0 when no
 * reference timing exists in the same run.
 */

#ifndef MCDVFS_BENCH_BENCH_JSON_HH
#define MCDVFS_BENCH_BENCH_JSON_HH

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace mcdvfs
{
namespace bench
{

/** One timed grid-build configuration. */
struct GridBenchRecord
{
    std::string name;    ///< human-readable configuration label
    std::string kernel;  ///< "table" or "reference"
    std::size_t settings = 0;
    std::size_t samples = 0;
    std::size_t jobs = 0;  ///< worker threads; 0 = serial
    double buildSeconds = 0.0;
    double cellsPerSec = 0.0;
    double speedupVsReference = 0.0;  ///< 0 when not applicable
};

/**
 * Sidecar path of the metrics snapshot accompanying a benchmark JSON:
 * "BENCH_grid.json" -> "BENCH_grid.metrics.json" (a ".metrics.json"
 * suffix is appended when @c path does not end in ".json").
 */
inline std::string
metricsSidecarPath(const std::string &path)
{
    const std::string suffix = ".json";
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) == 0) {
        return path.substr(0, path.size() - suffix.size()) +
               ".metrics.json";
    }
    return path + ".metrics.json";
}

/**
 * Serialize @c records to @c path; throws FatalError on I/O failure.
 * @c schema names the document flavor (the analysis-kernel benchmark
 * emits "mcdvfs-bench-analysis-v1" with the same record layout).
 */
inline void
writeBenchGridJson(const std::string &path, const std::string &benchmark,
                   const std::vector<GridBenchRecord> &records,
                   const std::string &schema = "mcdvfs-bench-grid-v1")
{
    std::ofstream out(path);
    if (!out)
        fatal("bench json: cannot open ", path, " for writing");
    out.precision(17);
    out << "{\n";
    out << "  \"schema\": \"" << schema << "\",\n";
    out << "  \"benchmark\": \"" << benchmark << "\",\n";
    out << "  \"results\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const GridBenchRecord &r = records[i];
        out << "    {\"name\": \"" << r.name << "\", \"kernel\": \""
            << r.kernel << "\", \"settings\": " << r.settings
            << ", \"samples\": " << r.samples << ", \"jobs\": " << r.jobs
            << ",\n     \"build_seconds\": " << r.buildSeconds
            << ", \"cells_per_sec\": " << r.cellsPerSec
            << ", \"speedup_vs_reference\": " << r.speedupVsReference
            << "}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    if (!out)
        fatal("bench json: failed writing ", path);
}

} // namespace bench
} // namespace mcdvfs

#endif // MCDVFS_BENCH_BENCH_JSON_HH
