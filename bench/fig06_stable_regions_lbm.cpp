/**
 * @file
 * Figure 6: stable regions and transitions for lbm at inefficiency
 * budget 1.3 and cluster threshold 5%.
 *
 * Reproduced observation (§VI-B): within every stable region both the
 * CPU and the memory frequency stay constant; transitions happen only
 * at region boundaries (the figure's dashed markers).
 */

#include <iostream>

#include "common/table.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"

using namespace mcdvfs;

namespace
{

void
printPanel(GridAnalyses &a, double budget, double threshold)
{
    const auto regions = a.regions.find(budget, threshold);

    Table table({"region", "samples", "length", "cpu MHz", "mem MHz",
                 "avail"});
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Fig 6: lbm stable regions (I=%.2f, threshold=%.0f%%)",
                  budget, threshold * 100.0);
    table.setTitle(title);
    for (std::size_t r = 0; r < regions.size(); ++r) {
        const StableRegion &region = regions[r];
        table.addRow(
            {Table::num(static_cast<long long>(r)),
             Table::num(static_cast<long long>(region.first)) + "-" +
                 Table::num(static_cast<long long>(region.last)),
             Table::num(static_cast<long long>(region.length())),
             Table::num(toMegaHertz(region.chosenSetting.cpu), 0),
             Table::num(toMegaHertz(region.chosenSetting.mem), 0),
             Table::num(static_cast<long long>(
                 region.availableSettings.size()))});
    }
    table.print(std::cout);

    std::cout << "transition markers at samples:";
    for (std::size_t r = 1; r < regions.size(); ++r)
        std::cout << ' ' << regions[r].first;
    const TransitionReport report =
        a.transitions.forClusterPolicy(budget, threshold);
    std::cout << "\ntransitions: " << report.transitions << " ("
              << Table::num(report.perBillionInstructions, 1)
              << " per billion instructions)\n\n";
}

} // namespace

int
main()
{
    ReproSuite suite;
    const MeasuredGrid &grid = suite.grid("lbm");
    GridAnalyses a(grid);

    // The paper's operating point.  On this substrate lbm's budget
    // frontier sits between 800 and 900 MHz CPU at every sample, so
    // the run collapses to very few regions at 1.3 ...
    printPanel(a, 1.3, 0.05);

    // ... the region structure the paper's Fig. 6 shows appears where
    // the budget binds sample-dependently; find the highest budget
    // that produces it and print that operating point as the
    // supplementary panel.
    for (const double budget : {1.25, 1.2, 1.15, 1.1, 1.05}) {
        if (a.regions.find(budget, 0.05).size() >= 4) {
            printPanel(a, budget, 0.05);
            break;
        }
    }
    return 0;
}
