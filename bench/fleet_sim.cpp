/**
 * @file
 * Synthetic-fleet load generator for the tuning daemon (docs/FLEET.md).
 *
 * Replays a fleet of devices against daemon::TuningDaemon: each device
 * issues one tuning request drawn from a class table (workload variant
 * x budget x threshold).  Class popularity is Zipf-skewed — a few hot
 * configurations dominate, as in a real fleet — and arrivals are
 * phase-correlated: devices of the same class arrive in geometric
 * bursts rather than independently.  A bounded window of outstanding
 * futures provides the client-side flow control; the daemon's own
 * admission control sheds whatever the window still over-drives.
 *
 * The run has two phases over one snapshot-store directory:
 *
 *   cold  — fresh store: every distinct grid characterizes and every
 *           distinct analysis computes once, then persists.
 *   warm  — a second daemon over the same store: construction
 *           warm-loads the snapshots, so the replay should serve from
 *           the caches from the first request.
 *
 * Every completed result is digested (optimal trajectory, regions);
 * the warm replay must reproduce the cold digests exactly — snapshots
 * round-trip bit-identically or the binary fatals.  Results go to
 * stdout and BENCH_fleet.json (schema mcdvfs-bench-fleet-v1) with an
 * obs metrics sidecar.
 *
 * --tiny shrinks the fleet so the binary doubles as the tier-1
 * "perf_smoke" ctest.
 *
 * Observability hooks (docs/OBSERVABILITY.md): a telemetry pipeline
 * samples the whole run and --telemetry-out FILE exports its
 * timeseries JSON; --trace-out FILE records a Chrome/Perfetto trace
 * with per-request flows; --journal-out FILE dumps the daemon's
 * request journal (JSONL).  Every run checks that labeled counter
 * series sum exactly to their unlabeled totals, and — when both trace
 * and journal are on — that every journaled request_id appears as a
 * trace flow.  --overload replays a third phase against a queue of 2
 * with no client flow control and fatals unless the shed_rate SLO
 * rule trips.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <vector>

#include "bench_json.hh"
#include "common/args.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "daemon/tuning_daemon.hh"
#include "obs/journal.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "svc/fingerprint.hh"

using namespace mcdvfs;

namespace
{

/** One device class: a (workload, budget, threshold) configuration. */
struct DeviceClass
{
    svc::TuningRequest request;
    /** Digest of the class's result; 0 until first completed. */
    std::uint64_t digest = 0;
};

/** What one replay phase measured. */
struct PhaseOutcome
{
    double startupSeconds = 0.0;  ///< daemon construction (+ warm load)
    double replaySeconds = 0.0;
    /** Time spent characterizing samples ("sim.grid.characterize_ns"
     *  delta over the phase, summed across builder threads). */
    double characterizeSeconds = 0.0;
    /** Time spent in the §V/§VI analysis chain ("svc.service.analyze_ns"
     *  delta over the phase, summed across threads). */
    double analyzeSeconds = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t gridHits = 0;
    std::uint64_t analysisHits = 0;
    /** Profile-cache traffic of the phase (0 when memoization is off). */
    std::uint64_t profileHits = 0;
    std::uint64_t profileMisses = 0;
    /** Grid hits / completions among the first `window` submissions. */
    std::uint64_t firstWindowHits = 0;
    std::uint64_t firstWindowTotal = 0;
    std::uint64_t p50Ns = 0;
    std::uint64_t p99Ns = 0;
    daemon::DaemonStats stats;
};

/** Current value of one unlabeled counter (0 when never registered). */
std::uint64_t
counterValue(const char *name)
{
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::global().snapshot();
    for (const auto &[key, value] : snapshot.counters) {
        if (key == name)
            return value;
    }
    return 0;
}

/** Deterministic synthetic workload variant @c index. */
WorkloadProfile
fleetWorkload(std::size_t index)
{
    PhaseSpec cpu;
    cpu.name = "cpu";
    cpu.baseCpi = 0.7 + 0.05 * static_cast<double>(index % 5);
    cpu.hotFrac = 0.97;
    cpu.warmFrac = 0.02;
    PhaseSpec mem;
    mem.name = "mem";
    mem.baseCpi = 1.0 + 0.04 * static_cast<double>(index % 4);
    mem.hotFrac = 0.82;
    mem.warmFrac = 0.10;
    mem.coldSeqFrac = 0.25;
    mem.mlp = 1.2 + 0.1 * static_cast<double>(index % 3);
    const std::size_t period = 2 + index % 3;
    // PerPhase seeding: the fleet's variants share phases (index % 5 /
    // % 4 / % 3 parameterizations), so with memoization on, each
    // distinct phase characterizes once across the whole fleet.
    return WorkloadProfile(
        "fleet-v" + std::to_string(index), 8,
        [cpu, mem, period](std::size_t s) {
            return (s / period) % 2 ? mem : cpu;
        },
        100 + index, /*jitter=*/0.0,
        WorkloadProfile::SeedMode::PerPhase);
}

/** The class table: variants x budgets x thresholds. */
std::vector<DeviceClass>
buildClasses(std::size_t variants, bool tiny)
{
    const std::vector<double> budgets =
        tiny ? std::vector<double>{1.3, 1.5}
             : std::vector<double>{1.1, 1.3, 1.5, 2.0};
    const std::vector<double> thresholds =
        tiny ? std::vector<double>{0.03}
             : std::vector<double>{0.01, 0.03};

    std::vector<DeviceClass> classes;
    for (std::size_t v = 0; v < variants; ++v) {
        const WorkloadProfile workload = fleetWorkload(v);
        for (const double budget : budgets) {
            for (const double threshold : thresholds) {
                classes.push_back(DeviceClass{
                    svc::TuningRequest{workload, SettingsSpace::coarse(),
                                       budget, threshold},
                    0});
            }
        }
    }
    return classes;
}

/**
 * Zipf-skewed, burst-correlated arrival schedule: class popularity
 * follows 1/rank^s, and each draw repeats for a geometric burst.
 */
std::vector<std::size_t>
buildSchedule(std::size_t devices, std::size_t classes, double exponent,
              double burst_p, Rng &rng)
{
    std::vector<double> cdf(classes);
    double total = 0.0;
    for (std::size_t i = 0; i < classes; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
        cdf[i] = total;
    }

    std::vector<std::size_t> schedule;
    schedule.reserve(devices);
    while (schedule.size() < devices) {
        const double draw = rng.uniform() * total;
        const std::size_t cls = static_cast<std::size_t>(
            std::lower_bound(cdf.begin(), cdf.end(), draw) - cdf.begin());
        const std::uint64_t burst = 1 + rng.geometric(burst_p);
        for (std::uint64_t b = 0; b < burst && schedule.size() < devices;
             ++b) {
            schedule.push_back(std::min(cls, classes - 1));
        }
    }
    return schedule;
}

/** Result digest for the cold-vs-warm bit-identity check. */
std::uint64_t
digestOf(const svc::TuningResult &result)
{
    svc::HashBuilder h;
    for (const OptimalChoice &choice : result.optimal) {
        h.add(static_cast<std::uint64_t>(choice.settingIndex));
        h.add(choice.speedup);
        h.add(choice.inefficiency);
    }
    for (const PerformanceCluster &cluster : result.clusters)
        h.add(static_cast<std::uint64_t>(cluster.settings.size()));
    for (const StableRegion &region : result.regions) {
        h.add(static_cast<std::uint64_t>(region.first));
        h.add(static_cast<std::uint64_t>(region.last));
        h.add(static_cast<std::uint64_t>(region.chosenSettingIndex));
    }
    return h.digest();
}

/** Harvest one future; fatal when its digest diverges from the class. */
void
harvest(std::future<daemon::DaemonResponse> &future, DeviceClass &cls,
        std::size_t submit_index, std::size_t window, const char *phase,
        PhaseOutcome &outcome, std::vector<std::uint64_t> &latencies)
{
    const daemon::DaemonResponse response = future.get();
    if (!response.ok()) {
        ++outcome.shed;
        return;
    }
    ++outcome.completed;
    latencies.push_back(response.totalNs);
    if (response.result.cacheHit)
        ++outcome.gridHits;
    if (response.result.analysisCacheHit)
        ++outcome.analysisHits;
    if (submit_index < window) {
        ++outcome.firstWindowTotal;
        if (response.result.cacheHit)
            ++outcome.firstWindowHits;
    }

    const std::uint64_t digest = digestOf(response.result);
    if (cls.digest == 0)
        cls.digest = digest;
    else if (cls.digest != digest)
        fatal("fleet sim: ", phase, " result diverges for workload '",
              cls.request.workload.name(), "' budget ",
              cls.request.budget, " — snapshot round trip is not "
              "bit-identical");
}

/** Replay the schedule against a fresh daemon over @c options. */
PhaseOutcome
replay(const SystemConfig &config, const daemon::DaemonOptions &options,
       std::vector<DeviceClass> &classes,
       const std::vector<std::size_t> &schedule, std::size_t window,
       const char *phase, obs::DecisionJournal *journal = nullptr)
{
    using FleetClock = std::chrono::steady_clock;
    PhaseOutcome outcome;

    const std::uint64_t characterize_before =
        counterValue("sim.grid.characterize_ns");
    const std::uint64_t analyze_before =
        counterValue("svc.service.analyze_ns");
    const std::uint64_t profile_hits_before =
        counterValue("svc.profile.hits");
    const std::uint64_t profile_misses_before =
        counterValue("svc.profile.misses");

    const auto construct_start = FleetClock::now();
    daemon::TuningDaemon daemon(config, options);
    daemon.setJournal(journal);
    outcome.startupSeconds =
        std::chrono::duration<double>(FleetClock::now() - construct_start)
            .count();

    struct Outstanding
    {
        std::future<daemon::DaemonResponse> future;
        std::size_t cls;
        std::size_t submitIndex;
    };
    std::vector<std::uint64_t> latencies;
    latencies.reserve(schedule.size());
    std::deque<Outstanding> outstanding;

    const auto replay_start = FleetClock::now();
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const std::size_t cls = schedule[i];
        outstanding.push_back(
            Outstanding{daemon.submit(classes[cls].request), cls, i});
        while (outstanding.size() >= window) {
            harvest(outstanding.front().future,
                    classes[outstanding.front().cls],
                    outstanding.front().submitIndex, window, phase,
                    outcome, latencies);
            outstanding.pop_front();
        }
    }
    while (!outstanding.empty()) {
        harvest(outstanding.front().future,
                classes[outstanding.front().cls],
                outstanding.front().submitIndex, window, phase, outcome,
                latencies);
        outstanding.pop_front();
    }
    daemon.drain();
    outcome.replaySeconds =
        std::chrono::duration<double>(FleetClock::now() - replay_start)
            .count();
    outcome.characterizeSeconds =
        static_cast<double>(counterValue("sim.grid.characterize_ns") -
                            characterize_before) /
        1e9;
    outcome.analyzeSeconds =
        static_cast<double>(counterValue("svc.service.analyze_ns") -
                            analyze_before) /
        1e9;
    outcome.profileHits =
        counterValue("svc.profile.hits") - profile_hits_before;
    outcome.profileMisses =
        counterValue("svc.profile.misses") - profile_misses_before;

    std::sort(latencies.begin(), latencies.end());
    if (!latencies.empty()) {
        outcome.p50Ns = latencies[latencies.size() / 2];
        outcome.p99Ns =
            latencies[std::min(latencies.size() - 1,
                               latencies.size() * 99 / 100)];
    }
    outcome.stats = daemon.stats();
    return outcome;
}

double
rate(std::uint64_t part, std::uint64_t whole)
{
    return whole == 0 ? 0.0
                      : static_cast<double>(part) /
                            static_cast<double>(whole);
}

void
printPhase(const char *phase, const PhaseOutcome &o,
           std::size_t devices)
{
    std::printf("%-4s  startup %8.3f ms   replay %8.3f s   "
                "%6.0f req/s\n",
                phase, o.startupSeconds * 1e3, o.replaySeconds,
                static_cast<double>(o.completed) /
                    std::max(o.replaySeconds, 1e-9));
    std::printf("      completed %llu/%zu   shed %llu (%.1f%%)   "
                "p50 %.3f ms   p99 %.3f ms\n",
                static_cast<unsigned long long>(o.completed), devices,
                static_cast<unsigned long long>(o.shed),
                100.0 * rate(o.shed, o.completed + o.shed),
                static_cast<double>(o.p50Ns) / 1e6,
                static_cast<double>(o.p99Ns) / 1e6);
    std::printf("      grid hits %.1f%%   analysis hits %.1f%%   "
                "first-window grid hits %.1f%%   warm loads %llu+%llu\n",
                100.0 * rate(o.gridHits, o.completed),
                100.0 * rate(o.analysisHits, o.completed),
                100.0 * rate(o.firstWindowHits, o.firstWindowTotal),
                static_cast<unsigned long long>(o.stats.warmGrids),
                static_cast<unsigned long long>(o.stats.warmAnalyses));
    std::printf("      characterize %8.3f s   analyze %8.3f s   "
                "profile cache %llu hits / %llu misses\n",
                o.characterizeSeconds, o.analyzeSeconds,
                static_cast<unsigned long long>(o.profileHits),
                static_cast<unsigned long long>(o.profileMisses));
}

void
writePhaseJson(std::ofstream &out, const char *phase,
               const PhaseOutcome &o, bool last)
{
    out << "    {\"phase\": \"" << phase << "\""
        << ", \"startup_seconds\": " << o.startupSeconds
        << ", \"replay_seconds\": " << o.replaySeconds
        << ",\n     \"characterize_seconds\": " << o.characterizeSeconds
        << ", \"analyze_seconds\": " << o.analyzeSeconds
        << ", \"profile_hits\": " << o.profileHits
        << ", \"profile_misses\": " << o.profileMisses
        << ",\n     \"completed\": " << o.completed
        << ", \"shed\": " << o.shed
        << ", \"shed_rate\": " << rate(o.shed, o.completed + o.shed)
        << ", \"p50_ns\": " << o.p50Ns << ", \"p99_ns\": " << o.p99Ns
        << ",\n     \"grid_hit_rate\": " << rate(o.gridHits, o.completed)
        << ", \"analysis_hit_rate\": "
        << rate(o.analysisHits, o.completed)
        << ", \"first_window_grid_hit_rate\": "
        << rate(o.firstWindowHits, o.firstWindowTotal)
        << ",\n     \"batches\": " << o.stats.batches
        << ", \"coalesced\": " << o.stats.coalesced
        << ", \"warm_grids\": " << o.stats.warmGrids
        << ", \"warm_analyses\": " << o.stats.warmAnalyses << "}"
        << (last ? "" : ",") << "\n";
}

/**
 * Invariant check: every labeled counter family (`base{k=v}` series)
 * must sum exactly to its unlabeled base counter — labeled series are
 * bumped at the same sites as their totals, so a mismatch means an
 * instrumentation site lost a dimension.  Families that hit the label
 * interner's overflow cap are skipped (the overflow series absorbs an
 * unknown share).
 */
void
checkLabelSums(const obs::MetricsSnapshot &snapshot)
{
    struct Family
    {
        std::uint64_t labeledSum = 0;
        bool overflowed = false;
    };
    std::vector<std::pair<std::string, Family>> families;
    for (const auto &[name, value] : snapshot.counters) {
        const std::size_t brace = name.find('{');
        if (brace == std::string::npos)
            continue;
        const std::string base = name.substr(0, brace);
        Family *family = nullptr;
        for (auto &[known, f] : families) {
            if (known == base) {
                family = &f;
                break;
            }
        }
        if (family == nullptr) {
            families.emplace_back(base, Family{});
            family = &families.back().second;
        }
        if (name.find("overflow=true") != std::string::npos)
            family->overflowed = true;
        else
            family->labeledSum += value;
    }

    std::size_t checked = 0;
    for (const auto &[base, family] : families) {
        if (family.overflowed)
            continue;
        for (const auto &[name, value] : snapshot.counters) {
            if (name != base)
                continue;
            if (family.labeledSum != value)
                fatal("fleet sim: labeled series of '", base,
                      "' sum to ", family.labeledSum,
                      " but the unlabeled total is ", value);
            ++checked;
            break;
        }
    }
    std::printf("label-sum check: %zu labeled families consistent\n",
                checked);
}

/**
 * Invariant check: with tracing on and no ring overwrites, every
 * journaled request id must appear as a flow id on at least one
 * daemon span — the journal and the trace share one id space.
 */
void
checkJournalTraceCorrelation(const obs::DecisionJournal &journal)
{
    const obs::TraceSnapshot snapshot =
        obs::TraceCollector::global().snapshot();
    if (snapshot.droppedEvents != 0) {
        std::printf("journal/trace check: skipped (%llu trace events "
                    "dropped to ring wrap)\n",
                    static_cast<unsigned long long>(
                        snapshot.droppedEvents));
        return;
    }
    std::vector<std::uint64_t> flows;
    flows.reserve(snapshot.events.size());
    for (const obs::TraceEventView &event : snapshot.events) {
        if (event.flowId != 0)
            flows.push_back(event.flowId);
    }
    std::sort(flows.begin(), flows.end());
    std::size_t checked = 0;
    for (const obs::RequestRecord &record : journal.requestRecords()) {
        if (!std::binary_search(flows.begin(), flows.end(),
                                record.requestId))
            fatal("fleet sim: journal request_id ", record.requestId,
                  " has no matching trace flow");
        ++checked;
    }
    std::printf("journal/trace check: %zu request ids matched to "
                "trace flows\n",
                checked);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("fleet_sim");
    args.addFlag("tiny");
    args.addFlag("overload");
    args.addOption("trace-out");
    args.addOption("journal-out");
    args.addOption("telemetry-out");
    args.addOption("devices");
    args.addOption("jobs");
    args.addOption("window");
    args.addOption("queue");
    args.addOption("variants");
    args.addOption("seed");
    args.addOption("store");
    args.addOption("out");
    args.addOption("profile-cache-capacity");
    bool tiny = false;
    std::size_t devices = 0;
    std::size_t jobs = 0;
    std::size_t window = 0;
    std::size_t queue = 0;
    std::size_t variants = 0;
    std::size_t profile_capacity = 0;
    std::uint64_t seed = 0;
    std::string store_dir;
    std::string out_path;
    try {
        args.parse(argc, argv);
        tiny = args.flag("tiny");
        devices = static_cast<std::size_t>(args.getInt(
            "devices", tiny ? 400 : 10'000, 1, 10'000'000));
        jobs = static_cast<std::size_t>(
            args.getInt("jobs", tiny ? 2 : 4, 1, 1024));
        window = static_cast<std::size_t>(
            args.getInt("window", tiny ? 128 : 1024, 1, 1'000'000));
        queue = static_cast<std::size_t>(
            args.getInt("queue", tiny ? 64 : 256, 1, 1'000'000));
        variants = static_cast<std::size_t>(
            args.getInt("variants", tiny ? 2 : 8, 1, 64));
        // Characterization memoization is on by default (the fleet's
        // phase-keyed workloads are what it exists for); 0 disables it
        // and falls back to warm-state characterization.
        profile_capacity = static_cast<std::size_t>(args.getInt(
            "profile-cache-capacity", tiny ? 256 : 1024, 0, 1 << 20));
        seed = static_cast<std::uint64_t>(
            args.getInt("seed", 42, 0, 1'000'000'000));
        store_dir = args.get("store", "fleet_store");
        out_path = args.get("out", "BENCH_fleet.json");
    } catch (const FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 2;
    }

    // The serving pipeline, not the simulator, is under test: keep the
    // per-sample simulation small so grids build in milliseconds.
    SystemConfig config = SystemConfig::paperDefault();
    config.sampler.simInstructionsPerSample = 20'000;
    config.sampler.warmupInstructions = 100'000;
    config.sampler.profileWarmupInstructions = 40'000;

    std::vector<DeviceClass> classes = buildClasses(variants, tiny);
    Rng rng(seed);
    const double zipf_exponent = 1.1;
    const double burst_p = 0.3;  // mean burst ~3.3 devices
    const std::vector<std::size_t> schedule = buildSchedule(
        devices, classes.size(), zipf_exponent, burst_p, rng);

    daemon::DaemonOptions options;
    options.service.jobs = jobs;
    // Size the caches to the fleet with headroom for shard imbalance
    // (per-shard LRU capacity is total/shards), so the warm phase
    // measures the store, not eviction noise.
    options.service.cacheCapacity =
        std::max<std::size_t>(32, 8 * variants);
    options.service.analysisCapacity =
        std::max<std::size_t>(64, 8 * classes.size());
    options.service.profileCacheCapacity = profile_capacity;
    options.queueCapacity = queue;
    options.storeDir = store_dir;

    std::printf("fleet_sim: %zu devices, %zu classes (%zu grids), "
                "jobs %zu, window %zu, queue %zu, profile cache %zu, "
                "store '%s'\n",
                devices, classes.size(), variants, jobs, window, queue,
                profile_capacity, store_dir.c_str());

    if (args.has("trace-out"))
        obs::TraceCollector::global().enable();
    obs::DecisionJournal journal;
    obs::DecisionJournal *journal_ptr =
        args.has("journal-out") ? &journal : nullptr;

    // The telemetry pipeline samples throughout the run; explicit
    // tickNow() calls at phase boundaries make the phase deltas (and
    // the overload SLO check below) deterministic regardless of the
    // sampling period.
    obs::TelemetryConfig telemetry_config;
    telemetry_config.period = std::chrono::milliseconds(100);
    obs::TelemetryPipeline pipeline(telemetry_config);
    pipeline.start();

    // Cold phase: empty store, everything characterizes once.
    std::filesystem::remove_all(store_dir);
    const PhaseOutcome cold = replay(config, options, classes, schedule,
                                     window, "cold", journal_ptr);
    printPhase("cold", cold, devices);
    pipeline.tickNow();

    // Warm phase: a restarted daemon over the populated store must
    // answer from the first request on and reproduce every digest.
    const PhaseOutcome warm = replay(config, options, classes, schedule,
                                     window, "warm", journal_ptr);
    printPhase("warm", warm, devices);
    pipeline.tickNow();

    if (args.flag("overload")) {
        // Overload phase: a daemon with a near-zero admission queue
        // and no client-side flow control (window = fleet size) sheds
        // most of the schedule; the next telemetry tick must observe
        // the burst and trip the shed_rate SLO rule.  Runs after the
        // BENCH JSON phases and does not contribute to them.
        const std::uint64_t breaches_before =
            pipeline.watchdog().breachCount();
        daemon::DaemonOptions overload_options = options;
        overload_options.queueCapacity = 2;
        const PhaseOutcome overload =
            replay(config, overload_options, classes, schedule,
                   schedule.size() + 1, "overload", journal_ptr);
        printPhase("over", overload, devices);
        pipeline.tickNow();
        if (overload.shed == 0)
            fatal("fleet sim: overload phase shed nothing — queue "
                  "capacity 2 should overflow");
        bool tripped = false;
        for (const obs::SloBreach &breach :
             pipeline.watchdog().breaches()) {
            if (breach.rule == "shed_rate")
                tripped = true;
        }
        if (!tripped ||
            pipeline.watchdog().breachCount() <= breaches_before)
            fatal("fleet sim: induced overload did not trip the "
                  "shed_rate SLO rule");
        std::printf("overload: shed_rate SLO breach counted (%llu "
                    "total breaches)\n",
                    static_cast<unsigned long long>(
                        pipeline.watchdog().breachCount()));
    }

    if (warm.stats.warmGrids == 0)
        fatal("fleet sim: warm restart loaded no grid snapshots");
    if (warm.completed > 0 &&
        rate(warm.firstWindowHits, warm.firstWindowTotal) <=
            rate(cold.firstWindowHits, cold.firstWindowTotal))
        fatal("fleet sim: warm restart did not improve the "
              "first-window hit rate");

    std::ofstream out(out_path);
    if (!out)
        fatal("fleet sim: cannot open ", out_path, " for writing");
    out.precision(17);
    out << "{\n"
        << "  \"schema\": \"mcdvfs-bench-fleet-v1\",\n"
        << "  \"benchmark\": \"fleet_sim\",\n"
        << "  \"devices\": " << devices
        << ", \"classes\": " << classes.size()
        << ", \"distinct_grids\": " << variants
        << ", \"jobs\": " << jobs
        << ", \"profile_cache_capacity\": " << profile_capacity << ",\n"
        << "  \"window\": " << window
        << ", \"queue_capacity\": " << queue
        << ", \"zipf_exponent\": " << zipf_exponent
        << ", \"burst_p\": " << burst_p << ", \"seed\": " << seed
        << ",\n"
        << "  \"phases\": [\n";
    writePhaseJson(out, "cold", cold, false);
    writePhaseJson(out, "warm", warm, true);
    out << "  ]\n}\n";
    if (!out)
        fatal("fleet sim: failed writing ", out_path);

    const std::string metrics_path = bench::metricsSidecarPath(out_path);
    obs::writeMetricsJson(metrics_path);
    std::printf("wrote %s and %s\n", out_path.c_str(),
                metrics_path.c_str());

    // Final telemetry tick (stop flushes one), then verify the
    // dimensional-metrics invariant over the quiesced registry.
    pipeline.stop();
    checkLabelSums(obs::MetricsRegistry::global().snapshot());

    if (journal_ptr != nullptr) {
        journal.write(args.get("journal-out"));
        std::printf("wrote %zu request records to %s\n",
                    journal.requestRecords().size(),
                    args.get("journal-out").c_str());
    }
    if (args.has("trace-out")) {
        obs::writeChromeTraceJson(args.get("trace-out"));
        std::printf("wrote trace to %s\n",
                    args.get("trace-out").c_str());
    }
    if (journal_ptr != nullptr && args.has("trace-out"))
        checkJournalTraceCorrelation(journal);
    if (args.has("telemetry-out")) {
        pipeline.writeJson(args.get("telemetry-out"));
        std::printf("wrote %llu telemetry ticks to %s\n",
                    static_cast<unsigned long long>(pipeline.ticks()),
                    args.get("telemetry-out").c_str());
    }
    return 0;
}
