/**
 * @file
 * Figure 3: per-sample optimal settings for gobmk across inefficiency
 * budgets {1.0, 1.3, 1.6, unbounded}, together with the CPI and MPKI
 * traces they track.
 *
 * Reproduced observations (§V): at low budgets the optimal settings
 * follow the CPI/MPKI phase structure (high memory frequency in
 * memory-intensive phases, high CPU frequency in CPU-intensive ones);
 * high budgets let the system sit at the maximum frequencies.
 */

#include <iostream>

#include "common/table.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"

using namespace mcdvfs;

int
main()
{
    ReproSuite suite;
    const MeasuredGrid &grid = suite.grid("gobmk");
    GridAnalyses a(grid);

    const double budgets[] = {1.0, 1.3, 1.6, kUnboundedBudget};
    const char *labels[] = {"I=1.0", "I=1.3", "I=1.6", "I=inf"};

    std::vector<std::vector<OptimalChoice>> trajectories;
    for (const double budget : budgets)
        trajectories.push_back(a.finder.optimalTrajectory(budget));

    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());

    Table table({"sample", "CPI", "L1 MPKI", labels[0], labels[1],
                 labels[2], labels[3]});
    table.setTitle(
        "Fig 3: gobmk optimal settings (cpu/mem MHz) per budget");
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        const double cpi =
            grid.cell(s, max_idx).seconds * grid.space().maxSetting().cpu /
            static_cast<double>(grid.instructionsPerSample());
        std::vector<std::string> row = {
            Table::num(static_cast<long long>(s)), Table::num(cpi, 2),
            Table::num(grid.profile(s).l1Mpki, 1)};
        for (const auto &trajectory : trajectories)
            row.push_back(trajectory[s].setting.label());
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    // Transition counts per budget: tracking the optimum at low
    // budgets changes settings nearly every sample.
    std::cout << "\ntransitions tracking the optimum:";
    for (std::size_t b = 0; b < 4; ++b) {
        std::size_t transitions = 0;
        for (std::size_t s = 1; s < grid.sampleCount(); ++s) {
            if (trajectories[b][s].settingIndex !=
                trajectories[b][s - 1].settingIndex)
                ++transitions;
        }
        std::cout << "  " << labels[b] << ": " << transitions;
    }
    std::cout << "\n";
    return 0;
}
