/**
 * @file
 * Micro-benchmarks of the concurrent characterization service: serial
 * vs parallel grid construction throughput (the dominant cost of every
 * figure), and the latency of a cache-hit tuning request vs a cold
 * one.
 *
 * The parallel build fans the per-setting model evaluation over a
 * thread pool (bit-identical results; see sim/grid_runner.hh), so the
 * interesting numbers are the scaling of cells/second with workers and
 * how much of a request the grid cache removes.
 */

#include <benchmark/benchmark.h>

#include "exec/thread_pool.hh"
#include "svc/characterization_service.hh"
#include "trace/workloads.hh"

using namespace mcdvfs;

namespace
{

/** Shared characterization (profiles are worker-count independent). */
struct Fixtures
{
    WorkloadProfile workload;
    std::vector<SampleProfile> profiles;

    static const Fixtures &
    get()
    {
        static const Fixtures fixtures;
        return fixtures;
    }

  private:
    Fixtures() : workload(workloadByName("gobmk"))
    {
        SampleSimulator simulator(SystemConfig::paperDefault().sampler);
        profiles = simulator.characterize(workload);
    }
};

/** Grid build over the fine 496-setting space with @c workers threads. */
void
gridBuild(benchmark::State &state, std::size_t workers)
{
    const Fixtures &fixtures = Fixtures::get();
    const SettingsSpace space = SettingsSpace::fine();
    GridRunner runner;
    exec::ThreadPool pool(workers);
    if (workers > 0)
        runner.setThreadPool(&pool);
    for (auto _ : state) {
        benchmark::DoNotOptimize(runner.runWithProfiles(
            fixtures.workload.name(), fixtures.profiles, space,
            fixtures.workload.modeledInstructionsPerSample()));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(fixtures.profiles.size() *
                                  space.size()));
    state.counters["cells"] =
        static_cast<double>(fixtures.profiles.size() * space.size());
}

void
BM_GridBuildSerial(benchmark::State &state)
{
    gridBuild(state, 0);
}
BENCHMARK(BM_GridBuildSerial)->Unit(benchmark::kMillisecond);

void
BM_GridBuildParallel(benchmark::State &state)
{
    gridBuild(state, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_GridBuildParallel)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_ServiceSubmitCacheHit(benchmark::State &state)
{
    svc::ServiceOptions options;
    options.jobs = 2;
    svc::CharacterizationService service(SystemConfig::paperDefault(),
                                         options);
    const svc::TuningRequest request{workloadByName("gobmk"),
                                     SettingsSpace::coarse(), 1.3, 0.03};
    service.submit(request);  // warm the cache
    for (auto _ : state)
        benchmark::DoNotOptimize(service.submit(request));
}
BENCHMARK(BM_ServiceSubmitCacheHit)->Unit(benchmark::kMicrosecond);

void
BM_ServiceGridCacheHit(benchmark::State &state)
{
    // Pure cache-hit latency: fingerprint + sharded LRU lookup,
    // without the analysis chain of a full submit().
    svc::CharacterizationService service;
    const WorkloadProfile workload = workloadByName("gobmk");
    const SettingsSpace space = SettingsSpace::coarse();
    service.grid(workload, space);  // warm the cache
    for (auto _ : state)
        benchmark::DoNotOptimize(service.grid(workload, space));
}
BENCHMARK(BM_ServiceGridCacheHit)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
