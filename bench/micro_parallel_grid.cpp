/**
 * @file
 * Micro-benchmarks of the concurrent characterization service: serial
 * vs parallel grid construction throughput (the dominant cost of every
 * figure), and the latency of a cache-hit tuning request vs a cold
 * one.
 *
 * The parallel build fans the per-setting model evaluation over a
 * thread pool (bit-identical results; see sim/grid_runner.hh), so the
 * interesting numbers are the scaling of cells/second with workers and
 * how much of a request the grid cache removes.
 */

#include <benchmark/benchmark.h>

#include "bench_json.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "svc/characterization_service.hh"
#include "trace/workloads.hh"

using namespace mcdvfs;

namespace
{

/** Shared characterization (profiles are worker-count independent). */
struct Fixtures
{
    WorkloadProfile workload;
    std::vector<SampleProfile> profiles;

    static const Fixtures &
    get()
    {
        static const Fixtures fixtures;
        return fixtures;
    }

  private:
    Fixtures() : workload(workloadByName("gobmk"))
    {
        SampleSimulator simulator(SystemConfig::paperDefault().sampler);
        profiles = simulator.characterize(workload);
    }
};

/** Grid build over the fine 496-setting space with @c workers threads. */
void
gridBuild(benchmark::State &state, std::size_t workers)
{
    const Fixtures &fixtures = Fixtures::get();
    const SettingsSpace space = SettingsSpace::fine();
    GridRunner runner;
    exec::ThreadPool pool(workers);
    if (workers > 0)
        runner.setThreadPool(&pool);
    for (auto _ : state) {
        benchmark::DoNotOptimize(runner.runWithProfiles(
            fixtures.workload.name(), fixtures.profiles, space,
            fixtures.workload.modeledInstructionsPerSample()));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(fixtures.profiles.size() *
                                  space.size()));
    state.counters["cells"] =
        static_cast<double>(fixtures.profiles.size() * space.size());
    // Extra counters picked up by the BENCH_grid.json emission below.
    state.counters["settings"] = static_cast<double>(space.size());
    state.counters["samples"] =
        static_cast<double>(fixtures.profiles.size());
    state.counters["jobs"] = static_cast<double>(workers);
}

void
BM_GridBuildSerial(benchmark::State &state)
{
    gridBuild(state, 0);
}
BENCHMARK(BM_GridBuildSerial)->Unit(benchmark::kMillisecond);

void
BM_GridBuildParallel(benchmark::State &state)
{
    gridBuild(state, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_GridBuildParallel)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_ServiceSubmitCacheHit(benchmark::State &state)
{
    svc::ServiceOptions options;
    options.jobs = 2;
    svc::CharacterizationService service(SystemConfig::paperDefault(),
                                         options);
    const svc::TuningRequest request{workloadByName("gobmk"),
                                     SettingsSpace::coarse(), 1.3, 0.03};
    service.submit(request);  // warm the cache
    for (auto _ : state)
        benchmark::DoNotOptimize(service.submit(request));
}
BENCHMARK(BM_ServiceSubmitCacheHit)->Unit(benchmark::kMicrosecond);

void
BM_ServiceGridCacheHit(benchmark::State &state)
{
    // Pure cache-hit latency: fingerprint + sharded LRU lookup,
    // without the analysis chain of a full submit().
    svc::CharacterizationService service;
    const WorkloadProfile workload = workloadByName("gobmk");
    const SettingsSpace space = SettingsSpace::coarse();
    service.grid(workload, space);  // warm the cache
    for (auto _ : state)
        benchmark::DoNotOptimize(service.grid(workload, space));
}
BENCHMARK(BM_ServiceGridCacheHit)->Unit(benchmark::kMicrosecond);

/**
 * Console reporter that also captures every run so main() can emit the
 * machine-readable BENCH_grid.json after the benchmarks finish.
 */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &report) override
    {
        for (const Run &run : report)
            runs_.push_back(run);
        ConsoleReporter::ReportRuns(report);
    }

    const std::vector<Run> &runs() const { return runs_; }

  private:
    std::vector<Run> runs_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    CapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    // Emit the grid-build runs (the ones carrying a "cells" counter)
    // in the shared BENCH_grid.json schema.
    std::vector<mcdvfs::bench::GridBenchRecord> records;
    for (const auto &run : reporter.runs()) {
        const auto cells = run.counters.find("cells");
        if (cells == run.counters.end() || run.iterations == 0)
            continue;
        const double per_iter_seconds =
            run.real_accumulated_time /
            static_cast<double>(run.iterations);
        auto counter = [&](const char *name) {
            const auto it = run.counters.find(name);
            return it == run.counters.end() ? 0.0
                                            : static_cast<double>(
                                                  it->second.value);
        };
        mcdvfs::bench::GridBenchRecord record;
        record.name = run.benchmark_name();
        record.kernel = "table";
        record.settings = static_cast<std::size_t>(counter("settings"));
        record.samples = static_cast<std::size_t>(counter("samples"));
        record.jobs = static_cast<std::size_t>(counter("jobs"));
        record.buildSeconds = per_iter_seconds;
        record.cellsPerSec = cells->second.value / per_iter_seconds;
        records.push_back(record);
    }
    if (!records.empty()) {
        const char *out = std::getenv("MCDVFS_BENCH_OUT");
        const std::string out_path =
            out != nullptr ? out : "BENCH_grid.json";
        mcdvfs::bench::writeBenchGridJson(out_path,
                                          "micro_parallel_grid",
                                          records);
        // Metrics sidecar alongside the throughput numbers.
        mcdvfs::obs::writeMetricsJson(
            mcdvfs::bench::metricsSidecarPath(out_path));
    }

    benchmark::Shutdown();
    return 0;
}
