/**
 * @file
 * Figure 9: distribution of stable-region lengths.
 *
 *  (a) gobmk across budgets {1.0, 1.2, 1.3, 1.6} and thresholds
 *      {1%, 3%, 5%} — rapidly changing phases keep regions short;
 *  (b) bzip2 across the same sweep — at budget 1.6 a single region
 *      covers the entire benchmark at 3%/5% thresholds;
 *  (c) all benchmarks at budget 1.3.
 *
 * Each row is a box-plot five-number summary (min / Q1 / median / Q3 /
 * max) of region lengths in samples.  The twelve-point sweeps run
 * through AnalysisSweep; --jobs N fans the per-sample cluster kernel
 * over a thread pool (output is bit-identical to the serial run).
 */

#include <iostream>
#include <memory>

#include "cluster_panels.hh"
#include "common/args.hh"
#include "common/table.hh"

using namespace mcdvfs;

namespace
{

Distribution
regionLengths(const SweepResult &result)
{
    Distribution lengths;
    for (const StableRegion &region : result.regions)
        lengths.add(static_cast<double>(region.length()));
    return lengths;
}

void
addBoxRow(Table &table, const std::string &label,
          const Distribution &lengths)
{
    const BoxSummary box = lengths.summary();
    table.addRow({label, Table::num(static_cast<long long>(box.count)),
                  Table::num(box.min, 0), Table::num(box.q1, 1),
                  Table::num(box.median, 1), Table::num(box.q3, 1),
                  Table::num(box.max, 0), Table::num(box.mean, 2)});
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("fig09_region_lengths");
    args.addOption("jobs");
    std::size_t jobs = 0;
    try {
        args.parse(argc, argv);
        jobs = static_cast<std::size_t>(args.getInt("jobs", 0, 0, 1024));
    } catch (const FatalError &err) {
        std::cerr << "error: " << err.what() << '\n';
        return 2;
    }

    ReproSuite suite;
    std::unique_ptr<exec::ThreadPool> owned_pool;
    if (jobs > 0)
        owned_pool = std::make_unique<exec::ThreadPool>(jobs);
    exec::ThreadPool *pool = owned_pool.get();

    // Panels (a) and (b): per-benchmark budget sweep.
    for (const std::string workload : {"gobmk", "bzip2"}) {
        const MeasuredGrid &grid = suite.grid(workload);
        GridAnalyses a(grid);
        AnalysisSweep sweep(a.clusters);
        Table table({"budget/thr", "regions", "min", "q1", "median",
                     "q3", "max", "mean"});
        table.setTitle("Fig 9: stable-region lengths, " + workload);
        for (const SweepResult &result :
             sweep.run(sweepGrid({1.0, 1.2, 1.3, 1.6},
                                 {0.01, 0.03, 0.05}),
                       pool)) {
            addBoxRow(table, sweepLabel(result.point),
                      regionLengths(result));
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    // Panel (c): all benchmarks at budget 1.3.
    Table table({"benchmark/thr", "regions", "min", "q1", "median",
                 "q3", "max", "mean"});
    table.setTitle("Fig 9(c): stable-region lengths at I=1.3");
    for (const std::string &name : ReproSuite::benchmarkNames()) {
        const MeasuredGrid &grid = suite.grid(name);
        GridAnalyses a(grid);
        AnalysisSweep sweep(a.clusters);
        for (const SweepResult &result :
             sweep.run(sweepGrid({1.3}, {0.01, 0.03, 0.05}), pool)) {
            char label[48];
            std::snprintf(label, sizeof(label), "%s/%.0f%%",
                          name.c_str(), result.point.threshold * 100.0);
            addBoxRow(table, label, regionLengths(result));
        }
    }
    table.print(std::cout);
    return 0;
}
