/**
 * @file
 * Figure 9: distribution of stable-region lengths.
 *
 *  (a) gobmk across budgets {1.0, 1.2, 1.3, 1.6} and thresholds
 *      {1%, 3%, 5%} — rapidly changing phases keep regions short;
 *  (b) bzip2 across the same sweep — at budget 1.6 a single region
 *      covers the entire benchmark at 3%/5% thresholds;
 *  (c) all benchmarks at budget 1.3.
 *
 * Each row is a box-plot five-number summary (min / Q1 / median / Q3 /
 * max) of region lengths in samples.
 */

#include <iostream>

#include "common/table.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"

using namespace mcdvfs;

namespace
{

Distribution
regionLengths(GridAnalyses &a, double budget, double threshold)
{
    Distribution lengths;
    for (const StableRegion &region : a.regions.find(budget, threshold))
        lengths.add(static_cast<double>(region.length()));
    return lengths;
}

void
addBoxRow(Table &table, const std::string &label,
          const Distribution &lengths)
{
    const BoxSummary box = lengths.summary();
    table.addRow({label, Table::num(static_cast<long long>(box.count)),
                  Table::num(box.min, 0), Table::num(box.q1, 1),
                  Table::num(box.median, 1), Table::num(box.q3, 1),
                  Table::num(box.max, 0), Table::num(box.mean, 2)});
}

} // namespace

int
main()
{
    ReproSuite suite;

    // Panels (a) and (b): per-benchmark budget sweep.
    for (const std::string workload : {"gobmk", "bzip2"}) {
        const MeasuredGrid &grid = suite.grid(workload);
        GridAnalyses a(grid);
        Table table({"budget/thr", "regions", "min", "q1", "median",
                     "q3", "max", "mean"});
        table.setTitle("Fig 9: stable-region lengths, " + workload);
        for (const double budget : {1.0, 1.2, 1.3, 1.6}) {
            for (const double threshold : {0.01, 0.03, 0.05}) {
                char label[32];
                std::snprintf(label, sizeof(label), "%.1f/%.0f%%",
                              budget, threshold * 100.0);
                addBoxRow(table, label,
                          regionLengths(a, budget, threshold));
            }
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    // Panel (c): all benchmarks at budget 1.3.
    Table table({"benchmark/thr", "regions", "min", "q1", "median",
                 "q3", "max", "mean"});
    table.setTitle("Fig 9(c): stable-region lengths at I=1.3");
    for (const std::string &name : ReproSuite::benchmarkNames()) {
        const MeasuredGrid &grid = suite.grid(name);
        GridAnalyses a(grid);
        for (const double threshold : {0.01, 0.03, 0.05}) {
            char label[48];
            std::snprintf(label, sizeof(label), "%s/%.0f%%",
                          name.c_str(), threshold * 100.0);
            addBoxRow(table, label, regionLengths(a, 1.3, threshold));
        }
    }
    table.print(std::cout);
    return 0;
}
