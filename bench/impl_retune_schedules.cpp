/**
 * @file
 * §VII implications: comparing re-tune schedules.
 *
 * For every benchmark at budget 1.3 / threshold 3%, four schedules are
 * simulated end to end with tuning overhead charged per event:
 * re-tune every sample, the Isci-style run-length predictor, an
 * offline stable-region profile, and the future-knowing oracle.
 *
 * Reproduced claims: learning and offline profiling cut tuning events
 * drastically versus every-sample re-tuning at nearly the same
 * performance and energy, and all schedules keep the run within the
 * inefficiency budget.
 */

#include <iostream>

#include "common/table.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"
#include "runtime/tuning_loop.hh"

using namespace mcdvfs;

int
main()
{
    const double budget = 1.3;
    const double threshold = 0.03;

    ReproSuite suite;

    Table table({"benchmark", "policy", "events", "transitions",
                 "time+oh (ms)", "energy (mJ)", "achieved I",
                 "violations %"});
    table.setTitle("retune schedules at I=1.3, threshold=3%");

    for (const std::string &name : ReproSuite::benchmarkNames()) {
        const MeasuredGrid &grid = suite.grid(name);
        GridAnalyses a(grid);
        TuningLoop loop(a.clusters, a.regions, a.costModel);

        const OfflineProfile profile = OfflineProfile::fromRegions(
            name, a.regions.find(budget, threshold), grid.space());

        const TuningLoopResult results[] = {
            loop.runEverySample(budget, threshold),
            loop.runPredictive(budget, threshold),
            loop.runReactive(budget, threshold),
            loop.runProfileDriven(budget, threshold, profile),
            loop.runOracle(budget, threshold),
        };
        for (const TuningLoopResult &r : results) {
            table.addRow(
                {name, r.policy,
                 Table::num(static_cast<long long>(r.tuningEvents)),
                 Table::num(static_cast<long long>(r.transitions)),
                 Table::num(r.timeWithOverhead * 1e3, 2),
                 Table::num(r.energyWithOverhead * 1e3, 2),
                 Table::num(r.achievedInefficiency, 3),
                 Table::num(r.budgetViolationFrac * 100.0, 1)});
        }
    }
    table.print(std::cout);
    return 0;
}
