/**
 * @file
 * §VII implications: comparing re-tune schedules.
 *
 * For every benchmark at budget 1.3 / threshold 3%, four schedules are
 * simulated end to end with tuning overhead charged per event:
 * re-tune every sample, the Isci-style run-length predictor, an
 * offline stable-region profile, and the future-knowing oracle.
 *
 * Reproduced claims: learning and offline profiling cut tuning events
 * drastically versus every-sample re-tuning at nearly the same
 * performance and energy, and all schedules keep the run within the
 * inefficiency budget.
 *
 * --journal FILE additionally dumps the per-sample tuning decision
 * journal of every (benchmark, policy) run as JSONL (schema
 * mcdvfs-trace-v1; see docs/OBSERVABILITY.md).
 *
 * --jobs N spreads grid characterization and the per-sample cluster
 * kernel over a thread pool (results are bit-identical to serial).
 */

#include <algorithm>
#include <iostream>
#include <memory>

#include "common/args.hh"
#include "common/table.hh"
#include "exec/thread_pool.hh"
#include "obs/journal.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"
#include "runtime/tuning_loop.hh"

using namespace mcdvfs;

int
main(int argc, char **argv)
{
    const double budget = 1.3;
    const double threshold = 0.03;

    ArgParser args("impl_retune_schedules");
    args.addOption("journal");
    args.addOption("jobs");
    std::size_t jobs = 0;
    try {
        args.parse(argc, argv);
        jobs = static_cast<std::size_t>(args.getInt("jobs", 0, 0, 1024));
    } catch (const FatalError &err) {
        std::cerr << "error: " << err.what() << '\n';
        return 2;
    }

    obs::DecisionJournal journal;
    const bool journaling = args.has("journal");

    ReproSuite suite(SystemConfig::paperDefault(),
                     std::max<std::size_t>(1, jobs));
    std::unique_ptr<exec::ThreadPool> pool;
    if (jobs > 0)
        pool = std::make_unique<exec::ThreadPool>(jobs);

    Table table({"benchmark", "policy", "events", "transitions",
                 "time+oh (ms)", "energy (mJ)", "achieved I",
                 "violations %"});
    table.setTitle("retune schedules at I=1.3, threshold=3%");

    for (const std::string &name : ReproSuite::benchmarkNames()) {
        const MeasuredGrid &grid = suite.grid(name);
        GridAnalyses a(grid);
        TuningLoop loop(a.clusters, a.regions, a.costModel);
        if (journaling)
            loop.setJournal(&journal);

        const OfflineProfile profile = OfflineProfile::fromRegions(
            name, a.regions.find(budget, threshold, pool.get()),
            grid.space());

        const TuningLoopResult results[] = {
            loop.runEverySample(budget, threshold),
            loop.runPredictive(budget, threshold),
            loop.runReactive(budget, threshold),
            loop.runProfileDriven(budget, threshold, profile),
            loop.runOracle(budget, threshold),
        };
        for (const TuningLoopResult &r : results) {
            table.addRow(
                {name, r.policy,
                 Table::num(static_cast<long long>(r.tuningEvents)),
                 Table::num(static_cast<long long>(r.transitions)),
                 Table::num(r.timeWithOverhead * 1e3, 2),
                 Table::num(r.energyWithOverhead * 1e3, 2),
                 Table::num(r.achievedInefficiency, 3),
                 Table::num(r.budgetViolationFrac * 100.0, 1)});
        }
    }
    table.print(std::cout);
    if (journaling) {
        journal.write(args.get("journal"));
        std::cerr << "wrote " << journal.records().size()
                  << " journal records to " << args.get("journal")
                  << "\n";
    }
    return 0;
}
