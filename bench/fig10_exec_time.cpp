/**
 * @file
 * Figure 10: variation of performance with the inefficiency budget.
 *
 * Execution time of optimal tracking at budgets {1.0, 1.1, 1.2, 1.3,
 * 1.6}, normalized to budget 1.0, for every benchmark.
 *
 * Reproduced observations (§VI-C): performance improves monotonically
 * as the budget grows (smooth energy-performance trade-off); the size
 * of the improvement varies across benchmarks; and the tuner always
 * keeps the run within the specified budget (achieved inefficiency
 * column).
 */

#include <iostream>

#include "common/table.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"

using namespace mcdvfs;

int
main()
{
    ReproSuite suite;

    const double budgets[] = {1.0, 1.1, 1.2, 1.3, 1.6};

    Table table({"benchmark", "I=1.0", "I=1.1", "I=1.2", "I=1.3",
                 "I=1.6", "achieved I @1.3"});
    table.setTitle("Fig 10: normalized execution time vs. budget");
    for (const std::string &name : ReproSuite::benchmarkNames()) {
        const MeasuredGrid &grid = suite.grid(name);
        GridAnalyses a(grid);
        std::vector<std::string> row = {name};
        for (const double budget : budgets) {
            row.push_back(
                Table::num(a.tradeoff.normalizedExecutionTime(budget), 3));
        }
        row.push_back(Table::num(
            a.tradeoff.optimalTracking(1.3).achievedInefficiency, 3));
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    // Budget-conformance check the paper reports alongside the figure:
    // no benchmark may exceed any budget it was given.
    bool all_within = true;
    for (const std::string &name : ReproSuite::benchmarkNames()) {
        const MeasuredGrid &grid = suite.grid(name);
        GridAnalyses a(grid);
        for (const double budget : budgets) {
            const double achieved =
                a.tradeoff.optimalTracking(budget).achievedInefficiency;
            if (achieved > budget + 1e-9)
                all_within = false;
        }
    }
    std::cout << "\nall runs within their inefficiency budgets: "
              << (all_within ? "yes" : "NO") << "\n";
    return 0;
}
