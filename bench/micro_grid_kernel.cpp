/**
 * @file
 * Grid-kernel micro-benchmark: table-driven kernel vs cell-at-a-time
 * reference (docs/PERF.md).
 *
 * Times a single-thread grid build of the same characterization with
 * both evaluation paths — the pre-optimization reference
 * (sim/reference_kernel.hh) and GridRunner's table-driven kernel — on
 * the coarse 70-setting and fine 496-setting spaces, verifies the two
 * grids are bit-identical, and reports the speedup.  Optionally also
 * times the kernel fanned over a thread pool (--jobs N).
 *
 * Results go to stdout and, machine-readable, to BENCH_grid.json
 * (--out overrides the path; see bench/bench_json.hh for the schema).
 *
 * --tiny shrinks the workload and skips the fine space so the binary
 * doubles as the tier-1 "perf_smoke" ctest: a fast end-to-end check
 * that both paths run and still agree bit for bit.
 */

#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_json.hh"
#include "common/args.hh"
#include "common/logging.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "sim/reference_kernel.hh"
#include "trace/workloads.hh"

using namespace mcdvfs;

namespace
{

/** Small synthetic workload for --tiny runs. */
WorkloadProfile
tinyWorkload()
{
    PhaseSpec cpu;
    cpu.name = "cpu";
    cpu.hotFrac = 0.98;
    cpu.warmFrac = 0.015;
    PhaseSpec mem;
    mem.name = "mem";
    mem.hotFrac = 0.80;
    mem.warmFrac = 0.10;
    mem.coldSeqFrac = 0.3;
    return WorkloadProfile(
        "tiny", 6,
        [cpu, mem](std::size_t s) { return s % 2 ? mem : cpu; }, 5,
        /*jitter=*/0.0);
}

/** Best-of-@c reps wall time of @c fn, in seconds. */
double
bestOf(int reps, const std::function<void()> &fn)
{
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

/** Fatal unless @c a and @c b agree bit for bit on every cell. */
void
requireBitIdentical(const MeasuredGrid &a, const MeasuredGrid &b)
{
    if (a.sampleCount() != b.sampleCount() ||
        a.settingCount() != b.settingCount())
        fatal("grid kernel bench: grid shapes differ");
    for (std::size_t s = 0; s < a.sampleCount(); ++s) {
        for (std::size_t k = 0; k < a.settingCount(); ++k) {
            if (a.secondsAt(s, k) != b.secondsAt(s, k) ||
                a.cpuEnergyAt(s, k) != b.cpuEnergyAt(s, k) ||
                a.memEnergyAt(s, k) != b.memEnergyAt(s, k) ||
                a.busyFracAt(s, k) != b.busyFracAt(s, k) ||
                a.bwUtilAt(s, k) != b.bwUtilAt(s, k)) {
                fatal("grid kernel bench: kernel diverges from the "
                      "reference at sample ",
                      s, ", setting ", k);
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("micro_grid_kernel");
    args.addFlag("tiny");
    args.addOption("jobs");
    args.addOption("reps");
    args.addOption("out");
    bool tiny = false;
    std::size_t jobs = 0;
    int reps = 0;
    std::string out_path;
    try {
        args.parse(argc, argv);
        tiny = args.flag("tiny");
        // jobs 0 means "skip the parallel run"; negative would wrap
        // to a huge unsigned thread count, so both parses are
        // range-checked.
        jobs = static_cast<std::size_t>(args.getInt("jobs", 0, 0, 1024));
        reps = static_cast<int>(
            args.getInt("reps", tiny ? 2 : 5, 1, 1000));
        out_path = args.get("out", "BENCH_grid.json");
    } catch (const FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 2;
    }

    SystemConfig config = SystemConfig::paperDefault();
    if (tiny) {
        config.sampler.simInstructionsPerSample = 20'000;
        config.sampler.warmupInstructions = 100'000;
    }
    const WorkloadProfile workload =
        tiny ? tinyWorkload() : workloadByName("gobmk");

    SampleSimulator simulator(config.sampler);
    const std::vector<SampleProfile> profiles =
        simulator.characterize(workload);
    const Count ips = workload.modeledInstructionsPerSample();

    std::vector<SettingsSpace> spaces;
    spaces.push_back(SettingsSpace::coarse());
    if (!tiny)
        spaces.push_back(SettingsSpace::fine());

    std::vector<bench::GridBenchRecord> records;
    for (const SettingsSpace &space : spaces) {
        const double cells =
            static_cast<double>(profiles.size() * space.size());

        GridRunner runner(config);
        const MeasuredGrid kernel_grid = runner.runWithProfiles(
            workload.name(), profiles, space, ips);
        requireBitIdentical(
            kernel_grid, referenceGridWithProfiles(config, workload.name(),
                                                   profiles, space, ips));

        const double ref_seconds = bestOf(reps, [&] {
            referenceGridWithProfiles(config, workload.name(), profiles,
                                      space, ips);
        });
        const double kernel_seconds = bestOf(reps, [&] {
            runner.runWithProfiles(workload.name(), profiles, space, ips);
        });
        const double speedup = ref_seconds / kernel_seconds;

        const std::string label =
            std::to_string(space.size()) + "-setting";
        records.push_back({label + " reference serial", "reference",
                           space.size(), profiles.size(), 0, ref_seconds,
                           cells / ref_seconds, 0.0});
        records.push_back({label + " table serial", "table", space.size(),
                           profiles.size(), 0, kernel_seconds,
                           cells / kernel_seconds, speedup});
        std::printf("%-24s reference %9.3f ms   table %9.3f ms   "
                    "speedup %.2fx\n",
                    label.c_str(), ref_seconds * 1e3, kernel_seconds * 1e3,
                    speedup);

        if (jobs > 0) {
            exec::ThreadPool pool(jobs);
            GridRunner parallel(config);
            parallel.setThreadPool(&pool);
            requireBitIdentical(kernel_grid,
                                parallel.runWithProfiles(workload.name(),
                                                         profiles, space,
                                                         ips));
            const double par_seconds = bestOf(reps, [&] {
                parallel.runWithProfiles(workload.name(), profiles, space,
                                         ips);
            });
            records.push_back({label + " table jobs=" +
                                   std::to_string(jobs),
                               "table", space.size(), profiles.size(),
                               jobs, par_seconds, cells / par_seconds,
                               ref_seconds / par_seconds});
            std::printf("%-24s table --jobs %zu %9.3f ms   "
                        "speedup %.2fx vs reference\n",
                        label.c_str(), jobs, par_seconds * 1e3,
                        ref_seconds / par_seconds);
        }
    }

    bench::writeBenchGridJson(out_path, "micro_grid_kernel", records);
    // Metrics sidecar: the process metrics snapshot after the timed
    // runs, so build counters travel with the throughput numbers.
    const std::string metrics_path =
        bench::metricsSidecarPath(out_path);
    obs::writeMetricsJson(metrics_path);
    std::printf("wrote %s and %s\n", out_path.c_str(),
                metrics_path.c_str());
    return 0;
}
