#include "mem/cache_hierarchy.hh"

#include "common/units.hh"

namespace mcdvfs
{

HierarchyConfig
HierarchyConfig::paperDefault()
{
    HierarchyConfig config;
    config.l1.name = "l1";
    config.l1.sizeBytes = 64 * kKiB;
    config.l1.associativity = 4;
    config.l1.lineBytes = 64;
    config.l1.latencyCycles = 2;

    config.l2.name = "l2";
    config.l2.sizeBytes = 2 * kMiB;
    config.l2.associativity = 16;
    config.l2.lineBytes = 64;
    config.l2.latencyCycles = 12;
    return config;
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : l1_(config.l1), l2_(config.l2),
      nextLinePrefetch_(config.nextLinePrefetch)
{
}

HierarchyOutcome
CacheHierarchy::access(std::uint64_t addr, bool is_write)
{
    HierarchyOutcome outcome;

    const CacheAccessResult l1_result = l1_.access(addr, is_write);
    if (l1_result.writeback) {
        // Dirty L1 victim lands in L2; if L2 in turn evicts a dirty
        // line, that goes to DRAM.
        const CacheAccessResult wb =
            l2_.fill(l1_result.writebackAddr, /*dirty=*/true);
        if (wb.writeback)
            outcome.addDram(wb.writebackAddr, /*is_write=*/true);
    }
    if (l1_result.hit) {
        outcome.level = ServiceLevel::L1;
        return outcome;
    }

    // L1 miss: the line is fetched through L2.  The fill into L1 was
    // already performed by Cache::access (write-allocate); here we
    // consult L2 for the data source.
    const CacheAccessResult l2_result =
        l2_.access(addr, /*is_write=*/false);
    if (l2_result.writeback)
        outcome.addDram(l2_result.writebackAddr, /*is_write=*/true);
    if (l2_result.hit) {
        outcome.level = ServiceLevel::L2;
        return outcome;
    }

    // L2 miss: line comes from DRAM.
    outcome.level = ServiceLevel::Dram;
    outcome.addDram(addr, /*is_write=*/false);

    if (nextLinePrefetch_) {
        // Fetch the next line into L2 ahead of the demand stream.
        // Prefetch fills consume bandwidth and read energy but are
        // not demand-latency exposed.
        const std::uint64_t line = l2_.config().lineBytes;
        const std::uint64_t next = (addr / line + 1) * line;
        if (!l2_.probe(next)) {
            const CacheAccessResult pf = l2_.fill(next, /*dirty=*/false);
            if (pf.writeback)
                outcome.addDram(pf.writebackAddr, /*is_write=*/true);
            outcome.addDram(next, /*is_write=*/false,
                            /*is_prefetch=*/true);
            ++prefetches_;
        }
    }
    return outcome;
}

void
CacheHierarchy::reset()
{
    l1_.reset();
    l2_.reset();
    prefetches_ = 0;
}

void
CacheHierarchy::clearStats()
{
    l1_.clearStats();
    l2_.clearStats();
}

} // namespace mcdvfs
