#include "mem/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace mcdvfs
{

std::uint64_t
CacheConfig::numSets() const
{
    const std::uint64_t line_capacity = sizeBytes / lineBytes;
    return associativity ? line_capacity / associativity : 0;
}

void
CacheConfig::validate() const
{
    if (lineBytes == 0 || !std::has_single_bit(lineBytes))
        fatal("cache '", name, "': line size must be a power of two");
    if (associativity == 0)
        fatal("cache '", name, "': associativity must be positive");
    if (sizeBytes % (static_cast<std::uint64_t>(lineBytes) *
                     associativity) != 0) {
        fatal("cache '", name,
              "': size must be a multiple of line size * associativity");
    }
    const std::uint64_t sets = numSets();
    if (sets == 0 || !std::has_single_bit(sets))
        fatal("cache '", name, "': set count must be a power of two");
}

double
CacheStats::missRatio() const
{
    const Count total = accesses();
    return total ? static_cast<double>(misses()) /
                   static_cast<double>(total)
                 : 0.0;
}

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    config_.validate();
    numSets_ = config_.numSets();
    lineShift_ = std::countr_zero(
        static_cast<std::uint64_t>(config_.lineBytes));
    lines_.assign(numSets_ * config_.associativity, Line{});
}

void
Cache::reset()
{
    lines_.assign(numSets_ * config_.associativity, Line{});
    useClock_ = 0;
    stats_ = CacheStats{};
}

Cache::Line *
Cache::findLine(std::uint64_t set, std::uint64_t tag)
{
    Line *base = &lines_[set * config_.associativity];
    for (std::uint32_t way = 0; way < config_.associativity; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return &base[way];
    }
    return nullptr;
}

Cache::Line *
Cache::victimLine(std::uint64_t set)
{
    Line *base = &lines_[set * config_.associativity];
    Line *victim = &base[0];
    for (std::uint32_t way = 0; way < config_.associativity; ++way) {
        if (!base[way].valid)
            return &base[way];
        if (base[way].lastUse < victim->lastUse)
            victim = &base[way];
    }
    return victim;
}

std::uint64_t
Cache::lineAddrOf(std::uint64_t set, std::uint64_t tag) const
{
    return ((tag * numSets_) + set) << lineShift_;
}

CacheAccessResult
Cache::insert(std::uint64_t set, std::uint64_t tag, bool dirty)
{
    CacheAccessResult result;
    Line *victim = victimLine(set);
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.writebackAddr = lineAddrOf(set, victim->tag);
        ++stats_.writebacks;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tag;
    victim->lastUse = ++useClock_;
    return result;
}

CacheAccessResult
Cache::access(std::uint64_t addr, bool is_write)
{
    const std::uint64_t line_addr = addr >> lineShift_;
    const std::uint64_t set = line_addr & (numSets_ - 1);
    const std::uint64_t tag = line_addr / numSets_;

    if (is_write)
        ++stats_.writes;
    else
        ++stats_.reads;

    if (Line *line = findLine(set, tag)) {
        line->lastUse = ++useClock_;
        if (is_write)
            line->dirty = true;
        CacheAccessResult result;
        result.hit = true;
        return result;
    }

    if (is_write)
        ++stats_.writeMisses;
    else
        ++stats_.readMisses;

    // Write-allocate: fetch the line, mark dirty on stores.
    CacheAccessResult result = insert(set, tag, is_write);
    result.hit = false;
    return result;
}

bool
Cache::probe(std::uint64_t addr) const
{
    const std::uint64_t line_addr = addr >> lineShift_;
    const std::uint64_t set = line_addr & (numSets_ - 1);
    const std::uint64_t tag = line_addr / numSets_;
    const Line *base = &lines_[set * config_.associativity];
    for (std::uint32_t way = 0; way < config_.associativity; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return true;
    }
    return false;
}

CacheAccessResult
Cache::fill(std::uint64_t addr, bool dirty)
{
    const std::uint64_t line_addr = addr >> lineShift_;
    const std::uint64_t set = line_addr & (numSets_ - 1);
    const std::uint64_t tag = line_addr / numSets_;

    if (Line *line = findLine(set, tag)) {
        line->lastUse = ++useClock_;
        line->dirty = line->dirty || dirty;
        CacheAccessResult result;
        result.hit = true;
        return result;
    }
    CacheAccessResult result = insert(set, tag, dirty);
    result.hit = false;
    return result;
}

} // namespace mcdvfs
