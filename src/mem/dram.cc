#include "mem/dram.hh"

#include <bit>

#include "common/logging.hh"

namespace mcdvfs
{

void
DramConfig::validate() const
{
    if (banks == 0 || !std::has_single_bit(banks))
        fatal("dram: bank count must be a power of two");
    if (rowBytes == 0 || !std::has_single_bit(rowBytes))
        fatal("dram: row size must be a power of two");
    if (busBytes == 0 || lineBytes == 0 || lineBytes % busBytes != 0)
        fatal("dram: line size must be a multiple of the bus width");
}

double
DramStats::rowHitRatio() const
{
    const Count total = accesses();
    return total ? static_cast<double>(rowHits) /
                   static_cast<double>(total)
                 : 0.0;
}

Seconds
DramTiming::burstSeconds(Hertz mem_freq, const DramConfig &config) const
{
    MCDVFS_ASSERT(mem_freq > 0.0, "memory frequency must be positive");
    // DDR: two transfers of busBytes per interface clock.
    const double beats = static_cast<double>(config.lineBytes) /
                         static_cast<double>(config.busBytes);
    return (beats / 2.0) / mem_freq;
}

Seconds
DramTiming::latency(RowOutcome outcome, Hertz mem_freq,
                    const DramConfig &config) const
{
    const Seconds sync = interfaceCycles / mem_freq +
                         burstSeconds(mem_freq, config);
    switch (outcome) {
      case RowOutcome::Hit:
        return tCas + sync;
      case RowOutcome::Closed:
        return tRcd + tCas + sync;
      case RowOutcome::Conflict:
        return tRp + tRcd + tCas + sync;
    }
    MCDVFS_PANIC("unreachable row outcome");
}

double
DramTiming::usableBandwidth(Hertz mem_freq, const DramConfig &config) const
{
    // DDR peak is 2 transfers/cycle, derated by attainable utilization.
    return 2.0 * mem_freq * static_cast<double>(config.busBytes) *
           maxUtilization;
}

DramDevice::DramDevice(const DramConfig &config)
    : config_(config)
{
    config_.validate();
    banks_.assign(config_.banks, Bank{});
}

RowOutcome
DramDevice::access(std::uint64_t addr, bool is_write)
{
    // column-low / bank-mid / row-high mapping.
    const std::uint64_t row_addr = addr / config_.rowBytes;
    const std::uint64_t bank_idx = row_addr % config_.banks;
    const std::uint64_t row = row_addr / config_.banks;

    if (is_write)
        ++stats_.writes;
    else
        ++stats_.reads;

    Bank &bank = banks_[bank_idx];
    RowOutcome outcome;
    if (!bank.rowOpen) {
        outcome = RowOutcome::Closed;
        ++stats_.rowClosed;
    } else if (bank.openRow == row) {
        outcome = RowOutcome::Hit;
        ++stats_.rowHits;
    } else {
        outcome = RowOutcome::Conflict;
        ++stats_.rowConflicts;
    }
    bank.rowOpen = true;
    bank.openRow = row;
    return outcome;
}

void
DramDevice::reset()
{
    banks_.assign(config_.banks, Bank{});
    stats_ = DramStats{};
}

} // namespace mcdvfs
