/**
 * @file
 * LPDDR3 DRAM device model: bank/row organization with an open-page
 * policy, row-buffer outcome classification, and frequency-dependent
 * timing.
 *
 * Like the caches, the row-buffer *classifier* is functional and
 * frequency-free: an access is a row hit, a closed-bank access, or a
 * row conflict purely as a function of the address stream.  Timing per
 * outcome is computed by DramTiming, which splits each latency into an
 * analog portion fixed in nanoseconds (tRP/tRCD/tCAS core timing, per
 * the Micron datasheet) and a synchronous portion counted in interface
 * clock cycles that scales with memory frequency (command/burst
 * transfer and controller/PHY pipeline), following the Micron technote
 * method the paper cites for scaling timing with frequency.
 */

#ifndef MCDVFS_MEM_DRAM_HH
#define MCDVFS_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace mcdvfs
{

/** Row-buffer outcome of one DRAM transaction. */
enum class RowOutcome : std::uint8_t
{
    Hit,       ///< open row matches
    Closed,    ///< bank had no open row (first touch after precharge)
    Conflict,  ///< different row open: precharge + activate needed
};

/** Organization of the simulated LPDDR3 part (single channel, 1 rank). */
struct DramConfig
{
    std::uint32_t banks = 8;
    std::uint32_t rowBytes = 4096;
    /** Data bus width in bytes (x32 LPDDR3). */
    std::uint32_t busBytes = 4;
    /** Transaction (cache line) size in bytes. */
    std::uint32_t lineBytes = 64;

    /** @throws FatalError on inconsistent organization. */
    void validate() const;
};

/** Transaction counters, split by row-buffer outcome. */
struct DramStats
{
    Count reads = 0;
    Count writes = 0;
    Count rowHits = 0;
    Count rowClosed = 0;
    Count rowConflicts = 0;

    Count accesses() const { return reads + writes; }

    /** Row-hit ratio in [0,1]; 0 when idle. */
    double rowHitRatio() const;
};

/**
 * Frequency-dependent LPDDR3 timing.
 *
 * All latencies are seconds for a single transaction of
 * DramConfig::lineBytes, given the memory interface clock.
 */
struct DramTiming
{
    /** Analog row-precharge time (fixed in ns across frequency). */
    Seconds tRp = nanoSeconds(18.0);
    /** Analog row-activate (RAS-to-CAS) time. */
    Seconds tRcd = nanoSeconds(18.0);
    /** Analog column access (CAS) time. */
    Seconds tCas = nanoSeconds(15.0);
    /**
     * Synchronous controller + PHY pipeline depth in interface cycles
     * (command queue, clock-domain crossing, read return path).
     */
    double interfaceCycles = 10.0;
    /** Fraction of peak bandwidth attainable by real request streams. */
    double maxUtilization = 0.70;

    /** Seconds to transfer one line at DDR rate. */
    Seconds burstSeconds(Hertz mem_freq, const DramConfig &config) const;

    /** Latency of a transaction with the given row outcome. */
    Seconds latency(RowOutcome outcome, Hertz mem_freq,
                    const DramConfig &config) const;

    /** Attainable bandwidth in bytes/second at @c mem_freq. */
    double usableBandwidth(Hertz mem_freq, const DramConfig &config) const;
};

/**
 * Open-page bank-state tracker that classifies each transaction.
 *
 * Address mapping is column-low / bank-mid / row-high, so a sequential
 * stream walks a full row before moving to the next bank — the mapping
 * open-page policies are designed for.
 */
class DramDevice
{
  public:
    /** @throws FatalError on invalid organization. */
    explicit DramDevice(const DramConfig &config);

    /** Classify one transaction and update bank state. */
    RowOutcome access(std::uint64_t addr, bool is_write);

    /** Precharge all banks and clear statistics. */
    void reset();

    /** Zero counters but keep bank state (sample boundary). */
    void clearStats() { stats_ = DramStats{}; }

    const DramStats &stats() const { return stats_; }
    const DramConfig &config() const { return config_; }

  private:
    struct Bank
    {
        std::uint64_t openRow = 0;
        bool rowOpen = false;
    };

    DramConfig config_;
    std::vector<Bank> banks_;
    DramStats stats_;
};

} // namespace mcdvfs

#endif // MCDVFS_MEM_DRAM_HH
