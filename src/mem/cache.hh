/**
 * @file
 * Set-associative write-back, write-allocate cache model.
 *
 * This is a functional (hit/miss) model: it tracks tags, LRU state and
 * dirty bits, and reports for each access whether it hit and whether a
 * dirty victim was evicted.  Timing is applied later by the timing
 * model; keeping the functional model frequency-free is what allows
 * the characterize-once design (DESIGN.md §5.1).
 */

#ifndef MCDVFS_MEM_CACHE_HH
#define MCDVFS_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace mcdvfs
{

/** Static geometry of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * kKiB;
    std::uint32_t associativity = 4;
    std::uint32_t lineBytes = 64;
    /** Access latency in cycles of the cache's clock domain. */
    std::uint32_t latencyCycles = 2;

    /** Number of sets implied by the geometry. */
    std::uint64_t numSets() const;

    /**
     * Validate the geometry (power-of-two line size and set count).
     * @throws FatalError on inconsistent geometry.
     */
    void validate() const;
};

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** A dirty line was evicted and must be written back. */
    bool writeback = false;
    /** Line address (block-aligned) of the evicted dirty line. */
    std::uint64_t writebackAddr = 0;
};

/** Hit/miss counters for one cache level. */
struct CacheStats
{
    Count reads = 0;
    Count writes = 0;
    Count readMisses = 0;
    Count writeMisses = 0;
    Count writebacks = 0;

    Count accesses() const { return reads + writes; }
    Count misses() const { return readMisses + writeMisses; }

    /** Miss ratio in [0,1]; 0 when no accesses. */
    double missRatio() const;
};

/** One level of set-associative cache with true-LRU replacement. */
class Cache
{
  public:
    /** @throws FatalError on invalid geometry. */
    explicit Cache(const CacheConfig &config);

    /**
     * Perform one access.
     *
     * @param addr byte address
     * @param is_write store (marks the line dirty)
     * @return hit/miss and any writeback generated
     */
    CacheAccessResult access(std::uint64_t addr, bool is_write);

    /**
     * Install a line without an allocate-triggering access (used for
     * writeback-allocation into the next level).
     */
    CacheAccessResult fill(std::uint64_t addr, bool dirty);

    /** Check for a line without touching LRU state or counters. */
    bool probe(std::uint64_t addr) const;

    /** Reset contents and statistics. */
    void reset();

    /** Accumulated counters. */
    const CacheStats &stats() const { return stats_; }

    /** Zero the counters but keep cache contents (sample boundary). */
    void clearStats() { stats_ = CacheStats{}; }

    /** Geometry. */
    const CacheConfig &config() const { return config_; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;  ///< LRU timestamp
        bool valid = false;
        bool dirty = false;
    };

    /** Find the line holding @c tag in @c set, or nullptr. */
    Line *findLine(std::uint64_t set, std::uint64_t tag);

    /** Choose the victim way in @c set (invalid first, then LRU). */
    Line *victimLine(std::uint64_t set);

    /** Insert @c tag into @c set, returning any dirty eviction. */
    CacheAccessResult insert(std::uint64_t set, std::uint64_t tag,
                             bool dirty);

    std::uint64_t lineAddrOf(std::uint64_t set, std::uint64_t tag) const;

    CacheConfig config_;
    std::uint64_t numSets_;
    std::uint32_t lineShift_;
    std::vector<Line> lines_;   ///< numSets * associativity, set-major
    std::uint64_t useClock_ = 0;
    CacheStats stats_;
};

} // namespace mcdvfs

#endif // MCDVFS_MEM_CACHE_HH
