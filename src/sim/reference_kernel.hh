/**
 * @file
 * Cell-at-a-time reference grid evaluation.
 *
 * This is the straightforward way to build a MeasuredGrid: for every
 * (sample, setting) cell, call TimingModel::evaluate() and the power
 * models' energy() entry points, then apply the per-cell measurement
 * noise.  GridRunner used to work exactly like this before evaluation
 * was restructured into the table-driven kernel (docs/PERF.md).
 *
 * The implementation is kept — in the library, not the tests — for two
 * consumers:
 *
 *  - the golden equivalence tests, which assert the optimized kernel
 *    reproduces this path bit for bit (tests/sim_grid_runner_test.cc,
 *    tests/sim_parallel_grid_test.cc);
 *  - the grid micro-benchmarks, which report the kernel's speedup over
 *    this baseline (bench/micro_grid_kernel.cpp).
 *
 * Any change to the models' arithmetic must keep the two paths
 * identical; the tests enforce that.
 */

#ifndef MCDVFS_SIM_REFERENCE_KERNEL_HH
#define MCDVFS_SIM_REFERENCE_KERNEL_HH

#include "exec/thread_pool.hh"
#include "sim/grid_runner.hh"

namespace mcdvfs
{

/**
 * Build the grid for precomputed @c profiles by evaluating every cell
 * independently (no precomputed tables, no hoisted invariants).
 *
 * Bit-identical to GridRunner::runWithProfiles() on the same inputs,
 * for any @c pool (nullptr means serial).
 */
MeasuredGrid
referenceGridWithProfiles(const SystemConfig &config,
                          const std::string &workload_name,
                          const std::vector<SampleProfile> &profiles,
                          const SettingsSpace &space,
                          Count instructions_per_sample,
                          exec::ThreadPool *pool = nullptr);

/**
 * Characterize @c workload, then build its grid cell-at-a-time.
 * Bit-identical to GridRunner::run() on the same inputs.
 */
MeasuredGrid referenceGrid(const SystemConfig &config,
                           const WorkloadProfile &workload,
                           const SettingsSpace &space,
                           exec::ThreadPool *pool = nullptr);

} // namespace mcdvfs

#endif // MCDVFS_SIM_REFERENCE_KERNEL_HH
