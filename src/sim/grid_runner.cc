#include "sim/grid_runner.hh"

#include <cmath>

#include "common/rng.hh"

namespace mcdvfs
{

namespace
{

/** Deterministic per-cell seed mixing workload, sample and setting. */
std::uint64_t
cellSeed(const std::string &workload, std::size_t sample,
         std::size_t setting)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : workload)
        hash = (hash ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ull;
    hash = (hash ^ sample) * 0x100000001b3ull;
    hash = (hash ^ setting) * 0x100000001b3ull;
    return hash;
}

} // namespace

GridRunner::GridRunner(const SystemConfig &config)
    : config_(config), timingModel_(config.timing),
      cpuPower_(config.cpuPower, VoltageCurve::paperCpu()),
      dramPower_(config.dramPower, config.timing.dramTiming,
                 config.timing.dramConfig)
{
}

MeasuredGrid
GridRunner::run(const WorkloadProfile &workload, const SettingsSpace &space)
{
    SampleSimulator simulator(config_.sampler);
    const std::vector<SampleProfile> profiles =
        simulator.characterize(workload);
    return runWithProfiles(workload.name(), profiles, space,
                           workload.modeledInstructionsPerSample());
}

MeasuredGrid
GridRunner::runWithProfiles(const std::string &workload_name,
                            const std::vector<SampleProfile> &profiles,
                            const SettingsSpace &space,
                            Count instructions_per_sample)
{
    MeasuredGrid grid(workload_name, space, profiles.size(),
                      instructions_per_sample);

    if (pool_ != nullptr && pool_->size() > 0 && profiles.size() > 1) {
        // Samples are independent and write disjoint cell rows, so the
        // fan-out needs no synchronization beyond the loop barrier.
        pool_->parallelFor(0, profiles.size(), [&](std::size_t s) {
            evaluateSample(grid, profiles[s], s, space,
                           instructions_per_sample);
        });
    } else {
        for (std::size_t s = 0; s < profiles.size(); ++s)
            evaluateSample(grid, profiles[s], s, space,
                           instructions_per_sample);
    }
    grid.setProfiles(profiles);
    return grid;
}

void
GridRunner::evaluateSample(MeasuredGrid &grid, const SampleProfile &profile,
                           std::size_t sample, const SettingsSpace &space,
                           Count instructions_per_sample) const
{
    const double n = static_cast<double>(instructions_per_sample);

    // Scale the per-instruction rates back up to the modeled
    // sample length for the DRAM energy accounting.
    DramStats dram_stats;
    const double reads =
        n * (profile.dramReadsPerInstr + profile.dramPrefetchPerInstr);
    const double writes = n * profile.dramWritesPerInstr;
    const double total = reads + writes;
    dram_stats.reads = static_cast<Count>(std::llround(reads));
    dram_stats.writes = static_cast<Count>(std::llround(writes));
    dram_stats.rowHits =
        static_cast<Count>(std::llround(total * profile.rowHitFrac));
    dram_stats.rowClosed = static_cast<Count>(
        std::llround(total * profile.rowClosedFrac));
    dram_stats.rowConflicts = static_cast<Count>(
        std::llround(total * profile.rowConflictFrac));

    for (std::size_t k = 0; k < space.size(); ++k) {
        const FrequencySetting setting = space.at(k);
        const SampleTiming timing = timingModel_.evaluate(
            profile, setting, instructions_per_sample);

        GridCell &cell = grid.cell(sample, k);
        cell.seconds = timing.total;
        cell.busyFrac =
            timing.total > 0.0 ? timing.busy / timing.total : 1.0;
        cell.bwUtil = timing.bwUtil;
        cell.cpuEnergy =
            cpuPower_.energy(setting.cpu, profile.activity,
                             timing.busy, timing.stall);
        cell.memEnergy =
            dramPower_
                .energy(dram_stats, setting.mem, timing.total,
                        timing.bwUtil)
                .total();

        if (config_.measurementNoise > 0.0) {
            // Deterministic "simulation noise" on the measured
            // quantities (see SystemConfig::measurementNoise).
            Rng noise(cellSeed(grid.workload(), sample, k));
            auto wobble = [&](double v) {
                return v * (1.0 + config_.measurementNoise *
                                      (2.0 * noise.uniform() - 1.0));
            };
            cell.seconds = wobble(cell.seconds);
            cell.cpuEnergy = wobble(cell.cpuEnergy);
            cell.memEnergy = wobble(cell.memEnergy);
        }
    }
}

} // namespace mcdvfs
