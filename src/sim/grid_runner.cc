#include "sim/grid_runner.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/profile_cache.hh"
#include "sim/strip_kernel.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mcdvfs
{

namespace
{

/** Process-wide grid-build metrics (table kernel path). */
struct GridMetrics
{
    obs::Counter builds;
    obs::Counter samples;
    obs::Counter cells;
    obs::Counter fixedPointIters;
    obs::Counter uniqueRows;
    obs::Counter rowsDeduped;
    obs::Counter characterizeNs;
    obs::Counter tableReuse;
    obs::Histogram buildNs;

    GridMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        builds = reg.counter("sim.grid.builds");
        samples = reg.counter("sim.grid.samples_evaluated");
        cells = reg.counter("sim.grid.cells_evaluated");
        fixedPointIters =
            reg.counter("sim.grid.fixed_point_iterations");
        uniqueRows = reg.counter("sim.grid.unique_rows");
        rowsDeduped = reg.counter("sim.grid.rows_deduped");
        characterizeNs = reg.counter("sim.grid.characterize_ns");
        tableReuse = reg.counter("sim.kernel.table_reuse");
        buildNs = reg.histogram(
            "sim.grid.build_ns",
            obs::MetricsRegistry::latencyBucketsNs());
    }
};

GridMetrics &
gridMetrics()
{
    static GridMetrics metrics;
    return metrics;
}

/**
 * Content hash of a settings space (domain count, then every ladder
 * with its length and step bit patterns): the table-cache key.
 */
std::uint64_t
spaceContentHash(const SettingsSpace &space)
{
    std::uint64_t h = fnv1aWordBytes(kFnvOffsetBasis,
                                     space.domainCount());
    auto addLadder = [&h](const FrequencyLadder &ladder) {
        h = fnv1aWordBytes(h, ladder.size());
        for (const Hertz f : ladder.steps())
            h = fnv1aWordBytes(h, std::bit_cast<std::uint64_t>(f));
    };
    addLadder(space.cpuLadder());
    addLadder(space.memLadder());
    if (space.hasGpu())
        addLadder(space.gpuLadder());
    return h;
}

/**
 * Hash of the evaluation-relevant SampleProfile fields (everything the
 * kernel reads; phaseName excluded — it never reaches a cell value).
 */
std::uint64_t
profileEvalHash(const SampleProfile &p)
{
    std::uint64_t h = kFnvOffsetBasis;
    for (const double v :
         {p.baseCpi, p.activity, p.mlp, p.gpuWorkPerInstr,
          p.gpuActivity, p.l1Mpki, p.l2Mpki, p.l2PerInstr,
          p.dramReadsPerInstr, p.dramWritesPerInstr,
          p.dramPrefetchPerInstr, p.rowHitFrac, p.rowClosedFrac,
          p.rowConflictFrac})
        h = fnv1aWordBytes(h, std::bit_cast<std::uint64_t>(v));
    return h;
}

/** Byte equality over the same evaluation-relevant field set. */
bool
profileEvalEqual(const SampleProfile &a, const SampleProfile &b)
{
    auto same = [](double x, double y) {
        return std::bit_cast<std::uint64_t>(x) ==
               std::bit_cast<std::uint64_t>(y);
    };
    return same(a.baseCpi, b.baseCpi) && same(a.activity, b.activity) &&
           same(a.mlp, b.mlp) &&
           same(a.gpuWorkPerInstr, b.gpuWorkPerInstr) &&
           same(a.gpuActivity, b.gpuActivity) &&
           same(a.l1Mpki, b.l1Mpki) && same(a.l2Mpki, b.l2Mpki) &&
           same(a.l2PerInstr, b.l2PerInstr) &&
           same(a.dramReadsPerInstr, b.dramReadsPerInstr) &&
           same(a.dramWritesPerInstr, b.dramWritesPerInstr) &&
           same(a.dramPrefetchPerInstr, b.dramPrefetchPerInstr) &&
           same(a.rowHitFrac, b.rowHitFrac) &&
           same(a.rowClosedFrac, b.rowClosedFrac) &&
           same(a.rowConflictFrac, b.rowConflictFrac);
}

} // namespace

GridRunner::GridRunner(const SystemConfig &config)
    : config_(config), timingModel_(config.timing),
      cpuPower_(config.cpuPower, VoltageCurve::paperCpu()),
      dramPower_(config.dramPower, config.timing.dramTiming,
                 config.timing.dramConfig),
      gpuPower_(config.gpuPower, GpuPowerModel::paperGpuCurve())
{
}

MeasuredGrid
GridRunner::run(const WorkloadProfile &workload, const SettingsSpace &space)
{
    SampleSimulator simulator(config_.sampler);
    simulator.setProfileCache(profileCache_);
    obs::TraceSpan characterize_span("sim.characterize");
    const obs::Clock::time_point characterize_start = obs::metricsNow();
    const std::vector<SampleProfile> profiles =
        simulator.characterize(workload);
    gridMetrics().characterizeNs.add(
        obs::elapsedNs(characterize_start));
    characterize_span.end();
    return runWithProfiles(workload.name(), profiles, space,
                           workload.modeledInstructionsPerSample());
}

GridRunner::Tables
GridRunner::buildTables(const SettingsSpace &space) const
{
    for (const Hertz f : space.cpuLadder().steps()) {
        if (f <= 0.0)
            fatal("timing model: frequencies must be positive");
    }
    Tables tables;
    tables.memTiming = timingModel_.memTable(space.memLadder());
    tables.dramEnergy = dramPower_.table(space.memLadder());
    tables.cpuPower = cpuPower_.table(space.cpuLadder());
    if (space.hasGpu()) {
        for (const Hertz f : space.gpuLadder().steps()) {
            if (f <= 0.0)
                fatal("gpu model: frequencies must be positive");
        }
        tables.gpuPower = gpuPower_.table(space.gpuLadder());
    }
    return tables;
}

std::shared_ptr<const GridRunner::Tables>
GridRunner::tablesFor(const SettingsSpace &space) const
{
    const std::uint64_t key = spaceContentHash(space);
    {
        std::lock_guard<std::mutex> lock(tablesMutex_);
        const auto it = tablesCache_.find(key);
        if (it != tablesCache_.end()) {
            gridMetrics().tableReuse.add(1);
            return it->second;
        }
    }
    // Build outside the lock — table construction walks the power and
    // timing models — then publish; a concurrent same-space build just
    // produces an identical value and the first insert wins.
    auto tables = std::make_shared<const Tables>(buildTables(space));
    std::lock_guard<std::mutex> lock(tablesMutex_);
    // Runners see a handful of spaces over their life; bound the cache
    // anyway so a space-sweeping caller can't grow it without limit.
    if (tablesCache_.size() >= 16)
        tablesCache_.clear();
    const auto [it, inserted] = tablesCache_.emplace(key, tables);
    return it->second;
}

MeasuredGrid
GridRunner::runWithProfiles(const std::string &workload_name,
                            const std::vector<SampleProfile> &profiles,
                            const SettingsSpace &space,
                            Count instructions_per_sample)
{
    const obs::Clock::time_point build_start = obs::metricsNow();
    obs::TraceSpan build_span("sim.grid.build", profiles.size());
    MeasuredGrid grid(workload_name, space, profiles.size(),
                      instructions_per_sample);
    obs::TraceSpan tables_span("sim.grid.tables");
    const std::shared_ptr<const Tables> tables = tablesFor(space);
    tables_span.end();
    const std::uint64_t workload_hash =
        fnv1aString(kFnvOffsetBasis, workload_name);

    // Dedup byte-identical profiles into unique rows: the pre-noise
    // cells of a row are a pure function of the profile bytes (plus
    // space/tables), so each distinct profile runs the strip kernel
    // once and is scattered to every sample carrying it.  Noise stays
    // per-sample, applied at scatter time with the cell-at-a-time
    // path's exact seeds, so dedup never changes a single bit.
    std::vector<std::vector<std::size_t>> groups;
    {
        std::unordered_map<std::uint64_t, std::vector<std::size_t>>
            by_hash;
        for (std::size_t s = 0; s < profiles.size(); ++s) {
            const std::uint64_t h = profileEvalHash(profiles[s]);
            std::vector<std::size_t> &candidates = by_hash[h];
            std::size_t id = groups.size();
            for (const std::size_t u : candidates) {
                if (profileEvalEqual(profiles[groups[u].front()],
                                     profiles[s])) {
                    id = u;
                    break;
                }
            }
            if (id == groups.size()) {
                candidates.push_back(id);
                groups.emplace_back();
            }
            groups[id].push_back(s);
        }
    }
    const bool dedup = groups.size() < profiles.size();

    obs::TraceSpan eval_span("sim.grid.eval", profiles.size());
    if (!dedup) {
        if (pool_ != nullptr && pool_->size() > 0 &&
            profiles.size() > 1) {
            // Samples are independent and write disjoint cell rows, so
            // the fan-out needs no synchronization beyond the loop
            // barrier.
            pool_->parallelFor(0, profiles.size(), [&](std::size_t s) {
                evaluateSample(grid, profiles[s], s, space,
                               instructions_per_sample, *tables,
                               workload_hash);
            });
        } else {
            for (std::size_t s = 0; s < profiles.size(); ++s)
                evaluateSample(grid, profiles[s], s, space,
                               instructions_per_sample, *tables,
                               workload_hash);
        }
    } else {
        const std::size_t settings = space.size();
        const bool has_gpu = space.hasGpu();
        auto evaluateGroup = [&](std::size_t u) {
            const std::vector<std::size_t> &members = groups[u];
            // Evaluate the kernel once, into the first member's row.
            const std::size_t lead = members.front();
            const MeasuredGrid::RowView lead_row = grid.fillRow(lead);
            evaluateRow(lead_row, profiles[lead], space,
                        instructions_per_sample, *tables);
            // Scatter the pre-noise cells to the other members' rows.
            for (std::size_t i = 1; i < members.size(); ++i) {
                const MeasuredGrid::RowView dst =
                    grid.fillRow(members[i]);
                std::copy_n(lead_row.seconds, settings, dst.seconds);
                std::copy_n(lead_row.busyFrac, settings, dst.busyFrac);
                std::copy_n(lead_row.bwUtil, settings, dst.bwUtil);
                std::copy_n(lead_row.cpuEnergy, settings,
                            dst.cpuEnergy);
                std::copy_n(lead_row.memEnergy, settings,
                            dst.memEnergy);
                if (has_gpu)
                    std::copy_n(lead_row.gpuEnergy, settings,
                                dst.gpuEnergy);
            }
            // Per-sample noise and aggregates (lead included).
            for (const std::size_t s : members) {
                const MeasuredGrid::RowView dst = grid.fillRow(s);
                applyNoise(dst, s, workload_hash, settings, has_gpu);
                grid.updateSampleAggregates(s);
            }
        };
        if (pool_ != nullptr && pool_->size() > 0 &&
            groups.size() > 1) {
            // Groups own disjoint sample-row sets; same independence
            // argument as the per-sample fan-out.
            pool_->parallelFor(0, groups.size(), evaluateGroup);
        } else {
            for (std::size_t u = 0; u < groups.size(); ++u)
                evaluateGroup(u);
        }
    }
    eval_span.end();
    grid.sealAggregates();
    grid.setProfiles(profiles);

    GridMetrics &metrics = gridMetrics();
    metrics.buildNs.record(obs::elapsedNs(build_start));
    metrics.builds.add(1);
    metrics.samples.add(profiles.size());
    metrics.cells.add(profiles.size() * space.size());
    metrics.uniqueRows.add(groups.size());
    metrics.rowsDeduped.add(profiles.size() - groups.size());
    return grid;
}

void
GridRunner::evaluateRow(const MeasuredGrid::RowView &row,
                        const SampleProfile &profile,
                        const SettingsSpace &space,
                        Count instructions_per_sample,
                        const Tables &tables) const
{
    const double n = static_cast<double>(instructions_per_sample);

    // Scale the per-instruction rates back up to the modeled
    // sample length for the DRAM energy accounting.
    DramStats dram_stats;
    const double reads =
        n * (profile.dramReadsPerInstr + profile.dramPrefetchPerInstr);
    const double writes = n * profile.dramWritesPerInstr;
    const double total_txn = reads + writes;
    dram_stats.reads = static_cast<Count>(std::llround(reads));
    dram_stats.writes = static_cast<Count>(std::llround(writes));
    dram_stats.rowHits =
        static_cast<Count>(std::llround(total_txn * profile.rowHitFrac));
    dram_stats.rowClosed = static_cast<Count>(
        std::llround(total_txn * profile.rowClosedFrac));
    dram_stats.rowConflicts = static_cast<Count>(
        std::llround(total_txn * profile.rowConflictFrac));

    // Per-sample invariants of the DRAM energy accounting, resolved to
    // doubles once instead of per cell.
    const double reads_d = static_cast<double>(dram_stats.reads);
    const double writes_d = static_cast<double>(dram_stats.writes);
    const double activates_d =
        static_cast<double>(dram_stats.rowClosed + dram_stats.rowConflicts);

    // Per-sample invariants of the timing model.
    const TimingParams &tp = timingModel_.params();
    const double core_cpi = timingModel_.coreCpi(profile);
    const double dram_per_instr = profile.dramPerInstr();
    const double demand_fills = n * profile.dramReadsPerInstr;
    const double traffic_bytes =
        n * profile.trafficPerInstr() *
        static_cast<double>(tp.dramConfig.lineBytes);
    const double mlp = profile.mlp;
    const bool has_dram_time =
        dram_per_instr > 0.0 && instructions_per_sample != 0;

    // Per-sample CPU power scalars (activity resolved once).
    const CpuPowerParams &cp = cpuPower_.params();
    const double act_busy = std::clamp(profile.activity, 0.0, 1.0);
    const double act_stall =
        std::clamp(profile.activity * cp.stallActivity, 0.0, 1.0);

    // DRAM background power-down mixing constants.
    const DramPowerParams &dp = dramPower_.params();
    const bool power_down = dp.enablePowerDown;
    const double residency =
        std::clamp(dp.powerDownResidency, 0.0, 1.0);

    const std::size_t mem_steps = space.memLadder().size();
    const std::vector<Hertz> &cpu_steps = space.cpuLadder().steps();

    // GPU-domain invariants (three-domain spaces only).  The GPU busy
    // window scales only with its own frequency, so the product is a
    // per-sample constant.
    const bool has_gpu = space.hasGpu();
    const double gpu_work = n * profile.gpuWorkPerInstr;
    const double gpu_act =
        std::clamp(profile.gpuActivity, 0.0, 1.0);
    static const std::vector<Hertz> kNoGpuSteps;
    const std::vector<Hertz> &gpu_steps =
        has_gpu ? space.gpuLadder().steps() : kNoGpuSteps;

    // Per-(sample, memory-frequency) strips: the row-outcome-weighted
    // uncontended latency and the usable bandwidth.
    std::vector<double> base_lat(mem_steps);
    std::vector<double> usable_bw(mem_steps);
    for (std::size_t m = 0; m < mem_steps; ++m) {
        const MemTimingPoint &mt = tables.memTiming[m];
        base_lat[m] = profile.rowHitFrac * mt.latencyHit +
                      profile.rowClosedFrac * mt.latencyClosed +
                      profile.rowConflictFrac * mt.latencyConflict;
        usable_bw[m] = mt.usableBandwidth;
    }

    std::vector<double> total(mem_steps);
    std::vector<double> stall(mem_steps);
    std::vector<double> util(mem_steps);

    for (std::size_t c = 0; c < cpu_steps.size(); ++c) {
        const Seconds core_time = n * core_cpi / cpu_steps[c];

        if (!has_dram_time) {
            for (std::size_t m = 0; m < mem_steps; ++m) {
                total[m] = core_time;
                stall[m] = 0.0;
                util[m] = 0.0;
            }
        } else {
            // Damped fixed point: utilization depends on total time,
            // total time depends on queueing inflation, which depends
            // on utilization.  The iteration itself lives in
            // sim/strip_kernel.hh (scalar + explicit AVX2/NEON paths).
            for (std::size_t m = 0; m < mem_steps; ++m)
                total[m] = core_time + demand_fills * base_lat[m] / mlp;

            if (!tp.modelBandwidth) {
                // Ablation: pure latency model, no saturation.
                for (std::size_t m = 0; m < mem_steps; ++m) {
                    stall[m] = total[m] - core_time;
                    util[m] = std::min(
                        1.0, traffic_bytes / (total[m] * usable_bw[m]));
                }
            } else {
                strip::StripParams params;
                params.coreTime = core_time;
                params.demandFills = demand_fills;
                params.mlp = mlp;
                params.trafficBytes = traffic_bytes;
                params.cap = tp.bwUtilizationCap;
                params.iterations = tp.fixedPointIterations;
                strip::fixedPointStrip(total.data(), stall.data(),
                                       util.data(), base_lat.data(),
                                       usable_bw.data(), mem_steps,
                                       params);
            }
        }

        const CpuOperatingPoint &op = tables.cpuPower[c];
        const double busy_dyn = op.dynamicScale * act_busy;
        const double stall_dyn = op.dynamicScale * act_stall;
        const double static_power = op.background + op.leakage;
        const std::size_t base = c * mem_steps;

        if (!has_gpu) {
            for (std::size_t m = 0; m < mem_steps; ++m) {
                const double t = total[m];
                row.seconds[base + m] = t;
                row.busyFrac[base + m] = t > 0.0 ? core_time / t : 1.0;
                row.bwUtil[base + m] = util[m];
                row.cpuEnergy[base + m] =
                    busy_dyn * core_time + stall_dyn * stall[m] +
                    static_power * (core_time + stall[m]);

                const DramFreqCoefficients &de = tables.dramEnergy[m];
                double background_power = de.activeBackground;
                if (power_down) {
                    const double u = std::clamp(util[m], 0.0, 1.0);
                    const double down_frac = (1.0 - u) * residency;
                    background_power =
                        de.activeBackground * (1.0 - down_frac) +
                        de.powerDownBackground * down_frac;
                }
                row.memEnergy[base + m] =
                    background_power * t +
                    de.activateEnergy * activates_d +
                    (de.readEnergy * reads_d +
                     de.writeEnergy * writes_d);
            }
        } else {
            // Three-domain strip: the CPU/memory fixed point above is
            // GPU-frequency-independent, so each (c, m) strip element
            // expands into a contiguous run of GPU steps (the GPU index
            // varies fastest in the flat setting order).  Kicks are
            // asynchronous: the sample ends when the slower of the CPU
            // side and the GPU finishes, the core draws only static
            // power while it waits, and the DRAM background window
            // stretches with the sample.
            for (std::size_t m = 0; m < mem_steps; ++m) {
                const double t = total[m];
                const double cpu_base =
                    busy_dyn * core_time + stall_dyn * stall[m] +
                    static_power * (core_time + stall[m]);

                const DramFreqCoefficients &de = tables.dramEnergy[m];
                double background_power = de.activeBackground;
                if (power_down) {
                    const double u = std::clamp(util[m], 0.0, 1.0);
                    const double down_frac = (1.0 - u) * residency;
                    background_power =
                        de.activeBackground * (1.0 - down_frac) +
                        de.powerDownBackground * down_frac;
                }

                const std::size_t gbase =
                    (base + m) * gpu_steps.size();
                for (std::size_t g = 0; g < gpu_steps.size(); ++g) {
                    const double gpu_time = gpu_work / gpu_steps[g];
                    const double t_final = std::max(t, gpu_time);
                    row.seconds[gbase + g] = t_final;
                    row.busyFrac[gbase + g] =
                        t_final > 0.0 ? core_time / t_final : 1.0;
                    row.bwUtil[gbase + g] = util[m];
                    row.cpuEnergy[gbase + g] =
                        cpu_base + static_power * (t_final - t);
                    row.memEnergy[gbase + g] =
                        background_power * t_final +
                        de.activateEnergy * activates_d +
                        (de.readEnergy * reads_d +
                         de.writeEnergy * writes_d);
                    const GpuOperatingPoint &gop = tables.gpuPower[g];
                    row.gpuEnergy[gbase + g] =
                        (gop.dynamicScale * gpu_act) * gpu_time +
                        (gop.background + gop.leakage) * t_final;
                }
            }
        }
    }

    // Fixed-point work accounting: the bandwidth branch runs the
    // damped iteration fixedPointIterations times over every
    // (cpu step, mem step) strip element.  Tallied per sample — one
    // atomic add, nothing in the vectorized loops.
    if (has_dram_time && tp.modelBandwidth) {
        gridMetrics().fixedPointIters.add(
            cpu_steps.size() * mem_steps *
            static_cast<std::size_t>(
                std::max(0, tp.fixedPointIterations)));
    }
}

void
GridRunner::applyNoise(const MeasuredGrid::RowView &row,
                       std::size_t sample, std::uint64_t workload_hash,
                       std::size_t settings, bool has_gpu) const
{
    if (config_.measurementNoise <= 0.0)
        return;
    // Deterministic "simulation noise" on the measured quantities
    // (see SystemConfig::measurementNoise).  Wobble factors come
    // from one short-lived Rng per cell, seeded exactly as the
    // cell-at-a-time path seeded them, then applied in three flat
    // multiply passes over the row.
    const double amp = config_.measurementNoise;
    const std::uint64_t sample_hash =
        fnv1aMixWord(workload_hash, sample);
    std::vector<double> wobble_sec(settings);
    std::vector<double> wobble_cpu(settings);
    std::vector<double> wobble_mem(settings);
    // The GPU column wobbles only on three-domain grids: each cell
    // gets a fresh Rng, so drawing a fourth factor never perturbs
    // the first three — two-domain noise is bit-for-bit unchanged.
    std::vector<double> wobble_gpu(has_gpu ? settings : 0);
    for (std::size_t k = 0; k < settings; ++k) {
        Rng noise(fnv1aMixWord(sample_hash, k));
        wobble_sec[k] = 1.0 + amp * (2.0 * noise.uniform() - 1.0);
        wobble_cpu[k] = 1.0 + amp * (2.0 * noise.uniform() - 1.0);
        wobble_mem[k] = 1.0 + amp * (2.0 * noise.uniform() - 1.0);
        if (has_gpu)
            wobble_gpu[k] =
                1.0 + amp * (2.0 * noise.uniform() - 1.0);
    }
    for (std::size_t k = 0; k < settings; ++k)
        row.seconds[k] *= wobble_sec[k];
    for (std::size_t k = 0; k < settings; ++k)
        row.cpuEnergy[k] *= wobble_cpu[k];
    for (std::size_t k = 0; k < settings; ++k)
        row.memEnergy[k] *= wobble_mem[k];
    if (has_gpu) {
        for (std::size_t k = 0; k < settings; ++k)
            row.gpuEnergy[k] *= wobble_gpu[k];
    }
}

void
GridRunner::evaluateSample(MeasuredGrid &grid, const SampleProfile &profile,
                           std::size_t sample, const SettingsSpace &space,
                           Count instructions_per_sample,
                           const Tables &tables,
                           std::uint64_t workload_hash) const
{
    const MeasuredGrid::RowView row = grid.fillRow(sample);
    evaluateRow(row, profile, space, instructions_per_sample, tables);
    applyNoise(row, sample, workload_hash, space.size(),
               space.hasGpu());
    grid.updateSampleAggregates(sample);
}

} // namespace mcdvfs
