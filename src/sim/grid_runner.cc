#include "sim/grid_runner.hh"

#include <algorithm>
#include <cmath>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/strip_kernel.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mcdvfs
{

namespace
{

/** Process-wide grid-build metrics (table kernel path). */
struct GridMetrics
{
    obs::Counter builds;
    obs::Counter samples;
    obs::Counter cells;
    obs::Counter fixedPointIters;
    obs::Histogram buildNs;

    GridMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        builds = reg.counter("sim.grid.builds");
        samples = reg.counter("sim.grid.samples_evaluated");
        cells = reg.counter("sim.grid.cells_evaluated");
        fixedPointIters =
            reg.counter("sim.grid.fixed_point_iterations");
        buildNs = reg.histogram(
            "sim.grid.build_ns",
            obs::MetricsRegistry::latencyBucketsNs());
    }
};

GridMetrics &
gridMetrics()
{
    static GridMetrics metrics;
    return metrics;
}

} // namespace

GridRunner::GridRunner(const SystemConfig &config)
    : config_(config), timingModel_(config.timing),
      cpuPower_(config.cpuPower, VoltageCurve::paperCpu()),
      dramPower_(config.dramPower, config.timing.dramTiming,
                 config.timing.dramConfig),
      gpuPower_(config.gpuPower, GpuPowerModel::paperGpuCurve())
{
}

MeasuredGrid
GridRunner::run(const WorkloadProfile &workload, const SettingsSpace &space)
{
    SampleSimulator simulator(config_.sampler);
    obs::TraceSpan characterize_span("sim.characterize");
    const std::vector<SampleProfile> profiles =
        simulator.characterize(workload);
    characterize_span.end();
    return runWithProfiles(workload.name(), profiles, space,
                           workload.modeledInstructionsPerSample());
}

GridRunner::Tables
GridRunner::buildTables(const std::string &workload_name,
                        const SettingsSpace &space) const
{
    for (const Hertz f : space.cpuLadder().steps()) {
        if (f <= 0.0)
            fatal("timing model: frequencies must be positive");
    }
    Tables tables;
    tables.memTiming = timingModel_.memTable(space.memLadder());
    tables.dramEnergy = dramPower_.table(space.memLadder());
    tables.cpuPower = cpuPower_.table(space.cpuLadder());
    if (space.hasGpu()) {
        for (const Hertz f : space.gpuLadder().steps()) {
            if (f <= 0.0)
                fatal("gpu model: frequencies must be positive");
        }
        tables.gpuPower = gpuPower_.table(space.gpuLadder());
    }
    tables.workloadHash = fnv1aString(kFnvOffsetBasis, workload_name);
    return tables;
}

MeasuredGrid
GridRunner::runWithProfiles(const std::string &workload_name,
                            const std::vector<SampleProfile> &profiles,
                            const SettingsSpace &space,
                            Count instructions_per_sample)
{
    const obs::Clock::time_point build_start = obs::metricsNow();
    obs::TraceSpan build_span("sim.grid.build", profiles.size());
    MeasuredGrid grid(workload_name, space, profiles.size(),
                      instructions_per_sample);
    obs::TraceSpan tables_span("sim.grid.tables");
    const Tables tables = buildTables(workload_name, space);
    tables_span.end();

    obs::TraceSpan eval_span("sim.grid.eval", profiles.size());
    if (pool_ != nullptr && pool_->size() > 0 && profiles.size() > 1) {
        // Samples are independent and write disjoint cell rows, so the
        // fan-out needs no synchronization beyond the loop barrier.
        pool_->parallelFor(0, profiles.size(), [&](std::size_t s) {
            evaluateSample(grid, profiles[s], s, space,
                           instructions_per_sample, tables);
        });
    } else {
        for (std::size_t s = 0; s < profiles.size(); ++s)
            evaluateSample(grid, profiles[s], s, space,
                           instructions_per_sample, tables);
    }
    eval_span.end();
    grid.sealAggregates();
    grid.setProfiles(profiles);

    GridMetrics &metrics = gridMetrics();
    metrics.buildNs.record(obs::elapsedNs(build_start));
    metrics.builds.add(1);
    metrics.samples.add(profiles.size());
    metrics.cells.add(profiles.size() * space.size());
    return grid;
}

void
GridRunner::evaluateSample(MeasuredGrid &grid, const SampleProfile &profile,
                           std::size_t sample, const SettingsSpace &space,
                           Count instructions_per_sample,
                           const Tables &tables) const
{
    const double n = static_cast<double>(instructions_per_sample);

    // Scale the per-instruction rates back up to the modeled
    // sample length for the DRAM energy accounting.
    DramStats dram_stats;
    const double reads =
        n * (profile.dramReadsPerInstr + profile.dramPrefetchPerInstr);
    const double writes = n * profile.dramWritesPerInstr;
    const double total_txn = reads + writes;
    dram_stats.reads = static_cast<Count>(std::llround(reads));
    dram_stats.writes = static_cast<Count>(std::llround(writes));
    dram_stats.rowHits =
        static_cast<Count>(std::llround(total_txn * profile.rowHitFrac));
    dram_stats.rowClosed = static_cast<Count>(
        std::llround(total_txn * profile.rowClosedFrac));
    dram_stats.rowConflicts = static_cast<Count>(
        std::llround(total_txn * profile.rowConflictFrac));

    // Per-sample invariants of the DRAM energy accounting, resolved to
    // doubles once instead of per cell.
    const double reads_d = static_cast<double>(dram_stats.reads);
    const double writes_d = static_cast<double>(dram_stats.writes);
    const double activates_d =
        static_cast<double>(dram_stats.rowClosed + dram_stats.rowConflicts);

    // Per-sample invariants of the timing model.
    const TimingParams &tp = timingModel_.params();
    const double core_cpi = timingModel_.coreCpi(profile);
    const double dram_per_instr = profile.dramPerInstr();
    const double demand_fills = n * profile.dramReadsPerInstr;
    const double traffic_bytes =
        n * profile.trafficPerInstr() *
        static_cast<double>(tp.dramConfig.lineBytes);
    const double mlp = profile.mlp;
    const bool has_dram_time =
        dram_per_instr > 0.0 && instructions_per_sample != 0;

    // Per-sample CPU power scalars (activity resolved once).
    const CpuPowerParams &cp = cpuPower_.params();
    const double act_busy = std::clamp(profile.activity, 0.0, 1.0);
    const double act_stall =
        std::clamp(profile.activity * cp.stallActivity, 0.0, 1.0);

    // DRAM background power-down mixing constants.
    const DramPowerParams &dp = dramPower_.params();
    const bool power_down = dp.enablePowerDown;
    const double residency =
        std::clamp(dp.powerDownResidency, 0.0, 1.0);

    const std::size_t settings = space.size();
    const std::size_t mem_steps = space.memLadder().size();
    const std::vector<Hertz> &cpu_steps = space.cpuLadder().steps();

    // GPU-domain invariants (three-domain spaces only).  The GPU busy
    // window scales only with its own frequency, so the product is a
    // per-sample constant.
    const bool has_gpu = space.hasGpu();
    const double gpu_work = n * profile.gpuWorkPerInstr;
    const double gpu_act =
        std::clamp(profile.gpuActivity, 0.0, 1.0);
    static const std::vector<Hertz> kNoGpuSteps;
    const std::vector<Hertz> &gpu_steps =
        has_gpu ? space.gpuLadder().steps() : kNoGpuSteps;

    // Per-(sample, memory-frequency) strips: the row-outcome-weighted
    // uncontended latency and the usable bandwidth.
    std::vector<double> base_lat(mem_steps);
    std::vector<double> usable_bw(mem_steps);
    for (std::size_t m = 0; m < mem_steps; ++m) {
        const MemTimingPoint &mt = tables.memTiming[m];
        base_lat[m] = profile.rowHitFrac * mt.latencyHit +
                      profile.rowClosedFrac * mt.latencyClosed +
                      profile.rowConflictFrac * mt.latencyConflict;
        usable_bw[m] = mt.usableBandwidth;
    }

    std::vector<double> total(mem_steps);
    std::vector<double> stall(mem_steps);
    std::vector<double> util(mem_steps);

    MeasuredGrid::RowView row = grid.fillRow(sample);

    for (std::size_t c = 0; c < cpu_steps.size(); ++c) {
        const Seconds core_time = n * core_cpi / cpu_steps[c];

        if (!has_dram_time) {
            for (std::size_t m = 0; m < mem_steps; ++m) {
                total[m] = core_time;
                stall[m] = 0.0;
                util[m] = 0.0;
            }
        } else {
            // Damped fixed point: utilization depends on total time,
            // total time depends on queueing inflation, which depends
            // on utilization.  The iteration itself lives in
            // sim/strip_kernel.hh (scalar + explicit AVX2/NEON paths).
            for (std::size_t m = 0; m < mem_steps; ++m)
                total[m] = core_time + demand_fills * base_lat[m] / mlp;

            if (!tp.modelBandwidth) {
                // Ablation: pure latency model, no saturation.
                for (std::size_t m = 0; m < mem_steps; ++m) {
                    stall[m] = total[m] - core_time;
                    util[m] = std::min(
                        1.0, traffic_bytes / (total[m] * usable_bw[m]));
                }
            } else {
                strip::StripParams params;
                params.coreTime = core_time;
                params.demandFills = demand_fills;
                params.mlp = mlp;
                params.trafficBytes = traffic_bytes;
                params.cap = tp.bwUtilizationCap;
                params.iterations = tp.fixedPointIterations;
                strip::fixedPointStrip(total.data(), stall.data(),
                                       util.data(), base_lat.data(),
                                       usable_bw.data(), mem_steps,
                                       params);
            }
        }

        const CpuOperatingPoint &op = tables.cpuPower[c];
        const double busy_dyn = op.dynamicScale * act_busy;
        const double stall_dyn = op.dynamicScale * act_stall;
        const double static_power = op.background + op.leakage;
        const std::size_t base = c * mem_steps;

        if (!has_gpu) {
            for (std::size_t m = 0; m < mem_steps; ++m) {
                const double t = total[m];
                row.seconds[base + m] = t;
                row.busyFrac[base + m] = t > 0.0 ? core_time / t : 1.0;
                row.bwUtil[base + m] = util[m];
                row.cpuEnergy[base + m] =
                    busy_dyn * core_time + stall_dyn * stall[m] +
                    static_power * (core_time + stall[m]);

                const DramFreqCoefficients &de = tables.dramEnergy[m];
                double background_power = de.activeBackground;
                if (power_down) {
                    const double u = std::clamp(util[m], 0.0, 1.0);
                    const double down_frac = (1.0 - u) * residency;
                    background_power =
                        de.activeBackground * (1.0 - down_frac) +
                        de.powerDownBackground * down_frac;
                }
                row.memEnergy[base + m] =
                    background_power * t +
                    de.activateEnergy * activates_d +
                    (de.readEnergy * reads_d +
                     de.writeEnergy * writes_d);
            }
        } else {
            // Three-domain strip: the CPU/memory fixed point above is
            // GPU-frequency-independent, so each (c, m) strip element
            // expands into a contiguous run of GPU steps (the GPU index
            // varies fastest in the flat setting order).  Kicks are
            // asynchronous: the sample ends when the slower of the CPU
            // side and the GPU finishes, the core draws only static
            // power while it waits, and the DRAM background window
            // stretches with the sample.
            for (std::size_t m = 0; m < mem_steps; ++m) {
                const double t = total[m];
                const double cpu_base =
                    busy_dyn * core_time + stall_dyn * stall[m] +
                    static_power * (core_time + stall[m]);

                const DramFreqCoefficients &de = tables.dramEnergy[m];
                double background_power = de.activeBackground;
                if (power_down) {
                    const double u = std::clamp(util[m], 0.0, 1.0);
                    const double down_frac = (1.0 - u) * residency;
                    background_power =
                        de.activeBackground * (1.0 - down_frac) +
                        de.powerDownBackground * down_frac;
                }

                const std::size_t gbase =
                    (base + m) * gpu_steps.size();
                for (std::size_t g = 0; g < gpu_steps.size(); ++g) {
                    const double gpu_time = gpu_work / gpu_steps[g];
                    const double t_final = std::max(t, gpu_time);
                    row.seconds[gbase + g] = t_final;
                    row.busyFrac[gbase + g] =
                        t_final > 0.0 ? core_time / t_final : 1.0;
                    row.bwUtil[gbase + g] = util[m];
                    row.cpuEnergy[gbase + g] =
                        cpu_base + static_power * (t_final - t);
                    row.memEnergy[gbase + g] =
                        background_power * t_final +
                        de.activateEnergy * activates_d +
                        (de.readEnergy * reads_d +
                         de.writeEnergy * writes_d);
                    const GpuOperatingPoint &gop = tables.gpuPower[g];
                    row.gpuEnergy[gbase + g] =
                        (gop.dynamicScale * gpu_act) * gpu_time +
                        (gop.background + gop.leakage) * t_final;
                }
            }
        }
    }

    // Fixed-point work accounting: the bandwidth branch runs the
    // damped iteration fixedPointIterations times over every
    // (cpu step, mem step) strip element.  Tallied per sample — one
    // atomic add, nothing in the vectorized loops.
    if (has_dram_time && tp.modelBandwidth) {
        gridMetrics().fixedPointIters.add(
            cpu_steps.size() * mem_steps *
            static_cast<std::size_t>(
                std::max(0, tp.fixedPointIterations)));
    }

    if (config_.measurementNoise > 0.0) {
        // Deterministic "simulation noise" on the measured quantities
        // (see SystemConfig::measurementNoise).  Wobble factors come
        // from one short-lived Rng per cell, seeded exactly as the
        // cell-at-a-time path seeded them, then applied in three flat
        // multiply passes over the row.
        const double amp = config_.measurementNoise;
        const std::uint64_t sample_hash =
            fnv1aMixWord(tables.workloadHash, sample);
        std::vector<double> wobble_sec(settings);
        std::vector<double> wobble_cpu(settings);
        std::vector<double> wobble_mem(settings);
        // The GPU column wobbles only on three-domain grids: each cell
        // gets a fresh Rng, so drawing a fourth factor never perturbs
        // the first three — two-domain noise is bit-for-bit unchanged.
        std::vector<double> wobble_gpu(has_gpu ? settings : 0);
        for (std::size_t k = 0; k < settings; ++k) {
            Rng noise(fnv1aMixWord(sample_hash, k));
            wobble_sec[k] = 1.0 + amp * (2.0 * noise.uniform() - 1.0);
            wobble_cpu[k] = 1.0 + amp * (2.0 * noise.uniform() - 1.0);
            wobble_mem[k] = 1.0 + amp * (2.0 * noise.uniform() - 1.0);
            if (has_gpu)
                wobble_gpu[k] =
                    1.0 + amp * (2.0 * noise.uniform() - 1.0);
        }
        for (std::size_t k = 0; k < settings; ++k)
            row.seconds[k] *= wobble_sec[k];
        for (std::size_t k = 0; k < settings; ++k)
            row.cpuEnergy[k] *= wobble_cpu[k];
        for (std::size_t k = 0; k < settings; ++k)
            row.memEnergy[k] *= wobble_mem[k];
        if (has_gpu) {
            for (std::size_t k = 0; k < settings; ++k)
                row.gpuEnergy[k] *= wobble_gpu[k];
        }
    }

    grid.updateSampleAggregates(sample);
}

} // namespace mcdvfs
