/**
 * @file
 * The grid kernel's per-setting fixed-point strip (timing model).
 *
 * For one (sample, cpu frequency) pair the kernel solves, per memory
 * frequency, the damped fixed point coupling total time, bandwidth
 * utilization and M/D/1-flavoured latency inflation, then floors the
 * result at the bandwidth bound and derives stall time and
 * utilization.  Each memory-frequency element evolves independently —
 * no cross-element coupling — so the iteration can run per element,
 * per vector lane, or iteration-outer across the strip and produce
 * identical bits per element.
 *
 * The scalar path below keeps the exact loop structure (and exact
 * expression order) of the original grid kernel.  The AVX2/NEON paths
 * hold four/two elements' totals in registers across every iteration
 * — the scalar code round-trips the strip through memory once per
 * iteration — and mirror the scalar expression order op for op:
 * min/max intrinsics select operands with the same tie semantics as
 * std::min/std::max, division is correctly rounded in both, and
 * MCDVFS_NATIVE's -ffp-contract=off forbids the compiler from fusing
 * either path differently.  Golden tests pin scalar == vector bit for
 * bit (tests/core_simd_golden_test.cc).
 */

#ifndef MCDVFS_SIM_STRIP_KERNEL_HH
#define MCDVFS_SIM_STRIP_KERNEL_HH

#include <algorithm>
#include <cstddef>

#include "common/simd.hh"

namespace mcdvfs
{
namespace strip
{

/** Per-(sample, cpu-step) invariants of the fixed-point strip. */
struct StripParams
{
    double coreTime = 0.0;      ///< compute time at this cpu step
    double demandFills = 0.0;   ///< demand fills per sample
    double mlp = 1.0;           ///< memory-level parallelism
    double trafficBytes = 0.0;  ///< DRAM traffic of the sample
    double cap = 0.0;           ///< bandwidth utilization cap
    int iterations = 0;         ///< damped fixed-point iterations
};

/**
 * One element's damped iteration + floor/stall/util, scalar.  The
 * expression order here is the contract every vector lane mirrors.
 */
inline void
fixedPointOne(double &total, double &stall, double &util,
              double base_lat, double usable_bw, const StripParams &p)
{
    for (int iter = 0; iter < p.iterations; ++iter) {
        const double rho = std::min(
            p.cap, p.trafficBytes / (total * usable_bw));
        // M/D/1-flavoured inflation of the service latency.
        const double inflated =
            base_lat * (1.0 + 0.5 * rho * rho / (1.0 - rho));
        const double next =
            p.coreTime + p.demandFills * inflated / p.mlp;
        total = 0.5 * (total + next);
    }
    // The stream can never move faster than the usable bandwidth.
    const double floored =
        std::max(total, p.trafficBytes / usable_bw);
    total = floored;
    stall = floored - p.coreTime;
    util = std::min(1.0, p.trafficBytes / (floored * usable_bw));
}

/** Scalar strip: the original iteration-outer grid-kernel loops. */
inline void
fixedPointStripScalar(double *total, double *stall, double *util,
                      const double *base_lat, const double *usable_bw,
                      std::size_t n, const StripParams &p)
{
    for (int iter = 0; iter < p.iterations; ++iter) {
        for (std::size_t m = 0; m < n; ++m) {
            const double rho = std::min(
                p.cap, p.trafficBytes / (total[m] * usable_bw[m]));
            const double inflated =
                base_lat[m] * (1.0 + 0.5 * rho * rho / (1.0 - rho));
            const double next =
                p.coreTime + p.demandFills * inflated / p.mlp;
            total[m] = 0.5 * (total[m] + next);
        }
    }
    for (std::size_t m = 0; m < n; ++m) {
        const double floored =
            std::max(total[m], p.trafficBytes / usable_bw[m]);
        total[m] = floored;
        stall[m] = floored - p.coreTime;
        util[m] = std::min(
            1.0, p.trafficBytes / (floored * usable_bw[m]));
    }
}

#if MCDVFS_SIMD_AVX2
/**
 * AVX2 strip: four elements per register, totals live in registers
 * across all iterations.  std::min(cap, q) maps to min_pd(q, cap) and
 * std::max(total, q) to max_pd(q, total) — both return the second
 * operand on ties, matching the std:: tie rules for these argument
 * orders.
 */
inline void
fixedPointStripAvx2(double *total, double *stall, double *util,
                    const double *base_lat, const double *usable_bw,
                    std::size_t n, const StripParams &p)
{
    const __m256d vcap = _mm256_set1_pd(p.cap);
    const __m256d vcore = _mm256_set1_pd(p.coreTime);
    const __m256d vfills = _mm256_set1_pd(p.demandFills);
    const __m256d vmlp = _mm256_set1_pd(p.mlp);
    const __m256d vtraffic = _mm256_set1_pd(p.trafficBytes);
    const __m256d vhalf = _mm256_set1_pd(0.5);
    const __m256d vone = _mm256_set1_pd(1.0);

    std::size_t m = 0;
    for (; m + 4 <= n; m += 4) {
        __m256d vtotal = _mm256_loadu_pd(total + m);
        const __m256d vbase = _mm256_loadu_pd(base_lat + m);
        const __m256d vbw = _mm256_loadu_pd(usable_bw + m);
        for (int iter = 0; iter < p.iterations; ++iter) {
            const __m256d vq = _mm256_div_pd(
                vtraffic, _mm256_mul_pd(vtotal, vbw));
            const __m256d vrho = _mm256_min_pd(vq, vcap);
            const __m256d vnum = _mm256_mul_pd(
                _mm256_mul_pd(vhalf, vrho), vrho);
            const __m256d vden = _mm256_sub_pd(vone, vrho);
            const __m256d vinflated = _mm256_mul_pd(
                vbase,
                _mm256_add_pd(vone, _mm256_div_pd(vnum, vden)));
            const __m256d vnext = _mm256_add_pd(
                vcore, _mm256_div_pd(
                           _mm256_mul_pd(vfills, vinflated), vmlp));
            vtotal = _mm256_mul_pd(
                vhalf, _mm256_add_pd(vtotal, vnext));
        }
        const __m256d vfloor_q = _mm256_div_pd(vtraffic, vbw);
        const __m256d vfloored = _mm256_max_pd(vfloor_q, vtotal);
        _mm256_storeu_pd(total + m, vfloored);
        _mm256_storeu_pd(stall + m,
                         _mm256_sub_pd(vfloored, vcore));
        const __m256d vutil_q = _mm256_div_pd(
            vtraffic, _mm256_mul_pd(vfloored, vbw));
        _mm256_storeu_pd(util + m, _mm256_min_pd(vutil_q, vone));
    }
    for (; m < n; ++m) {
        fixedPointOne(total[m], stall[m], util[m], base_lat[m],
                      usable_bw[m], p);
    }
}
#endif // MCDVFS_SIMD_AVX2

#if MCDVFS_SIMD_NEON
/** NEON strip: two elements per register, same op-order contract. */
inline void
fixedPointStripNeon(double *total, double *stall, double *util,
                    const double *base_lat, const double *usable_bw,
                    std::size_t n, const StripParams &p)
{
    const float64x2_t vcap = vdupq_n_f64(p.cap);
    const float64x2_t vcore = vdupq_n_f64(p.coreTime);
    const float64x2_t vfills = vdupq_n_f64(p.demandFills);
    const float64x2_t vmlp = vdupq_n_f64(p.mlp);
    const float64x2_t vtraffic = vdupq_n_f64(p.trafficBytes);
    const float64x2_t vhalf = vdupq_n_f64(0.5);
    const float64x2_t vone = vdupq_n_f64(1.0);

    std::size_t m = 0;
    for (; m + 2 <= n; m += 2) {
        float64x2_t vtotal = vld1q_f64(total + m);
        const float64x2_t vbase = vld1q_f64(base_lat + m);
        const float64x2_t vbw = vld1q_f64(usable_bw + m);
        for (int iter = 0; iter < p.iterations; ++iter) {
            const float64x2_t vq =
                vdivq_f64(vtraffic, vmulq_f64(vtotal, vbw));
            const float64x2_t vrho = vminq_f64(vq, vcap);
            const float64x2_t vnum =
                vmulq_f64(vmulq_f64(vhalf, vrho), vrho);
            const float64x2_t vden = vsubq_f64(vone, vrho);
            const float64x2_t vinflated = vmulq_f64(
                vbase, vaddq_f64(vone, vdivq_f64(vnum, vden)));
            const float64x2_t vnext = vaddq_f64(
                vcore,
                vdivq_f64(vmulq_f64(vfills, vinflated), vmlp));
            vtotal = vmulq_f64(vhalf, vaddq_f64(vtotal, vnext));
        }
        const float64x2_t vfloor_q = vdivq_f64(vtraffic, vbw);
        const float64x2_t vfloored = vmaxq_f64(vfloor_q, vtotal);
        vst1q_f64(total + m, vfloored);
        vst1q_f64(stall + m, vsubq_f64(vfloored, vcore));
        const float64x2_t vutil_q =
            vdivq_f64(vtraffic, vmulq_f64(vfloored, vbw));
        vst1q_f64(util + m, vminq_f64(vutil_q, vone));
    }
    for (; m < n; ++m) {
        fixedPointOne(total[m], stall[m], util[m], base_lat[m],
                      usable_bw[m], p);
    }
}
#endif // MCDVFS_SIMD_NEON

/** Dispatching strip entry point (runtime level, scalar fallback). */
inline void
fixedPointStrip(double *total, double *stall, double *util,
                const double *base_lat, const double *usable_bw,
                std::size_t n, const StripParams &p)
{
#if MCDVFS_SIMD_AVX2
    if (simd::haveAvx2()) {
        fixedPointStripAvx2(total, stall, util, base_lat, usable_bw,
                            n, p);
        return;
    }
#endif
#if MCDVFS_SIMD_NEON
    if (simd::haveNeon()) {
        fixedPointStripNeon(total, stall, util, base_lat, usable_bw,
                            n, p);
        return;
    }
#endif
    fixedPointStripScalar(total, stall, util, base_lat, usable_bw, n,
                          p);
}

} // namespace strip
} // namespace mcdvfs

#endif // MCDVFS_SIM_STRIP_KERNEL_HH
