/**
 * @file
 * The measured per-sample, per-setting performance/energy grid.
 *
 * A MeasuredGrid is the data product every analysis in the paper
 * consumes: for each sample s of a workload and each setting k of the
 * settings space, the sample's execution time and its CPU and memory
 * energy.  The paper's §III-C: "all our studies are performed using
 * measured performance and power data from the simulations" — the grid
 * is exactly that measured data.
 *
 * Storage is structure-of-arrays: one contiguous sample-major column
 * per measured quantity (seconds, cpuEnergy, memEnergy, busyFrac,
 * bwUtil), so the grid kernel writes and the analysis scans stream
 * sequential memory.  The cell() accessors remain as a compatibility
 * view assembling (or referencing) one cell's five quantities.
 *
 * Per-sample aggregates (Emin, slowest, fastest) are cached: the fill
 * kernel computes them row-by-row as it goes, and any later mutation
 * through a cell view invalidates the cache, which is then rebuilt
 * lazily on the next aggregate query.
 */

#ifndef MCDVFS_SIM_MEASURED_GRID_HH
#define MCDVFS_SIM_MEASURED_GRID_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/units.hh"
#include "dvfs/settings_space.hh"
#include "sim/sample_profile.hh"

namespace mcdvfs
{

/** Measured quantities of one (sample, setting) cell, as a value. */
struct GridCell
{
    Seconds seconds = 0.0;
    Joules cpuEnergy = 0.0;
    Joules memEnergy = 0.0;
    /** Fraction of the sample the core spent computing. */
    double busyFrac = 1.0;
    /** DRAM bandwidth utilization. */
    double bwUtil = 0.0;
    /** GPU-domain energy; 0 on two-domain grids. */
    Joules gpuEnergy = 0.0;

    /**
     * Total cell energy.  Association is fixed as (cpu + mem) + gpu
     * everywhere so two-domain grids (gpu == +0.0) keep their exact
     * historical bit patterns.
     */
    Joules energy() const { return (cpuEnergy + memEnergy) + gpuEnergy; }
};

/** Mutable view of one cell inside the SoA columns. */
class GridCellRef
{
  public:
    GridCellRef(double &seconds_ref, double &cpu_ref, double &mem_ref,
                double &busy_ref, double &bw_ref, double &gpu_ref)
        : seconds(seconds_ref), cpuEnergy(cpu_ref), memEnergy(mem_ref),
          busyFrac(busy_ref), bwUtil(bw_ref), gpuEnergy(gpu_ref)
    {}

    double &seconds;
    double &cpuEnergy;
    double &memEnergy;
    double &busyFrac;
    double &bwUtil;
    double &gpuEnergy;

    Joules energy() const { return (cpuEnergy + memEnergy) + gpuEnergy; }

    /** Assign all six quantities from a value cell. */
    GridCellRef &
    operator=(const GridCell &cell)
    {
        seconds = cell.seconds;
        cpuEnergy = cell.cpuEnergy;
        memEnergy = cell.memEnergy;
        busyFrac = cell.busyFrac;
        bwUtil = cell.bwUtil;
        gpuEnergy = cell.gpuEnergy;
        return *this;
    }

    /** Materialize a value cell from the view. */
    operator GridCell() const
    {
        return GridCell{seconds, cpuEnergy, memEnergy,
                        busyFrac, bwUtil,    gpuEnergy};
    }
};

/** Dense samples x settings grid with whole-run aggregates. */
class MeasuredGrid
{
  public:
    /**
     * Raw pointers into one sample's row of every column (fill API for
     * grid kernels).  Using a RowView does NOT invalidate the cached
     * aggregates — a fill kernel writing disjoint rows from several
     * threads must not touch shared state; it finishes each row with
     * updateSampleAggregates() and the whole fill with
     * sealAggregates().
     */
    struct RowView
    {
        double *seconds = nullptr;
        double *cpuEnergy = nullptr;
        double *memEnergy = nullptr;
        double *busyFrac = nullptr;
        double *bwUtil = nullptr;
        double *gpuEnergy = nullptr;
    };

    /**
     * @param workload workload name
     * @param space settings space the grid covers
     * @param samples number of samples
     * @param instructions_per_sample modeled instructions per sample
     */
    MeasuredGrid(std::string workload, SettingsSpace space,
                 std::size_t samples, Count instructions_per_sample);

    const std::string &workload() const { return workload_; }
    const SettingsSpace &space() const { return space_; }
    std::size_t sampleCount() const { return samples_; }
    std::size_t settingCount() const { return settings_; }
    Count instructionsPerSample() const { return instructionsPerSample_; }
    Count totalInstructions() const;

    /**
     * Mutable cell view (compatibility API).  Bounds-checked in all
     * build types; invalidates the cached per-sample aggregates.
     */
    GridCellRef cell(std::size_t sample, std::size_t setting);

    /** Immutable cell value (compatibility API, bounds-checked). */
    GridCell cell(std::size_t sample, std::size_t setting) const;

    /** @name Hot-path column accessors.
     *
     * Direct reads of one SoA column.  Index arithmetic is checked
     * only in debug builds (MCDVFS_DEBUG_ASSERT) so release scans pay
     * no branch.
     */
    ///@{
    Seconds
    secondsAt(std::size_t sample, std::size_t setting) const
    {
        return seconds_[fastIndex(sample, setting)];
    }

    Joules
    cpuEnergyAt(std::size_t sample, std::size_t setting) const
    {
        return cpuEnergy_[fastIndex(sample, setting)];
    }

    Joules
    memEnergyAt(std::size_t sample, std::size_t setting) const
    {
        return memEnergy_[fastIndex(sample, setting)];
    }

    Joules
    gpuEnergyAt(std::size_t sample, std::size_t setting) const
    {
        return gpuEnergy_[fastIndex(sample, setting)];
    }

    /**
     * Total (CPU + memory + GPU) energy of one cell.  Association is
     * fixed as (cpu + mem) + gpu: the GPU column is all +0.0 on
     * two-domain grids, and x + 0.0 == x bit-for-bit for the positive
     * finite energies here, so two-domain analyses are unchanged.
     */
    Joules
    energyAt(std::size_t sample, std::size_t setting) const
    {
        const std::size_t i = fastIndex(sample, setting);
        return (cpuEnergy_[i] + memEnergy_[i]) + gpuEnergy_[i];
    }

    double
    busyFracAt(std::size_t sample, std::size_t setting) const
    {
        return busyFrac_[fastIndex(sample, setting)];
    }

    double
    bwUtilAt(std::size_t sample, std::size_t setting) const
    {
        return bwUtil_[fastIndex(sample, setting)];
    }

    /** @name Read-side row accessors.
     *
     * Pointer to one sample's contiguous settings row of a column, for
     * analysis kernels that stream a whole row (performance clusters,
     * stable regions).  Same debug-only bounds policy as the cell
     * accessors.
     */
    ///@{
    const double *
    secondsRow(std::size_t sample) const
    {
        return seconds_.data() + fastIndex(sample, 0);
    }

    const double *
    cpuEnergyRow(std::size_t sample) const
    {
        return cpuEnergy_.data() + fastIndex(sample, 0);
    }

    const double *
    memEnergyRow(std::size_t sample) const
    {
        return memEnergy_.data() + fastIndex(sample, 0);
    }

    const double *
    gpuEnergyRow(std::size_t sample) const
    {
        return gpuEnergy_.data() + fastIndex(sample, 0);
    }
    ///@}

    /** @name Fill API (used by grid kernels). */
    ///@{
    /** Pointers to one sample's contiguous row of every column. */
    RowView fillRow(std::size_t sample);

    /**
     * Recompute the cached Emin/slowest/fastest of one sample from its
     * row (call after filling the row; safe to call concurrently for
     * distinct samples).
     */
    void updateSampleAggregates(std::size_t sample);

    /**
     * Mark the per-sample aggregate cache valid.  Call once after
     * every row was filled and aggregated.
     */
    void sealAggregates() { aggregatesValid_ = true; }
    ///@}

    /** Attach the characterization profiles (for CPI/MPKI reporting). */
    void setProfiles(std::vector<SampleProfile> profiles);

    /** Profile of one sample. */
    const SampleProfile &profile(std::size_t sample) const;

    /** True once profiles were attached. */
    bool hasProfiles() const { return !profiles_.empty(); }

    /** @name Per-sample aggregates (cached; rebuilt lazily). */
    ///@{
    /** Minimum energy of a sample over all settings (per-sample Emin). */
    Joules sampleEmin(std::size_t sample) const;
    /** Slowest execution of a sample over all settings. */
    Seconds sampleSlowest(std::size_t sample) const;
    /** Fastest execution of a sample over all settings. */
    Seconds sampleFastest(std::size_t sample) const;
    ///@}

    /** @name Whole-run aggregates (one fixed setting end to end). */
    ///@{
    Seconds totalTime(std::size_t setting) const;
    Joules totalEnergy(std::size_t setting) const;
    /** Brute-force whole-run Emin over all fixed settings. */
    Joules eminTotal() const;
    /** Longest whole-run execution time over all fixed settings. */
    Seconds slowestTotal() const;
    ///@}

    /**
     * Chained content digest of the first @c samples sample rows
     * (1 <= samples <= sampleCount()), over the analysis-relevant
     * columns (seconds, cpuEnergy, memEnergy) plus the settings-space
     * ladders.  Chaining makes prefixes self-identifying: a grid whose
     * first N rows are bit-identical to another grid's first N rows
     * yields the same prefixDigest(N) regardless of either grid's
     * total length — this is the key of the incremental analysis
     * checkpoints (svc::AnalysisCache).  Digests are computed lazily
     * once per grid, under a lock (grids are shared across daemon
     * batches), and invalidated by mutable cell() access.
     */
    std::uint64_t prefixDigest(std::size_t samples) const;

  private:
    std::size_t index(std::size_t sample, std::size_t setting) const;

    /** Unchecked-in-release flat index for the hot accessors. */
    std::size_t
    fastIndex(std::size_t sample, std::size_t setting) const
    {
        MCDVFS_DEBUG_ASSERT(sample < samples_, "sample index out of range");
        MCDVFS_DEBUG_ASSERT(setting < settings_,
                            "setting index out of range");
        return sample * settings_ + setting;
    }

    /** Rebuild every sample's cached aggregates (lazy refresh). */
    void refreshAggregates() const;

    std::string workload_;
    SettingsSpace space_;
    std::size_t samples_;
    std::size_t settings_;
    Count instructionsPerSample_;

    /** @name SoA columns, sample-major ([sample * settings + setting]). */
    ///@{
    std::vector<double> seconds_;
    std::vector<double> cpuEnergy_;
    std::vector<double> memEnergy_;
    std::vector<double> busyFrac_;
    std::vector<double> bwUtil_;
    std::vector<double> gpuEnergy_;
    ///@}

    /** @name Per-sample aggregate cache. */
    ///@{
    mutable std::vector<Joules> sampleEmin_;
    mutable std::vector<Seconds> sampleSlowest_;
    mutable std::vector<Seconds> sampleFastest_;
    mutable bool aggregatesValid_ = false;
    ///@}

    /** @name Chained row-digest cache (prefixDigest). */
    ///@{
    /** Held behind a shared_ptr so the grid stays copyable/movable. */
    mutable std::shared_ptr<std::mutex> digestMutex_ =
        std::make_shared<std::mutex>();
    /** digests_[s] = chained digest through sample s. */
    mutable std::vector<std::uint64_t> rowDigests_;
    mutable std::size_t digestedRows_ = 0;
    ///@}

    std::vector<SampleProfile> profiles_;
};

} // namespace mcdvfs

#endif // MCDVFS_SIM_MEASURED_GRID_HH
