/**
 * @file
 * The measured per-sample, per-setting performance/energy grid.
 *
 * A MeasuredGrid is the data product every analysis in the paper
 * consumes: for each sample s of a workload and each setting k of the
 * settings space, the sample's execution time and its CPU and memory
 * energy.  The paper's §III-C: "all our studies are performed using
 * measured performance and power data from the simulations" — the grid
 * is exactly that measured data.
 */

#ifndef MCDVFS_SIM_MEASURED_GRID_HH
#define MCDVFS_SIM_MEASURED_GRID_HH

#include <string>
#include <vector>

#include "common/units.hh"
#include "dvfs/settings_space.hh"
#include "sim/sample_profile.hh"

namespace mcdvfs
{

/** Measured quantities of one (sample, setting) cell. */
struct GridCell
{
    Seconds seconds = 0.0;
    Joules cpuEnergy = 0.0;
    Joules memEnergy = 0.0;
    /** Fraction of the sample the core spent computing. */
    double busyFrac = 1.0;
    /** DRAM bandwidth utilization. */
    double bwUtil = 0.0;

    Joules energy() const { return cpuEnergy + memEnergy; }
};

/** Dense samples x settings grid with whole-run aggregates. */
class MeasuredGrid
{
  public:
    /**
     * @param workload workload name
     * @param space settings space the grid covers
     * @param samples number of samples
     * @param instructions_per_sample modeled instructions per sample
     */
    MeasuredGrid(std::string workload, SettingsSpace space,
                 std::size_t samples, Count instructions_per_sample);

    const std::string &workload() const { return workload_; }
    const SettingsSpace &space() const { return space_; }
    std::size_t sampleCount() const { return samples_; }
    std::size_t settingCount() const { return space_.size(); }
    Count instructionsPerSample() const { return instructionsPerSample_; }
    Count totalInstructions() const;

    /** Mutable cell access (filled by GridRunner). */
    GridCell &cell(std::size_t sample, std::size_t setting);

    /** Immutable cell access. */
    const GridCell &cell(std::size_t sample, std::size_t setting) const;

    /** Attach the characterization profiles (for CPI/MPKI reporting). */
    void setProfiles(std::vector<SampleProfile> profiles);

    /** Profile of one sample. */
    const SampleProfile &profile(std::size_t sample) const;

    /** True once profiles were attached. */
    bool hasProfiles() const { return !profiles_.empty(); }

    /** @name Per-sample aggregates. */
    ///@{
    /** Minimum energy of a sample over all settings (per-sample Emin). */
    Joules sampleEmin(std::size_t sample) const;
    /** Slowest execution of a sample over all settings. */
    Seconds sampleSlowest(std::size_t sample) const;
    /** Fastest execution of a sample over all settings. */
    Seconds sampleFastest(std::size_t sample) const;
    ///@}

    /** @name Whole-run aggregates (one fixed setting end to end). */
    ///@{
    Seconds totalTime(std::size_t setting) const;
    Joules totalEnergy(std::size_t setting) const;
    /** Brute-force whole-run Emin over all fixed settings. */
    Joules eminTotal() const;
    /** Longest whole-run execution time over all fixed settings. */
    Seconds slowestTotal() const;
    ///@}

  private:
    std::size_t index(std::size_t sample, std::size_t setting) const;

    std::string workload_;
    SettingsSpace space_;
    std::size_t samples_;
    Count instructionsPerSample_;
    std::vector<GridCell> cells_;
    std::vector<SampleProfile> profiles_;
};

} // namespace mcdvfs

#endif // MCDVFS_SIM_MEASURED_GRID_HH
