/**
 * @file
 * End-to-end grid construction: characterize a workload once, then
 * evaluate timing and energy at every setting of a settings space.
 *
 * This mirrors the paper's methodology of one gem5 simulation per
 * setting, collapsed into one characterization pass plus a model
 * evaluation per setting (valid because the in-order core makes the
 * cache/DRAM event profile frequency-independent; DESIGN.md §5.1).
 *
 * Evaluation is a table-driven kernel (docs/PERF.md): per-setting
 * tables — DRAM latencies/bandwidth per memory frequency, power
 * coefficients per CPU operating point and per memory frequency — are
 * precomputed once per grid build, per-sample invariants are hoisted
 * out of the per-setting loop, and the inner loop runs over one
 * memory-ladder-sized strip at a time so the damped fixed point
 * vectorizes across settings.  The kernel is bit-identical to
 * cell-at-a-time evaluation (sim/reference_kernel.hh, asserted by
 * tests/sim_grid_runner_test.cc).
 */

#ifndef MCDVFS_SIM_GRID_RUNNER_HH
#define MCDVFS_SIM_GRID_RUNNER_HH

#include <memory>
#include <mutex>
#include <unordered_map>

#include "exec/thread_pool.hh"
#include "power/cpu_power.hh"
#include "power/dram_power.hh"
#include "power/gpu_power.hh"
#include "sim/measured_grid.hh"
#include "sim/sample_simulator.hh"
#include "sim/timing_model.hh"
#include "trace/workloads.hh"

namespace mcdvfs
{

/** Full system configuration for a characterization run. */
struct SystemConfig
{
    SampleSimulatorConfig sampler{};
    TimingParams timing{};
    CpuPowerParams cpuPower{};
    DramPowerParams dramPower{};
    /** GPU domain calibration; consulted only on three-domain spaces. */
    GpuPowerParams gpuPower{};

    /**
     * Relative measurement noise applied to every grid cell
     * (deterministic per cell).  Real measured grids are never
     * noise-free — this is why the paper filters speedup ties with a
     * 0.5% window — and boundary-hugging samples flipping between
     * adjacent settings is what its cluster machinery absorbs.  The
     * default amplitude keeps the worst-case pairwise perturbation
     * (2x the amplitude) inside the 0.5% tie window.
     */
    double measurementNoise = 0.002;

    /** The paper's configuration end to end. */
    static SystemConfig paperDefault() { return SystemConfig{}; }
};

class ProfileCache;

/** Builds MeasuredGrids for workloads. */
class GridRunner
{
  public:
    /** @throws FatalError on inconsistent configuration. */
    explicit GridRunner(const SystemConfig &config = {});

    /**
     * Characterize @c workload and measure it at every setting of
     * @c space.
     */
    MeasuredGrid run(const WorkloadProfile &workload,
                     const SettingsSpace &space);

    /**
     * Build a grid from pre-computed profiles (used when comparing
     * settings spaces over the same characterization, Fig. 12).
     */
    MeasuredGrid runWithProfiles(const std::string &workload_name,
                                 const std::vector<SampleProfile> &profiles,
                                 const SettingsSpace &space,
                                 Count instructions_per_sample);

    /**
     * Fan the per-setting model evaluation out over @c pool (non-owning;
     * nullptr restores the serial loop).  The characterization pass
     * stays single-pass either way, and every cell — including its
     * deterministic measurement noise — is a pure function of (workload,
     * sample, setting), so the parallel grid is bit-identical to the
     * serial one regardless of worker count or scheduling.
     */
    void setThreadPool(exec::ThreadPool *pool) { pool_ = pool; }

    /**
     * Attach a characterization memoization cache (non-owning; nullptr
     * detaches).  Passed through to the SampleSimulator run() creates,
     * switching it to canonical per-sample characterization — see
     * SampleSimulator::setProfileCache for the semantics.
     */
    void setProfileCache(ProfileCache *cache) { profileCache_ = cache; }

    const SystemConfig &config() const { return config_; }

  private:
    /**
     * Per-setting tables.  A pure function of (settings space, system
     * config); the config is fixed per runner, so built tables are
     * cached by space content and reused across builds
     * (sim.kernel.table_reuse).
     */
    struct Tables
    {
        /** Per-memory-frequency DRAM timing terms. */
        std::vector<MemTimingPoint> memTiming;
        /** Per-memory-frequency DRAM energy coefficients. */
        std::vector<DramFreqCoefficients> dramEnergy;
        /** Per-CPU-frequency power coefficients. */
        std::vector<CpuOperatingPoint> cpuPower;
        /** Per-GPU-frequency power coefficients (3-domain spaces). */
        std::vector<GpuOperatingPoint> gpuPower;
    };

    Tables buildTables(const SettingsSpace &space) const;

    /** Cached-table lookup (thread-safe; builds on first use). */
    std::shared_ptr<const Tables> tablesFor(
        const SettingsSpace &space) const;

    /**
     * Evaluate one profile's cells into @c row, pre-noise.  A pure
     * function of (profile bytes, space, instruction count, tables) —
     * the anchor of unique-row dedup.
     */
    void evaluateRow(const MeasuredGrid::RowView &row,
                     const SampleProfile &profile,
                     const SettingsSpace &space,
                     Count instructions_per_sample,
                     const Tables &tables) const;

    /**
     * Apply the deterministic per-cell measurement noise for
     * @c sample; seeds are exactly the cell-at-a-time path's, so a
     * scattered row is bit-identical to one evaluated in place.
     */
    void applyNoise(const MeasuredGrid::RowView &row, std::size_t sample,
                    std::uint64_t workload_hash, std::size_t settings,
                    bool has_gpu) const;

    /** Fill one sample's row of cells (safe to run concurrently). */
    void evaluateSample(MeasuredGrid &grid, const SampleProfile &profile,
                        std::size_t sample, const SettingsSpace &space,
                        Count instructions_per_sample,
                        const Tables &tables,
                        std::uint64_t workload_hash) const;

    SystemConfig config_;
    TimingModel timingModel_;
    CpuPowerModel cpuPower_;
    DramPowerModel dramPower_;
    GpuPowerModel gpuPower_;
    exec::ThreadPool *pool_ = nullptr;
    ProfileCache *profileCache_ = nullptr;

    /** @name Table cache, keyed by space content hash. */
    ///@{
    mutable std::mutex tablesMutex_;
    mutable std::unordered_map<std::uint64_t,
                               std::shared_ptr<const Tables>>
        tablesCache_;
    ///@}
};

} // namespace mcdvfs

#endif // MCDVFS_SIM_GRID_RUNNER_HH
