#include "sim/grid_io.hh"

#include <iomanip>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace mcdvfs
{

void
saveGrid(const MeasuredGrid &grid, std::ostream &os)
{
    os << "mcdvfs-grid v1\n";
    os << "workload " << grid.workload() << '\n';
    os << "samples " << grid.sampleCount() << " instructions "
       << grid.instructionsPerSample() << '\n';

    os << "cpu";
    for (const Hertz f : grid.space().cpuLadder().steps())
        os << ' ' << toMegaHertz(f);
    os << '\n';
    os << "mem";
    for (const Hertz f : grid.space().memLadder().steps())
        os << ' ' << toMegaHertz(f);
    os << '\n';

    os << std::setprecision(17);
    if (grid.hasProfiles()) {
        for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
            const SampleProfile &p = grid.profile(s);
            os << "profile " << s << ' ' << p.baseCpi << ' '
               << p.activity << ' ' << p.mlp << ' ' << p.l1Mpki << ' '
               << p.l2Mpki << ' ' << p.l2PerInstr << ' '
               << p.dramReadsPerInstr << ' ' << p.dramWritesPerInstr
               << ' ' << p.dramPrefetchPerInstr << ' '
               << p.rowHitFrac << ' ' << p.rowClosedFrac << ' '
               << p.rowConflictFrac << ' ' << p.phaseName << '\n';
        }
    }
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        for (std::size_t k = 0; k < grid.settingCount(); ++k) {
            const GridCell &cell = grid.cell(s, k);
            os << "cell " << s << ' ' << k << ' ' << cell.seconds << ' '
               << cell.cpuEnergy << ' ' << cell.memEnergy << ' '
               << cell.busyFrac << ' ' << cell.bwUtil << '\n';
        }
    }
}

std::string
saveGridToString(const MeasuredGrid &grid)
{
    std::ostringstream os;
    saveGrid(grid, os);
    return os.str();
}

MeasuredGrid
loadGrid(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != "mcdvfs-grid v1")
        fatal("grid io: missing or unsupported header");

    std::string keyword;
    std::string workload;
    {
        std::getline(is, line);
        std::istringstream ls(line);
        if (!(ls >> keyword >> workload) || keyword != "workload")
            fatal("grid io: expected 'workload'");
    }

    std::size_t samples = 0;
    Count instructions = 0;
    {
        std::getline(is, line);
        std::istringstream ls(line);
        std::string kw2;
        if (!(ls >> keyword >> samples >> kw2 >> instructions) ||
            keyword != "samples" || kw2 != "instructions") {
            fatal("grid io: expected 'samples N instructions M'");
        }
    }

    auto read_ladder = [&is, &line](const char *name) {
        std::getline(is, line);
        std::istringstream ls(line);
        std::string kw;
        if (!(ls >> kw) || kw != name)
            fatal("grid io: expected '", name, "' ladder");
        std::vector<Hertz> steps;
        double mhz = 0.0;
        while (ls >> mhz)
            steps.push_back(megaHertz(mhz));
        return FrequencyLadder(std::move(steps));
    };
    FrequencyLadder cpu = read_ladder("cpu");
    FrequencyLadder mem = read_ladder("mem");

    MeasuredGrid grid(workload,
                      SettingsSpace(std::move(cpu), std::move(mem)),
                      samples, instructions);

    std::vector<SampleProfile> profiles;
    std::size_t cells_read = 0;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        ls >> keyword;
        if (keyword == "profile") {
            SampleProfile p;
            std::size_t s = 0;
            if (!(ls >> s >> p.baseCpi >> p.activity >> p.mlp >>
                  p.l1Mpki >> p.l2Mpki >> p.l2PerInstr >>
                  p.dramReadsPerInstr >> p.dramWritesPerInstr >>
                  p.dramPrefetchPerInstr >> p.rowHitFrac >>
                  p.rowClosedFrac >> p.rowConflictFrac >>
                  p.phaseName)) {
                fatal("grid io: malformed profile line");
            }
            if (s != profiles.size())
                fatal("grid io: profiles out of order");
            profiles.push_back(std::move(p));
        } else if (keyword == "cell") {
            std::size_t s = 0;
            std::size_t k = 0;
            GridCell cell;
            if (!(ls >> s >> k >> cell.seconds >> cell.cpuEnergy >>
                  cell.memEnergy >> cell.busyFrac >> cell.bwUtil)) {
                fatal("grid io: malformed cell line");
            }
            if (s >= samples || k >= grid.settingCount())
                fatal("grid io: cell index out of range");
            grid.cell(s, k) = cell;
            ++cells_read;
        } else {
            fatal("grid io: unexpected token '", keyword, "'");
        }
    }
    if (cells_read != samples * grid.settingCount())
        fatal("grid io: expected ", samples * grid.settingCount(),
              " cells, got ", cells_read);
    if (!profiles.empty())
        grid.setProfiles(std::move(profiles));
    return grid;
}

MeasuredGrid
loadGridFromString(const std::string &text)
{
    std::istringstream is(text);
    return loadGrid(is);
}

} // namespace mcdvfs
