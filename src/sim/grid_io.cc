#include "sim/grid_io.hh"

#include <cstring>
#include <iomanip>
#include <limits>
#include <sstream>
#include <vector>

#include "common/binio.hh"
#include "common/hash.hh"
#include "common/logging.hh"

namespace mcdvfs
{

void
saveGrid(const MeasuredGrid &grid, std::ostream &os)
{
    // Two-domain grids keep the historical v1 bytes; three-domain
    // grids write v2, which adds the GPU ladder line, two GPU profile
    // fields, and a sixth cell column.
    const bool has_gpu = grid.space().hasGpu();
    os << (has_gpu ? "mcdvfs-grid v2\n" : "mcdvfs-grid v1\n");
    os << "workload " << grid.workload() << '\n';
    os << "samples " << grid.sampleCount() << " instructions "
       << grid.instructionsPerSample() << '\n';

    os << "cpu";
    for (const Hertz f : grid.space().cpuLadder().steps())
        os << ' ' << toMegaHertz(f);
    os << '\n';
    os << "mem";
    for (const Hertz f : grid.space().memLadder().steps())
        os << ' ' << toMegaHertz(f);
    os << '\n';
    if (has_gpu) {
        os << "gpu";
        for (const Hertz f : grid.space().gpuLadder().steps())
            os << ' ' << toMegaHertz(f);
        os << '\n';
    }

    os << std::setprecision(17);
    if (grid.hasProfiles()) {
        for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
            const SampleProfile &p = grid.profile(s);
            os << "profile " << s << ' ' << p.baseCpi << ' '
               << p.activity << ' ' << p.mlp << ' ' << p.l1Mpki << ' '
               << p.l2Mpki << ' ' << p.l2PerInstr << ' '
               << p.dramReadsPerInstr << ' ' << p.dramWritesPerInstr
               << ' ' << p.dramPrefetchPerInstr << ' '
               << p.rowHitFrac << ' ' << p.rowClosedFrac << ' '
               << p.rowConflictFrac;
            if (has_gpu)
                os << ' ' << p.gpuWorkPerInstr << ' '
                   << p.gpuActivity;
            os << ' ' << p.phaseName << '\n';
        }
    }
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        for (std::size_t k = 0; k < grid.settingCount(); ++k) {
            const GridCell &cell = grid.cell(s, k);
            os << "cell " << s << ' ' << k << ' ' << cell.seconds << ' '
               << cell.cpuEnergy << ' ' << cell.memEnergy << ' '
               << cell.busyFrac << ' ' << cell.bwUtil;
            if (has_gpu)
                os << ' ' << cell.gpuEnergy;
            os << '\n';
        }
    }
}

std::string
saveGridToString(const MeasuredGrid &grid)
{
    std::ostringstream os;
    saveGrid(grid, os);
    return os.str();
}

MeasuredGrid
loadGrid(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) ||
        (line != "mcdvfs-grid v1" && line != "mcdvfs-grid v2"))
        fatal("grid io: missing or unsupported header");
    const bool has_gpu = line == "mcdvfs-grid v2";

    std::string keyword;
    std::string workload;
    {
        std::getline(is, line);
        std::istringstream ls(line);
        if (!(ls >> keyword >> workload) || keyword != "workload")
            fatal("grid io: expected 'workload'");
    }

    std::size_t samples = 0;
    Count instructions = 0;
    {
        std::getline(is, line);
        std::istringstream ls(line);
        std::string kw2;
        if (!(ls >> keyword >> samples >> kw2 >> instructions) ||
            keyword != "samples" || kw2 != "instructions") {
            fatal("grid io: expected 'samples N instructions M'");
        }
    }

    auto read_ladder = [&is, &line](const char *name) {
        std::getline(is, line);
        std::istringstream ls(line);
        std::string kw;
        if (!(ls >> kw) || kw != name)
            fatal("grid io: expected '", name, "' ladder");
        std::vector<Hertz> steps;
        double mhz = 0.0;
        while (ls >> mhz)
            steps.push_back(megaHertz(mhz));
        return FrequencyLadder(std::move(steps));
    };
    FrequencyLadder cpu = read_ladder("cpu");
    FrequencyLadder mem = read_ladder("mem");
    SettingsSpace space =
        has_gpu ? SettingsSpace(std::move(cpu), std::move(mem),
                                read_ladder("gpu"))
                : SettingsSpace(std::move(cpu), std::move(mem));

    MeasuredGrid grid(workload, std::move(space), samples, instructions);

    std::vector<SampleProfile> profiles;
    std::size_t cells_read = 0;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        ls >> keyword;
        if (keyword == "profile") {
            SampleProfile p;
            std::size_t s = 0;
            if (!(ls >> s >> p.baseCpi >> p.activity >> p.mlp >>
                  p.l1Mpki >> p.l2Mpki >> p.l2PerInstr >>
                  p.dramReadsPerInstr >> p.dramWritesPerInstr >>
                  p.dramPrefetchPerInstr >> p.rowHitFrac >>
                  p.rowClosedFrac >> p.rowConflictFrac)) {
                fatal("grid io: malformed profile line");
            }
            if (has_gpu &&
                !(ls >> p.gpuWorkPerInstr >> p.gpuActivity))
                fatal("grid io: malformed profile line");
            if (!(ls >> p.phaseName))
                fatal("grid io: malformed profile line");
            if (s != profiles.size())
                fatal("grid io: profiles out of order");
            profiles.push_back(std::move(p));
        } else if (keyword == "cell") {
            std::size_t s = 0;
            std::size_t k = 0;
            GridCell cell;
            if (!(ls >> s >> k >> cell.seconds >> cell.cpuEnergy >>
                  cell.memEnergy >> cell.busyFrac >> cell.bwUtil)) {
                fatal("grid io: malformed cell line");
            }
            if (has_gpu && !(ls >> cell.gpuEnergy))
                fatal("grid io: malformed cell line");
            if (s >= samples || k >= grid.settingCount())
                fatal("grid io: cell index out of range");
            grid.cell(s, k) = cell;
            ++cells_read;
        } else {
            fatal("grid io: unexpected token '", keyword, "'");
        }
    }
    if (cells_read != samples * grid.settingCount())
        fatal("grid io: expected ", samples * grid.settingCount(),
              " cells, got ", cells_read);
    if (!profiles.empty())
        grid.setProfiles(std::move(profiles));
    return grid;
}

MeasuredGrid
loadGridFromString(const std::string &text)
{
    std::istringstream is(text);
    return loadGrid(is);
}

namespace
{

/** Checksum guarding a binary payload (byte-wise FNV-1a). */
std::uint64_t
payloadChecksum(const std::string &payload)
{
    std::uint64_t hash = kFnvOffsetBasis;
    for (const char c : payload)
        hash = fnv1aByte(hash, static_cast<std::uint8_t>(c));
    return hash;
}

/**
 * Upper bound on a plausible payload (a fine-space grid of thousands
 * of samples is tens of MiB); a corrupted length word must not turn
 * into a multi-GiB allocation.
 */
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 31;

/** Serialize the grid body (everything after the container header). */
std::string
gridPayload(const MeasuredGrid &grid)
{
    // Two-domain grids produce the historical v1 payload byte for
    // byte; the GPU ladder, the two GPU profile fields and the sixth
    // cell column exist only in v2 payloads.
    const bool has_gpu = grid.space().hasGpu();
    ByteWriter w;
    w.str(grid.workload());
    w.u64(grid.sampleCount());
    w.u64(grid.instructionsPerSample());

    const auto write_ladder = [&w](const FrequencyLadder &ladder) {
        w.u32(static_cast<std::uint32_t>(ladder.size()));
        for (const Hertz f : ladder.steps())
            w.f64(f);
    };
    write_ladder(grid.space().cpuLadder());
    write_ladder(grid.space().memLadder());
    if (has_gpu)
        write_ladder(grid.space().gpuLadder());

    w.u8(grid.hasProfiles() ? 1 : 0);
    if (grid.hasProfiles()) {
        for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
            const SampleProfile &p = grid.profile(s);
            w.str(p.phaseName);
            w.f64(p.baseCpi);
            w.f64(p.activity);
            w.f64(p.mlp);
            w.f64(p.l1Mpki);
            w.f64(p.l2Mpki);
            w.f64(p.l2PerInstr);
            w.f64(p.dramReadsPerInstr);
            w.f64(p.dramWritesPerInstr);
            w.f64(p.dramPrefetchPerInstr);
            w.f64(p.rowHitFrac);
            w.f64(p.rowClosedFrac);
            w.f64(p.rowConflictFrac);
            if (has_gpu) {
                w.f64(p.gpuWorkPerInstr);
                w.f64(p.gpuActivity);
            }
        }
    }

    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        for (std::size_t k = 0; k < grid.settingCount(); ++k) {
            w.f64(grid.secondsAt(s, k));
            w.f64(grid.cpuEnergyAt(s, k));
            w.f64(grid.memEnergyAt(s, k));
            w.f64(grid.busyFracAt(s, k));
            w.f64(grid.bwUtilAt(s, k));
            if (has_gpu)
                w.f64(grid.gpuEnergyAt(s, k));
        }
    }
    return w.take();
}

/** Parse the grid body (payload already checksum-verified). */
MeasuredGrid
parseGridPayload(const std::string &payload, std::uint32_t version)
{
    const bool has_gpu = version >= 2;
    ByteReader r(payload, "grid snapshot");

    std::string workload = r.str();
    const std::uint64_t samples = r.u64();
    const Count instructions = r.u64();

    const auto read_ladder = [&r](const char *name) {
        const std::uint32_t count = r.u32();
        if (count == 0 || count > 1'000'000)
            fatal("grid snapshot: implausible ", name, " ladder size ",
                  count);
        std::vector<Hertz> steps;
        steps.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i)
            steps.push_back(r.f64());
        return FrequencyLadder(std::move(steps));
    };
    FrequencyLadder cpu = read_ladder("cpu");
    FrequencyLadder mem = read_ladder("mem");
    SettingsSpace space =
        has_gpu ? SettingsSpace(std::move(cpu), std::move(mem),
                                read_ladder("gpu"))
                : SettingsSpace(std::move(cpu), std::move(mem));

    const std::size_t settings = space.size();
    const std::size_t doubles_per_cell = has_gpu ? 6 : 5;
    if (samples >
        kMaxPayloadBytes / sizeof(double) / doubles_per_cell / settings)
        fatal("grid snapshot: implausible sample count ", samples);

    MeasuredGrid grid(std::move(workload), std::move(space),
                      static_cast<std::size_t>(samples), instructions);

    const std::uint8_t has_profiles = r.u8();
    if (has_profiles > 1)
        fatal("grid snapshot: corrupt profile marker ",
              static_cast<unsigned>(has_profiles));
    if (has_profiles == 1) {
        std::vector<SampleProfile> profiles(samples);
        for (std::uint64_t s = 0; s < samples; ++s) {
            SampleProfile &p = profiles[s];
            p.phaseName = r.str();
            p.baseCpi = r.f64();
            p.activity = r.f64();
            p.mlp = r.f64();
            p.l1Mpki = r.f64();
            p.l2Mpki = r.f64();
            p.l2PerInstr = r.f64();
            p.dramReadsPerInstr = r.f64();
            p.dramWritesPerInstr = r.f64();
            p.dramPrefetchPerInstr = r.f64();
            p.rowHitFrac = r.f64();
            p.rowClosedFrac = r.f64();
            p.rowConflictFrac = r.f64();
            if (has_gpu) {
                p.gpuWorkPerInstr = r.f64();
                p.gpuActivity = r.f64();
            }
        }
        grid.setProfiles(std::move(profiles));
    }

    for (std::uint64_t s = 0; s < samples; ++s) {
        MeasuredGrid::RowView row = grid.fillRow(s);
        for (std::size_t k = 0; k < settings; ++k) {
            row.seconds[k] = r.f64();
            row.cpuEnergy[k] = r.f64();
            row.memEnergy[k] = r.f64();
            row.busyFrac[k] = r.f64();
            row.bwUtil[k] = r.f64();
            if (has_gpu)
                row.gpuEnergy[k] = r.f64();
        }
        grid.updateSampleAggregates(s);
    }
    grid.sealAggregates();
    r.expectEnd();
    return grid;
}

} // namespace

void
saveGridBinary(const MeasuredGrid &grid, std::ostream &os)
{
    const std::string payload = gridPayload(grid);
    ByteWriter header;
    for (const char c : kGridBinaryMagic)
        header.u8(static_cast<std::uint8_t>(c));
    header.u32(grid.space().hasGpu() ? 2 : 1);
    header.u64(payload.size());
    header.u64(payloadChecksum(payload));
    os.write(header.bytes().data(),
             static_cast<std::streamsize>(header.bytes().size()));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!os)
        fatal("grid snapshot: write failed");
}

std::string
saveGridBinaryToString(const MeasuredGrid &grid)
{
    std::ostringstream os;
    saveGridBinary(grid, os);
    return os.str();
}

MeasuredGrid
loadGridBinary(std::istream &is)
{
    char magic[sizeof(kGridBinaryMagic)] = {};
    is.read(magic, sizeof(magic));
    if (is.gcount() != sizeof(magic))
        fatal("grid snapshot: truncated header (", is.gcount(),
              " of ", sizeof(magic), " magic bytes)");
    if (std::memcmp(magic, kGridBinaryMagic, sizeof(magic)) != 0)
        fatal("grid snapshot: bad magic (not a binary grid snapshot)");

    char fixed[4 + 8 + 8] = {};
    is.read(fixed, sizeof(fixed));
    if (is.gcount() != sizeof(fixed))
        fatal("grid snapshot: truncated header fields");
    ByteReader header(std::string_view(fixed, sizeof(fixed)),
                      "grid snapshot header");
    const std::uint32_t version = header.u32();
    if (version < 1 || version > kGridBinaryVersion)
        fatal("grid snapshot: unsupported version ", version,
              " (expected 1..", kGridBinaryVersion, ")");
    const std::uint64_t payload_size = header.u64();
    const std::uint64_t checksum = header.u64();
    if (payload_size > kMaxPayloadBytes)
        fatal("grid snapshot: implausible payload size ", payload_size);

    std::string payload(static_cast<std::size_t>(payload_size), '\0');
    is.read(payload.data(),
            static_cast<std::streamsize>(payload.size()));
    if (static_cast<std::uint64_t>(is.gcount()) != payload_size)
        fatal("grid snapshot: truncated payload (expected ",
              payload_size, " bytes, got ", is.gcount(), ")");
    if (payloadChecksum(payload) != checksum)
        fatal("grid snapshot: checksum mismatch (corrupt snapshot)");
    return parseGridPayload(payload, version);
}

MeasuredGrid
loadGridBinaryFromString(const std::string &bytes)
{
    std::istringstream is(bytes);
    return loadGridBinary(is);
}

} // namespace mcdvfs
