#include "sim/timing_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mcdvfs
{

TimingModel::TimingModel(const TimingParams &params)
    : params_(params)
{
    params_.dramConfig.validate();
    if (params_.bwUtilizationCap <= 0.0 || params_.bwUtilizationCap >= 1.0)
        fatal("timing model: bwUtilizationCap must be in (0,1)");
    if (params_.fixedPointIterations < 1)
        fatal("timing model: need at least one fixed-point iteration");
}

SampleTiming
TimingModel::evaluate(const SampleProfile &profile,
                      const FrequencySetting &setting,
                      Count instructions) const
{
    if (setting.cpu <= 0.0 || setting.mem <= 0.0)
        fatal("timing model: frequencies must be positive, got ",
              setting.label());

    const double n = static_cast<double>(instructions);

    const double core_cpi = coreCpi(profile);
    const Seconds core_time = n * core_cpi / setting.cpu;

    SampleTiming timing;
    timing.busy = core_time;

    const double dram_per_instr = profile.dramPerInstr();
    if (dram_per_instr <= 0.0 || instructions == 0) {
        timing.total = core_time;
        timing.stall = 0.0;
        timing.bwUtil = 0.0;
        return timing;
    }

    // Uncontended per-fill latency, weighted by row-buffer outcome.
    const DramTiming &dt = params_.dramTiming;
    const DramConfig &dc = params_.dramConfig;
    const Seconds base_latency =
        profile.rowHitFrac * dt.latency(RowOutcome::Hit, setting.mem, dc) +
        profile.rowClosedFrac *
            dt.latency(RowOutcome::Closed, setting.mem, dc) +
        profile.rowConflictFrac *
            dt.latency(RowOutcome::Conflict, setting.mem, dc);

    const double demand_fills = n * profile.dramReadsPerInstr;
    const double traffic_bytes =
        n * profile.trafficPerInstr() * static_cast<double>(dc.lineBytes);
    const double usable_bw = dt.usableBandwidth(setting.mem, dc);

    // Damped fixed point: utilization depends on total time, total
    // time depends on queueing inflation, which depends on
    // utilization.
    Seconds total = core_time + demand_fills * base_latency / profile.mlp;

    if (!params_.modelBandwidth) {
        // Ablation: pure latency model, no saturation.
        timing.total = total;
        timing.stall = total - core_time;
        timing.bwUtil =
            std::min(1.0, traffic_bytes / (total * usable_bw));
        return timing;
    }

    double rho = 0.0;
    for (int iter = 0; iter < params_.fixedPointIterations; ++iter) {
        rho = std::min(params_.bwUtilizationCap,
                       traffic_bytes / (total * usable_bw));
        // M/D/1-flavoured inflation of the service latency.
        const Seconds inflated =
            base_latency * (1.0 + 0.5 * rho * rho / (1.0 - rho));
        const Seconds next =
            core_time + demand_fills * inflated / profile.mlp;
        total = 0.5 * (total + next);
    }

    // The stream can never move faster than the usable bandwidth.
    total = std::max(total, traffic_bytes / usable_bw);

    timing.total = total;
    timing.stall = total - core_time;
    timing.bwUtil = std::min(1.0, traffic_bytes / (total * usable_bw));
    return timing;
}

double
TimingModel::coreCpi(const SampleProfile &profile) const
{
    // Core component: issue-limited cycles plus the exposed share of
    // L2 hit latency, all in the CPU clock domain.
    return profile.baseCpi + profile.l2PerInstr *
                                 static_cast<double>(
                                     params_.l2LatencyCycles) *
                                 params_.l2StallExposure;
}

std::vector<MemTimingPoint>
TimingModel::memTable(const FrequencyLadder &ladder) const
{
    const DramTiming &dt = params_.dramTiming;
    const DramConfig &dc = params_.dramConfig;
    std::vector<MemTimingPoint> table;
    table.reserve(ladder.size());
    for (const Hertz mem : ladder.steps()) {
        if (mem <= 0.0)
            fatal("timing model: frequencies must be positive");
        MemTimingPoint point;
        point.latencyHit = dt.latency(RowOutcome::Hit, mem, dc);
        point.latencyClosed = dt.latency(RowOutcome::Closed, mem, dc);
        point.latencyConflict = dt.latency(RowOutcome::Conflict, mem, dc);
        point.usableBandwidth = dt.usableBandwidth(mem, dc);
        table.push_back(point);
    }
    return table;
}

} // namespace mcdvfs
