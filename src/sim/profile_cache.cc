#include "sim/profile_cache.hh"

#include <algorithm>
#include <utility>

#include "common/hash.hh"
#include "common/logging.hh"

namespace mcdvfs
{

std::uint64_t
ProfileKey::combined() const
{
    // Byte-wise FNV-1a over the four component words: avalanche
    // quality matters here because the map hashes with the combined
    // digest and shards select by its low bits.
    std::uint64_t hash = kFnvOffsetBasis;
    for (const std::uint64_t part : {phase, seed, instructions, config})
        hash = fnv1aWordBytes(hash, part);
    return hash;
}

ProfileCache::ProfileCache(std::size_t capacity, std::size_t shards,
                           const std::string &metric_prefix)
    : capacity_(capacity)
{
    if (capacity == 0)
        fatal("ProfileCache capacity must be at least 1");
    if (shards == 0)
        fatal("ProfileCache shard count must be at least 1");
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    metricHits_ = reg.counter(metric_prefix + ".hits");
    metricMisses_ = reg.counter(metric_prefix + ".misses");
    metricEvictions_ = reg.counter(metric_prefix + ".evictions");
    metricInserts_ = reg.counter(metric_prefix + ".inserts");
    metricEntries_ = reg.gauge(metric_prefix + ".entries");
    // Same distribution rule as svc::GridCache: every shard gets
    // capacity >= 1 and the shard capacities sum to the total.
    shards = std::min(shards, capacity);
    const std::size_t base = capacity / shards;
    const std::size_t remainder = capacity % shards;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
        auto shard = std::make_unique<Shard>();
        shard->capacity = base + (i < remainder ? 1 : 0);
        shards_.push_back(std::move(shard));
    }
}

ProfileCache::~ProfileCache()
{
    // Return this instance's resident entries to the prefix gauge.
    std::size_t resident = 0;
    for (const auto &shard : shards_)
        resident += shard->lru.size();
    metricEntries_.add(-static_cast<std::int64_t>(resident));
}

ProfileCache::Shard &
ProfileCache::shardFor(const ProfileKey &key)
{
    return *shards_[key.combined() % shards_.size()];
}

std::shared_ptr<const SampleProfile>
ProfileCache::find(const ProfileKey &key)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key.combined());
    if (it == shard.index.end() || !(it->second->key == key)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        metricMisses_.add(1);
        return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    metricHits_.add(1);
    return it->second->profile;
}

void
ProfileCache::insert(const ProfileKey &key, SampleProfile profile)
{
    auto value = std::make_shared<const SampleProfile>(std::move(profile));
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::uint64_t digest = key.combined();
    metricInserts_.add(1);
    const auto it = shard.index.find(digest);
    if (it != shard.index.end()) {
        it->second->profile = std::move(value);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    if (shard.lru.size() >= shard.capacity) {
        const Entry &victim = shard.lru.back();
        shard.index.erase(victim.key.combined());
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
        metricEvictions_.add(1);
        metricEntries_.add(-1);
    }
    shard.lru.push_front(Entry{key, std::move(value)});
    shard.index.emplace(digest, shard.lru.begin());
    metricEntries_.add(1);
}

void
ProfileCache::clear()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        metricEntries_.add(
            -static_cast<std::int64_t>(shard->lru.size()));
        shard->lru.clear();
        shard->index.clear();
    }
}

ProfileCache::Stats
ProfileCache::stats() const
{
    Stats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        stats.entries += shard->lru.size();
    }
    return stats;
}

} // namespace mcdvfs
