/**
 * @file
 * Frequency-independent microarchitectural characteristics of one
 * sample (10 M-instruction window).
 *
 * The sample simulator produces one SampleProfile per sample by
 * running the sample's synthetic trace through the cache hierarchy and
 * the DRAM row-buffer classifier.  Because the CPU model is in-order
 * and the address stream is fixed, none of these quantities depend on
 * the frequency setting — which is what lets the timing model evaluate
 * all 70 (or 496) settings from a single characterization pass
 * (DESIGN.md §5.1).
 */

#ifndef MCDVFS_SIM_SAMPLE_PROFILE_HH
#define MCDVFS_SIM_SAMPLE_PROFILE_HH

#include <string>

#include "common/units.hh"

namespace mcdvfs
{

/** Per-instruction rates and phase attributes of one sample. */
struct SampleProfile
{
    std::string phaseName;

    /** @name Attributes inherited from the phase specification. */
    ///@{
    double baseCpi = 1.0;   ///< core CPI excluding cache/memory stalls
    double activity = 0.7;  ///< dynamic-power activity factor
    double mlp = 1.5;       ///< sustainable overlapping DRAM misses
    ///@}

    /** @name Measured GPU offload behaviour. */
    ///@{
    /**
     * GPU cycles of offloaded work per instruction (measured kick rate
     * times the phase's cycles per kick); 0 for CPU-only samples.
     */
    double gpuWorkPerInstr = 0.0;
    /** GPU dynamic-power activity factor while busy. */
    double gpuActivity = 0.0;
    ///@}

    /** @name Measured cache behaviour (per instruction / per kilo). */
    ///@{
    double l1Mpki = 0.0;          ///< L1 misses per 1000 instructions
    double l2Mpki = 0.0;          ///< L2 misses per 1000 instructions
    double l2PerInstr = 0.0;      ///< L2 accesses (L1 misses) per instr
    ///@}

    /** @name Measured DRAM behaviour. */
    ///@{
    double dramReadsPerInstr = 0.0;   ///< demand line fills per instr
    double dramWritesPerInstr = 0.0;  ///< writebacks per instr
    double dramPrefetchPerInstr = 0.0;  ///< prefetch fills per instr
    double rowHitFrac = 0.0;          ///< row-buffer hit fraction
    double rowClosedFrac = 0.0;       ///< closed-bank fraction
    double rowConflictFrac = 0.0;     ///< row-conflict fraction
    ///@}

    /** Demand DRAM transactions (fills + writebacks) per instr. */
    double
    dramPerInstr() const
    {
        return dramReadsPerInstr + dramWritesPerInstr;
    }

    /** All bus traffic per instruction, including prefetches. */
    double
    trafficPerInstr() const
    {
        return dramPerInstr() + dramPrefetchPerInstr;
    }
};

} // namespace mcdvfs

#endif // MCDVFS_SIM_SAMPLE_PROFILE_HH
