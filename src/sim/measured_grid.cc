#include "sim/measured_grid.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace mcdvfs
{

MeasuredGrid::MeasuredGrid(std::string workload, SettingsSpace space,
                           std::size_t samples,
                           Count instructions_per_sample)
    : workload_(std::move(workload)), space_(std::move(space)),
      samples_(samples), instructionsPerSample_(instructions_per_sample)
{
    if (samples_ == 0)
        fatal("measured grid: need at least one sample");
    if (instructionsPerSample_ == 0)
        fatal("measured grid: instructions per sample must be positive");
    cells_.assign(samples_ * space_.size(), GridCell{});
}

Count
MeasuredGrid::totalInstructions() const
{
    return instructionsPerSample_ * static_cast<Count>(samples_);
}

std::size_t
MeasuredGrid::index(std::size_t sample, std::size_t setting) const
{
    MCDVFS_ASSERT(sample < samples_, "sample index out of range");
    MCDVFS_ASSERT(setting < space_.size(), "setting index out of range");
    return sample * space_.size() + setting;
}

GridCell &
MeasuredGrid::cell(std::size_t sample, std::size_t setting)
{
    return cells_[index(sample, setting)];
}

const GridCell &
MeasuredGrid::cell(std::size_t sample, std::size_t setting) const
{
    return cells_[index(sample, setting)];
}

void
MeasuredGrid::setProfiles(std::vector<SampleProfile> profiles)
{
    if (profiles.size() != samples_)
        fatal("measured grid: profile count mismatch");
    profiles_ = std::move(profiles);
}

const SampleProfile &
MeasuredGrid::profile(std::size_t sample) const
{
    MCDVFS_ASSERT(sample < profiles_.size(),
                  "profiles not attached or sample out of range");
    return profiles_[sample];
}

Joules
MeasuredGrid::sampleEmin(std::size_t sample) const
{
    Joules best = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < space_.size(); ++k)
        best = std::min(best, cell(sample, k).energy());
    return best;
}

Seconds
MeasuredGrid::sampleSlowest(std::size_t sample) const
{
    Seconds worst = 0.0;
    for (std::size_t k = 0; k < space_.size(); ++k)
        worst = std::max(worst, cell(sample, k).seconds);
    return worst;
}

Seconds
MeasuredGrid::sampleFastest(std::size_t sample) const
{
    Seconds best = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < space_.size(); ++k)
        best = std::min(best, cell(sample, k).seconds);
    return best;
}

Seconds
MeasuredGrid::totalTime(std::size_t setting) const
{
    Seconds total = 0.0;
    for (std::size_t s = 0; s < samples_; ++s)
        total += cell(s, setting).seconds;
    return total;
}

Joules
MeasuredGrid::totalEnergy(std::size_t setting) const
{
    Joules total = 0.0;
    for (std::size_t s = 0; s < samples_; ++s)
        total += cell(s, setting).energy();
    return total;
}

Joules
MeasuredGrid::eminTotal() const
{
    Joules best = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < space_.size(); ++k)
        best = std::min(best, totalEnergy(k));
    return best;
}

Seconds
MeasuredGrid::slowestTotal() const
{
    Seconds worst = 0.0;
    for (std::size_t k = 0; k < space_.size(); ++k)
        worst = std::max(worst, totalTime(k));
    return worst;
}

} // namespace mcdvfs
