#include "sim/measured_grid.hh"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/hash.hh"
#include "common/logging.hh"

namespace mcdvfs
{

MeasuredGrid::MeasuredGrid(std::string workload, SettingsSpace space,
                           std::size_t samples,
                           Count instructions_per_sample)
    : workload_(std::move(workload)), space_(std::move(space)),
      samples_(samples), settings_(space_.size()),
      instructionsPerSample_(instructions_per_sample)
{
    if (samples_ == 0)
        fatal("measured grid: need at least one sample");
    if (instructionsPerSample_ == 0)
        fatal("measured grid: instructions per sample must be positive");
    const std::size_t cells = samples_ * settings_;
    seconds_.assign(cells, 0.0);
    cpuEnergy_.assign(cells, 0.0);
    memEnergy_.assign(cells, 0.0);
    busyFrac_.assign(cells, 1.0);
    bwUtil_.assign(cells, 0.0);
    gpuEnergy_.assign(cells, 0.0);
    sampleEmin_.assign(samples_, 0.0);
    sampleSlowest_.assign(samples_, 0.0);
    sampleFastest_.assign(samples_, 0.0);
}

Count
MeasuredGrid::totalInstructions() const
{
    return instructionsPerSample_ * static_cast<Count>(samples_);
}

std::size_t
MeasuredGrid::index(std::size_t sample, std::size_t setting) const
{
    MCDVFS_ASSERT(sample < samples_, "sample index out of range");
    MCDVFS_ASSERT(setting < settings_, "setting index out of range");
    return sample * settings_ + setting;
}

GridCellRef
MeasuredGrid::cell(std::size_t sample, std::size_t setting)
{
    const std::size_t i = index(sample, setting);
    // Handing out a mutable view may change any quantity.
    aggregatesValid_ = false;
    {
        std::lock_guard<std::mutex> lock(*digestMutex_);
        digestedRows_ = 0;
    }
    return GridCellRef(seconds_[i], cpuEnergy_[i], memEnergy_[i],
                       busyFrac_[i], bwUtil_[i], gpuEnergy_[i]);
}

GridCell
MeasuredGrid::cell(std::size_t sample, std::size_t setting) const
{
    const std::size_t i = index(sample, setting);
    return GridCell{seconds_[i], cpuEnergy_[i], memEnergy_[i],
                    busyFrac_[i], bwUtil_[i],   gpuEnergy_[i]};
}

MeasuredGrid::RowView
MeasuredGrid::fillRow(std::size_t sample)
{
    MCDVFS_ASSERT(sample < samples_, "sample index out of range");
    const std::size_t base = sample * settings_;
    return RowView{seconds_.data() + base,  cpuEnergy_.data() + base,
                   memEnergy_.data() + base, busyFrac_.data() + base,
                   bwUtil_.data() + base,    gpuEnergy_.data() + base};
}

void
MeasuredGrid::updateSampleAggregates(std::size_t sample)
{
    MCDVFS_ASSERT(sample < samples_, "sample index out of range");
    const std::size_t base = sample * settings_;
    Joules emin = std::numeric_limits<double>::infinity();
    Seconds slowest = 0.0;
    Seconds fastest = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < settings_; ++k) {
        emin = std::min(emin,
                        (cpuEnergy_[base + k] + memEnergy_[base + k]) +
                            gpuEnergy_[base + k]);
        slowest = std::max(slowest, seconds_[base + k]);
        fastest = std::min(fastest, seconds_[base + k]);
    }
    sampleEmin_[sample] = emin;
    sampleSlowest_[sample] = slowest;
    sampleFastest_[sample] = fastest;
}

void
MeasuredGrid::refreshAggregates() const
{
    // Const because aggregate queries are logically read-only; the
    // cache members are mutable.  Not safe against concurrent first
    // queries on a never-sealed grid — production grids are sealed by
    // the fill kernel before they are shared.
    MeasuredGrid &self = const_cast<MeasuredGrid &>(*this);
    for (std::size_t s = 0; s < samples_; ++s)
        self.updateSampleAggregates(s);
    aggregatesValid_ = true;
}

void
MeasuredGrid::setProfiles(std::vector<SampleProfile> profiles)
{
    if (profiles.size() != samples_)
        fatal("measured grid: profile count mismatch");
    profiles_ = std::move(profiles);
}

const SampleProfile &
MeasuredGrid::profile(std::size_t sample) const
{
    MCDVFS_ASSERT(sample < profiles_.size(),
                  "profiles not attached or sample out of range");
    return profiles_[sample];
}

Joules
MeasuredGrid::sampleEmin(std::size_t sample) const
{
    MCDVFS_ASSERT(sample < samples_, "sample index out of range");
    if (!aggregatesValid_)
        refreshAggregates();
    return sampleEmin_[sample];
}

Seconds
MeasuredGrid::sampleSlowest(std::size_t sample) const
{
    MCDVFS_ASSERT(sample < samples_, "sample index out of range");
    if (!aggregatesValid_)
        refreshAggregates();
    return sampleSlowest_[sample];
}

Seconds
MeasuredGrid::sampleFastest(std::size_t sample) const
{
    MCDVFS_ASSERT(sample < samples_, "sample index out of range");
    if (!aggregatesValid_)
        refreshAggregates();
    return sampleFastest_[sample];
}

Seconds
MeasuredGrid::totalTime(std::size_t setting) const
{
    MCDVFS_ASSERT(setting < settings_, "setting index out of range");
    Seconds total = 0.0;
    for (std::size_t s = 0; s < samples_; ++s)
        total += seconds_[s * settings_ + setting];
    return total;
}

Joules
MeasuredGrid::totalEnergy(std::size_t setting) const
{
    MCDVFS_ASSERT(setting < settings_, "setting index out of range");
    Joules total = 0.0;
    for (std::size_t s = 0; s < samples_; ++s) {
        const std::size_t i = s * settings_ + setting;
        total += (cpuEnergy_[i] + memEnergy_[i]) + gpuEnergy_[i];
    }
    return total;
}

Joules
MeasuredGrid::eminTotal() const
{
    Joules best = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < settings_; ++k)
        best = std::min(best, totalEnergy(k));
    return best;
}

Seconds
MeasuredGrid::slowestTotal() const
{
    Seconds worst = 0.0;
    for (std::size_t k = 0; k < settings_; ++k)
        worst = std::max(worst, totalTime(k));
    return worst;
}

std::uint64_t
MeasuredGrid::prefixDigest(std::size_t samples) const
{
    MCDVFS_ASSERT(samples >= 1 && samples <= samples_,
                  "digest prefix length out of range");
    std::lock_guard<std::mutex> lock(*digestMutex_);
    if (digestedRows_ < samples) {
        if (rowDigests_.size() < samples_)
            rowDigests_.resize(samples_);
        // Seed the chain with the settings-space content so prefixes
        // only collide across identical spaces (the §V tie-break reads
        // the setting frequencies, not just the measured columns).
        std::uint64_t chain;
        const bool has_gpu = space_.hasGpu();
        if (digestedRows_ == 0) {
            chain = fnv1aMixWord(kFnvOffsetBasis, settings_);
            for (const Hertz f : space_.cpuLadder().steps())
                chain = fnv1aMixWord(
                    chain, std::bit_cast<std::uint64_t>(f));
            for (const Hertz f : space_.memLadder().steps())
                chain = fnv1aMixWord(
                    chain, std::bit_cast<std::uint64_t>(f));
            // Three-domain grids additionally chain the GPU ladder
            // and column; two-domain digests are byte-for-byte what
            // they always were, so existing checkpoints stay valid.
            if (has_gpu) {
                for (const Hertz f : space_.gpuLadder().steps())
                    chain = fnv1aMixWord(
                        chain, std::bit_cast<std::uint64_t>(f));
            }
        } else {
            chain = rowDigests_[digestedRows_ - 1];
        }
        for (std::size_t s = digestedRows_; s < samples; ++s) {
            const std::size_t base = s * settings_;
            for (std::size_t k = 0; k < settings_; ++k) {
                chain = fnv1aMixWord(
                    chain,
                    std::bit_cast<std::uint64_t>(seconds_[base + k]));
                chain = fnv1aMixWord(
                    chain, std::bit_cast<std::uint64_t>(
                               cpuEnergy_[base + k]));
                chain = fnv1aMixWord(
                    chain, std::bit_cast<std::uint64_t>(
                               memEnergy_[base + k]));
                if (has_gpu)
                    chain = fnv1aMixWord(
                        chain, std::bit_cast<std::uint64_t>(
                                   gpuEnergy_[base + k]));
            }
            rowDigests_[s] = chain;
        }
        digestedRows_ = samples;
    }
    return rowDigests_[samples - 1];
}

} // namespace mcdvfs
