/**
 * @file
 * Sharded LRU cache of memoized characterizations.
 *
 * Characterizing one sample is the unit cost the paper's methodology
 * already pays only once per sample — but fleet workloads are phase
 * scripts whose samples repeat the same microarchitectural profiles
 * over and over.  ProfileCache keys a SampleProfile by the complete
 * set of characterization inputs — phase-spec fingerprint, trace seed,
 * simulated instruction count and sampler-config fingerprint — so a
 * SampleSimulator with a cache attached simulates each distinct
 * (phase, seed-class) once and replays the profile everywhere else,
 * within a workload and across workloads.
 *
 * Entries are only valid for *canonical* characterizations (caches and
 * bank state reset, deterministic warmup per miss): those are pure
 * functions of the key, so a hit is byte-identical to a recompute
 * regardless of what was characterized before it.  SampleSimulator
 * switches to canonical mode whenever a cache is attached.
 *
 * The shard/LRU structure mirrors svc::GridCache: per-shard mutexes,
 * shared_ptr values so eviction never invalidates a profile in use,
 * atomic counters.  The metric prefix is a constructor parameter so
 * the sim-layer cache ("sim.profile.*") and the service-wide cache
 * ("svc.profile.*") stay separately observable.
 */

#ifndef MCDVFS_SIM_PROFILE_CACHE_HH
#define MCDVFS_SIM_PROFILE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hh"
#include "sim/sample_profile.hh"

namespace mcdvfs
{

/** Complete identity of one canonical characterization. */
struct ProfileKey
{
    std::uint64_t phase = 0;         ///< PhaseSpec::fingerprint()
    std::uint64_t seed = 0;          ///< trace stream seed
    std::uint64_t instructions = 0;  ///< simulated instructions
    std::uint64_t config = 0;        ///< sampler-config fingerprint

    bool
    operator==(const ProfileKey &other) const
    {
        return phase == other.phase && seed == other.seed &&
               instructions == other.instructions &&
               config == other.config;
    }

    /** Combined 64-bit digest (shard selection and map hashing). */
    std::uint64_t combined() const;
};

/** Sharded, mutex-guarded LRU cache of canonical SampleProfiles. */
class ProfileCache
{
  public:
    /** Hit/miss/eviction counters (monotonic over the cache's life). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;
    };

    /**
     * @param capacity maximum cached profiles across all shards (>= 1)
     * @param shards number of independently locked shards (>= 1);
     *        per-shard capacities sum exactly to @c capacity
     * @param metric_prefix registry prefix for this instance's
     *        counters (e.g. "sim.profile" -> "sim.profile.hits")
     * @throws FatalError for a zero capacity or shard count
     */
    explicit ProfileCache(std::size_t capacity, std::size_t shards = 8,
                          const std::string &metric_prefix = "sim.profile");

    ~ProfileCache();

    /**
     * Look up a profile, refreshing its LRU position.  Counts a hit or
     * a miss; returns nullptr on miss.
     */
    std::shared_ptr<const SampleProfile> find(const ProfileKey &key);

    /**
     * Insert (or refresh) a profile, evicting the shard's least
     * recently used entry when the shard is full.
     */
    void insert(const ProfileKey &key, SampleProfile profile);

    /** Drop every entry (counters are kept). */
    void clear();

    Stats stats() const;
    std::size_t capacity() const { return capacity_; }
    std::size_t shardCount() const { return shards_.size(); }

  private:
    struct Entry
    {
        ProfileKey key;
        std::shared_ptr<const SampleProfile> profile;
    };

    /** One LRU list + index, guarded by its own mutex. */
    struct Shard
    {
        std::mutex mutex;
        /** Entries this shard may hold (shard capacities sum to
         *  the cache capacity). */
        std::size_t capacity = 1;
        /** Front = most recently used. */
        std::list<Entry> lru;
        std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
            index;
    };

    Shard &shardFor(const ProfileKey &key);

    std::size_t capacity_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};

    /** Registry handles under this instance's prefix. */
    obs::Counter metricHits_;
    obs::Counter metricMisses_;
    obs::Counter metricEvictions_;
    obs::Counter metricInserts_;
    obs::Gauge metricEntries_;
};

} // namespace mcdvfs

#endif // MCDVFS_SIM_PROFILE_CACHE_HH
