#include "sim/sample_simulator.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/logging.hh"
#include "sim/profile_cache.hh"
#include "trace/trace_generator.hh"

namespace mcdvfs
{

namespace
{

std::uint64_t
addCacheConfig(std::uint64_t h, const CacheConfig &cache)
{
    h = fnv1aString(h, cache.name);
    h = fnv1aWordBytes(h, cache.name.size());
    h = fnv1aWordBytes(h, cache.sizeBytes);
    h = fnv1aWordBytes(h, cache.associativity);
    h = fnv1aWordBytes(h, cache.lineBytes);
    h = fnv1aWordBytes(h, cache.latencyCycles);
    return h;
}

} // namespace

std::uint64_t
SampleSimulatorConfig::profileFingerprint() const
{
    std::uint64_t h = fnv1aString(kFnvOffsetBasis, "sampler-config-v1");
    h = addCacheConfig(h, hierarchy.l1);
    h = addCacheConfig(h, hierarchy.l2);
    h = fnv1aWordBytes(h, hierarchy.nextLinePrefetch ? 1 : 0);
    h = fnv1aWordBytes(h, dram.banks);
    h = fnv1aWordBytes(h, dram.rowBytes);
    h = fnv1aWordBytes(h, dram.busBytes);
    h = fnv1aWordBytes(h, dram.lineBytes);
    h = fnv1aWordBytes(h, profileWarmupInstructions);
    return h;
}

SampleSimulator::SampleSimulator(const SampleSimulatorConfig &config)
    : config_(config), hierarchy_(config.hierarchy), dram_(config.dram),
      configKey_(config.profileFingerprint())
{
    if (config_.simInstructionsPerSample == 0)
        fatal("sample simulator: simInstructionsPerSample must be > 0");
}

SampleProfile
SampleSimulator::runSample(const PhaseSpec &spec, std::uint64_t seed,
                           Count instructions)
{
    TraceGenerator gen(spec, seed);
    return profileFromSource(gen, instructions, spec);
}

SampleProfile
SampleSimulator::profileFromSource(TraceSource &gen, Count instructions,
                                   const PhaseSpec &spec)
{
    hierarchy_.clearStats();
    dram_.clearStats();

    Count dram_reads = 0;
    Count dram_writes = 0;
    Count dram_prefetch = 0;
    Count gpu_kicks = 0;
    for (Count i = 0; i < instructions; ++i) {
        const InstrRecord instr = gen.next();
        if (instr.kind == InstrKind::GpuKick) {
            ++gpu_kicks;
            continue;
        }
        if (!isMemory(instr.kind))
            continue;
        const bool is_write = instr.kind == InstrKind::Store;
        const HierarchyOutcome outcome =
            hierarchy_.access(instr.addr, is_write);
        for (std::uint8_t d = 0; d < outcome.dramCount; ++d) {
            const DramRequest &req = outcome.dram[d];
            dram_.access(req.addr, req.isWrite);
            if (req.isWrite)
                ++dram_writes;
            else if (req.isPrefetch)
                ++dram_prefetch;
            else
                ++dram_reads;
        }
    }

    const auto &l1 = hierarchy_.l1().stats();
    const auto &l2 = hierarchy_.l2().stats();
    const auto &dram_stats = dram_.stats();
    const double n = static_cast<double>(instructions);

    SampleProfile profile;
    profile.phaseName = spec.name;
    profile.baseCpi = spec.baseCpi;
    profile.activity = spec.activity;
    profile.mlp = spec.mlp;
    profile.l1Mpki = 1000.0 * static_cast<double>(l1.misses()) / n;
    // L2 demand misses are the reads L2 forwarded to DRAM.
    profile.l2Mpki = 1000.0 * static_cast<double>(dram_reads) / n;
    profile.l2PerInstr = static_cast<double>(l1.misses()) / n;
    profile.dramReadsPerInstr = static_cast<double>(dram_reads) / n;
    profile.dramWritesPerInstr = static_cast<double>(dram_writes) / n;
    profile.dramPrefetchPerInstr =
        static_cast<double>(dram_prefetch) / n;
    profile.gpuWorkPerInstr =
        (static_cast<double>(gpu_kicks) / n) * spec.gpuCyclesPerKick;
    profile.gpuActivity = spec.gpuActivity;

    const Count dram_total = dram_stats.accesses();
    if (dram_total > 0) {
        const double dn = static_cast<double>(dram_total);
        profile.rowHitFrac =
            static_cast<double>(dram_stats.rowHits) / dn;
        profile.rowClosedFrac =
            static_cast<double>(dram_stats.rowClosed) / dn;
        profile.rowConflictFrac =
            static_cast<double>(dram_stats.rowConflicts) / dn;
    }
    (void)l2;
    return profile;
}

SampleProfile
SampleSimulator::characterizeCanonical(const PhaseSpec &spec,
                                       std::uint64_t seed,
                                       Count instructions)
{
    hierarchy_.reset();
    dram_.reset();
    // Deterministic per-phase warmup: same chunking and stream-seed
    // derivation as the sequential warmup, but over this phase alone,
    // so the measurement below depends on nothing but the arguments.
    Count remaining = config_.profileWarmupInstructions;
    std::size_t w = 0;
    while (remaining > 0) {
        const Count chunk = std::min(remaining, instructions);
        runSample(spec,
                  seed ^ (0x57a7ab1e0ddba11ull + w * 0x9e3779b97f4a7c15ull),
                  chunk);
        remaining -= chunk;
        ++w;
    }
    return runSample(spec, seed, instructions);
}

std::vector<SampleProfile>
SampleSimulator::characterize(const WorkloadProfile &workload)
{
    lastStats_ = CharacterizeStats{};
    if (cache_ == nullptr)
        return characterizeSequential(workload);

    std::vector<SampleProfile> profiles;
    profiles.reserve(workload.sampleCount());
    for (std::size_t s = 0; s < workload.sampleCount(); ++s) {
        const PhaseSpec spec = workload.phaseFor(s);
        const std::uint64_t seed = workload.traceSeedFor(s);
        ProfileKey key;
        key.phase = spec.fingerprint();
        key.seed = seed;
        key.instructions = config_.simInstructionsPerSample;
        key.config = configKey_;
        if (auto hit = cache_->find(key)) {
            ++lastStats_.cacheHits;
            profiles.push_back(*hit);
            continue;
        }
        ++lastStats_.cacheMisses;
        profiles.push_back(characterizeCanonical(
            spec, seed, config_.simInstructionsPerSample));
        cache_->insert(key, profiles.back());
    }
    return profiles;
}

std::vector<SampleProfile>
SampleSimulator::characterizeSequential(const WorkloadProfile &workload)
{
    hierarchy_.reset();
    dram_.reset();

    // Warm caches and row buffers by cycling through the first phases
    // without recording, so sample 0 is measured at steady state.
    const std::size_t warm_span =
        std::min<std::size_t>(8, workload.sampleCount());
    Count remaining = config_.warmupInstructions;
    std::size_t w = 0;
    while (remaining > 0) {
        const Count chunk =
            std::min(remaining, config_.simInstructionsPerSample);
        // Each warmup chunk gets a fresh stream seed: replaying the
        // same few streams would re-touch the same addresses and
        // leave large working sets cold.
        runSample(workload.phaseFor(w % warm_span),
                  workload.traceSeedFor(w % warm_span) ^
                      (0x57a7ab1e0ddba11ull + w * 0x9e3779b97f4a7c15ull),
                  chunk);
        remaining -= chunk;
        ++w;
    }

    std::vector<SampleProfile> profiles;
    profiles.reserve(workload.sampleCount());
    for (std::size_t s = 0; s < workload.sampleCount(); ++s) {
        profiles.push_back(runSample(workload.phaseFor(s),
                                     workload.traceSeedFor(s),
                                     config_.simInstructionsPerSample));
    }
    return profiles;
}

SampleProfile
SampleSimulator::characterizeOne(const PhaseSpec &spec, std::uint64_t seed,
                                 Count instructions)
{
    hierarchy_.reset();
    dram_.reset();
    return runSample(spec, seed, instructions);
}

SampleProfile
SampleSimulator::characterizeTrace(TraceSource &source,
                                   Count instructions,
                                   const PhaseSpec &meta)
{
    hierarchy_.reset();
    dram_.reset();
    return profileFromSource(source, instructions, meta);
}

} // namespace mcdvfs
