/**
 * @file
 * Mechanistic two-component timing model.
 *
 * Execution time of a sample at a joint (CPU, memory) frequency
 * setting is modelled as
 *
 *   T = core_time(f_cpu) + exposed_DRAM_time(f_mem, f_cpu)
 *
 * where core time covers issue-limited cycles plus partially exposed
 * L2 hit latency, and DRAM time is demand-fill latency divided by the
 * phase's memory-level parallelism, inflated by queueing as bandwidth
 * utilization approaches the usable peak.  Utilization itself depends
 * on T, so the model solves a damped fixed point — this is what
 * produces the CPU/memory interplay the paper calls "complex": raising
 * CPU frequency raises memory pressure, and lowering memory frequency
 * both lengthens latency and shrinks bandwidth.
 *
 * This is the same model family CoScale/MemScale use online; see
 * DESIGN.md for why the substitution preserves the paper's behaviour.
 */

#ifndef MCDVFS_SIM_TIMING_MODEL_HH
#define MCDVFS_SIM_TIMING_MODEL_HH

#include <vector>

#include "common/units.hh"
#include "dvfs/settings_space.hh"
#include "mem/cache_hierarchy.hh"
#include "mem/dram.hh"
#include "sim/sample_profile.hh"

namespace mcdvfs
{

/** Model calibration knobs. */
struct TimingParams
{
    /** Fraction of L2 hit latency the in-order core cannot hide. */
    double l2StallExposure = 0.7;
    /** Hard cap on modelled bandwidth utilization. */
    double bwUtilizationCap = 0.97;
    /** Fixed-point iterations (damped; converges in ~10). */
    int fixedPointIterations = 30;
    /**
     * Model bandwidth saturation (queueing inflation + throughput
     * floor).  Disabling reduces the model to a pure latency model —
     * the ablation DESIGN.md §5.1/§5.2 calls out.
     */
    bool modelBandwidth = true;

    DramTiming dramTiming{};
    DramConfig dramConfig{};
    /** L2 hit latency in CPU cycles (paper: 12). */
    std::uint32_t l2LatencyCycles = 12;
};

/** Timing of one sample at one setting. */
struct SampleTiming
{
    Seconds total = 0.0;  ///< wall-clock time of the sample
    Seconds busy = 0.0;   ///< core computing (incl. exposed L2)
    Seconds stall = 0.0;  ///< stalled on DRAM
    double bwUtil = 0.0;  ///< DRAM bandwidth utilization in [0,1]

    /** Effective cycles per instruction at @c f_cpu. */
    double
    cpi(Count instructions, Hertz f_cpu) const
    {
        return instructions
                   ? total * f_cpu / static_cast<double>(instructions)
                   : 0.0;
    }
};

/**
 * Frequency-dependent DRAM terms of one memory ladder step,
 * precomputed once per grid build so the grid kernel's inner loop is
 * pure arithmetic over preresolved doubles.
 */
struct MemTimingPoint
{
    Seconds latencyHit = 0.0;       ///< row-hit transaction latency
    Seconds latencyClosed = 0.0;    ///< closed-bank transaction latency
    Seconds latencyConflict = 0.0;  ///< row-conflict transaction latency
    double usableBandwidth = 0.0;   ///< attainable bytes/second
};

/** Evaluates sample time at any frequency setting. */
class TimingModel
{
  public:
    explicit TimingModel(const TimingParams &params = {});

    /**
     * Time @c instructions of behaviour @c profile at @c setting.
     *
     * @throws FatalError for non-positive frequencies
     */
    SampleTiming evaluate(const SampleProfile &profile,
                          const FrequencySetting &setting,
                          Count instructions) const;

    /**
     * Precompute the per-memory-frequency terms for every step of
     * @c ladder.  Each entry holds exactly the values evaluate()
     * derives per cell, so a kernel using the table is bit-identical
     * to cell-at-a-time evaluation.
     *
     * @throws FatalError for non-positive frequencies
     */
    std::vector<MemTimingPoint> memTable(const FrequencyLadder &ladder) const;

    /**
     * The frequency-independent core CPI of @c profile: issue-limited
     * cycles plus the exposed share of L2 hit latency (hoisted out of
     * the per-setting loop by the grid kernel).
     */
    double coreCpi(const SampleProfile &profile) const;

    const TimingParams &params() const { return params_; }

  private:
    TimingParams params_;
};

} // namespace mcdvfs

#endif // MCDVFS_SIM_TIMING_MODEL_HH
