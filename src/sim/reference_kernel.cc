#include "sim/reference_kernel.hh"

#include <algorithm>
#include <cmath>

#include "common/hash.hh"
#include "common/rng.hh"
#include "obs/metrics.hh"

namespace mcdvfs
{

namespace
{

/** Process-wide reference-path metrics (kernel-vs-reference split). */
struct ReferenceMetrics
{
    obs::Counter builds;
    obs::Counter cells;
    obs::Histogram buildNs;

    ReferenceMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        builds = reg.counter("sim.reference.builds");
        cells = reg.counter("sim.reference.cells_evaluated");
        buildNs = reg.histogram(
            "sim.reference.build_ns",
            obs::MetricsRegistry::latencyBucketsNs());
    }
};

ReferenceMetrics &
referenceMetrics()
{
    static ReferenceMetrics metrics;
    return metrics;
}

/** Deterministic per-cell seed mixing workload, sample and setting. */
std::uint64_t
cellSeed(const std::string &workload, std::size_t sample,
         std::size_t setting)
{
    std::uint64_t hash = fnv1aString(kFnvOffsetBasis, workload);
    hash = fnv1aMixWord(hash, sample);
    hash = fnv1aMixWord(hash, setting);
    return hash;
}

/** Evaluate one sample's row, one cell at a time. */
void
evaluateSampleReference(MeasuredGrid &grid, const SystemConfig &config,
                        const TimingModel &timing_model,
                        const CpuPowerModel &cpu_power,
                        const DramPowerModel &dram_power,
                        const GpuPowerModel &gpu_power,
                        const SampleProfile &profile, std::size_t sample,
                        const SettingsSpace &space,
                        Count instructions_per_sample)
{
    const double n = static_cast<double>(instructions_per_sample);
    const bool has_gpu = space.hasGpu();

    // Scale the per-instruction rates back up to the modeled
    // sample length for the DRAM energy accounting.
    DramStats dram_stats;
    const double reads =
        n * (profile.dramReadsPerInstr + profile.dramPrefetchPerInstr);
    const double writes = n * profile.dramWritesPerInstr;
    const double total = reads + writes;
    dram_stats.reads = static_cast<Count>(std::llround(reads));
    dram_stats.writes = static_cast<Count>(std::llround(writes));
    dram_stats.rowHits =
        static_cast<Count>(std::llround(total * profile.rowHitFrac));
    dram_stats.rowClosed = static_cast<Count>(
        std::llround(total * profile.rowClosedFrac));
    dram_stats.rowConflicts = static_cast<Count>(
        std::llround(total * profile.rowConflictFrac));

    // Write through the row pointers rather than the cell() view so a
    // parallel fill never touches the shared aggregate-cache flag.
    MeasuredGrid::RowView row = grid.fillRow(sample);

    for (std::size_t k = 0; k < space.size(); ++k) {
        const FrequencySetting setting = space.at(k);
        const SampleTiming timing = timing_model.evaluate(
            profile, setting, instructions_per_sample);

        if (!has_gpu) {
            row.seconds[k] = timing.total;
            row.busyFrac[k] =
                timing.total > 0.0 ? timing.busy / timing.total : 1.0;
            row.bwUtil[k] = timing.bwUtil;
            row.cpuEnergy[k] =
                cpu_power.energy(setting.cpu, profile.activity,
                                 timing.busy, timing.stall);
            row.memEnergy[k] =
                dram_power
                    .energy(dram_stats, setting.mem, timing.total,
                            timing.bwUtil)
                    .total();
        } else {
            // Third domain: the GPU's busy window depends only on its
            // own frequency; the sample ends when the slower side
            // finishes.  The core draws only static power over the
            // wait, the DRAM background window stretches with the
            // sample, and the GPU domain stays clocked throughout.
            const double gpu_time =
                n * profile.gpuWorkPerInstr / setting.gpu;
            const double t_final = std::max(timing.total, gpu_time);
            const CpuOperatingPoint op =
                cpu_power.operatingPoint(setting.cpu);
            row.seconds[k] = t_final;
            row.busyFrac[k] =
                t_final > 0.0 ? timing.busy / t_final : 1.0;
            row.bwUtil[k] = timing.bwUtil;
            row.cpuEnergy[k] =
                cpu_power.energy(setting.cpu, profile.activity,
                                 timing.busy, timing.stall) +
                (op.background + op.leakage) *
                    (t_final - timing.total);
            row.memEnergy[k] =
                dram_power
                    .energy(dram_stats, setting.mem, t_final,
                            timing.bwUtil)
                    .total();
            row.gpuEnergy[k] = gpu_power.energy(
                setting.gpu, profile.gpuActivity, gpu_time, t_final);
        }

        if (config.measurementNoise > 0.0) {
            // Deterministic "simulation noise" on the measured
            // quantities (see SystemConfig::measurementNoise).
            Rng noise(cellSeed(grid.workload(), sample, k));
            auto wobble = [&](double v) {
                return v * (1.0 + config.measurementNoise *
                                      (2.0 * noise.uniform() - 1.0));
            };
            row.seconds[k] = wobble(row.seconds[k]);
            row.cpuEnergy[k] = wobble(row.cpuEnergy[k]);
            row.memEnergy[k] = wobble(row.memEnergy[k]);
            if (has_gpu)
                row.gpuEnergy[k] = wobble(row.gpuEnergy[k]);
        }
    }

    grid.updateSampleAggregates(sample);
}

} // namespace

MeasuredGrid
referenceGridWithProfiles(const SystemConfig &config,
                          const std::string &workload_name,
                          const std::vector<SampleProfile> &profiles,
                          const SettingsSpace &space,
                          Count instructions_per_sample,
                          exec::ThreadPool *pool)
{
    const obs::Clock::time_point build_start = obs::metricsNow();
    const TimingModel timing_model(config.timing);
    const CpuPowerModel cpu_power(config.cpuPower, VoltageCurve::paperCpu());
    const DramPowerModel dram_power(config.dramPower,
                                    config.timing.dramTiming,
                                    config.timing.dramConfig);
    const GpuPowerModel gpu_power(config.gpuPower,
                                  GpuPowerModel::paperGpuCurve());

    MeasuredGrid grid(workload_name, space, profiles.size(),
                      instructions_per_sample);

    auto eval = [&](std::size_t s) {
        evaluateSampleReference(grid, config, timing_model, cpu_power,
                                dram_power, gpu_power, profiles[s], s,
                                space, instructions_per_sample);
    };
    if (pool != nullptr && pool->size() > 0 && profiles.size() > 1)
        pool->parallelFor(0, profiles.size(), eval);
    else
        for (std::size_t s = 0; s < profiles.size(); ++s)
            eval(s);

    grid.sealAggregates();
    grid.setProfiles(profiles);

    ReferenceMetrics &metrics = referenceMetrics();
    metrics.buildNs.record(obs::elapsedNs(build_start));
    metrics.builds.add(1);
    metrics.cells.add(profiles.size() * space.size());
    return grid;
}

MeasuredGrid
referenceGrid(const SystemConfig &config, const WorkloadProfile &workload,
              const SettingsSpace &space, exec::ThreadPool *pool)
{
    SampleSimulator simulator(config.sampler);
    const std::vector<SampleProfile> profiles =
        simulator.characterize(workload);
    return referenceGridWithProfiles(config, workload.name(), profiles,
                                     space,
                                     workload.modeledInstructionsPerSample(),
                                     pool);
}

} // namespace mcdvfs
