/**
 * @file
 * Trace-driven characterization of a workload's samples.
 *
 * For every sample of a WorkloadProfile, the simulator generates the
 * sample's deterministic instruction stream, pushes each memory
 * reference through the L1/L2 hierarchy, classifies resulting DRAM
 * transactions against the open-page bank model, and records the
 * frequency-independent rates in a SampleProfile.  Cache and DRAM bank
 * state persist across samples (warm), only the counters reset, as in
 * the paper's continuous gem5 runs.
 */

#ifndef MCDVFS_SIM_SAMPLE_SIMULATOR_HH
#define MCDVFS_SIM_SAMPLE_SIMULATOR_HH

#include <vector>

#include "common/units.hh"
#include "mem/cache_hierarchy.hh"
#include "mem/dram.hh"
#include "sim/sample_profile.hh"
#include "trace/trace_source.hh"
#include "trace/workloads.hh"

namespace mcdvfs
{

/** Characterization parameters. */
struct SampleSimulatorConfig
{
    /**
     * Dynamic instructions actually simulated per sample.  Each sample
     * *represents* 10 M instructions (the paper's window); simulating
     * a deterministic subset of this length and recording rates gives
     * the same per-instruction statistics at a fraction of the cost.
     */
    Count simInstructionsPerSample = 50'000;

    /**
     * Unrecorded instructions executed before sample 0 (cycling
     * through the workload's first phases) so caches and row buffers
     * reach steady state, as in the paper's post-boot measurements.
     */
    Count warmupInstructions = 4'000'000;

    HierarchyConfig hierarchy = HierarchyConfig::paperDefault();
    DramConfig dram{};
};

/** Runs the characterization pass over a workload. */
class SampleSimulator
{
  public:
    /** @throws FatalError on invalid configuration. */
    explicit SampleSimulator(const SampleSimulatorConfig &config = {});

    /**
     * Characterize every sample of @c workload.
     *
     * @return one SampleProfile per sample, in order.
     */
    std::vector<SampleProfile> characterize(
        const WorkloadProfile &workload);

    /** Characterize a single phase/seed pair (used by unit tests). */
    SampleProfile characterizeOne(const PhaseSpec &spec,
                                  std::uint64_t seed, Count instructions);

    /**
     * Characterize an arbitrary instruction source (e.g. a recorded
     * real-application trace).  The caller supplies the attributes a
     * raw address trace cannot express (base CPI, activity, MLP) via
     * @c meta; caches and bank state are reset first.
     */
    SampleProfile characterizeTrace(TraceSource &source,
                                    Count instructions,
                                    const PhaseSpec &meta);

    const SampleSimulatorConfig &config() const { return config_; }

  private:
    /** Run @c instructions of @c spec through the warm hierarchy. */
    SampleProfile runSample(const PhaseSpec &spec, std::uint64_t seed,
                            Count instructions);

    /** Push @c instructions from @c source through the hierarchy. */
    SampleProfile profileFromSource(TraceSource &source,
                                    Count instructions,
                                    const PhaseSpec &meta);

    SampleSimulatorConfig config_;
    CacheHierarchy hierarchy_;
    DramDevice dram_;
};

} // namespace mcdvfs

#endif // MCDVFS_SIM_SAMPLE_SIMULATOR_HH
