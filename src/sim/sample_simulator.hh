/**
 * @file
 * Trace-driven characterization of a workload's samples.
 *
 * For every sample of a WorkloadProfile, the simulator generates the
 * sample's deterministic instruction stream, pushes each memory
 * reference through the L1/L2 hierarchy, classifies resulting DRAM
 * transactions against the open-page bank model, and records the
 * frequency-independent rates in a SampleProfile.  Cache and DRAM bank
 * state persist across samples (warm), only the counters reset, as in
 * the paper's continuous gem5 runs.
 */

#ifndef MCDVFS_SIM_SAMPLE_SIMULATOR_HH
#define MCDVFS_SIM_SAMPLE_SIMULATOR_HH

#include <vector>

#include "common/units.hh"
#include "mem/cache_hierarchy.hh"
#include "mem/dram.hh"
#include "sim/sample_profile.hh"
#include "trace/trace_source.hh"
#include "trace/workloads.hh"

namespace mcdvfs
{

/** Characterization parameters. */
struct SampleSimulatorConfig
{
    /**
     * Dynamic instructions actually simulated per sample.  Each sample
     * *represents* 10 M instructions (the paper's window); simulating
     * a deterministic subset of this length and recording rates gives
     * the same per-instruction statistics at a fraction of the cost.
     */
    Count simInstructionsPerSample = 50'000;

    /**
     * Unrecorded instructions executed before sample 0 (cycling
     * through the workload's first phases) so caches and row buffers
     * reach steady state, as in the paper's post-boot measurements.
     */
    Count warmupInstructions = 4'000'000;

    /**
     * Warmup executed per *canonical* (memoized) characterization:
     * when a ProfileCache is attached, every cache miss resets the
     * hierarchy and row buffers, replays this many unrecorded
     * instructions of the missing phase, then measures.  The profile
     * becomes a pure function of (phase, seed, instructions, sampler
     * config) — cacheable across workloads and build orders — at the
     * price of a per-unique-phase rather than per-workload warmup.
     * Ignored when no cache is attached.
     */
    Count profileWarmupInstructions = 200'000;

    HierarchyConfig hierarchy = HierarchyConfig::paperDefault();
    DramConfig dram{};

    /**
     * Content fingerprint of everything that shapes a canonical
     * characterization besides the phase/seed/instruction-count triple
     * (cache geometry, prefetcher, DRAM organization, canonical
     * warmup).  Part of every ProfileKey.
     */
    std::uint64_t profileFingerprint() const;
};

class ProfileCache;

/** Runs the characterization pass over a workload. */
class SampleSimulator
{
  public:
    /** Cache traffic of the most recent characterize() call. */
    struct CharacterizeStats
    {
        std::uint64_t cacheHits = 0;
        std::uint64_t cacheMisses = 0;
    };

    /** @throws FatalError on invalid configuration. */
    explicit SampleSimulator(const SampleSimulatorConfig &config = {});

    /**
     * Attach a memoization cache (nullptr detaches; not owned, must
     * outlive the simulator).  With a cache attached characterize()
     * switches to canonical per-sample characterization: results are
     * pure functions of each sample's (phase, seed, instructions,
     * config) key rather than of the warm state the preceding samples
     * left behind, so they differ from the detached (historical) mode
     * but are identical for every repeated phase.
     */
    void setProfileCache(ProfileCache *cache) { cache_ = cache; }

    /**
     * Characterize every sample of @c workload.
     *
     * @return one SampleProfile per sample, in order.
     */
    std::vector<SampleProfile> characterize(
        const WorkloadProfile &workload);

    /** Characterize a single phase/seed pair (used by unit tests). */
    SampleProfile characterizeOne(const PhaseSpec &spec,
                                  std::uint64_t seed, Count instructions);

    /**
     * Characterize an arbitrary instruction source (e.g. a recorded
     * real-application trace).  The caller supplies the attributes a
     * raw address trace cannot express (base CPI, activity, MLP) via
     * @c meta; caches and bank state are reset first.
     */
    SampleProfile characterizeTrace(TraceSource &source,
                                    Count instructions,
                                    const PhaseSpec &meta);

    const SampleSimulatorConfig &config() const { return config_; }

    /** Cache traffic of the most recent characterize() call. */
    const CharacterizeStats &lastCharacterizeStats() const
    {
        return lastStats_;
    }

  private:
    /** Run @c instructions of @c spec through the warm hierarchy. */
    SampleProfile runSample(const PhaseSpec &spec, std::uint64_t seed,
                            Count instructions);

    /**
     * Reset, run the canonical warmup for @c spec, then measure: the
     * result depends only on the arguments and the sampler config.
     */
    SampleProfile characterizeCanonical(const PhaseSpec &spec,
                                        std::uint64_t seed,
                                        Count instructions);

    /** Historical warm-state characterization (cache detached). */
    std::vector<SampleProfile> characterizeSequential(
        const WorkloadProfile &workload);

    /** Push @c instructions from @c source through the hierarchy. */
    SampleProfile profileFromSource(TraceSource &source,
                                    Count instructions,
                                    const PhaseSpec &meta);

    SampleSimulatorConfig config_;
    CacheHierarchy hierarchy_;
    DramDevice dram_;
    /** Memoization cache; nullptr = historical sequential mode. */
    ProfileCache *cache_ = nullptr;
    /** Precomputed config().profileFingerprint(). */
    std::uint64_t configKey_ = 0;
    CharacterizeStats lastStats_;
};

} // namespace mcdvfs

#endif // MCDVFS_SIM_SAMPLE_SIMULATOR_HH
