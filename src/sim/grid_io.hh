/**
 * @file
 * Serialization of measured grids: a text format and a binary format.
 *
 * A characterized grid is the expensive artifact of this library;
 * saving it lets offline analyses (profiling, figure regeneration,
 * cross-machine comparisons) re-run without re-simulating.  The text
 * format is line-oriented and versioned:
 *
 *   mcdvfs-grid v1
 *   workload <name>
 *   samples <n> instructions <per-sample>
 *   cpu <mhz...>
 *   mem <mhz...>
 *   profile <sample> <baseCpi> <activity> <mlp> <l1Mpki> <l2Mpki>
 *           <l2PerInstr> <dramReads> <dramWrites> <rowHit> <rowClosed>
 *           <rowConflict> <phaseName>
 *   cell <sample> <setting> <seconds> <cpuJ> <memJ> <busyFrac> <bwUtil>
 *
 * Three-domain grids write "mcdvfs-grid v2": a "gpu <mhz...>" ladder
 * line follows "mem", profile lines carry <gpuWorkPerInstr>
 * <gpuActivity> before the phase name, and cell lines end with the
 * GPU energy column.  The loader accepts both versions.
 *
 * The binary format is the snapshot-store representation (see
 * daemon/snapshot_store.hh): an 8-byte magic, a version word, the
 * payload length, and an FNV-1a checksum of the payload, followed by
 * the payload itself (common/binio.hh fields; doubles by bit pattern,
 * so a round trip is bit-identical by construction).  The loader
 * rejects truncated, corrupt, or version-mismatched input with a
 * FatalError carrying a specific diagnostic — never UB, never a
 * silently partial grid.
 */

#ifndef MCDVFS_SIM_GRID_IO_HH
#define MCDVFS_SIM_GRID_IO_HH

#include <iosfwd>
#include <string>

#include "sim/measured_grid.hh"

namespace mcdvfs
{

/** Serialize @c grid (including profiles when attached). */
void saveGrid(const MeasuredGrid &grid, std::ostream &os);

/** Serialize to a string (convenience). */
std::string saveGridToString(const MeasuredGrid &grid);

/**
 * Parse a grid previously produced by saveGrid.
 * @throws FatalError on malformed or version-mismatched input.
 */
MeasuredGrid loadGrid(std::istream &is);

/** Parse from a string (convenience). */
MeasuredGrid loadGridFromString(const std::string &text);

/** @name Binary snapshots (checksummed, bit-identical round trip). */
///@{

/** Magic leading every binary grid snapshot. */
inline constexpr char kGridBinaryMagic[8] = {'m', 'c', 'd', 'v',
                                             'f', 's', 'G', 'B'};

/**
 * Newest supported binary snapshot version.  Two-domain grids are
 * written as v1 (byte-identical to historical snapshots); three-domain
 * grids as v2 (GPU ladder, GPU profile fields, sixth cell column).
 * The loader accepts both.
 */
inline constexpr std::uint32_t kGridBinaryVersion = 2;

/** Serialize @c grid as a checksummed binary snapshot. */
void saveGridBinary(const MeasuredGrid &grid, std::ostream &os);

/** Serialize to a string (convenience). */
std::string saveGridBinaryToString(const MeasuredGrid &grid);

/**
 * Parse a binary snapshot previously produced by saveGridBinary.
 *
 * @throws FatalError with a specific diagnostic on a bad magic, an
 *         unsupported version, a truncated header or payload, a
 *         checksum mismatch, or any malformed field — the grid is
 *         never partially loaded.
 */
MeasuredGrid loadGridBinary(std::istream &is);

/** Parse from a string (convenience). */
MeasuredGrid loadGridBinaryFromString(const std::string &bytes);
///@}

} // namespace mcdvfs

#endif // MCDVFS_SIM_GRID_IO_HH
