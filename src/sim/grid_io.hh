/**
 * @file
 * Text serialization of measured grids.
 *
 * A characterized grid is the expensive artifact of this library;
 * saving it lets offline analyses (profiling, figure regeneration,
 * cross-machine comparisons) re-run without re-simulating.  The format
 * is line-oriented and versioned:
 *
 *   mcdvfs-grid v1
 *   workload <name>
 *   samples <n> instructions <per-sample>
 *   cpu <mhz...>
 *   mem <mhz...>
 *   profile <sample> <baseCpi> <activity> <mlp> <l1Mpki> <l2Mpki>
 *           <l2PerInstr> <dramReads> <dramWrites> <rowHit> <rowClosed>
 *           <rowConflict> <phaseName>
 *   cell <sample> <setting> <seconds> <cpuJ> <memJ> <busyFrac> <bwUtil>
 */

#ifndef MCDVFS_SIM_GRID_IO_HH
#define MCDVFS_SIM_GRID_IO_HH

#include <iosfwd>
#include <string>

#include "sim/measured_grid.hh"

namespace mcdvfs
{

/** Serialize @c grid (including profiles when attached). */
void saveGrid(const MeasuredGrid &grid, std::ostream &os);

/** Serialize to a string (convenience). */
std::string saveGridToString(const MeasuredGrid &grid);

/**
 * Parse a grid previously produced by saveGrid.
 * @throws FatalError on malformed or version-mismatched input.
 */
MeasuredGrid loadGrid(std::istream &is);

/** Parse from a string (convenience). */
MeasuredGrid loadGridFromString(const std::string &text);

} // namespace mcdvfs

#endif // MCDVFS_SIM_GRID_IO_HH
