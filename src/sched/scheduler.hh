/**
 * @file
 * Multi-application scheduling under per-app inefficiency budgets.
 *
 * §II-A: "The OS can also set the inefficiency budget based on
 * application's priority allowing the higher priority applications to
 * burn more energy than lower priority applications."  This module
 * simulates exactly that device: several characterized applications
 * time-share one CPU + memory system; each runs under its own budget
 * using the cluster policy; the scheduler decides interleaving, and
 * every context switch that lands on an app wanting different
 * frequencies pays a hardware transition.
 *
 * Two scheduling policies expose a system-level insight the paper's
 * single-app study implies: sample-granular round robin multiplies
 * frequency transitions (every switch between apps with different
 * budget-optimal settings is a transition), while run-to-completion
 * batching pays them only at app boundaries.
 */

#ifndef MCDVFS_SCHED_SCHEDULER_HH
#define MCDVFS_SCHED_SCHEDULER_HH

#include <string>
#include <vector>

#include "core/stable_regions.hh"
#include "dvfs/transition.hh"
#include "sim/measured_grid.hh"

namespace mcdvfs
{

/** One application admitted to the device. */
struct AppTask
{
    std::string name;
    /** The app's measured grid (must outlive the scheduler run). */
    const MeasuredGrid *grid = nullptr;
    /** Priority-derived inefficiency budget (>= 1). */
    double budget = 1.3;
    /** Tolerated performance loss for clustering. */
    double threshold = 0.03;
};

/** Per-app outcome of a scheduler run. */
struct AppOutcome
{
    std::string name;
    Seconds busyTime = 0.0;    ///< time actually executing
    Joules energy = 0.0;       ///< energy of its samples
    double achievedInefficiency = 0.0;
    std::size_t samples = 0;
};

/** Whole-device outcome. */
struct ScheduleResult
{
    Seconds makespan = 0.0;  ///< wall-clock until the last app ends
    Joules totalEnergy = 0.0;
    std::size_t contextSwitches = 0;
    std::size_t frequencyTransitions = 0;
    Seconds transitionLatency = 0.0;
    std::vector<AppOutcome> apps;
};

/** Interleaving policies. */
enum class SchedPolicy
{
    RoundRobin,       ///< one sample per app per turn
    RunToCompletion,  ///< each app runs all its samples, in order
};

/** Simulates budgeted multi-app execution on one device. */
class BudgetScheduler
{
  public:
    /** @param transitions hardware transition cost calibration */
    explicit BudgetScheduler(const TransitionParams &transitions = {});

    /**
     * Run all @c apps to completion under @c policy.
     *
     * @throws FatalError when an app has no grid or a bad budget
     */
    ScheduleResult run(const std::vector<AppTask> &apps,
                       SchedPolicy policy) const;

  private:
    TransitionParams transitionParams_;
};

} // namespace mcdvfs

#endif // MCDVFS_SCHED_SCHEDULER_HH
