#include "sched/scheduler.hh"

#include <cmath>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mcdvfs
{

namespace
{

/** Process-wide scheduler metrics (simulated device accounting). */
struct SchedMetrics
{
    obs::Counter runs;
    obs::Counter samplesExecuted;
    obs::Counter contextSwitches;
    obs::Counter frequencyTransitions;
    obs::Counter transitionTimeNs;
    obs::Counter transitionEnergyNj;

    SchedMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        runs = reg.counter("sched.runs");
        samplesExecuted = reg.counter("sched.samples_executed");
        contextSwitches = reg.counter("sched.context_switches");
        frequencyTransitions =
            reg.counter("sched.frequency_transitions");
        transitionTimeNs = reg.counter("sched.transition_time_ns");
        transitionEnergyNj = reg.counter("sched.transition_energy_nj");
    }
};

SchedMetrics &
schedMetrics()
{
    static SchedMetrics metrics;
    return metrics;
}

/** Precomputed per-app execution plan. */
struct AppPlan
{
    const AppTask *task = nullptr;
    /** Cluster-policy setting per sample (indices into its grid). */
    std::vector<std::size_t> settingPerSample;
    Joules eminSum = 0.0;
    std::size_t cursor = 0;

    bool
    done() const
    {
        return cursor >= settingPerSample.size();
    }
};

AppPlan
planFor(const AppTask &task)
{
    if (task.grid == nullptr)
        fatal("scheduler: app '", task.name, "' has no grid");
    if (task.budget < 1.0)
        fatal("scheduler: app '", task.name, "' budget must be >= 1");

    const MeasuredGrid &grid = *task.grid;
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    StableRegionFinder regions(clusters);

    AppPlan plan;
    plan.task = &task;
    plan.settingPerSample.assign(grid.sampleCount(), 0);
    for (const StableRegion &region :
         regions.find(task.budget, task.threshold)) {
        for (std::size_t s = region.first; s <= region.last; ++s)
            plan.settingPerSample[s] = region.chosenSettingIndex;
    }
    for (std::size_t s = 0; s < grid.sampleCount(); ++s)
        plan.eminSum += grid.sampleEmin(s);
    return plan;
}

} // namespace

BudgetScheduler::BudgetScheduler(const TransitionParams &transitions)
    : transitionParams_(transitions)
{
}

ScheduleResult
BudgetScheduler::run(const std::vector<AppTask> &apps,
                     SchedPolicy policy) const
{
    MCDVFS_ASSERT(!apps.empty(), "scheduler needs at least one app");

    obs::TraceSpan run_span("sched.run", apps.size());
    std::vector<AppPlan> plans;
    plans.reserve(apps.size());
    for (const AppTask &task : apps)
        plans.push_back(planFor(task));

    ScheduleResult result;
    result.apps.resize(apps.size());
    for (std::size_t i = 0; i < apps.size(); ++i)
        result.apps[i].name = apps[i].name;

    const TransitionModel transitions(transitionParams_);
    FrequencySetting hardware{};
    bool hardware_known = false;
    std::size_t last_app = apps.size();  // sentinel: none yet
    Joules transition_energy = 0.0;

    // Run one sample of one app, paying any frequency transition.
    auto step = [&](std::size_t app_idx) {
        AppPlan &plan = plans[app_idx];
        const MeasuredGrid &grid = *plan.task->grid;
        const std::size_t s = plan.cursor++;
        const std::size_t k = plan.settingPerSample[s];
        const FrequencySetting wanted = grid.space().at(k);

        if (last_app != apps.size() && last_app != app_idx) {
            ++result.contextSwitches;
            obs::traceInstant("sched.context_switch", app_idx);
        }
        last_app = app_idx;

        if (!hardware_known ||
            TransitionModel::domainsChanged(hardware, wanted) > 0) {
            if (hardware_known) {
                const TransitionCost cost =
                    transitions.cost(hardware, wanted);
                result.makespan += cost.latency;
                result.transitionLatency += cost.latency;
                result.totalEnergy += cost.energy;
                transition_energy += cost.energy;
                ++result.frequencyTransitions;
                obs::traceInstant("sched.transition", s);
            }
            hardware = wanted;
            hardware_known = true;
        }

        const Seconds seconds = grid.secondsAt(s, k);
        const Joules energy = grid.energyAt(s, k);
        result.makespan += seconds;
        result.totalEnergy += energy;
        AppOutcome &outcome = result.apps[app_idx];
        outcome.busyTime += seconds;
        outcome.energy += energy;
        ++outcome.samples;
    };

    if (policy == SchedPolicy::RunToCompletion) {
        for (std::size_t i = 0; i < plans.size(); ++i) {
            while (!plans[i].done())
                step(i);
        }
    } else {
        bool any = true;
        while (any) {
            any = false;
            for (std::size_t i = 0; i < plans.size(); ++i) {
                if (!plans[i].done()) {
                    step(i);
                    any = true;
                }
            }
        }
    }

    for (std::size_t i = 0; i < plans.size(); ++i) {
        result.apps[i].achievedInefficiency =
            result.apps[i].energy / plans[i].eminSum;
    }

    SchedMetrics &metrics = schedMetrics();
    metrics.runs.add(1);
    std::size_t total_samples = 0;
    for (const AppOutcome &outcome : result.apps)
        total_samples += outcome.samples;
    metrics.samplesExecuted.add(total_samples);
    metrics.contextSwitches.add(result.contextSwitches);
    metrics.frequencyTransitions.add(result.frequencyTransitions);
    metrics.transitionTimeNs.add(
        result.transitionLatency > 0.0
            ? static_cast<std::uint64_t>(
                  std::llround(result.transitionLatency * 1e9))
            : 0);
    metrics.transitionEnergyNj.add(
        transition_energy > 0.0
            ? static_cast<std::uint64_t>(
                  std::llround(transition_energy * 1e9))
            : 0);
    return result;
}

} // namespace mcdvfs
