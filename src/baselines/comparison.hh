/**
 * @file
 * Side-by-side comparison of energy-management policies (§II/§IV
 * narrative): the paper's inefficiency-constrained cluster policy vs.
 * CoScale-style performance-constrained search vs. absolute-energy
 * rate limiting vs. the static performance governor.
 */

#ifndef MCDVFS_BASELINES_COMPARISON_HH
#define MCDVFS_BASELINES_COMPARISON_HH

#include <string>
#include <vector>

#include "sim/measured_grid.hh"

namespace mcdvfs
{

/** One comparison row. */
struct PolicyComparisonRow
{
    std::string policy;
    Seconds time = 0.0;
    Joules energy = 0.0;
    double achievedInefficiency = 0.0;
    std::size_t transitions = 0;
    /** Tuning events or search evaluations, policy dependent. */
    std::size_t workDone = 0;
    std::string note;
};

/** Builds the comparison table for one workload's grid. */
class BaselineComparison
{
  public:
    /** @param grid measured grid (must outlive the comparison) */
    explicit BaselineComparison(const MeasuredGrid &grid);

    /**
     * Compare policies.
     *
     * @param budget inefficiency budget for the paper's policy
     * @param threshold cluster threshold for the paper's policy
     * @param coscale_slack CoScale performance slack
     * @param epochs number of rate-limiter epochs over the run
     */
    std::vector<PolicyComparisonRow> compare(double budget,
                                             double threshold,
                                             double coscale_slack,
                                             std::size_t epochs = 20) const;

  private:
    const MeasuredGrid &grid_;
};

} // namespace mcdvfs

#endif // MCDVFS_BASELINES_COMPARISON_HH
