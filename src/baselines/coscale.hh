/**
 * @file
 * CoScale-style coordinated CPU + memory DVFS baseline.
 *
 * CoScale (Deng et al., MICRO'12) minimizes energy subject to a
 * *performance* constraint: every interval it searches the joint
 * frequency space, starting from the maximum settings, for the
 * lowest-energy point whose predicted slowdown versus full speed is
 * within a slack bound.  The paper contrasts this with its
 * energy-constrained formulation and observes (§VI-A) that restarting
 * the search from the maximum settings every interval is wasteful —
 * warm-starting from the previous interval's setting evaluates far
 * fewer candidates.  Both variants are implemented so the claim can be
 * measured.
 */

#ifndef MCDVFS_BASELINES_COSCALE_HH
#define MCDVFS_BASELINES_COSCALE_HH

#include <vector>

#include "sim/measured_grid.hh"

namespace mcdvfs
{

/** Outcome of a CoScale run over a workload. */
struct CoScaleResult
{
    std::vector<std::size_t> settingPerSample;
    /** Candidate settings evaluated across all interval searches. */
    std::size_t settingsEvaluated = 0;
    std::size_t transitions = 0;
    Seconds time = 0.0;
    Joules energy = 0.0;
    /** Energy over the sum of per-sample Emin (for comparison). */
    double achievedInefficiency = 0.0;
    /** Worst per-sample slowdown vs. max settings. */
    double worstSlowdownPct = 0.0;
};

/** Greedy gradient-descent search in the joint frequency space. */
class CoScaleSearch
{
  public:
    /**
     * @param grid measured grid standing in for CoScale's online
     *        performance/energy models (must outlive the search)
     * @param slack allowed per-interval slowdown vs. max settings,
     *        e.g. 0.10 for 10%
     * @throws FatalError for negative slack
     */
    CoScaleSearch(const MeasuredGrid &grid, double slack);

    /** Restart the search from max settings every interval. */
    CoScaleResult runFromMax() const;

    /** Warm-start each interval from the previous setting. */
    CoScaleResult runWarmStart() const;

    double slack() const { return slack_; }

  private:
    /**
     * One interval's search from @c start; returns the chosen setting
     * index and adds evaluated candidates to @c evaluated.
     */
    std::size_t searchInterval(std::size_t sample, std::size_t start,
                               std::size_t &evaluated) const;

    /** Predicted-time constraint for one sample. */
    bool meetsConstraint(std::size_t sample, std::size_t setting) const;

    const MeasuredGrid &grid_;
    double slack_;
    std::size_t maxIdx_;
};

} // namespace mcdvfs

#endif // MCDVFS_BASELINES_COSCALE_HH
