#include "baselines/rate_limiter.hh"

#include <cmath>

#include "common/logging.hh"

namespace mcdvfs
{

RateLimiter::RateLimiter(const RateLimiterConfig &config)
    : config_(config)
{
    if (config_.energyPerEpoch <= 0.0)
        fatal("rate limiter: energyPerEpoch must be positive");
    if (config_.epochLength <= 0.0)
        fatal("rate limiter: epochLength must be positive");
    if (config_.idlePower < 0.0)
        fatal("rate limiter: idlePower must be >= 0");
}

RateLimiterResult
RateLimiter::run(const MeasuredGrid &grid) const
{
    const std::size_t setting = grid.space().indexOf(config_.setting);

    RateLimiterResult result;
    Joules emin_sum = 0.0;
    Seconds clock = 0.0;
    Joules allowance = config_.energyPerEpoch;

    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        const Joules cell_energy = grid.energyAt(s, setting);
        emin_sum += grid.sampleEmin(s);

        // Samples are the scheduling granularity: if the remaining
        // allowance cannot cover the next sample, pause until enough
        // future epochs have granted budget.  Idle power accrues the
        // whole time and does not count against the allowance (it is
        // the platform, not the task).
        while (allowance < cell_energy) {
            const Seconds next_epoch =
                (std::floor(clock / config_.epochLength) + 1.0) *
                config_.epochLength;
            const Seconds pause = next_epoch - clock;
            clock = next_epoch;
            result.pausedTime += pause;
            result.idleEnergy += config_.idlePower * pause;
            allowance += config_.energyPerEpoch;
        }
        allowance -= cell_energy;
        clock += grid.secondsAt(s, setting);
        result.taskEnergy += cell_energy;
    }
    result.time = clock;
    result.achievedInefficiency = result.totalEnergy() / emin_sum;
    return result;
}

} // namespace mcdvfs
