/**
 * @file
 * Absolute-energy rate limiting baseline (Cinder / ECOSystem style).
 *
 * The approaches the paper contrasts inefficiency against (§II) give a
 * task a fixed energy allowance per time epoch; when the allowance is
 * exhausted the task is paused until the next epoch begins.  Pausing
 * does not stop background and leakage power, so rate limiting can
 * burn energy while making no progress — the energy-waste problem
 * inefficiency is designed to mitigate (the budget is tied to work,
 * not wall-clock time).
 */

#ifndef MCDVFS_BASELINES_RATE_LIMITER_HH
#define MCDVFS_BASELINES_RATE_LIMITER_HH

#include "dvfs/settings_space.hh"
#include "sim/measured_grid.hh"

namespace mcdvfs
{

/** Rate-limiter policy parameters. */
struct RateLimiterConfig
{
    /** Energy allowance granted at the start of every epoch. */
    Joules energyPerEpoch = 0.0;
    /** Epoch length. */
    Seconds epochLength = 0.0;
    /** Fixed frequency setting the task runs at. */
    FrequencySetting setting{};
    /** Platform idle power drawn while the task is paused. */
    Watts idlePower = 0.25;
};

/** Outcome of a rate-limited run. */
struct RateLimiterResult
{
    Seconds time = 0.0;        ///< wall-clock completion time
    Seconds pausedTime = 0.0;  ///< time spent paused
    Joules taskEnergy = 0.0;   ///< energy of useful execution
    Joules idleEnergy = 0.0;   ///< energy burned while paused
    /** Total energy over the sum of per-sample Emin. */
    double achievedInefficiency = 0.0;

    Joules totalEnergy() const { return taskEnergy + idleEnergy; }
};

/** Simulates epoch-based energy rate limiting over a measured grid. */
class RateLimiter
{
  public:
    /** @throws FatalError on invalid configuration */
    explicit RateLimiter(const RateLimiterConfig &config);

    /** Run @c grid's workload to completion under the rate limit. */
    RateLimiterResult run(const MeasuredGrid &grid) const;

    const RateLimiterConfig &config() const { return config_; }

  private:
    RateLimiterConfig config_;
};

} // namespace mcdvfs

#endif // MCDVFS_BASELINES_RATE_LIMITER_HH
