#include "baselines/comparison.hh"

#include "baselines/coscale.hh"
#include "baselines/rate_limiter.hh"
#include "core/stable_regions.hh"
#include "core/tradeoff.hh"
#include "core/tuning_cost.hh"

namespace mcdvfs
{

BaselineComparison::BaselineComparison(const MeasuredGrid &grid)
    : grid_(grid)
{
}

std::vector<PolicyComparisonRow>
BaselineComparison::compare(double budget, double threshold,
                            double coscale_slack,
                            std::size_t epochs) const
{
    std::vector<PolicyComparisonRow> rows;

    InefficiencyAnalysis analysis(grid_);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    StableRegionFinder regions(clusters);
    TuningCostModel cost;
    TradeoffEvaluator evaluator(regions, clusters, cost);

    Joules emin_sum = 0.0;
    for (std::size_t s = 0; s < grid_.sampleCount(); ++s)
        emin_sum += grid_.sampleEmin(s);

    // The paper's policy: clusters + stable regions under the budget.
    {
        const PolicyOutcome outcome =
            evaluator.clusterPolicy(budget, threshold);
        rows.push_back({"inefficiency-cluster", outcome.time,
                        outcome.energy, outcome.achievedInefficiency,
                        outcome.transitions, outcome.tuningEvents,
                        "energy-constrained, work-tied budget"});
    }
    // Optimal tracking under the same budget (retune every sample).
    {
        const PolicyOutcome outcome = evaluator.optimalTracking(budget);
        rows.push_back({"inefficiency-optimal", outcome.time,
                        outcome.energy, outcome.achievedInefficiency,
                        outcome.transitions, outcome.tuningEvents,
                        "per-sample optimal"});
    }
    // CoScale both ways.
    {
        CoScaleSearch coscale(grid_, coscale_slack);
        const CoScaleResult from_max = coscale.runFromMax();
        rows.push_back({"coscale-from-max", from_max.time,
                        from_max.energy, from_max.achievedInefficiency,
                        from_max.transitions, from_max.settingsEvaluated,
                        "perf-constrained, search restarts at max"});
        const CoScaleResult warm = coscale.runWarmStart();
        rows.push_back({"coscale-warm-start", warm.time, warm.energy,
                        warm.achievedInefficiency, warm.transitions,
                        warm.settingsEvaluated,
                        "perf-constrained, warm-started search"});
    }
    // Rate limiting with the same total allowance the inefficiency
    // budget grants (budget x sum of per-sample Emin), spread evenly
    // over wall-clock epochs at max settings.
    {
        const std::size_t max_idx =
            grid_.space().indexOf(grid_.space().maxSetting());
        RateLimiterConfig config;
        config.setting = grid_.space().maxSetting();
        config.energyPerEpoch =
            budget * emin_sum / static_cast<double>(epochs);
        config.epochLength = grid_.totalTime(max_idx) /
                             static_cast<double>(epochs);
        RateLimiter limiter(config);
        const RateLimiterResult outcome = limiter.run(grid_);
        rows.push_back({"rate-limiter", outcome.time,
                        outcome.totalEnergy(),
                        outcome.achievedInefficiency, 0, epochs,
                        "absolute energy per epoch; pauses burn idle "
                        "energy"});
    }
    // Static performance governor: max settings end to end.
    {
        const std::size_t max_idx =
            grid_.space().indexOf(grid_.space().maxSetting());
        rows.push_back({"performance-governor",
                        grid_.totalTime(max_idx),
                        grid_.totalEnergy(max_idx),
                        grid_.totalEnergy(max_idx) / emin_sum, 0, 0,
                        "unconstrained"});
    }
    return rows;
}

} // namespace mcdvfs
