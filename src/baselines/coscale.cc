#include "baselines/coscale.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mcdvfs
{

CoScaleSearch::CoScaleSearch(const MeasuredGrid &grid, double slack)
    : grid_(grid), slack_(slack),
      maxIdx_(grid.space().indexOf(grid.space().maxSetting()))
{
    if (slack < 0.0)
        fatal("coscale: slack must be >= 0");
}

bool
CoScaleSearch::meetsConstraint(std::size_t sample,
                               std::size_t setting) const
{
    const Seconds at_max = grid_.secondsAt(sample, maxIdx_);
    return grid_.secondsAt(sample, setting) <= at_max * (1.0 + slack_);
}

std::size_t
CoScaleSearch::searchInterval(std::size_t sample, std::size_t start,
                              std::size_t &evaluated) const
{
    const SettingsSpace &space = grid_.space();
    const std::size_t mem_steps = space.memLadder().size();
    const std::size_t cpu_steps = space.cpuLadder().size();

    auto idx_of = [mem_steps](std::size_t cpu, std::size_t mem) {
        return cpu * mem_steps + mem;
    };
    std::size_t cpu = start / mem_steps;
    std::size_t mem = start % mem_steps;

    ++evaluated;  // the starting point itself
    // If the warm start violates the constraint, climb back up first
    // (CoScale's expand step).
    while (!meetsConstraint(sample, idx_of(cpu, mem))) {
        bool moved = false;
        if (cpu + 1 < cpu_steps) {
            ++cpu;
            moved = true;
        }
        if (mem + 1 < mem_steps) {
            ++mem;
            moved = true;
        }
        ++evaluated;
        if (!moved)
            break;  // already at max; constraint holds there trivially
    }

    // Greedy descent: at each step, evaluate lowering either domain by
    // one step and take the move with the larger energy saving that
    // still meets the performance constraint.
    for (;;) {
        const std::size_t here = idx_of(cpu, mem);
        const Joules e_here = grid_.energyAt(sample, here);

        double best_gain = 0.0;
        int best_move = -1;  // 0 = lower cpu, 1 = lower mem
        if (cpu > 0) {
            const std::size_t cand = idx_of(cpu - 1, mem);
            ++evaluated;
            if (meetsConstraint(sample, cand)) {
                const double gain =
                    e_here - grid_.energyAt(sample, cand);
                if (gain > best_gain) {
                    best_gain = gain;
                    best_move = 0;
                }
            }
        }
        if (mem > 0) {
            const std::size_t cand = idx_of(cpu, mem - 1);
            ++evaluated;
            if (meetsConstraint(sample, cand)) {
                const double gain =
                    e_here - grid_.energyAt(sample, cand);
                if (gain > best_gain) {
                    best_gain = gain;
                    best_move = 1;
                }
            }
        }
        if (best_move == 0)
            --cpu;
        else if (best_move == 1)
            --mem;
        else
            break;  // no downhill move left
    }
    return idx_of(cpu, mem);
}

namespace
{

/** Fill the aggregate fields shared by both CoScale variants. */
void
finalize(const MeasuredGrid &grid, std::size_t max_idx,
         CoScaleResult &result)
{
    Joules emin_sum = 0.0;
    for (std::size_t s = 0; s < result.settingPerSample.size(); ++s) {
        const std::size_t k = result.settingPerSample[s];
        result.time += grid.secondsAt(s, k);
        result.energy += grid.energyAt(s, k);
        emin_sum += grid.sampleEmin(s);
        const double slowdown =
            grid.secondsAt(s, k) / grid.secondsAt(s, max_idx) - 1.0;
        result.worstSlowdownPct =
            std::max(result.worstSlowdownPct, slowdown * 100.0);
        if (s > 0 &&
            result.settingPerSample[s] != result.settingPerSample[s - 1])
            ++result.transitions;
    }
    result.achievedInefficiency = result.energy / emin_sum;
}

} // namespace

CoScaleResult
CoScaleSearch::runFromMax() const
{
    CoScaleResult result;
    result.settingPerSample.reserve(grid_.sampleCount());
    for (std::size_t s = 0; s < grid_.sampleCount(); ++s) {
        result.settingPerSample.push_back(
            searchInterval(s, maxIdx_, result.settingsEvaluated));
    }
    finalize(grid_, maxIdx_, result);
    return result;
}

CoScaleResult
CoScaleSearch::runWarmStart() const
{
    CoScaleResult result;
    result.settingPerSample.reserve(grid_.sampleCount());
    std::size_t start = maxIdx_;
    for (std::size_t s = 0; s < grid_.sampleCount(); ++s) {
        const std::size_t chosen =
            searchInterval(s, start, result.settingsEvaluated);
        result.settingPerSample.push_back(chosen);
        start = chosen;
    }
    finalize(grid_, maxIdx_, result);
    return result;
}

} // namespace mcdvfs
