/**
 * @file
 * Fixed-capacity time-series ring over MetricsRegistry snapshots.
 *
 * The metrics layer answers "how much, ever"; this store answers
 * "how much, when": each append() turns a cumulative snapshot into
 * one tick of counter *deltas*, gauge *points* and per-histogram
 * bucket deltas, retained in a bounded ring so a long-running daemon
 * keeps a sliding window instead of an unbounded log.  The
 * TelemetryPipeline (obs/telemetry.hh) owns the sampler thread that
 * feeds it; the SloWatchdog evaluates rules over its window.
 *
 * Exported as schema "mcdvfs-timeseries-v1": columnar per-series
 * arrays (one entry per retained tick, zero-padded for ticks that
 * predate a series), plus p50/p90/p99 estimates per histogram tick
 * interpolated over the delta bucket counts.
 */

#ifndef MCDVFS_OBS_TIMESERIES_HH
#define MCDVFS_OBS_TIMESERIES_HH

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace mcdvfs
{
namespace obs
{

/** One SLO rule violation (see obs/telemetry.hh), kept for export. */
struct SloBreach
{
    std::string rule;
    /** Observed value (ratio, ns, or per-event units per the rule). */
    double value = 0.0;
    double threshold = 0.0;
    /** Tick index (TimeseriesStore::totalTicks()) at evaluation. */
    std::uint64_t tick = 0;
};

/** Bounded ring of per-tick metric deltas (thread-safe). */
class TimeseriesStore
{
  public:
    explicit TimeseriesStore(std::size_t capacity = 256);

    TimeseriesStore(const TimeseriesStore &) = delete;
    TimeseriesStore &operator=(const TimeseriesStore &) = delete;

    /**
     * Append one tick: deltas of @c snapshot against the previous
     * append.  @c ts_ns is the caller's monotonic timestamp.  A
     * counter that moved backwards (registry reset) contributes a
     * zero delta for that tick.
     */
    void append(const MetricsSnapshot &snapshot, std::uint64_t ts_ns);

    /** Ticks currently retained (<= capacity). */
    std::size_t retained() const;

    /** Ticks ever appended (monotonic). */
    std::uint64_t totalTicks() const;

    /** Ticks lost to ring wrap-around. */
    std::uint64_t droppedTicks() const;

    /**
     * Sum of a counter's deltas over the last @c window retained
     * ticks (0 = the whole retained window).  Unknown names read 0.
     */
    std::uint64_t counterDelta(const std::string &name,
                               std::size_t window = 0) const;

    /** Latest retained gauge point (0 when unknown or empty). */
    std::int64_t gaugeLast(const std::string &name) const;

    /** Histogram events recorded within the window. */
    std::uint64_t histogramEvents(const std::string &name,
                                  std::size_t window = 0) const;

    /**
     * Quantile estimate (linear interpolation over the window's
     * aggregated delta buckets; the overflow bucket extrapolates to
     * 10x the last bound).  Returns -1 when the window holds no
     * events.
     */
    double quantile(const std::string &name, double q,
                    std::size_t window = 0) const;

    /**
     * Serialize the retained window as "mcdvfs-timeseries-v1" JSON;
     * @c breaches (usually SloWatchdog::breaches()) rides along as
     * the "slo_breaches" array.
     */
    std::string toJson(const std::vector<SloBreach> &breaches = {}) const;

  private:
    struct Tick
    {
        std::uint64_t tsNs = 0;
        std::vector<std::uint64_t> counterDeltas;
        std::vector<std::int64_t> gaugeValues;
        /** Per histogram: bucket-count deltas for this tick. */
        std::vector<std::vector<std::uint64_t>> histDeltas;
    };

    /** Aggregate a histogram's delta buckets over the window. */
    std::vector<std::uint64_t>
    windowBucketsLocked(std::size_t index, std::size_t window) const;

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::uint64_t total_ = 0;
    std::deque<Tick> ticks_;

    std::map<std::string, std::size_t> counterIndex_;
    std::map<std::string, std::size_t> gaugeIndex_;
    std::map<std::string, std::size_t> histIndex_;
    std::vector<std::vector<std::uint64_t>> histBounds_;
    std::vector<std::uint64_t> lastCounterTotals_;
    std::vector<std::vector<std::uint64_t>> lastHistCounts_;
};

} // namespace obs
} // namespace mcdvfs

#endif // MCDVFS_OBS_TIMESERIES_HH
