/**
 * @file
 * Telemetry pipeline: a background sampler thread feeding a
 * TimeseriesStore from periodic MetricsRegistry snapshots, plus an
 * SLO watchdog evaluating declarative rules over the window each
 * tick.
 *
 * The paper charges every tuning event a fixed overhead (Sec. 6-C);
 * the watchdog's default rules turn that accounting into a live
 * alarm: submit p99, shed rate, grid-cache hit rate and overhead per
 * decision are checked against thresholds every sampling tick, and a
 * violation bumps `obs.slo.breach` (total and `{rule=...}` series),
 * logs a warning line, and lands in the timeseries JSON export.
 *
 * Rule catalog and the export schema live in docs/OBSERVABILITY.md.
 */

#ifndef MCDVFS_OBS_TELEMETRY_HH
#define MCDVFS_OBS_TELEMETRY_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/timeseries.hh"

namespace mcdvfs
{
namespace obs
{

/** One declarative SLO rule, evaluated over the timeseries window. */
struct SloRule
{
    enum class Kind
    {
        /** metric / (metric + denominator) above threshold (ratio). */
        ShareAbove,
        /** metric / (metric + denominator) below threshold (ratio). */
        ShareBelow,
        /** Histogram quantile above threshold (same units as values). */
        QuantileAbove,
        /** metric delta / denominator delta above threshold. */
        PerEventAbove
    };

    std::string name;
    Kind kind = Kind::ShareAbove;
    /** Counter (Share/PerEvent) or histogram (Quantile) name. */
    std::string metric;
    /** Second counter of the ratio (unused for Quantile rules). */
    std::string denominator;
    double quantile = 0.99;
    double threshold = 0.0;
    /** Ticks of history per evaluation (0 = whole retained window). */
    std::size_t window = 8;
    /** Skip evaluation until the window holds this many events. */
    std::uint64_t minEvents = 16;
};

/** Evaluates SloRules over a TimeseriesStore; counts breaches. */
class SloWatchdog
{
  public:
    SloWatchdog(const TimeseriesStore *store, MetricsRegistry *registry);

    SloWatchdog(const SloWatchdog &) = delete;
    SloWatchdog &operator=(const SloWatchdog &) = delete;

    void addRule(const SloRule &rule);

    /**
     * The stock rule set: daemon submit p99 (2 s), shed rate (5%),
     * grid-cache hit rate floor (5%), and Sec. 6-C overhead per
     * tuning event (600 us — the paper's 500 us charge plus slack).
     */
    static std::vector<SloRule> defaultRules();

    /**
     * Evaluate every rule against the store's current window.  Each
     * violation bumps `obs.slo.breach` plus its `{rule=...}` series,
     * warns, and is retained for export.  Returns this evaluation's
     * breaches.
     */
    std::vector<SloBreach> evaluate();

    /** Every breach since construction (export with the timeseries). */
    std::vector<SloBreach> breaches() const;

    /** Total breaches counted so far. */
    std::uint64_t breachCount() const;

  private:
    struct ArmedRule
    {
        SloRule rule;
        Counter breachCounter;
    };

    const TimeseriesStore *store_;
    MetricsRegistry *registry_;
    Counter breachTotal_;
    Counter evaluations_;
    mutable std::mutex mutex_;
    std::vector<ArmedRule> rules_;
    std::vector<SloBreach> log_;
};

/** Sampler configuration. */
struct TelemetryConfig
{
    /** Sampling period of the background thread. */
    std::chrono::milliseconds period{250};
    /** Timeseries ring capacity, in ticks. */
    std::size_t capacity = 256;
    /** Install SloWatchdog::defaultRules() at construction. */
    bool defaultRules = true;
};

/**
 * Owns the sampler thread, the TimeseriesStore and the SloWatchdog.
 * start() launches sampling; stop() (or destruction) takes one final
 * tick and joins, so short runs still export at least one tick.
 * tickNow() samples synchronously — tests and drain paths use it to
 * make tick boundaries deterministic.
 */
class TelemetryPipeline
{
  public:
    using TickCallback = std::function<void(const MetricsSnapshot &,
                                            std::uint64_t tick)>;

    explicit TelemetryPipeline(
        TelemetryConfig config = {},
        MetricsRegistry *registry = &MetricsRegistry::global());
    ~TelemetryPipeline();

    TelemetryPipeline(const TelemetryPipeline &) = delete;
    TelemetryPipeline &operator=(const TelemetryPipeline &) = delete;

    /** Launch the sampler thread (idempotent). */
    void start();

    /** Final tick, then stop and join the sampler (idempotent). */
    void stop();

    /** Take one sample + watchdog evaluation synchronously. */
    void tickNow();

    /** Invoked after every tick (set before start()). */
    void setTickCallback(TickCallback callback);

    TimeseriesStore &store() { return store_; }
    const TimeseriesStore &store() const { return store_; }
    SloWatchdog &watchdog() { return watchdog_; }

    /** Ticks taken so far. */
    std::uint64_t ticks() const;

    /** "mcdvfs-timeseries-v1" JSON of the window + breach log. */
    std::string exportJson() const;

    /** Prometheus text of the latest cumulative snapshot. */
    std::string exportProm() const;

    /** Write exportJson() to @c path. @throws FatalError on I/O. */
    void writeJson(const std::string &path) const;

  private:
    void samplerLoop();

    MetricsRegistry *registry_;
    TelemetryConfig config_;
    TimeseriesStore store_;
    SloWatchdog watchdog_;
    Counter tickCounter_;
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex sampleMutex_;
    MetricsSnapshot lastSnapshot_;
    std::uint64_t tickIndex_ = 0;
    TickCallback callback_;

    std::mutex threadMutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    bool running_ = false;
    std::thread thread_;
};

} // namespace obs
} // namespace mcdvfs

#endif // MCDVFS_OBS_TELEMETRY_HH
