/**
 * @file
 * Per-sample tuning decision journal.
 *
 * The paper's §VI–§VII analyses are built on a per-sample decision
 * structure: which setting the tuner chose for each 10 M-instruction
 * sample, whether it stayed inside the sample's performance cluster
 * and stable region, when it re-tuned, and how much §VI-C overhead
 * (500 µs + 30 µJ per event) it had accumulated.  DecisionJournal
 * captures exactly that timeline — one record per simulated sample —
 * and serializes it as JSONL under schema "mcdvfs-trace-v1" so runs
 * can be diffed, replayed and audited offline.
 *
 * TuningLoop fills a journal when one is attached (setJournal);
 * `mcdvfs_cli ... --trace-journal FILE` and
 * `bench/impl_retune_schedules --journal FILE` write it out.  The
 * journal is an analysis artifact, not a hot-path collector: records
 * are plain structs in a vector, appended from the (already
 * simulation-speed) tuning-loop evaluation.
 */

#ifndef MCDVFS_OBS_JOURNAL_HH
#define MCDVFS_OBS_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mcdvfs
{
namespace obs
{

/** One per-sample tuning decision. */
struct DecisionRecord
{
    /** Workload the grid was characterized from. */
    std::string workload;
    /** Re-tune schedule that produced the decision. */
    std::string policy;
    /** Sample index within the run. */
    std::size_t sample = 0;
    /**
     * Fleet request this run was characterized for (0 = offline run,
     * field absent from the JSONL).  Matches the trace's Perfetto
     * flow ids, so one request is reconstructible end-to-end.
     */
    std::uint64_t requestId = 0;

    /** @name Sample characterization (when profiles are attached). */
    ///@{
    double cpi = 0.0;   ///< core CPI of the sample
    double mpki = 0.0;  ///< L2 misses per kilo-instruction
    ///@}

    /** @name The decision. */
    ///@{
    double cpuMhz = 0.0;  ///< chosen CPU frequency
    double memMhz = 0.0;  ///< chosen memory frequency
    /** Chosen GPU frequency (only meaningful when hasGpu). */
    double gpuMhz = 0.0;
    /** Run used a 3-domain space; gpu_mhz is emitted iff true. */
    bool hasGpu = false;
    /** Achieved inefficiency of the chosen setting on this sample. */
    double inefficiency = 0.0;
    /** Inefficiency budget the schedule was run with. */
    double budget = 0.0;
    ///@}

    /** @name Cluster / stable-region membership. */
    ///@{
    /** Chosen setting is inside this sample's performance cluster. */
    bool inCluster = false;
    /** Stable-region index containing the sample, or -1. */
    long long region = -1;
    ///@}

    /** @name Re-tune / transition events. */
    ///@{
    /** The governor re-tuned at this sample boundary. */
    bool retuned = false;
    /** The setting differs from the previous sample's. */
    bool transition = false;
    /** Cumulative §VI-C tuning overhead charged so far, ns. */
    std::uint64_t overheadNs = 0;
    /** Cumulative §VI-C tuning overhead charged so far, nJ. */
    std::uint64_t overheadNj = 0;
    ///@}
};

/**
 * One fleet request as the daemon served it: ids, stage latencies
 * and cache outcomes.  Appended by TuningDaemon per completed
 * request; the per-sample DecisionRecords above come from offline
 * TuningLoop runs that have no request scope.
 */
struct RequestRecord
{
    std::uint64_t requestId = 0;
    /** FNV-1a hash of the workload class name. */
    std::uint64_t classId = 0;
    std::string workload;
    double budget = 0.0;
    double threshold = 0.0;
    bool cacheHit = false;
    bool analysisCacheHit = false;
    bool analysisResumed = false;
    std::uint64_t queueWaitNs = 0;
    std::uint64_t requestNs = 0;
    /** Stable regions in the result (0 when shed). */
    std::size_t regions = 0;
    /** Request was shed instead of served. */
    bool shed = false;
};

/**
 * Ordered collection of decision + request records with a JSONL
 * exporter.  Appends are thread-safe (daemon pool workers journal
 * concurrently); reads expect the writers to be quiescent.
 */
class DecisionJournal
{
  public:
    void
    append(DecisionRecord record)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        records_.push_back(std::move(record));
    }

    void
    appendRequest(RequestRecord record)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        requests_.push_back(std::move(record));
    }

    const std::vector<DecisionRecord> &records() const
    {
        return records_;
    }

    const std::vector<RequestRecord> &requestRecords() const
    {
        return requests_;
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        records_.clear();
        requests_.clear();
    }

    /** Records flagged as re-tunes. */
    std::size_t retuneCount() const;

    /** Records flagged as setting transitions. */
    std::size_t transitionCount() const;

    /**
     * Serialize as JSONL: one header line carrying the schema, then
     * one object per record in order (format pinned by
     * tests/obs_trace_golden_test.cc).
     */
    std::string toJsonl() const;

    /**
     * Write toJsonl() to @c path.
     * @throws FatalError on I/O failure.
     */
    void write(const std::string &path) const;

  private:
    mutable std::mutex mutex_;
    std::vector<DecisionRecord> records_;
    std::vector<RequestRecord> requests_;
};

} // namespace obs
} // namespace mcdvfs

#endif // MCDVFS_OBS_JOURNAL_HH
