#include "obs/telemetry.hh"

#include <fstream>

#include "common/logging.hh"

namespace mcdvfs
{
namespace obs
{

SloWatchdog::SloWatchdog(const TimeseriesStore *store,
                         MetricsRegistry *registry)
    : store_(store), registry_(registry),
      breachTotal_(registry->counter("obs.slo.breach")),
      evaluations_(registry->counter("obs.slo.evaluations"))
{
}

void
SloWatchdog::addRule(const SloRule &rule)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ArmedRule armed;
    armed.rule = rule;
    armed.breachCounter =
        registry_->counter("obs.slo.breach", {{"rule", rule.name}});
    rules_.push_back(std::move(armed));
}

std::vector<SloRule>
SloWatchdog::defaultRules()
{
    std::vector<SloRule> rules;

    SloRule p99;
    p99.name = "submit_p99";
    p99.kind = SloRule::Kind::QuantileAbove;
    p99.metric = "daemon.request_ns";
    p99.quantile = 0.99;
    p99.threshold = 2e9; // 2 s end-to-end
    rules.push_back(p99);

    SloRule shed;
    shed.name = "shed_rate";
    shed.kind = SloRule::Kind::ShareAbove;
    shed.metric = "daemon.shed";
    shed.denominator = "daemon.admitted";
    shed.threshold = 0.05;
    rules.push_back(shed);

    SloRule hits;
    hits.name = "snapshot_hit_rate";
    hits.kind = SloRule::Kind::ShareBelow;
    hits.metric = "svc.cache.hits";
    hits.denominator = "svc.cache.misses";
    hits.threshold = 0.05;
    hits.minEvents = 32;
    rules.push_back(hits);

    SloRule overhead;
    overhead.name = "overhead_per_decision";
    overhead.kind = SloRule::Kind::PerEventAbove;
    overhead.metric = "runtime.tuning.overhead_time_ns";
    overhead.denominator = "runtime.tuning.events";
    overhead.threshold = 600e3; // paper charges 500 us per event
    overhead.minEvents = 1;
    rules.push_back(overhead);

    return rules;
}

std::vector<SloBreach>
SloWatchdog::evaluate()
{
    evaluations_.add(1);
    const std::uint64_t tick = store_->totalTicks();
    std::vector<SloBreach> found;

    std::lock_guard<std::mutex> lock(mutex_);
    for (ArmedRule &armed : rules_) {
        const SloRule &rule = armed.rule;
        double value = 0.0;
        bool breached = false;

        switch (rule.kind) {
        case SloRule::Kind::ShareAbove:
        case SloRule::Kind::ShareBelow: {
            const std::uint64_t numerator =
                store_->counterDelta(rule.metric, rule.window);
            const std::uint64_t other =
                store_->counterDelta(rule.denominator, rule.window);
            const std::uint64_t total = numerator + other;
            if (total < rule.minEvents)
                continue;
            value = static_cast<double>(numerator) /
                    static_cast<double>(total);
            breached = rule.kind == SloRule::Kind::ShareAbove
                           ? value > rule.threshold
                           : value < rule.threshold;
            break;
        }
        case SloRule::Kind::QuantileAbove: {
            const std::uint64_t events =
                store_->histogramEvents(rule.metric, rule.window);
            if (events < rule.minEvents)
                continue;
            value = store_->quantile(rule.metric, rule.quantile,
                                     rule.window);
            breached = value > rule.threshold;
            break;
        }
        case SloRule::Kind::PerEventAbove: {
            const std::uint64_t numerator =
                store_->counterDelta(rule.metric, rule.window);
            const std::uint64_t events =
                store_->counterDelta(rule.denominator, rule.window);
            if (events < rule.minEvents)
                continue;
            value = static_cast<double>(numerator) /
                    static_cast<double>(events);
            breached = value > rule.threshold;
            break;
        }
        }

        if (!breached)
            continue;
        breachTotal_.add(1);
        armed.breachCounter.add(1);
        warn("slo breach: rule=", rule.name, " value=", value,
             " threshold=", rule.threshold, " tick=", tick);
        SloBreach breach;
        breach.rule = rule.name;
        breach.value = value;
        breach.threshold = rule.threshold;
        breach.tick = tick;
        log_.push_back(breach);
        found.push_back(breach);
    }
    return found;
}

std::vector<SloBreach>
SloWatchdog::breaches() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return log_;
}

std::uint64_t
SloWatchdog::breachCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return log_.size();
}

TelemetryPipeline::TelemetryPipeline(TelemetryConfig config,
                                     MetricsRegistry *registry)
    : registry_(registry), config_(config), store_(config.capacity),
      watchdog_(&store_, registry),
      tickCounter_(registry->counter("obs.telemetry.ticks")),
      epoch_(std::chrono::steady_clock::now())
{
    if (config_.defaultRules) {
        for (const SloRule &rule : SloWatchdog::defaultRules())
            watchdog_.addRule(rule);
    }
}

TelemetryPipeline::~TelemetryPipeline()
{
    stop();
}

void
TelemetryPipeline::start()
{
    std::lock_guard<std::mutex> lock(threadMutex_);
    if (running_)
        return;
    stopping_ = false;
    running_ = true;
    thread_ = std::thread(&TelemetryPipeline::samplerLoop, this);
}

void
TelemetryPipeline::stop()
{
    {
        std::lock_guard<std::mutex> lock(threadMutex_);
        if (!running_) {
            stopping_ = true;
            return;
        }
        stopping_ = true;
    }
    wake_.notify_all();
    thread_.join();
    {
        std::lock_guard<std::mutex> lock(threadMutex_);
        running_ = false;
    }
    // Flush: short runs still get at least one tick of data.
    tickNow();
}

void
TelemetryPipeline::setTickCallback(TickCallback callback)
{
    std::lock_guard<std::mutex> lock(sampleMutex_);
    callback_ = std::move(callback);
}

void
TelemetryPipeline::tickNow()
{
    TickCallback callback;
    MetricsSnapshot snapshot;
    std::uint64_t tick = 0;
    {
        std::lock_guard<std::mutex> lock(sampleMutex_);
        snapshot = registry_->snapshot();
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_);
        store_.append(snapshot, elapsed.count() > 0
                                    ? static_cast<std::uint64_t>(
                                          elapsed.count())
                                    : 0);
        tickCounter_.add(1);
        tick = ++tickIndex_;
        lastSnapshot_ = snapshot;
        callback = callback_;
    }
    watchdog_.evaluate();
    if (callback)
        callback(snapshot, tick);
}

void
TelemetryPipeline::samplerLoop()
{
    std::unique_lock<std::mutex> lock(threadMutex_);
    while (!stopping_) {
        wake_.wait_for(lock, config_.period,
                       [this] { return stopping_; });
        if (stopping_)
            break;
        lock.unlock();
        tickNow();
        lock.lock();
    }
}

std::uint64_t
TelemetryPipeline::ticks() const
{
    std::lock_guard<std::mutex> lock(sampleMutex_);
    return tickIndex_;
}

std::string
TelemetryPipeline::exportJson() const
{
    return store_.toJson(watchdog_.breaches());
}

std::string
TelemetryPipeline::exportProm() const
{
    std::lock_guard<std::mutex> lock(sampleMutex_);
    return toPromText(lastSnapshot_);
}

void
TelemetryPipeline::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("telemetry json: cannot open ", path, " for writing");
    out << exportJson();
    if (!out)
        fatal("telemetry json: failed writing ", path);
}

} // namespace obs
} // namespace mcdvfs
