/**
 * @file
 * Lightweight process-wide metrics: counters, gauges and fixed-bucket
 * histograms behind a named registry, with a JSON snapshot exporter.
 *
 * The paper's algorithm-implication sections are all about accounting
 * (500 us + 30 uJ per tuning event, Sec. 6); this layer gives the
 * serving stack the same visibility at runtime: where grid-build time
 * goes, how often the cache hits, how long tasks wait in the pool
 * queue, how much simulated transition time/energy the tuning policies
 * burn.  docs/OBSERVABILITY.md has the metric catalog.
 *
 * Design:
 *  - Handles (Counter, Gauge, Histogram) are trivially copyable views
 *    onto storage owned by a MetricsRegistry; the registry must
 *    outlive its handles.  Registration is idempotent by name.
 *  - The write path is lock-free: counter and histogram cells are
 *    striped into kStripes cache-line-padded atomics indexed by a
 *    per-thread stripe id, so concurrent writers on different threads
 *    rarely share a line.  Reads merge the stripes.
 *  - Values are integers (counts, nanoseconds, nanojoules): integer
 *    accumulation is exact and atomic without CAS loops.
 *  - When the build disables metrics (MCDVFS_METRICS=OFF, which
 *    defines MCDVFS_METRICS_DISABLED), every mutating handle method
 *    and metricsNow() compile to empty inlines: instrumented code pays
 *    nothing, and snapshots report whatever was registered as zeros.
 */

#ifndef MCDVFS_OBS_METRICS_HH
#define MCDVFS_OBS_METRICS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mcdvfs
{
namespace obs
{

/** True when the build carries live instrumentation. */
#ifdef MCDVFS_METRICS_DISABLED
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

/** Writer stripes per metric (power of two). */
inline constexpr std::size_t kStripes = 8;

using Clock = std::chrono::steady_clock;

/** Stripe index of the calling thread (stable for its lifetime). */
std::size_t threadStripe();

/** Clock::now() in instrumented builds, a zero time point otherwise. */
inline Clock::time_point
metricsNow()
{
#ifdef MCDVFS_METRICS_DISABLED
    return Clock::time_point{};
#else
    return Clock::now();
#endif
}

/** Nanoseconds since @c start (0 in disabled builds). */
inline std::uint64_t
elapsedNs(Clock::time_point start)
{
#ifdef MCDVFS_METRICS_DISABLED
    (void)start;
    return 0;
#else
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - start);
    return ns.count() > 0 ? static_cast<std::uint64_t>(ns.count()) : 0;
#endif
}

namespace detail
{

/** One cache-line-padded atomic cell. */
struct alignas(64) StripedCell
{
    std::atomic<std::uint64_t> value{0};
};

/** Storage of one counter: a stripe of cells, merged on read. */
struct CounterCells
{
    StripedCell stripes[kStripes];

    void
    add(std::uint64_t n)
    {
        stripes[threadStripe()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    std::uint64_t total() const;
    void reset();
};

/** Storage of one gauge: a single signed atomic (set/add). */
struct GaugeCells
{
    std::atomic<std::int64_t> value{0};
};

/** Storage of one histogram: per-bucket counters plus count and sum. */
struct HistogramCells
{
    explicit HistogramCells(std::vector<std::uint64_t> bounds);

    /** Ascending upper bucket bounds; the last bucket is unbounded. */
    const std::vector<std::uint64_t> bounds;
    /** bounds.size() + 1 buckets, each striped. */
    std::vector<std::unique_ptr<CounterCells>> buckets;
    CounterCells count;
    CounterCells sum;

    void record(std::uint64_t value);
    void reset();
};

} // namespace detail

/**
 * One dimension of a labeled metric: key/value pairs such as
 * {{"wl", "gobmk"}, {"domain", "gpu"}}.  Keys are sorted on
 * canonicalization, so label order at the call site does not matter.
 */
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/**
 * Canonical series name of a labeled metric:
 * `name{k1=v1,k2=v2}` with keys sorted and the characters
 * `{ } = , "` in values replaced by '_' (so the name is safe in both
 * the JSON and the Prometheus exporters).
 */
std::string labeledName(const std::string &name,
                        const MetricLabels &labels);

/** Monotonically increasing named value. */
class Counter
{
  public:
    Counter() = default;

    void
    add(std::uint64_t n = 1)
    {
        if constexpr (kMetricsEnabled) {
            if (cells_ != nullptr)
                cells_->add(n);
        } else {
            (void)n;
        }
    }

    /** Merged value across all writer stripes. */
    std::uint64_t
    value() const
    {
        return cells_ != nullptr ? cells_->total() : 0;
    }

  private:
    friend class MetricsRegistry;
    explicit Counter(detail::CounterCells *cells) : cells_(cells) {}
    detail::CounterCells *cells_ = nullptr;
};

/** Named value that can move both ways (sizes, in-flight counts). */
class Gauge
{
  public:
    Gauge() = default;

    void
    set(std::int64_t v)
    {
        if constexpr (kMetricsEnabled) {
            if (cells_ != nullptr)
                cells_->value.store(v, std::memory_order_relaxed);
        } else {
            (void)v;
        }
    }

    void
    add(std::int64_t delta)
    {
        if constexpr (kMetricsEnabled) {
            if (cells_ != nullptr)
                cells_->value.fetch_add(delta,
                                        std::memory_order_relaxed);
        } else {
            (void)delta;
        }
    }

    std::int64_t
    value() const
    {
        return cells_ != nullptr
                   ? cells_->value.load(std::memory_order_relaxed)
                   : 0;
    }

  private:
    friend class MetricsRegistry;
    explicit Gauge(detail::GaugeCells *cells) : cells_(cells) {}
    detail::GaugeCells *cells_ = nullptr;
};

/** Fixed-bucket histogram of integer values (e.g. nanoseconds). */
class Histogram
{
  public:
    Histogram() = default;

    void
    record(std::uint64_t value)
    {
        if constexpr (kMetricsEnabled) {
            if (cells_ != nullptr)
                cells_->record(value);
        } else {
            (void)value;
        }
    }

    std::uint64_t count() const;
    std::uint64_t sum() const;

  private:
    friend class MetricsRegistry;
    explicit Histogram(detail::HistogramCells *cells) : cells_(cells) {}
    detail::HistogramCells *cells_ = nullptr;
};

/** Point-in-time, merged view of a registry (sorted by name). */
struct MetricsSnapshot
{
    struct HistogramView
    {
        std::string name;
        std::vector<std::uint64_t> bounds;
        /** bounds.size() + 1 entries; the last is the overflow bucket. */
        std::vector<std::uint64_t> counts;
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
    };

    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<HistogramView> histograms;
};

/** Owns named metrics; registration is idempotent by name. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry all library instrumentation uses. */
    static MetricsRegistry &global();

    /**
     * Register (or look up) a metric.  Re-registering a name with a
     * different kind — or a histogram with different bounds — throws
     * FatalError.
     */
    Counter counter(const std::string &name);
    Gauge gauge(const std::string &name);
    Histogram histogram(const std::string &name,
                        const std::vector<std::uint64_t> &bounds);

    /**
     * Register (or look up) one series of a dimensional counter
     * family: `reg.counter("daemon.completed", {{"wl", "gobmk"}})`
     * names the series `daemon.completed{wl=gobmk}`.  Labeled series
     * are ordinary counters — they appear in snapshots and exporters
     * under the canonical name — and the interner is bounded: once
     * labelLimit() distinct label sets exist, further new sets
     * collapse into `name{overflow=true}` (counted by
     * `obs.labels.overflowed`) so unbounded label cardinality cannot
     * exhaust memory.  Sites increment the labeled series *and* the
     * unlabeled total, so per-label values always sum to the base
     * counter.
     */
    Counter counter(const std::string &name, const MetricLabels &labels);

    /** Same interning for a labeled gauge series. */
    Gauge gauge(const std::string &name, const MetricLabels &labels);

    /** Distinct labeled series the interner still admits (default 1024). */
    std::size_t labelLimit() const;
    void setLabelLimit(std::size_t limit);

    /**
     * Canonical latency bucket upper bounds in nanoseconds: decades
     * from 1 us to 1 s (pinned by the snapshot golden test).
     */
    static std::vector<std::uint64_t> latencyBucketsNs();

    /** Merged point-in-time view of every registered metric. */
    MetricsSnapshot snapshot() const;

    /** Zero every value; names and bounds stay registered. */
    void reset();

  private:
    enum class Kind
    {
        CounterKind,
        GaugeKind,
        HistogramKind
    };

    /** Find-or-create cell helpers (mutex_ held by the caller). */
    detail::CounterCells *counterCellsLocked(const std::string &name);
    detail::GaugeCells *gaugeCellsLocked(const std::string &name);
    /** Interner of one labeled series name (mutex_ held). */
    std::string internLabeledLocked(const std::string &name,
                                    const MetricLabels &labels);

    mutable std::mutex mutex_;
    std::size_t labelLimit_ = 1024;
    std::size_t labeledSeries_ = 0;
    std::map<std::string, Kind> kinds_;
    std::map<std::string, std::unique_ptr<detail::CounterCells>>
        counters_;
    std::map<std::string, std::unique_ptr<detail::GaugeCells>> gauges_;
    std::map<std::string, std::unique_ptr<detail::HistogramCells>>
        histograms_;
};

/**
 * RAII timer recording elapsed nanoseconds into a histogram on
 * destruction (or at stop()).  A no-op in disabled builds.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram histogram)
        : histogram_(histogram), start_(metricsNow())
    {
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (!stopped_)
            histogram_.record(elapsedNs(start_));
    }

    /** Record now and disarm the destructor; returns the elapsed ns. */
    std::uint64_t
    stop()
    {
        const std::uint64_t ns = elapsedNs(start_);
        if (!stopped_)
            histogram_.record(ns);
        stopped_ = true;
        return ns;
    }

  private:
    Histogram histogram_;
    Clock::time_point start_;
    bool stopped_ = false;
};

/**
 * Serialize a snapshot to the project's flat JSON conventions (see
 * bench/bench_json.hh); schema "mcdvfs-metrics-v1", keys sorted.
 */
std::string toJson(const MetricsSnapshot &snapshot);

/**
 * Serialize a snapshot as Prometheus text exposition: dots in metric
 * names become underscores, canonical `name{k=v}` series become
 * `name{k="v"}`, histograms expand to cumulative `_bucket{le="..."}`
 * lines plus `_sum` and `_count`.
 */
std::string toPromText(const MetricsSnapshot &snapshot);

/**
 * Write the global registry's snapshot to @c path.
 * @throws FatalError on I/O failure.
 */
void writeMetricsJson(const std::string &path);

} // namespace obs
} // namespace mcdvfs

#endif // MCDVFS_OBS_METRICS_HH
