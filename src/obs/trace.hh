/**
 * @file
 * Execution tracing: per-thread lock-free ring-buffer event collection
 * with a Chrome trace_event exporter (loadable in Perfetto or
 * chrome://tracing).
 *
 * The metrics layer (obs/metrics.hh) answers "how much" questions;
 * this layer answers "when" questions: where wall-time goes inside a
 * concurrent submitBatch, which grid build a worker was running at a
 * given instant, when a governor decided to re-tune.  The span and
 * instant catalog lives in docs/OBSERVABILITY.md.
 *
 * Design:
 *  - Recording is gated twice.  At compile time, MCDVFS_TRACING=OFF
 *    (or MCDVFS_METRICS=OFF) defines MCDVFS_TRACING_DISABLED and every
 *    instrumentation-site helper (TraceSpan, traceInstant) becomes an
 *    empty inline.  At runtime, nothing is recorded until
 *    TraceCollector::global().enable() is called (e.g. by
 *    `mcdvfs_cli --trace-out FILE`), so instrumented builds that never
 *    ask for a trace pay one relaxed atomic load per site.
 *  - Each writer thread owns a fixed-capacity ring of slots; writes
 *    never block and never allocate past ring registration.  A full
 *    ring drops the *oldest* events (the slot is simply overwritten)
 *    and the collector reports how many were lost.
 *  - Slots are seqlock-protected: the writer brackets relaxed payload
 *    stores with an odd/even sequence number, so a concurrent snapshot
 *    either observes a consistent event or skips it.  All slot fields
 *    are atomics with relaxed ordering (plus release/acquire on the
 *    sequence), which keeps the protocol TSan-clean.
 *  - Event names must be string literals (or otherwise outlive the
 *    collector): slots store the pointer, never a copy.
 *
 * Timestamps are steady-clock nanoseconds relative to the first touch
 * of the collector, so exported traces start near t=0.
 */

#ifndef MCDVFS_OBS_TRACE_HH
#define MCDVFS_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mcdvfs
{
namespace obs
{

/** True when instrumentation sites record (see file comment). */
#ifdef MCDVFS_TRACING_DISABLED
inline constexpr bool kTracingEnabled = false;
#else
inline constexpr bool kTracingEnabled = true;
#endif

/** Default per-thread ring capacity, in events. */
inline constexpr std::size_t kDefaultTraceRingCapacity = 16384;

/** One consistent event read out of a ring. */
struct TraceEventView
{
    const char *name = nullptr;
    /** Chrome phase: 'X' (complete, has durNs) or 'i' (instant). */
    char phase = 'i';
    /** Start time, ns since the collector's epoch. */
    std::uint64_t tsNs = 0;
    /** Duration in ns ('X' events only). */
    std::uint64_t durNs = 0;
    /** One free-form integer argument (sample index, chunk id, ...). */
    std::uint64_t arg = 0;
    /**
     * Request flow id (0 = none): the TraceContext request id active
     * when the event was recorded; exported as a Perfetto flow
     * (bind_id + flow_in/flow_out) so one request's spans chain.
     */
    std::uint64_t flowId = 0;
    /** Collector-assigned writer-thread id (registration order). */
    std::size_t tid = 0;
};

/**
 * Request-scoped correlation ids, carried in a thread-local and
 * stamped into every span/instant recorded while installed (see
 * ScopedTraceContext).  requestId 0 means "no request in scope".
 * The daemon allocates ids at TuningDaemon::submit and re-installs
 * the context on the batcher and pool threads that serve the request,
 * so the journal and the trace share one id space.
 */
struct TraceContext
{
    std::uint64_t requestId = 0;
    /** FNV-1a hash of the workload class name. */
    std::uint64_t classId = 0;
};

/** The calling thread's active context (mutable; prefer the RAII). */
TraceContext &currentTraceContext();

/** Install a context for a scope; restores the previous one on exit. */
class ScopedTraceContext
{
  public:
    explicit ScopedTraceContext(TraceContext context)
        : saved_(currentTraceContext())
    {
        currentTraceContext() = context;
    }

    ScopedTraceContext(const ScopedTraceContext &) = delete;
    ScopedTraceContext &operator=(const ScopedTraceContext &) = delete;

    ~ScopedTraceContext() { currentTraceContext() = saved_; }

  private:
    TraceContext saved_;
};

/** Point-in-time view of every ring, ordered by (tid, record order). */
struct TraceSnapshot
{
    std::vector<TraceEventView> events;
    /** Events lost to ring wrap-around, summed over all rings. */
    std::uint64_t droppedEvents = 0;
    /** Events skipped because a writer was mid-store during read. */
    std::uint64_t tornReads = 0;
};

namespace detail
{

/**
 * One seqlock-protected event slot.  seq is 0 when never written,
 * odd while the owning thread is storing the payload, and
 * 2 * (write_index + 1) once the payload at write_index is stable.
 */
struct TraceSlot
{
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> tsNs{0};
    std::atomic<std::uint64_t> durNs{0};
    std::atomic<std::uint64_t> arg{0};
    std::atomic<std::uint64_t> flow{0};
    std::atomic<const char *> name{nullptr};
    std::atomic<char> phase{0};
};

/**
 * Fixed-capacity single-writer event ring.  push() may only be called
 * by the owning thread; read() may run concurrently from any thread.
 */
class TraceRing
{
  public:
    TraceRing(std::size_t capacity, std::size_t tid);

    /** Record one event (owning thread only; never blocks). */
    void push(char phase, const char *name, std::uint64_t ts_ns,
              std::uint64_t dur_ns, std::uint64_t arg,
              std::uint64_t flow = 0);

    /** Events ever pushed (monotonic). */
    std::uint64_t written() const
    {
        return writeIndex_.load(std::memory_order_acquire);
    }

    /** Events lost to wrap-around so far. */
    std::uint64_t dropped() const;

    /**
     * Append every consistent retained event to @c out in record
     * order; returns the number of torn (skipped) slots.
     */
    std::uint64_t readInto(std::vector<TraceEventView> &out) const;

    std::size_t tid() const { return tid_; }
    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    const std::size_t tid_;
    std::vector<TraceSlot> slots_;
    /** Next write index; slot = writeIndex_ % capacity_. */
    std::atomic<std::uint64_t> writeIndex_{0};
};

} // namespace detail

/**
 * Process-wide trace collector: owns one ring per writer thread.
 * Rings are registered lazily on a thread's first record and stay
 * alive after the thread exits, so pool workers' events survive pool
 * destruction and appear in the final export.
 */
class TraceCollector
{
  public:
    TraceCollector() = default;
    TraceCollector(const TraceCollector &) = delete;
    TraceCollector &operator=(const TraceCollector &) = delete;

    /** The collector all library instrumentation records into. */
    static TraceCollector &global();

    /**
     * Start recording.  @c ring_capacity is the per-thread event
     * capacity for rings registered from now on (existing rings keep
     * theirs).  Idempotent.
     */
    void enable(std::size_t ring_capacity = kDefaultTraceRingCapacity);

    /** Stop recording; retained events stay exportable. */
    void disable();

    /** True while recording is on (one relaxed load). */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Record one event into the calling thread's ring (no-op while
     * disabled).  @c name must outlive the collector (string
     * literal).  Instrumentation sites should prefer TraceSpan /
     * traceInstant; this entry point exists for tests and exporters
     * that need explicit timestamps.
     */
    void record(char phase, const char *name, std::uint64_t ts_ns,
                std::uint64_t dur_ns, std::uint64_t arg,
                std::uint64_t flow = 0);

    /** Consistent view of every ring (safe while writers run). */
    TraceSnapshot snapshot() const;

    /**
     * Drop every ring and its events and reset the epoch.  Only safe
     * when no thread is concurrently recording (tests, or between
     * runs at quiescence).
     */
    void reset();

    /** ns since the collector's epoch (first global() touch). */
    static std::uint64_t nowNs();

  private:
    detail::TraceRing *ringForThisThread();

    std::atomic<bool> enabled_{false};
    /** Bumped by reset() so stale thread-local ring pointers die. */
    std::atomic<std::uint64_t> epoch_{1};
    mutable std::mutex mutex_;
    std::size_t capacity_ = kDefaultTraceRingCapacity;
    std::vector<std::unique_ptr<detail::TraceRing>> rings_;
};

/** True when this build records and the collector is enabled. */
inline bool
tracingActive()
{
    if constexpr (kTracingEnabled)
        return TraceCollector::global().enabled();
    else
        return false;
}

/**
 * RAII span: captures the start time at construction and records one
 * complete ('X') event at end() / destruction.  Costs one relaxed
 * load when tracing is off; compiles to nothing in disabled builds.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name, std::uint64_t arg = 0)
    {
#ifndef MCDVFS_TRACING_DISABLED
        if (tracingActive()) {
            name_ = name;
            arg_ = arg;
            flow_ = currentTraceContext().requestId;
            startNs_ = TraceCollector::nowNs();
            active_ = true;
        }
#else
        (void)name;
        (void)arg;
#endif
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    ~TraceSpan() { end(); }

    /** Record the span now instead of at scope exit. */
    void
    end()
    {
#ifndef MCDVFS_TRACING_DISABLED
        if (active_) {
            active_ = false;
            TraceCollector::global().record(
                'X', name_, startNs_,
                TraceCollector::nowNs() - startNs_, arg_, flow_);
        }
#endif
    }

  private:
#ifndef MCDVFS_TRACING_DISABLED
    const char *name_ = nullptr;
    std::uint64_t startNs_ = 0;
    std::uint64_t arg_ = 0;
    std::uint64_t flow_ = 0;
    bool active_ = false;
#endif
};

/** Record an instant ('i') event at the current time. */
inline void
traceInstant(const char *name, std::uint64_t arg = 0)
{
    if constexpr (kTracingEnabled) {
        if (tracingActive()) {
            TraceCollector::global().record(
                'i', name, TraceCollector::nowNs(), 0, arg,
                currentTraceContext().requestId);
        }
    } else {
        (void)name;
        (void)arg;
    }
}

/**
 * Serialize a snapshot as Chrome trace_event JSON (schema
 * "mcdvfs-trace-v1" in otherData; ts/dur in microseconds as the
 * format requires).  Loadable in Perfetto and chrome://tracing.
 */
std::string toChromeJson(const TraceSnapshot &snapshot);

/**
 * Write the global collector's snapshot to @c path as Chrome JSON.
 * @throws FatalError on I/O failure.
 */
void writeChromeTraceJson(const std::string &path);

} // namespace obs
} // namespace mcdvfs

#endif // MCDVFS_OBS_TRACE_HH
