#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace mcdvfs
{
namespace obs
{

namespace detail
{

TraceRing::TraceRing(std::size_t capacity, std::size_t tid)
    : capacity_(std::max<std::size_t>(1, capacity)), tid_(tid),
      slots_(capacity_)
{
}

void
TraceRing::push(char phase, const char *name, std::uint64_t ts_ns,
                std::uint64_t dur_ns, std::uint64_t arg,
                std::uint64_t flow)
{
    const std::uint64_t w = writeIndex_.load(std::memory_order_relaxed);
    TraceSlot &slot = slots_[static_cast<std::size_t>(w % capacity_)];
    // Seqlock write: odd marks the payload as in-flux; the release
    // store of the even value publishes it.  The release fence pairs
    // with the reader's acquire fence so a reader that observes any
    // of the new payload also observes the odd mark and rejects.
    slot.seq.store(2 * w + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    slot.tsNs.store(ts_ns, std::memory_order_relaxed);
    slot.durNs.store(dur_ns, std::memory_order_relaxed);
    slot.arg.store(arg, std::memory_order_relaxed);
    slot.flow.store(flow, std::memory_order_relaxed);
    slot.name.store(name, std::memory_order_relaxed);
    slot.phase.store(phase, std::memory_order_relaxed);
    slot.seq.store(2 * (w + 1), std::memory_order_release);
    writeIndex_.store(w + 1, std::memory_order_release);
}

std::uint64_t
TraceRing::dropped() const
{
    const std::uint64_t w = written();
    return w > capacity_ ? w - capacity_ : 0;
}

std::uint64_t
TraceRing::readInto(std::vector<TraceEventView> &out) const
{
    const std::uint64_t w = written();
    const std::uint64_t begin = w > capacity_ ? w - capacity_ : 0;
    std::uint64_t torn = 0;
    for (std::uint64_t i = begin; i < w; ++i) {
        const TraceSlot &slot =
            slots_[static_cast<std::size_t>(i % capacity_)];
        // A slot holding write index i is stable iff seq == 2*(i+1);
        // anything else means the writer lapped us or is mid-store.
        const std::uint64_t expected = 2 * (i + 1);
        if (slot.seq.load(std::memory_order_acquire) != expected) {
            ++torn;
            continue;
        }
        TraceEventView event;
        event.tsNs = slot.tsNs.load(std::memory_order_relaxed);
        event.durNs = slot.durNs.load(std::memory_order_relaxed);
        event.arg = slot.arg.load(std::memory_order_relaxed);
        event.flowId = slot.flow.load(std::memory_order_relaxed);
        event.name = slot.name.load(std::memory_order_relaxed);
        event.phase = slot.phase.load(std::memory_order_relaxed);
        event.tid = tid_;
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) != expected) {
            ++torn;
            continue;
        }
        out.push_back(event);
    }
    return torn;
}

} // namespace detail

TraceCollector &
TraceCollector::global()
{
    static TraceCollector collector;
    return collector;
}

std::uint64_t
TraceCollector::nowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - epoch);
    return ns.count() > 0 ? static_cast<std::uint64_t>(ns.count()) : 0;
}

void
TraceCollector::enable(std::size_t ring_capacity)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        capacity_ = std::max<std::size_t>(1, ring_capacity);
    }
    enabled_.store(true, std::memory_order_relaxed);
}

void
TraceCollector::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

detail::TraceRing *
TraceCollector::ringForThisThread()
{
    struct Cached
    {
        const TraceCollector *owner = nullptr;
        std::uint64_t epoch = 0;
        detail::TraceRing *ring = nullptr;
    };
    thread_local Cached cached;

    const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
    if (cached.owner == this && cached.epoch == epoch &&
        cached.ring != nullptr)
        return cached.ring;

    std::lock_guard<std::mutex> lock(mutex_);
    rings_.push_back(
        std::make_unique<detail::TraceRing>(capacity_, rings_.size()));
    cached.owner = this;
    cached.epoch = epoch;
    cached.ring = rings_.back().get();
    return cached.ring;
}

void
TraceCollector::record(char phase, const char *name, std::uint64_t ts_ns,
                       std::uint64_t dur_ns, std::uint64_t arg,
                       std::uint64_t flow)
{
    if (!enabled())
        return;
    ringForThisThread()->push(phase, name, ts_ns, dur_ns, arg, flow);
}

TraceContext &
currentTraceContext()
{
    thread_local TraceContext context;
    return context;
}

TraceSnapshot
TraceCollector::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    TraceSnapshot snap;
    for (const auto &ring : rings_) {
        snap.tornReads += ring->readInto(snap.events);
        snap.droppedEvents += ring->dropped();
    }
    return snap;
}

void
TraceCollector::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    rings_.clear();
    epoch_.fetch_add(1, std::memory_order_release);
}

namespace
{

/** ns → Chrome's microsecond field with fixed 3-decimal precision. */
std::string
microsFromNs(std::uint64_t ns)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer),
                  "%" PRIu64 ".%03" PRIu64, ns / 1000, ns % 1000);
    return buffer;
}

} // namespace

std::string
toChromeJson(const TraceSnapshot &snapshot)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"displayTimeUnit\": \"ns\",\n";
    out << "  \"otherData\": {\"schema\": \"mcdvfs-trace-v1\", "
           "\"dropped_events\": "
        << snapshot.droppedEvents
        << ", \"torn_reads\": " << snapshot.tornReads << "},\n";
    out << "  \"traceEvents\": [";
    for (std::size_t i = 0; i < snapshot.events.size(); ++i) {
        const TraceEventView &e = snapshot.events[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"name\": \"" << (e.name != nullptr ? e.name : "?")
            << "\", \"cat\": \"mcdvfs\", \"ph\": \"" << e.phase
            << "\", \"ts\": " << microsFromNs(e.tsNs);
        if (e.phase == 'X')
            out << ", \"dur\": " << microsFromNs(e.durNs);
        if (e.phase == 'i')
            out << ", \"s\": \"t\"";
        // Perfetto flow binding: events stamped with a request id
        // chain into one flow per request.  Unstamped events keep
        // the historical byte-for-byte layout.
        if (e.flowId != 0)
            out << ", \"bind_id\": \"0x" << std::hex << e.flowId
                << std::dec
                << "\", \"flow_in\": true, \"flow_out\": true";
        out << ", \"pid\": 1, \"tid\": " << e.tid
            << ", \"args\": {\"v\": " << e.arg;
        if (e.flowId != 0)
            out << ", \"request_id\": " << e.flowId;
        out << "}}";
    }
    out << (snapshot.events.empty() ? "]\n" : "\n  ]\n");
    out << "}\n";
    return out.str();
}

void
writeChromeTraceJson(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("trace json: cannot open ", path, " for writing");
    out << toChromeJson(TraceCollector::global().snapshot());
    if (!out)
        fatal("trace json: failed writing ", path);
}

} // namespace obs
} // namespace mcdvfs
