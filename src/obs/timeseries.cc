#include "obs/timeseries.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mcdvfs
{
namespace obs
{

namespace
{

/** Shortest-faithful double form, matching the journal's convention. */
std::string
num(double v)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.9g", v);
    return buffer;
}

/** Find-or-append a name in an index map (returns its column). */
std::size_t
internName(std::map<std::string, std::size_t> &index,
           const std::string &name)
{
    const auto it = index.find(name);
    if (it != index.end())
        return it->second;
    const std::size_t column = index.size();
    index.emplace(name, column);
    return column;
}

/** Quantile by linear interpolation over inclusive-bound buckets. */
double
interpolateQuantile(const std::vector<std::uint64_t> &bounds,
                    const std::vector<std::uint64_t> &counts, double q)
{
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts)
        total += c;
    if (total == 0)
        return -1.0;
    const double clamped = std::min(std::max(q, 0.0), 1.0);
    const double target = clamped * static_cast<double>(total);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        const double before = static_cast<double>(cumulative);
        cumulative += counts[i];
        if (static_cast<double>(cumulative) < target)
            continue;
        const double lower =
            i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
        const double upper =
            i < bounds.size()
                ? static_cast<double>(bounds[i])
                : 10.0 * static_cast<double>(bounds.back());
        const double fraction =
            (target - before) / static_cast<double>(counts[i]);
        return lower + (upper - lower) * fraction;
    }
    return bounds.empty() ? 0.0
                          : 10.0 * static_cast<double>(bounds.back());
}

} // namespace

TimeseriesStore::TimeseriesStore(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity))
{
}

void
TimeseriesStore::append(const MetricsSnapshot &snapshot,
                        std::uint64_t ts_ns)
{
    std::lock_guard<std::mutex> lock(mutex_);

    Tick tick;
    tick.tsNs = ts_ns;

    for (const auto &[name, value] : snapshot.counters) {
        const std::size_t column = internName(counterIndex_, name);
        if (column >= lastCounterTotals_.size())
            lastCounterTotals_.resize(column + 1, 0);
        if (column >= tick.counterDeltas.size())
            tick.counterDeltas.resize(column + 1, 0);
        const std::uint64_t last = lastCounterTotals_[column];
        tick.counterDeltas[column] = value >= last ? value - last : 0;
        lastCounterTotals_[column] = value;
    }
    tick.counterDeltas.resize(counterIndex_.size(), 0);

    for (const auto &[name, value] : snapshot.gauges) {
        const std::size_t column = internName(gaugeIndex_, name);
        if (column >= tick.gaugeValues.size())
            tick.gaugeValues.resize(column + 1, 0);
        tick.gaugeValues[column] = value;
    }
    tick.gaugeValues.resize(gaugeIndex_.size(), 0);

    for (const MetricsSnapshot::HistogramView &h : snapshot.histograms) {
        const std::size_t column = internName(histIndex_, h.name);
        if (column >= histBounds_.size()) {
            histBounds_.resize(column + 1);
            lastHistCounts_.resize(column + 1);
        }
        if (histBounds_[column].empty())
            histBounds_[column] = h.bounds;
        if (column >= tick.histDeltas.size())
            tick.histDeltas.resize(column + 1);
        std::vector<std::uint64_t> &last = lastHistCounts_[column];
        last.resize(h.counts.size(), 0);
        std::vector<std::uint64_t> deltas(h.counts.size(), 0);
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            deltas[i] =
                h.counts[i] >= last[i] ? h.counts[i] - last[i] : 0;
            last[i] = h.counts[i];
        }
        tick.histDeltas[column] = std::move(deltas);
    }
    tick.histDeltas.resize(histIndex_.size());

    ticks_.push_back(std::move(tick));
    ++total_;
    while (ticks_.size() > capacity_)
        ticks_.pop_front();
}

std::size_t
TimeseriesStore::retained() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ticks_.size();
}

std::uint64_t
TimeseriesStore::totalTicks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
}

std::uint64_t
TimeseriesStore::droppedTicks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_ - ticks_.size();
}

std::uint64_t
TimeseriesStore::counterDelta(const std::string &name,
                              std::size_t window) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counterIndex_.find(name);
    if (it == counterIndex_.end())
        return 0;
    const std::size_t column = it->second;
    const std::size_t span =
        window == 0 ? ticks_.size() : std::min(window, ticks_.size());
    std::uint64_t sum = 0;
    for (std::size_t i = ticks_.size() - span; i < ticks_.size(); ++i) {
        const Tick &tick = ticks_[i];
        if (column < tick.counterDeltas.size())
            sum += tick.counterDeltas[column];
    }
    return sum;
}

std::int64_t
TimeseriesStore::gaugeLast(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gaugeIndex_.find(name);
    if (it == gaugeIndex_.end() || ticks_.empty())
        return 0;
    const Tick &tick = ticks_.back();
    return it->second < tick.gaugeValues.size()
               ? tick.gaugeValues[it->second]
               : 0;
}

std::vector<std::uint64_t>
TimeseriesStore::windowBucketsLocked(std::size_t index,
                                     std::size_t window) const
{
    const std::size_t span =
        window == 0 ? ticks_.size() : std::min(window, ticks_.size());
    std::vector<std::uint64_t> buckets;
    for (std::size_t i = ticks_.size() - span; i < ticks_.size(); ++i) {
        const Tick &tick = ticks_[i];
        if (index >= tick.histDeltas.size())
            continue;
        const std::vector<std::uint64_t> &deltas = tick.histDeltas[index];
        if (buckets.size() < deltas.size())
            buckets.resize(deltas.size(), 0);
        for (std::size_t b = 0; b < deltas.size(); ++b)
            buckets[b] += deltas[b];
    }
    return buckets;
}

std::uint64_t
TimeseriesStore::histogramEvents(const std::string &name,
                                 std::size_t window) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histIndex_.find(name);
    if (it == histIndex_.end())
        return 0;
    std::uint64_t total = 0;
    for (const std::uint64_t c : windowBucketsLocked(it->second, window))
        total += c;
    return total;
}

double
TimeseriesStore::quantile(const std::string &name, double q,
                          std::size_t window) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histIndex_.find(name);
    if (it == histIndex_.end())
        return -1.0;
    return interpolateQuantile(histBounds_[it->second],
                               windowBucketsLocked(it->second, window),
                               q);
}

std::string
TimeseriesStore::toJson(const std::vector<SloBreach> &breaches) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"mcdvfs-timeseries-v1\",\n";
    out << "  \"ticks\": " << total_ << ",\n";
    out << "  \"retained\": " << ticks_.size() << ",\n";
    out << "  \"dropped_ticks\": " << total_ - ticks_.size() << ",\n";

    out << "  \"ts_ns\": [";
    for (std::size_t i = 0; i < ticks_.size(); ++i)
        out << (i == 0 ? "" : ", ") << ticks_[i].tsNs;
    out << "],\n";

    out << "  \"counters\": {";
    bool first = true;
    for (const auto &[name, column] : counterIndex_) {
        out << (first ? "\n" : ",\n") << "    \"" << name << "\": [";
        first = false;
        for (std::size_t i = 0; i < ticks_.size(); ++i) {
            const Tick &tick = ticks_[i];
            out << (i == 0 ? "" : ", ")
                << (column < tick.counterDeltas.size()
                        ? tick.counterDeltas[column]
                        : 0);
        }
        out << "]";
    }
    out << (counterIndex_.empty() ? "}" : "\n  }") << ",\n";

    out << "  \"gauges\": {";
    first = true;
    for (const auto &[name, column] : gaugeIndex_) {
        out << (first ? "\n" : ",\n") << "    \"" << name << "\": [";
        first = false;
        for (std::size_t i = 0; i < ticks_.size(); ++i) {
            const Tick &tick = ticks_[i];
            out << (i == 0 ? "" : ", ")
                << (column < tick.gaugeValues.size()
                        ? tick.gaugeValues[column]
                        : 0);
        }
        out << "]";
    }
    out << (gaugeIndex_.empty() ? "}" : "\n  }") << ",\n";

    out << "  \"quantiles\": {";
    first = true;
    for (const auto &[name, column] : histIndex_) {
        out << (first ? "\n" : ",\n") << "    \"" << name << "\": {";
        first = false;
        const double qs[] = {0.50, 0.90, 0.99};
        const char *labels[] = {"p50", "p90", "p99"};
        for (std::size_t qi = 0; qi < 3; ++qi) {
            out << (qi == 0 ? "" : ", ") << "\"" << labels[qi]
                << "\": [";
            for (std::size_t i = 0; i < ticks_.size(); ++i) {
                const Tick &tick = ticks_[i];
                double value = -1.0;
                if (column < tick.histDeltas.size())
                    value = interpolateQuantile(histBounds_[column],
                                                tick.histDeltas[column],
                                                qs[qi]);
                out << (i == 0 ? "" : ", ") << num(value);
            }
            out << "]";
        }
        out << "}";
    }
    out << (histIndex_.empty() ? "}" : "\n  }") << ",\n";

    out << "  \"slo_breaches\": [";
    for (std::size_t i = 0; i < breaches.size(); ++i) {
        const SloBreach &b = breaches[i];
        out << (i == 0 ? "\n" : ",\n") << "    {\"rule\": \"" << b.rule
            << "\", \"value\": " << num(b.value)
            << ", \"threshold\": " << num(b.threshold)
            << ", \"tick\": " << b.tick << "}";
    }
    out << (breaches.empty() ? "]\n" : "\n  ]\n");
    out << "}\n";
    return out.str();
}

} // namespace obs
} // namespace mcdvfs
