#include "obs/journal.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace mcdvfs
{
namespace obs
{

namespace
{

/**
 * Shortest-round-trip double formatting (%.9g): enough digits for the
 * journal's ratios and MHz values, stable across runs because every
 * input is deterministic.
 */
std::string
num(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    return buffer;
}

const char *
boolWord(bool v)
{
    return v ? "true" : "false";
}

} // namespace

std::size_t
DecisionJournal::retuneCount() const
{
    std::size_t count = 0;
    for (const DecisionRecord &record : records_)
        count += record.retuned ? 1 : 0;
    return count;
}

std::size_t
DecisionJournal::transitionCount() const
{
    std::size_t count = 0;
    for (const DecisionRecord &record : records_)
        count += record.transition ? 1 : 0;
    return count;
}

std::string
DecisionJournal::toJsonl() const
{
    std::ostringstream out;
    out << "{\"schema\": \"mcdvfs-trace-v1\", \"kind\": \"journal\", "
           "\"records\": "
        << records_.size();
    // Request records are a daemon-era addition; 2-domain offline
    // journals keep the original header byte-for-byte.
    if (!requests_.empty())
        out << ", \"requests\": " << requests_.size();
    out << "}\n";
    for (const DecisionRecord &r : records_) {
        out << "{\"kind\": \"sample\", \"workload\": \"" << r.workload
            << "\", \"policy\": \"" << r.policy
            << "\", \"sample\": " << r.sample;
        if (r.requestId != 0)
            out << ", \"request_id\": " << r.requestId;
        out << ", \"cpi\": "
            << num(r.cpi) << ", \"mpki\": " << num(r.mpki)
            << ", \"cpu_mhz\": " << num(r.cpuMhz)
            << ", \"mem_mhz\": " << num(r.memMhz);
        if (r.hasGpu)
            out << ", \"gpu_mhz\": " << num(r.gpuMhz);
        out << ", \"inefficiency\": " << num(r.inefficiency)
            << ", \"budget\": " << num(r.budget)
            << ", \"in_cluster\": " << boolWord(r.inCluster)
            << ", \"region\": " << r.region
            << ", \"retune\": " << boolWord(r.retuned)
            << ", \"transition\": " << boolWord(r.transition)
            << ", \"overhead_ns\": " << r.overheadNs
            << ", \"overhead_nj\": " << r.overheadNj << "}\n";
    }
    for (const RequestRecord &r : requests_) {
        out << "{\"kind\": \"request\", \"request_id\": " << r.requestId
            << ", \"class_id\": " << r.classId << ", \"workload\": \""
            << r.workload << "\", \"budget\": " << num(r.budget)
            << ", \"threshold\": " << num(r.threshold)
            << ", \"shed\": " << boolWord(r.shed)
            << ", \"cache_hit\": " << boolWord(r.cacheHit)
            << ", \"analysis_cache_hit\": "
            << boolWord(r.analysisCacheHit)
            << ", \"analysis_resumed\": " << boolWord(r.analysisResumed)
            << ", \"queue_wait_ns\": " << r.queueWaitNs
            << ", \"request_ns\": " << r.requestNs
            << ", \"regions\": " << r.regions << "}\n";
    }
    return out.str();
}

void
DecisionJournal::write(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("journal: cannot open ", path, " for writing");
    out << toJsonl();
    if (!out)
        fatal("journal: failed writing ", path);
}

} // namespace obs
} // namespace mcdvfs
