#include "obs/metrics.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace mcdvfs
{
namespace obs
{

std::size_t
threadStripe()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return stripe;
}

namespace detail
{

std::uint64_t
CounterCells::total() const
{
    std::uint64_t sum = 0;
    for (const StripedCell &cell : stripes)
        sum += cell.value.load(std::memory_order_relaxed);
    return sum;
}

void
CounterCells::reset()
{
    for (StripedCell &cell : stripes)
        cell.value.store(0, std::memory_order_relaxed);
}

HistogramCells::HistogramCells(std::vector<std::uint64_t> b)
    : bounds(std::move(b))
{
    buckets.reserve(bounds.size() + 1);
    for (std::size_t i = 0; i < bounds.size() + 1; ++i)
        buckets.push_back(std::make_unique<CounterCells>());
}

void
HistogramCells::record(std::uint64_t value)
{
    // Inclusive upper bounds: a value equal to bounds[i] counts in
    // bucket i, anything above the last bound in the overflow bucket.
    const std::size_t bucket = static_cast<std::size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), value) -
        bounds.begin());
    buckets[bucket]->add(1);
    count.add(1);
    sum.add(value);
}

void
HistogramCells::reset()
{
    for (auto &bucket : buckets)
        bucket->reset();
    count.reset();
    sum.reset();
}

} // namespace detail

std::uint64_t
Histogram::count() const
{
    return cells_ != nullptr ? cells_->count.total() : 0;
}

std::uint64_t
Histogram::sum() const
{
    return cells_ != nullptr ? cells_->sum.total() : 0;
}

namespace
{

/** Bridge from common's advisory logging channel into the registry. */
struct LogCounters
{
    Counter warnings;
    Counter informs;
};

LogCounters &
logCounters()
{
    static LogCounters counters;
    return counters;
}

/** Counter hook: runs once per warn()/inform(), before filtering. */
void
countLogMessage(LogLevel level)
{
    if (level >= LogLevel::Warn)
        logCounters().warnings.add(1);
    else
        logCounters().informs.add(1);
}

} // namespace

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    static const bool hooked = [] {
        logCounters().warnings =
            registry.counter("common.log.warnings");
        logCounters().informs = registry.counter("common.log.informs");
        mcdvfs::detail::setLogCounterHook(&countLogMessage);
        return true;
    }();
    (void)hooked;
    return registry;
}

detail::CounterCells *
MetricsRegistry::counterCellsLocked(const std::string &name)
{
    const auto kind = kinds_.find(name);
    if (kind != kinds_.end()) {
        if (kind->second != Kind::CounterKind)
            fatal("metrics: '", name, "' is already registered as a "
                  "different metric kind");
        return counters_.at(name).get();
    }
    kinds_.emplace(name, Kind::CounterKind);
    auto cells = std::make_unique<detail::CounterCells>();
    detail::CounterCells *raw = cells.get();
    counters_.emplace(name, std::move(cells));
    return raw;
}

detail::GaugeCells *
MetricsRegistry::gaugeCellsLocked(const std::string &name)
{
    const auto kind = kinds_.find(name);
    if (kind != kinds_.end()) {
        if (kind->second != Kind::GaugeKind)
            fatal("metrics: '", name, "' is already registered as a "
                  "different metric kind");
        return gauges_.at(name).get();
    }
    kinds_.emplace(name, Kind::GaugeKind);
    auto cells = std::make_unique<detail::GaugeCells>();
    detail::GaugeCells *raw = cells.get();
    gauges_.emplace(name, std::move(cells));
    return raw;
}

Counter
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return Counter(counterCellsLocked(name));
}

Gauge
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return Gauge(gaugeCellsLocked(name));
}

std::string
labeledName(const std::string &name, const MetricLabels &labels)
{
    MetricLabels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string out = name;
    out += '{';
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (i != 0)
            out += ',';
        out += sorted[i].first;
        out += '=';
        for (const char c : sorted[i].second) {
            const bool unsafe = c == '{' || c == '}' || c == '=' ||
                                c == ',' || c == '"';
            out += unsafe ? '_' : c;
        }
    }
    out += '}';
    return out;
}

std::string
MetricsRegistry::internLabeledLocked(const std::string &name,
                                     const MetricLabels &labels)
{
    std::string series = labeledName(name, labels);
    if (kinds_.count(series) != 0)
        return series;
    if (labeledSeries_ >= labelLimit_) {
        // Cardinality cap: collapse the new label set into the
        // family's overflow series so memory stays bounded.
        counterCellsLocked("obs.labels.overflowed")->add(1);
        return labeledName(name, {{"overflow", "true"}});
    }
    ++labeledSeries_;
    return series;
}

Counter
MetricsRegistry::counter(const std::string &name,
                         const MetricLabels &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return Counter(counterCellsLocked(internLabeledLocked(name, labels)));
}

Gauge
MetricsRegistry::gauge(const std::string &name, const MetricLabels &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return Gauge(gaugeCellsLocked(internLabeledLocked(name, labels)));
}

std::size_t
MetricsRegistry::labelLimit() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return labelLimit_;
}

void
MetricsRegistry::setLabelLimit(std::size_t limit)
{
    std::lock_guard<std::mutex> lock(mutex_);
    labelLimit_ = limit;
}

Histogram
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<std::uint64_t> &bounds)
{
    if (!std::is_sorted(bounds.begin(), bounds.end()))
        fatal("metrics: histogram '", name,
              "' bucket bounds must be ascending");
    std::lock_guard<std::mutex> lock(mutex_);
    const auto kind = kinds_.find(name);
    if (kind != kinds_.end()) {
        if (kind->second != Kind::HistogramKind)
            fatal("metrics: '", name, "' is already registered as a "
                  "different metric kind");
        detail::HistogramCells *cells = histograms_.at(name).get();
        if (cells->bounds != bounds)
            fatal("metrics: histogram '", name,
                  "' re-registered with different bucket bounds");
        return Histogram(cells);
    }
    kinds_.emplace(name, Kind::HistogramKind);
    auto cells = std::make_unique<detail::HistogramCells>(bounds);
    Histogram handle(cells.get());
    histograms_.emplace(name, std::move(cells));
    return handle;
}

std::vector<std::uint64_t>
MetricsRegistry::latencyBucketsNs()
{
    // Decades from 1 us to 1 s; sub-microsecond work lands in the
    // first bucket, anything slower than a second in the overflow.
    return {1'000ull,          10'000ull,        100'000ull,
            1'000'000ull,      10'000'000ull,    100'000'000ull,
            1'000'000'000ull};
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto &[name, cells] : counters_)
        snap.counters.emplace_back(name, cells->total());
    snap.gauges.reserve(gauges_.size());
    for (const auto &[name, cells] : gauges_)
        snap.gauges.emplace_back(
            name, cells->value.load(std::memory_order_relaxed));
    snap.histograms.reserve(histograms_.size());
    for (const auto &[name, cells] : histograms_) {
        MetricsSnapshot::HistogramView view;
        view.name = name;
        view.bounds = cells->bounds;
        view.counts.reserve(cells->buckets.size());
        for (const auto &bucket : cells->buckets)
            view.counts.push_back(bucket->total());
        view.count = cells->count.total();
        view.sum = cells->sum.total();
        snap.histograms.push_back(std::move(view));
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, cells] : counters_)
        cells->reset();
    for (auto &[name, cells] : gauges_)
        cells->value.store(0, std::memory_order_relaxed);
    for (auto &[name, cells] : histograms_)
        cells->reset();
}

namespace
{

template <typename T>
void
writeScalarSection(std::ostringstream &out, const char *section,
                   const std::vector<std::pair<std::string, T>> &values)
{
    out << "  \"" << section << "\": {";
    for (std::size_t i = 0; i < values.size(); ++i) {
        out << (i == 0 ? "\n" : ",\n") << "    \"" << values[i].first
            << "\": " << values[i].second;
    }
    out << (values.empty() ? "}" : "\n  }");
}

void
writeList(std::ostringstream &out, const std::vector<std::uint64_t> &v)
{
    out << "[";
    for (std::size_t i = 0; i < v.size(); ++i)
        out << (i == 0 ? "" : ", ") << v[i];
    out << "]";
}

} // namespace

std::string
toJson(const MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"mcdvfs-metrics-v1\",\n";
    writeScalarSection(out, "counters", snapshot.counters);
    out << ",\n";
    writeScalarSection(out, "gauges", snapshot.gauges);
    out << ",\n";
    out << "  \"histograms\": {";
    for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
        const MetricsSnapshot::HistogramView &h = snapshot.histograms[i];
        out << (i == 0 ? "\n" : ",\n") << "    \"" << h.name
            << "\": {\"bounds\": ";
        writeList(out, h.bounds);
        out << ", \"counts\": ";
        writeList(out, h.counts);
        out << ", \"count\": " << h.count << ", \"sum\": " << h.sum
            << "}";
    }
    out << (snapshot.histograms.empty() ? "}" : "\n  }") << "\n";
    out << "}\n";
    return out.str();
}

namespace
{

/** Prometheus-safe metric name + label body from a canonical name. */
struct PromSeries
{
    std::string name;
    /** `k="v",k2="v2"` (empty when the series is unlabeled). */
    std::string labels;
};

PromSeries
promSeries(const std::string &canonical)
{
    PromSeries out;
    const std::size_t brace = canonical.find('{');
    std::string base = canonical.substr(0, brace);
    for (char &c : base) {
        if (c == '.' || c == '-')
            c = '_';
    }
    out.name = base;
    if (brace == std::string::npos || canonical.back() != '}')
        return out;
    const std::string body =
        canonical.substr(brace + 1, canonical.size() - brace - 2);
    std::size_t pos = 0;
    while (pos < body.size()) {
        std::size_t comma = body.find(',', pos);
        if (comma == std::string::npos)
            comma = body.size();
        const std::string pair = body.substr(pos, comma - pos);
        const std::size_t eq = pair.find('=');
        if (eq != std::string::npos) {
            if (!out.labels.empty())
                out.labels += ',';
            out.labels += pair.substr(0, eq);
            out.labels += "=\"";
            out.labels += pair.substr(eq + 1);
            out.labels += '"';
        }
        pos = comma + 1;
    }
    return out;
}

void
writePromLine(std::ostringstream &out, const PromSeries &series,
              const std::string &suffix, const std::string &extraLabel,
              std::uint64_t value)
{
    out << series.name << suffix;
    if (!series.labels.empty() || !extraLabel.empty()) {
        out << '{' << series.labels;
        if (!series.labels.empty() && !extraLabel.empty())
            out << ',';
        out << extraLabel << '}';
    }
    out << ' ' << value << '\n';
}

} // namespace

std::string
toPromText(const MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    for (const auto &[name, value] : snapshot.counters) {
        const PromSeries series = promSeries(name);
        writePromLine(out, series, "_total", "", value);
    }
    for (const auto &[name, value] : snapshot.gauges) {
        const PromSeries series = promSeries(name);
        out << series.name;
        if (!series.labels.empty())
            out << '{' << series.labels << '}';
        out << ' ' << value << '\n';
    }
    for (const MetricsSnapshot::HistogramView &h : snapshot.histograms) {
        const PromSeries series = promSeries(h.name);
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            cumulative += h.counts[i];
            std::string le = "le=\"";
            le += i < h.bounds.size() ? std::to_string(h.bounds[i])
                                      : std::string("+Inf");
            le += '"';
            writePromLine(out, series, "_bucket", le, cumulative);
        }
        writePromLine(out, series, "_sum", "", h.sum);
        writePromLine(out, series, "_count", "", h.count);
    }
    return out.str();
}

void
writeMetricsJson(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("metrics json: cannot open ", path, " for writing");
    out << toJson(MetricsRegistry::global().snapshot());
    if (!out)
        fatal("metrics json: failed writing ", path);
}

} // namespace obs
} // namespace mcdvfs
