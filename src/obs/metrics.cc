#include "obs/metrics.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace mcdvfs
{
namespace obs
{

std::size_t
threadStripe()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return stripe;
}

namespace detail
{

std::uint64_t
CounterCells::total() const
{
    std::uint64_t sum = 0;
    for (const StripedCell &cell : stripes)
        sum += cell.value.load(std::memory_order_relaxed);
    return sum;
}

void
CounterCells::reset()
{
    for (StripedCell &cell : stripes)
        cell.value.store(0, std::memory_order_relaxed);
}

HistogramCells::HistogramCells(std::vector<std::uint64_t> b)
    : bounds(std::move(b))
{
    buckets.reserve(bounds.size() + 1);
    for (std::size_t i = 0; i < bounds.size() + 1; ++i)
        buckets.push_back(std::make_unique<CounterCells>());
}

void
HistogramCells::record(std::uint64_t value)
{
    // Inclusive upper bounds: a value equal to bounds[i] counts in
    // bucket i, anything above the last bound in the overflow bucket.
    const std::size_t bucket = static_cast<std::size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), value) -
        bounds.begin());
    buckets[bucket]->add(1);
    count.add(1);
    sum.add(value);
}

void
HistogramCells::reset()
{
    for (auto &bucket : buckets)
        bucket->reset();
    count.reset();
    sum.reset();
}

} // namespace detail

std::uint64_t
Histogram::count() const
{
    return cells_ != nullptr ? cells_->count.total() : 0;
}

std::uint64_t
Histogram::sum() const
{
    return cells_ != nullptr ? cells_->sum.total() : 0;
}

namespace
{

/** Bridge from common's advisory logging channel into the registry. */
struct LogCounters
{
    Counter warnings;
    Counter informs;
};

LogCounters &
logCounters()
{
    static LogCounters counters;
    return counters;
}

/** Counter hook: runs once per warn()/inform(), before filtering. */
void
countLogMessage(LogLevel level)
{
    if (level >= LogLevel::Warn)
        logCounters().warnings.add(1);
    else
        logCounters().informs.add(1);
}

} // namespace

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    static const bool hooked = [] {
        logCounters().warnings =
            registry.counter("common.log.warnings");
        logCounters().informs = registry.counter("common.log.informs");
        mcdvfs::detail::setLogCounterHook(&countLogMessage);
        return true;
    }();
    (void)hooked;
    return registry;
}

Counter
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto kind = kinds_.find(name);
    if (kind != kinds_.end()) {
        if (kind->second != Kind::CounterKind)
            fatal("metrics: '", name, "' is already registered as a "
                  "different metric kind");
        return Counter(counters_.at(name).get());
    }
    kinds_.emplace(name, Kind::CounterKind);
    auto cells = std::make_unique<detail::CounterCells>();
    Counter handle(cells.get());
    counters_.emplace(name, std::move(cells));
    return handle;
}

Gauge
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto kind = kinds_.find(name);
    if (kind != kinds_.end()) {
        if (kind->second != Kind::GaugeKind)
            fatal("metrics: '", name, "' is already registered as a "
                  "different metric kind");
        return Gauge(gauges_.at(name).get());
    }
    kinds_.emplace(name, Kind::GaugeKind);
    auto cells = std::make_unique<detail::GaugeCells>();
    Gauge handle(cells.get());
    gauges_.emplace(name, std::move(cells));
    return handle;
}

Histogram
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<std::uint64_t> &bounds)
{
    if (!std::is_sorted(bounds.begin(), bounds.end()))
        fatal("metrics: histogram '", name,
              "' bucket bounds must be ascending");
    std::lock_guard<std::mutex> lock(mutex_);
    const auto kind = kinds_.find(name);
    if (kind != kinds_.end()) {
        if (kind->second != Kind::HistogramKind)
            fatal("metrics: '", name, "' is already registered as a "
                  "different metric kind");
        detail::HistogramCells *cells = histograms_.at(name).get();
        if (cells->bounds != bounds)
            fatal("metrics: histogram '", name,
                  "' re-registered with different bucket bounds");
        return Histogram(cells);
    }
    kinds_.emplace(name, Kind::HistogramKind);
    auto cells = std::make_unique<detail::HistogramCells>(bounds);
    Histogram handle(cells.get());
    histograms_.emplace(name, std::move(cells));
    return handle;
}

std::vector<std::uint64_t>
MetricsRegistry::latencyBucketsNs()
{
    // Decades from 1 us to 1 s; sub-microsecond work lands in the
    // first bucket, anything slower than a second in the overflow.
    return {1'000ull,          10'000ull,        100'000ull,
            1'000'000ull,      10'000'000ull,    100'000'000ull,
            1'000'000'000ull};
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto &[name, cells] : counters_)
        snap.counters.emplace_back(name, cells->total());
    snap.gauges.reserve(gauges_.size());
    for (const auto &[name, cells] : gauges_)
        snap.gauges.emplace_back(
            name, cells->value.load(std::memory_order_relaxed));
    snap.histograms.reserve(histograms_.size());
    for (const auto &[name, cells] : histograms_) {
        MetricsSnapshot::HistogramView view;
        view.name = name;
        view.bounds = cells->bounds;
        view.counts.reserve(cells->buckets.size());
        for (const auto &bucket : cells->buckets)
            view.counts.push_back(bucket->total());
        view.count = cells->count.total();
        view.sum = cells->sum.total();
        snap.histograms.push_back(std::move(view));
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, cells] : counters_)
        cells->reset();
    for (auto &[name, cells] : gauges_)
        cells->value.store(0, std::memory_order_relaxed);
    for (auto &[name, cells] : histograms_)
        cells->reset();
}

namespace
{

template <typename T>
void
writeScalarSection(std::ostringstream &out, const char *section,
                   const std::vector<std::pair<std::string, T>> &values)
{
    out << "  \"" << section << "\": {";
    for (std::size_t i = 0; i < values.size(); ++i) {
        out << (i == 0 ? "\n" : ",\n") << "    \"" << values[i].first
            << "\": " << values[i].second;
    }
    out << (values.empty() ? "}" : "\n  }");
}

void
writeList(std::ostringstream &out, const std::vector<std::uint64_t> &v)
{
    out << "[";
    for (std::size_t i = 0; i < v.size(); ++i)
        out << (i == 0 ? "" : ", ") << v[i];
    out << "]";
}

} // namespace

std::string
toJson(const MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"mcdvfs-metrics-v1\",\n";
    writeScalarSection(out, "counters", snapshot.counters);
    out << ",\n";
    writeScalarSection(out, "gauges", snapshot.gauges);
    out << ",\n";
    out << "  \"histograms\": {";
    for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
        const MetricsSnapshot::HistogramView &h = snapshot.histograms[i];
        out << (i == 0 ? "\n" : ",\n") << "    \"" << h.name
            << "\": {\"bounds\": ";
        writeList(out, h.bounds);
        out << ", \"counts\": ";
        writeList(out, h.counts);
        out << ", \"count\": " << h.count << ", \"sum\": " << h.sum
            << "}";
    }
    out << (snapshot.histograms.empty() ? "}" : "\n  }") << "\n";
    out << "}\n";
    return out.str();
}

void
writeMetricsJson(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("metrics json: cannot open ", path, " for writing");
    out << toJson(MetricsRegistry::global().snapshot());
    if (!out)
        fatal("metrics json: failed writing ", path);
}

} // namespace obs
} // namespace mcdvfs
