#include "exec/thread_pool.hh"

#include <algorithm>
#include <atomic>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mcdvfs
{
namespace exec
{

namespace
{

/** Process-wide pool metrics (all live pools share them). */
struct PoolMetrics
{
    obs::Counter submitted;
    obs::Counter executed;
    obs::Counter loops;
    obs::Counter chunks;
    obs::Histogram queueWaitNs;
    obs::Histogram taskRunNs;
    obs::Gauge workers;
    obs::Gauge activeWorkers;

    PoolMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        const auto latency = obs::MetricsRegistry::latencyBucketsNs();
        submitted = reg.counter("exec.pool.tasks_submitted");
        executed = reg.counter("exec.pool.tasks_executed");
        loops = reg.counter("exec.pool.parallel_for_loops");
        chunks = reg.counter("exec.pool.parallel_for_chunks");
        queueWaitNs = reg.histogram("exec.pool.queue_wait_ns", latency);
        taskRunNs = reg.histogram("exec.pool.task_run_ns", latency);
        workers = reg.gauge("exec.pool.workers");
        activeWorkers = reg.gauge("exec.pool.active_workers");
    }
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics metrics;
    return metrics;
}

/** Shared bookkeeping of one parallelFor() invocation. */
struct LoopState
{
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::size_t chunks = 0;
    const std::function<void(std::size_t)> *body = nullptr;

    std::atomic<std::size_t> nextChunk{0};
    std::atomic<std::size_t> doneChunks{0};

    std::mutex mutex;
    std::condition_variable finished;
    std::exception_ptr firstError;

    /** Claim and run chunks until the range is exhausted. */
    void
    drain()
    {
        for (std::size_t c = nextChunk.fetch_add(1); c < chunks;
             c = nextChunk.fetch_add(1)) {
            const std::size_t lo = begin + c * grain;
            const std::size_t hi = std::min(end, lo + grain);
            obs::TraceSpan chunk_span("exec.pool.chunk", c);
            try {
                for (std::size_t i = lo; i < hi; ++i)
                    (*body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
            if (doneChunks.fetch_add(1) + 1 == chunks) {
                std::lock_guard<std::mutex> lock(mutex);
                finished.notify_all();
            }
        }
    }
};

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    poolMetrics().workers.add(static_cast<std::int64_t>(threads));
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    available_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    poolMetrics().workers.add(
        -static_cast<std::int64_t>(workers_.size()));
}

std::size_t
ThreadPool::defaultThreads()
{
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void
ThreadPool::noteInlineTask()
{
    PoolMetrics &metrics = poolMetrics();
    metrics.submitted.add(1);
    metrics.executed.add(1);
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(QueuedTask{std::move(task), obs::metricsNow()});
    }
    poolMetrics().submitted.add(1);
    available_.notify_one();
}

void
ThreadPool::runTask(QueuedTask &task)
{
    PoolMetrics &metrics = poolMetrics();
    metrics.queueWaitNs.record(obs::elapsedNs(task.enqueuedAt));
    metrics.activeWorkers.add(1);
    {
        obs::ScopedTimer run_timer(metrics.taskRunNs);
        obs::TraceSpan task_span("exec.pool.task");
        task.fn();
    }
    metrics.activeWorkers.add(-1);
    metrics.executed.add(1);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        QueuedTask task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            available_.wait(lock,
                            [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stop_ set and the queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++activeTasks_;
        }
        runTask(task);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --activeTasks_;
            if (queue_.empty() && activeTasks_ == 0)
                idle_.notify_all();
        }
    }
}

void
ThreadPool::checkAccepting() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_)
        fatal("thread pool: submit() after drain()");
}

bool
ThreadPool::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
    idle_.wait(lock, [this] {
        return queue_.empty() && activeTasks_ == 0;
    });
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &body,
                        std::size_t grain)
{
    if (begin >= end)
        return;
    grain = std::max<std::size_t>(1, grain);

    auto state = std::make_shared<LoopState>();
    state->begin = begin;
    state->end = end;
    state->grain = grain;
    state->chunks = (end - begin + grain - 1) / grain;
    state->body = &body;

    poolMetrics().loops.add(1);
    poolMetrics().chunks.add(state->chunks);
    obs::TraceSpan loop_span("exec.pool.parallel_for", state->chunks);

    // One helper per worker is enough: each helper keeps claiming
    // chunks until none remain.  Helpers that arrive late (or never
    // run before the caller finishes the range) claim nothing and
    // return immediately; the shared_ptr keeps the state alive for
    // them either way.
    const std::size_t helpers =
        std::min(workers_.size(), state->chunks > 0 ? state->chunks - 1
                                                    : std::size_t{0});
    for (std::size_t i = 0; i < helpers; ++i)
        enqueue([state] { state->drain(); });

    state->drain();

    std::unique_lock<std::mutex> lock(state->mutex);
    state->finished.wait(lock, [&state] {
        return state->doneChunks.load() == state->chunks;
    });
    if (state->firstError)
        std::rethrow_exception(state->firstError);
}

} // namespace exec
} // namespace mcdvfs
