#include "exec/thread_pool.hh"

#include <algorithm>
#include <atomic>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mcdvfs
{
namespace exec
{

namespace
{

/** Process-wide pool metrics (all live pools share them). */
struct PoolMetrics
{
    obs::Counter submitted;
    obs::Counter executed;
    obs::Counter loops;
    obs::Counter chunks;
    obs::Counter stealAttempts;
    obs::Counter stealHits;
    obs::Counter stealChunks;
    obs::Histogram queueWaitNs;
    obs::Histogram taskRunNs;
    obs::Gauge workers;
    obs::Gauge activeWorkers;

    PoolMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        const auto latency = obs::MetricsRegistry::latencyBucketsNs();
        submitted = reg.counter("exec.pool.tasks_submitted");
        executed = reg.counter("exec.pool.tasks_executed");
        loops = reg.counter("exec.pool.parallel_for_loops");
        chunks = reg.counter("exec.pool.parallel_for_chunks");
        stealAttempts = reg.counter("exec.steal.attempts");
        stealHits = reg.counter("exec.steal.hits");
        stealChunks = reg.counter("exec.steal.chunks_stolen");
        queueWaitNs = reg.histogram("exec.pool.queue_wait_ns", latency);
        taskRunNs = reg.histogram("exec.pool.task_run_ns", latency);
        workers = reg.gauge("exec.pool.workers");
        activeWorkers = reg.gauge("exec.pool.active_workers");
    }
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics metrics;
    return metrics;
}

/**
 * Shared bookkeeping of one parallelFor() invocation, organized as
 * per-participant work-stealing strips.
 *
 * Each participant (the caller + one helper task per worker) owns a
 * *strip*: a contiguous chunk-index range packed into one 64-bit
 * atomic as (lo << 32) | hi.  The owner pops chunks from the front of
 * its strip; a participant whose strip ran dry sweeps the other strips
 * and steals the *back half* of the first non-empty one it finds,
 * parking the stolen range in its own strip.  Both pop and steal are
 * single-word CAS transitions that only ever shrink a range, and the
 * packed value fully encodes the remaining work — so a stale CAS that
 * happens to match the current bits still performs a valid
 * transition.  Dedup-skewed chunk costs (one huge group next to many
 * tiny ones) therefore rebalance instead of leaving workers idle
 * behind a shared claim counter that hands each straggler exactly one
 * chunk at a time.
 *
 * Completion is tracked by doneChunks: a chunk is counted exactly once
 * by whoever ran it, so the caller's wait is independent of which
 * strip a chunk ended its life in.
 */
struct LoopState
{
    /** Packed [lo, hi) chunk range; cache-line padded per strip. */
    struct alignas(64) Strip
    {
        std::atomic<std::uint64_t> range{0};
    };

    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::size_t chunks = 0;
    const std::function<void(std::size_t)> *body = nullptr;

    std::unique_ptr<Strip[]> strips;
    std::size_t stripCount = 0;
    std::atomic<std::size_t> nextParticipant{0};
    std::atomic<std::size_t> doneChunks{0};

    std::mutex mutex;
    std::condition_variable finished;
    std::exception_ptr firstError;

    static constexpr std::uint64_t
    pack(std::uint64_t lo, std::uint64_t hi)
    {
        return (lo << 32) | hi;
    }

    /** Pre-assign contiguous chunk ranges to @c participants strips. */
    void
    distribute(std::size_t participants)
    {
        stripCount = std::max<std::size_t>(1, participants);
        strips = std::make_unique<Strip[]>(stripCount);
        const std::size_t base = chunks / stripCount;
        const std::size_t remainder = chunks % stripCount;
        std::uint64_t next = 0;
        for (std::size_t i = 0; i < stripCount; ++i) {
            const std::uint64_t count = base + (i < remainder ? 1 : 0);
            strips[i].range.store(pack(next, next + count),
                                  std::memory_order_relaxed);
            next += count;
        }
    }

    /** Pop the front chunk of @c strip (owner side). */
    bool
    popFront(Strip &strip, std::size_t &chunk)
    {
        std::uint64_t r = strip.range.load(std::memory_order_relaxed);
        for (;;) {
            const std::uint64_t lo = r >> 32;
            const std::uint64_t hi = r & 0xffffffffull;
            if (lo >= hi)
                return false;
            if (strip.range.compare_exchange_weak(
                    r, pack(lo + 1, hi), std::memory_order_acq_rel,
                    std::memory_order_relaxed)) {
                chunk = static_cast<std::size_t>(lo);
                return true;
            }
        }
    }

    /** Steal the back half of @c victim (thief side). */
    bool
    stealHalf(Strip &victim, std::uint64_t &lo_out,
              std::uint64_t &hi_out)
    {
        std::uint64_t r = victim.range.load(std::memory_order_relaxed);
        for (;;) {
            const std::uint64_t lo = r >> 32;
            const std::uint64_t hi = r & 0xffffffffull;
            if (lo >= hi)
                return false;
            const std::uint64_t take = (hi - lo + 1) / 2;
            const std::uint64_t mid = hi - take;
            if (victim.range.compare_exchange_weak(
                    r, pack(lo, mid), std::memory_order_acq_rel,
                    std::memory_order_relaxed)) {
                lo_out = mid;
                hi_out = hi;
                return true;
            }
        }
    }

    /** Run one claimed chunk and account its completion. */
    void
    runChunk(std::size_t c)
    {
        const std::size_t lo = begin + c * grain;
        const std::size_t hi = std::min(end, lo + grain);
        obs::TraceSpan chunk_span("exec.pool.chunk", c);
        try {
            for (std::size_t i = lo; i < hi; ++i)
                (*body)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex);
            if (!firstError)
                firstError = std::current_exception();
        }
        if (doneChunks.fetch_add(1) + 1 == chunks) {
            std::lock_guard<std::mutex> lock(mutex);
            finished.notify_all();
        }
    }

    /**
     * Work one participant's share: drain the owned strip, then steal
     * until every strip this participant can see is dry.  Exiting
     * while another participant still holds parked chunks is fine —
     * whatever lives in a strip is drained by that strip's owner, so
     * no chunk is ever orphaned.
     */
    void
    drain()
    {
        Strip &own =
            strips[nextParticipant.fetch_add(
                       1, std::memory_order_relaxed) %
                   stripCount];
        std::uint64_t attempts = 0;
        std::uint64_t hits = 0;
        std::uint64_t stolen = 0;
        for (;;) {
            std::size_t c;
            if (popFront(own, c)) {
                runChunk(c);
                continue;
            }
            bool got = false;
            const std::size_t self =
                static_cast<std::size_t>(&own - strips.get());
            for (std::size_t off = 1; off < stripCount && !got;
                 ++off) {
                Strip &victim = strips[(self + off) % stripCount];
                ++attempts;
                std::uint64_t lo = 0;
                std::uint64_t hi = 0;
                if (stealHalf(victim, lo, hi)) {
                    ++hits;
                    stolen += hi - lo;
                    // Run the first stolen chunk now; park the rest
                    // in the own (currently empty) strip, where other
                    // thieves can re-steal them.
                    own.range.store(pack(lo + 1, hi),
                                    std::memory_order_release);
                    runChunk(static_cast<std::size_t>(lo));
                    got = true;
                }
            }
            if (!got)
                break;
        }
        if (attempts > 0) {
            PoolMetrics &metrics = poolMetrics();
            metrics.stealAttempts.add(attempts);
            metrics.stealHits.add(hits);
            metrics.stealChunks.add(stolen);
        }
    }
};

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    poolMetrics().workers.add(static_cast<std::int64_t>(threads));
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    available_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    poolMetrics().workers.add(
        -static_cast<std::int64_t>(workers_.size()));
}

std::size_t
ThreadPool::defaultThreads()
{
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void
ThreadPool::noteInlineTask()
{
    PoolMetrics &metrics = poolMetrics();
    metrics.submitted.add(1);
    metrics.executed.add(1);
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(QueuedTask{std::move(task), obs::metricsNow()});
    }
    poolMetrics().submitted.add(1);
    available_.notify_one();
}

void
ThreadPool::runTask(QueuedTask &task)
{
    PoolMetrics &metrics = poolMetrics();
    metrics.queueWaitNs.record(obs::elapsedNs(task.enqueuedAt));
    metrics.activeWorkers.add(1);
    {
        obs::ScopedTimer run_timer(metrics.taskRunNs);
        obs::TraceSpan task_span("exec.pool.task");
        task.fn();
    }
    metrics.activeWorkers.add(-1);
    metrics.executed.add(1);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        QueuedTask task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            available_.wait(lock,
                            [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stop_ set and the queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++activeTasks_;
        }
        runTask(task);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --activeTasks_;
            if (queue_.empty() && activeTasks_ == 0)
                idle_.notify_all();
        }
    }
}

void
ThreadPool::checkAccepting() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_)
        fatal("thread pool: submit() after drain()");
}

bool
ThreadPool::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
    idle_.wait(lock, [this] {
        return queue_.empty() && activeTasks_ == 0;
    });
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &body,
                        std::size_t grain)
{
    if (begin >= end)
        return;
    grain = std::max<std::size_t>(1, grain);
    // Strip ranges pack two 32-bit chunk indices into one word; bump
    // the grain until the chunk count fits (unreachable in practice).
    while ((end - begin + grain - 1) / grain > 0xffffffffull)
        grain *= 2;

    auto state = std::make_shared<LoopState>();
    state->begin = begin;
    state->end = end;
    state->grain = grain;
    state->chunks = (end - begin + grain - 1) / grain;
    state->body = &body;

    poolMetrics().loops.add(1);
    poolMetrics().chunks.add(state->chunks);
    obs::TraceSpan loop_span("exec.pool.parallel_for", state->chunks);

    // One helper per worker is enough: each helper drains its strip
    // and then steals until everything is dry.  Helpers that arrive
    // late find their strip already emptied by thieves and return
    // after one sweep; the shared_ptr keeps the state alive for them
    // either way.
    const std::size_t helpers =
        std::min(workers_.size(), state->chunks > 0 ? state->chunks - 1
                                                    : std::size_t{0});
    state->distribute(helpers + 1);
    for (std::size_t i = 0; i < helpers; ++i)
        enqueue([state] { state->drain(); });

    state->drain();

    std::unique_lock<std::mutex> lock(state->mutex);
    state->finished.wait(lock, [&state] {
        return state->doneChunks.load() == state->chunks;
    });
    if (state->firstError)
        std::rethrow_exception(state->firstError);
}

} // namespace exec
} // namespace mcdvfs
