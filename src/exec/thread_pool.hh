/**
 * @file
 * Fixed-size task-queue thread pool.
 *
 * The pool backs the characterization service and the parallel grid
 * build: submit() runs an arbitrary callable on a worker and returns a
 * std::future carrying its result (or its exception); parallelFor()
 * splits an index range into chunks that workers *and the calling
 * thread* claim from a shared counter.
 *
 * The caller participating in parallelFor() is what makes nesting safe:
 * a task already running on a worker may itself call parallelFor()
 * without risking deadlock, because the nested loop makes progress on
 * the calling thread even when every other worker is busy.  Chunks are
 * claimed, never pre-assigned, so a busy worker simply claims nothing.
 */

#ifndef MCDVFS_EXEC_THREAD_POOL_HH
#define MCDVFS_EXEC_THREAD_POOL_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mcdvfs
{
namespace exec
{

/** Fixed-size worker pool with a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 means "no workers", in which case
     *        submit() still works (tasks run inline on the submitting
     *        thread) and parallelFor() degrades to a serial loop.
     */
    explicit ThreadPool(std::size_t threads);

    /** Joins all workers; queued tasks run to completion first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * A sensible default worker count for this machine (hardware
     * concurrency, at least 1).
     */
    static std::size_t defaultThreads();

    /**
     * Run @c fn on a worker; the returned future carries its result or
     * any exception it threw.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using Result = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        if (workers_.empty()) {
            (*task)();
            noteInlineTask();
            return future;
        }
        enqueue([task] { (*task)(); });
        return future;
    }

    /**
     * Apply @c body to every index in [begin, end), spread over the
     * workers in chunks of @c grain consecutive indices.  Blocks until
     * the whole range is done; the calling thread claims chunks too.
     * The first exception thrown by any invocation is rethrown here
     * (the rest of the range still runs to completion).
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &body,
                     std::size_t grain = 1);

  private:
    /** A queued task plus its enqueue time (queue-wait metric). */
    struct QueuedTask
    {
        std::function<void()> fn;
        std::chrono::steady_clock::time_point enqueuedAt;
    };

    void enqueue(std::function<void()> task);
    void runTask(QueuedTask &task);
    void workerLoop();

    /** Account a task that ran inline on the submitting thread. */
    static void noteInlineTask();

    std::vector<std::thread> workers_;
    std::deque<QueuedTask> queue_;
    std::mutex mutex_;
    std::condition_variable available_;
    bool stop_ = false;
};

} // namespace exec
} // namespace mcdvfs

#endif // MCDVFS_EXEC_THREAD_POOL_HH
