/**
 * @file
 * Fixed-size task-queue thread pool.
 *
 * The pool backs the characterization service and the parallel grid
 * build: submit() runs an arbitrary callable on a worker and returns a
 * std::future carrying its result (or its exception); parallelFor()
 * splits an index range into chunks spread over per-participant
 * work-stealing strips — every participant (workers *and the calling
 * thread*) drains its own contiguous strip from the front, and a
 * participant that runs dry steals the back half of a loaded strip, so
 * skewed chunk costs rebalance instead of serializing behind the
 * slowest participant.
 *
 * The caller participating in parallelFor() is what makes nesting safe:
 * a task already running on a worker may itself call parallelFor()
 * without risking deadlock, because the nested loop makes progress on
 * the calling thread even when every other worker is busy.  A busy
 * worker's strip is simply stolen empty by the others.
 */

#ifndef MCDVFS_EXEC_THREAD_POOL_HH
#define MCDVFS_EXEC_THREAD_POOL_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mcdvfs
{
namespace exec
{

/** Fixed-size worker pool with a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 means "no workers", in which case
     *        submit() still works (tasks run inline on the submitting
     *        thread) and parallelFor() degrades to a serial loop.
     */
    explicit ThreadPool(std::size_t threads);

    /** Joins all workers; queued tasks run to completion first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * A sensible default worker count for this machine (hardware
     * concurrency, at least 1).
     */
    static std::size_t defaultThreads();

    /**
     * Run @c fn on a worker; the returned future carries its result or
     * any exception it threw.
     *
     * @throws FatalError after drain() was called (the pool no longer
     *         accepts new work).
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using Result = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        checkAccepting();
        if (workers_.empty()) {
            (*task)();
            noteInlineTask();
            return future;
        }
        enqueue([task] { (*task)(); });
        return future;
    }

    /**
     * Graceful shutdown of the submission side: stop accepting new
     * submit() calls (they throw FatalError from now on), then block
     * until every queued and in-flight task has finished.
     *
     * Tasks already running may still spawn internal work — a nested
     * parallelFor() keeps functioning during and after a drain, since
     * its chunks make progress on the calling thread — so "drained"
     * means the queue is empty AND no worker is mid-task.  Idempotent;
     * safe to call from any thread except a pool worker (a worker
     * draining its own pool would deadlock waiting for itself).
     */
    void drain();

    /** True once drain() was called (no new submit() accepted). */
    bool draining() const;

    /**
     * Apply @c body to every index in [begin, end), spread over the
     * workers in chunks of @c grain consecutive indices.  Blocks until
     * the whole range is done; the calling thread claims chunks too.
     * The first exception thrown by any invocation is rethrown here
     * (the rest of the range still runs to completion).
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &body,
                     std::size_t grain = 1);

  private:
    /** A queued task plus its enqueue time (queue-wait metric). */
    struct QueuedTask
    {
        std::function<void()> fn;
        std::chrono::steady_clock::time_point enqueuedAt;
    };

    void enqueue(std::function<void()> task);
    void runTask(QueuedTask &task);
    void workerLoop();

    /** fatal() when the pool is draining (submit-side gate). */
    void checkAccepting() const;

    /** Account a task that ran inline on the submitting thread. */
    static void noteInlineTask();

    std::vector<std::thread> workers_;
    std::deque<QueuedTask> queue_;
    mutable std::mutex mutex_;
    std::condition_variable available_;
    /** Signalled when the queue empties and the last task finishes. */
    std::condition_variable idle_;
    /** Tasks currently executing on workers. */
    std::size_t activeTasks_ = 0;
    bool stop_ = false;
    bool draining_ = false;
};

} // namespace exec
} // namespace mcdvfs

#endif // MCDVFS_EXEC_THREAD_POOL_HH
