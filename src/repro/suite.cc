#include "repro/suite.hh"

#include "trace/workloads.hh"

namespace mcdvfs
{

ReproSuite::ReproSuite(const SystemConfig &config)
    : coarse_(SettingsSpace::coarse()), runner_(config)
{
}

const std::vector<std::string> &
ReproSuite::benchmarkNames()
{
    static const std::vector<std::string> names = {
        "bzip2", "gcc", "gobmk", "lbm", "libq.", "milc",
    };
    return names;
}

const MeasuredGrid &
ReproSuite::grid(const std::string &workload)
{
    auto it = cache_.find(workload);
    if (it == cache_.end()) {
        const WorkloadProfile profile = workloadByName(workload);
        it = cache_
                 .emplace(workload, std::make_unique<MeasuredGrid>(
                                        runner_.run(profile, coarse_)))
                 .first;
    }
    return *it->second;
}

} // namespace mcdvfs
