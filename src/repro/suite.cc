#include "repro/suite.hh"

#include "trace/workloads.hh"

namespace mcdvfs
{

svc::CharacterizationService::Options
ReproSuite::serviceOptions(std::size_t jobs)
{
    svc::CharacterizationService::Options options;
    options.jobs = jobs;
    // Comfortable room for the full extended workload set over both
    // the coarse and fine spaces.
    options.cacheCapacity = 32;
    return options;
}

ReproSuite::ReproSuite(const SystemConfig &config, std::size_t jobs)
    : coarse_(SettingsSpace::coarse()),
      service_(config, serviceOptions(jobs)), runner_(config)
{
}

const std::vector<std::string> &
ReproSuite::benchmarkNames()
{
    static const std::vector<std::string> names = {
        "bzip2", "gcc", "gobmk", "lbm", "libq.", "milc",
    };
    return names;
}

const MeasuredGrid &
ReproSuite::grid(const std::string &workload)
{
    auto it = pinned_.find(workload);
    if (it == pinned_.end()) {
        const WorkloadProfile profile = workloadByName(workload);
        it = pinned_.emplace(workload, service_.grid(profile, coarse_))
                 .first;
    }
    return *it->second;
}

} // namespace mcdvfs
