/**
 * @file
 * Shared experiment harness for the figure benchmarks.
 *
 * Every bench binary needs measured grids for some subset of the six
 * benchmarks over the coarse 70-setting space.  ReproSuite serves them
 * through the characterization service, so a binary touching several
 * figures pays for each characterization once (the service's grid
 * cache) and can spread the per-setting model evaluation over worker
 * threads (@c jobs).
 */

#ifndef MCDVFS_REPRO_SUITE_HH
#define MCDVFS_REPRO_SUITE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/grid_runner.hh"
#include "svc/characterization_service.hh"

namespace mcdvfs
{

/** Memoized grid provider over the paper's configuration. */
class ReproSuite
{
  public:
    /**
     * @param config system configuration shared by every grid
     * @param jobs worker threads for grid construction (1 = serial;
     *        results are bit-identical either way)
     */
    explicit ReproSuite(const SystemConfig &config =
                            SystemConfig::paperDefault(),
                        std::size_t jobs = 1);

    /** The paper's six benchmarks in reporting order. */
    static const std::vector<std::string> &benchmarkNames();

    /** Coarse 70-setting space shared by all figures. */
    const SettingsSpace &coarseSpace() const { return coarse_; }

    /**
     * The measured grid of @c workload over the coarse space
     * (characterized on first use, then cached).
     *
     * @throws FatalError for unknown workload names
     */
    const MeasuredGrid &grid(const std::string &workload);

    /** The configured grid runner (for fine-grid experiments). */
    GridRunner &runner() { return runner_; }

    /** The underlying service (batched tuning, cache statistics). */
    svc::CharacterizationService &service() { return service_; }

  private:
    static svc::CharacterizationService::Options serviceOptions(
        std::size_t jobs);

    SettingsSpace coarse_;
    svc::CharacterizationService service_;
    GridRunner runner_;
    /** Pins served grids so grid()'s references outlive cache churn. */
    std::map<std::string, std::shared_ptr<const MeasuredGrid>> pinned_;
};

} // namespace mcdvfs

#endif // MCDVFS_REPRO_SUITE_HH
