/**
 * @file
 * Shared experiment harness for the figure benchmarks.
 *
 * Every bench binary needs measured grids for some subset of the six
 * benchmarks over the coarse 70-setting space.  ReproSuite builds them
 * on demand and memoizes, so a binary touching several figures pays
 * for each characterization once.
 */

#ifndef MCDVFS_REPRO_SUITE_HH
#define MCDVFS_REPRO_SUITE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/grid_runner.hh"

namespace mcdvfs
{

/** Memoized grid provider over the paper's configuration. */
class ReproSuite
{
  public:
    explicit ReproSuite(const SystemConfig &config =
                            SystemConfig::paperDefault());

    /** The paper's six benchmarks in reporting order. */
    static const std::vector<std::string> &benchmarkNames();

    /** Coarse 70-setting space shared by all figures. */
    const SettingsSpace &coarseSpace() const { return coarse_; }

    /**
     * The measured grid of @c workload over the coarse space
     * (characterized on first use, then cached).
     *
     * @throws FatalError for unknown workload names
     */
    const MeasuredGrid &grid(const std::string &workload);

    /** The configured grid runner (for fine-grid experiments). */
    GridRunner &runner() { return runner_; }

  private:
    SettingsSpace coarse_;
    GridRunner runner_;
    std::map<std::string, std::unique_ptr<MeasuredGrid>> cache_;
};

} // namespace mcdvfs

#endif // MCDVFS_REPRO_SUITE_HH
