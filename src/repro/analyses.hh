/**
 * @file
 * Convenience bundle wiring the full analysis chain over one grid.
 *
 * The analyses reference each other (finder needs the inefficiency
 * tables, clusters need the finder, ...); GridAnalyses owns the whole
 * chain with correct initialization order so call sites stay short.
 */

#ifndef MCDVFS_REPRO_ANALYSES_HH
#define MCDVFS_REPRO_ANALYSES_HH

#include "core/stable_regions.hh"
#include "core/tradeoff.hh"
#include "core/transitions.hh"
#include "core/tuning_cost.hh"

namespace mcdvfs
{

/** The full §V-§VI analysis chain over one measured grid. */
class GridAnalyses
{
  public:
    /**
     * @param grid measured grid; must outlive this object
     * @param cost tuning-overhead calibration
     */
    explicit GridAnalyses(const MeasuredGrid &grid,
                          const TuningCostParams &cost = {});

    InefficiencyAnalysis analysis;
    OptimalSettingsFinder finder;
    ClusterFinder clusters;
    StableRegionFinder regions;
    TransitionAnalysis transitions;
    TuningCostModel costModel;
    TradeoffEvaluator tradeoff;
};

} // namespace mcdvfs

#endif // MCDVFS_REPRO_ANALYSES_HH
