#include "repro/analyses.hh"

namespace mcdvfs
{

GridAnalyses::GridAnalyses(const MeasuredGrid &grid,
                           const TuningCostParams &cost)
    : analysis(grid), finder(analysis), clusters(finder),
      regions(clusters), transitions(regions, clusters),
      costModel(cost), tradeoff(regions, clusters, costModel)
{
}

} // namespace mcdvfs
