/**
 * @file
 * Recording and replaying instruction traces.
 *
 * Format: one instruction per line.  Non-memory kinds are a single
 * letter; memory kinds carry a hexadecimal address:
 *
 *   A            integer ALU
 *   M            integer multiply
 *   F            floating-point op
 *   B            branch
 *   L <hexaddr>  load
 *   S <hexaddr>  store
 */

#ifndef MCDVFS_TRACE_TRACE_IO_HH
#define MCDVFS_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hh"
#include "trace/trace_source.hh"

namespace mcdvfs
{

/** Record @c n instructions from @c source to @c os. */
void recordTrace(TraceSource &source, Count n, std::ostream &os);

/** Replays a recorded trace; loops back to the start at the end. */
class TraceReplay : public TraceSource
{
  public:
    /**
     * Parse a recorded trace.
     * @throws FatalError on malformed input or an empty trace.
     */
    explicit TraceReplay(std::istream &is);

    /** Parse from a string (convenience). */
    static TraceReplay fromString(const std::string &text);

    InstrRecord next() override;

    /** Number of recorded instructions. */
    Count size() const { return records_.size(); }

    /** True once next() has wrapped past the end at least once. */
    bool wrapped() const { return wrapped_; }

  private:
    explicit TraceReplay(std::vector<InstrRecord> records);

    std::vector<InstrRecord> records_;
    std::size_t cursor_ = 0;
    bool wrapped_ = false;
};

} // namespace mcdvfs

#endif // MCDVFS_TRACE_TRACE_IO_HH
