#include "trace/workloads.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"

namespace mcdvfs
{

WorkloadProfile::WorkloadProfile(std::string name, std::size_t sample_count,
                                 Script script, std::uint64_t seed,
                                 double jitter, SeedMode seed_mode)
    : name_(std::move(name)), sampleCount_(sample_count),
      script_(std::move(script)), seed_(seed), jitter_(jitter),
      seedMode_(seed_mode)
{
    if (sampleCount_ == 0)
        fatal("workload '", name_, "' must have at least one sample");
    if (!script_)
        fatal("workload '", name_, "' has no phase script");
}

Count
WorkloadProfile::totalModeledInstructions() const
{
    return kModeledPerSample * static_cast<Count>(sampleCount_);
}

std::uint64_t
WorkloadProfile::sampleSeedFor(std::size_t sample) const
{
    // Distinct, deterministic per-sample stream seeds.
    return seed_ * 0x100000001b3ull + sample * 0x9e3779b97f4a7c15ull + 1;
}

std::uint64_t
WorkloadProfile::traceSeedFor(std::size_t sample) const
{
    if (seedMode_ == SeedMode::PerSample)
        return sampleSeedFor(sample);
    // PerPhase: the seed is a pure function of the post-jitter phase
    // content — not of the workload seed or sample index — so repeated
    // phases anywhere in the fleet share one characterization.  The
    // salt keeps the stream disjoint from fingerprint consumers.
    return phaseFor(sample).fingerprint(0x9e3779b97f4a7c15ull);
}

PhaseSpec
WorkloadProfile::phaseFor(std::size_t sample) const
{
    if (sample >= sampleCount_) {
        fatal("workload '", name_, "': sample ", sample,
              " out of range (", sampleCount_, " samples)");
    }
    PhaseSpec spec = script_(sample);
    if (jitter_ > 0.0) {
        // Small deterministic per-sample perturbation so consecutive
        // samples are similar but not identical (simulation noise the
        // paper's 0.5% tie-break filter exists to absorb).
        // Always the PerSample stream: in PerPhase seed mode the trace
        // seed is derived *from* the jittered phase, so jitter drawing
        // from traceSeedFor() would be circular.
        Rng rng(sampleSeedFor(sample) ^ 0xa5a5a5a5deadbeefull);
        auto wobble = [&](double v) {
            return v * (1.0 + jitter_ * (2.0 * rng.uniform() - 1.0));
        };
        spec.baseCpi = wobble(spec.baseCpi);
        spec.mlp = std::max(1.0, wobble(spec.mlp));
        const double hot = spec.hotFrac;
        const double warm = spec.warmFrac;
        const double cold = spec.coldFrac();
        // Jitter the miss-producing tiers and renormalize via hot.
        const double new_warm = std::clamp(wobble(warm), 0.0, 0.5);
        const double new_cold = std::clamp(wobble(cold), 0.0, 0.5);
        spec.warmFrac = new_warm;
        spec.hotFrac = std::clamp(hot + (warm - new_warm) +
                                  (cold - new_cold), 0.0, 1.0 - new_warm);
    }
    spec.validate();
    return spec;
}

namespace
{

/** Base spec shared by the integer benchmarks. */
PhaseSpec
intBase()
{
    PhaseSpec s;
    s.loadFrac = 0.24;
    s.storeFrac = 0.10;
    s.branchFrac = 0.16;
    s.fpFrac = 0.0;
    s.mulFrac = 0.01;
    s.baseCpi = 0.9;
    s.activity = 0.65;
    return s;
}

/** Base spec shared by the floating-point benchmarks. */
PhaseSpec
fpBase()
{
    PhaseSpec s;
    s.loadFrac = 0.28;
    s.storeFrac = 0.12;
    s.branchFrac = 0.05;
    s.fpFrac = 0.30;
    s.mulFrac = 0.01;
    s.baseCpi = 1.0;
    s.activity = 0.80;
    return s;
}

} // namespace

WorkloadProfile
makeBzip2()
{
    // bzip2: CPU bound; alternating compress/decompress phases with a
    // small L2 footprint and negligible DRAM traffic.  Performance is
    // essentially independent of memory frequency (paper: within 3%
    // between 200 and 800 MHz at 1 GHz CPU).
    PhaseSpec compress = intBase();
    compress.name = "bzip2.compress";
    compress.baseCpi = 1.10;
    compress.hotFrac = 0.955;
    compress.warmFrac = 0.042;
    compress.coldSeqFrac = 0.20;
    compress.hotBytes = 28 * kKiB;
    compress.warmBytes = 640 * kKiB;
    compress.coldBytes = 32ull << 20;
    compress.mlp = 1.8;

    PhaseSpec decompress = compress;
    decompress.name = "bzip2.decompress";
    decompress.baseCpi = 0.85;
    decompress.hotFrac = 0.968;
    decompress.warmFrac = 0.030;

    return WorkloadProfile(
        "bzip2", 80,
        [=](std::size_t s) {
            // 10-sample compress / 10-sample decompress alternation.
            return (s / 10) % 2 == 0 ? compress : decompress;
        },
        0xb21f2001, /*jitter=*/0.05);
}

WorkloadProfile
makeGcc()
{
    // gcc: irregular phase structure; alternates between pointer-heavy
    // medium-footprint phases and parsing phases of varying lengths.
    PhaseSpec parse = intBase();
    parse.name = "gcc.parse";
    parse.baseCpi = 0.95;
    parse.hotFrac = 0.94;
    parse.warmFrac = 0.05;
    parse.coldSeqFrac = 0.30;
    parse.mlp = 1.5;

    PhaseSpec opt = intBase();
    opt.name = "gcc.optimize";
    opt.baseCpi = 1.15;
    opt.hotFrac = 0.88;
    opt.warmFrac = 0.09;
    opt.coldSeqFrac = 0.45;
    opt.coldBytes = 64ull << 20;
    opt.mlp = 2.2;

    PhaseSpec regalloc = intBase();
    regalloc.name = "gcc.regalloc";
    regalloc.baseCpi = 1.05;
    regalloc.hotFrac = 0.905;
    regalloc.warmFrac = 0.085;
    regalloc.coldSeqFrac = 0.10;
    regalloc.mlp = 1.3;

    return WorkloadProfile(
        "gcc", 200,
        [=](std::size_t s) {
            // Irregular segment lengths, mimicking per-function
            // compilation units of different sizes.
            if (s < 25)
                return parse;
            if (s < 55)
                return opt;
            if (s < 80)
                return parse;
            if (s < 95)
                return regalloc;
            if (s < 125)
                return opt.lerp(regalloc, 0.5);
            if (s < 150)
                return parse;
            if (s < 180)
                return opt;
            return regalloc;
        },
        0x6cc52006, /*jitter=*/0.04);
}

WorkloadProfile
makeGobmk()
{
    // gobmk: balanced CPU/memory with rapidly changing phases; the
    // paper's Figure 3 shows CPI swinging between ~0.8 and ~2.4 with
    // L1 MPKI bursts, sample to sample.
    PhaseSpec think = intBase();
    think.name = "gobmk.search";
    think.baseCpi = 0.80;
    think.branchFrac = 0.20;
    think.hotFrac = 0.975;
    think.warmFrac = 0.022;
    think.coldSeqFrac = 0.10;
    think.mlp = 1.4;

    PhaseSpec pattern = intBase();
    pattern.name = "gobmk.pattern";
    pattern.baseCpi = 1.00;
    pattern.hotFrac = 0.895;
    pattern.warmFrac = 0.082;
    pattern.coldSeqFrac = 0.15;
    pattern.warmBytes = 1024 * kKiB;
    pattern.mlp = 1.3;

    // lifedeath is deliberately close to pattern in performance
    // (within a few percent): the paper observes that a 5% cluster
    // threshold merges some of gobmk's adjacent phases while most of
    // its rapid alternation survives any threshold.
    PhaseSpec lifedeath = intBase();
    lifedeath.name = "gobmk.lifedeath";
    lifedeath.baseCpi = 1.02;
    lifedeath.hotFrac = 0.888;
    lifedeath.warmFrac = 0.086;
    lifedeath.coldSeqFrac = 0.25;
    lifedeath.warmBytes = 1024 * kKiB;
    lifedeath.mlp = 1.35;

    return WorkloadProfile(
        "gobmk", 50,
        [=](std::size_t s) {
            // Rapid alternation with a 5-sample super-period.
            switch (s % 5) {
              case 0:
              case 3:
                return think;
              case 1:
                return pattern;
              case 2:
                return lifedeath;
              default:
                // A near-think sample: close enough that a 5% cluster
                // threshold bridges the boundary, far enough that 1%
                // does not (the "slight" decrease of Fig. 8).
                return think.lerp(pattern, 0.3);
            }
        },
        0x90b3a715, /*jitter=*/0.03);
}

WorkloadProfile
makeLbm()
{
    // lbm: streaming, strongly memory bound, high MLP, long stable
    // behaviour with slow drift; bandwidth sensitive.
    PhaseSpec stream = fpBase();
    stream.name = "lbm.stream";
    stream.baseCpi = 1.05;
    stream.loadFrac = 0.26;
    stream.storeFrac = 0.16;
    stream.hotFrac = 0.62;
    stream.warmFrac = 0.06;
    stream.coldSeqFrac = 0.92;
    stream.coldBytes = 128ull << 20;
    stream.mlp = 3.6;
    stream.activity = 0.85;

    // The collide kernel is compute-leaning: the slow stream/collide
    // oscillation periodically shifts the budget frontier, breaking
    // the run into a handful of long stable regions (Fig. 6).
    PhaseSpec collide = stream;
    collide.name = "lbm.collide";
    collide.baseCpi = 1.50;
    collide.hotFrac = 0.93;
    collide.coldSeqFrac = 0.85;
    collide.mlp = 2.0;
    collide.activity = 0.88;

    return WorkloadProfile(
        "lbm", 160,
        [=](std::size_t s) {
            // Gentle long-period oscillation between the stream and
            // collide kernels, biased toward streaming.
            const double t =
                0.35 + 0.35 * std::sin(static_cast<double>(s) * 0.12);
            return stream.lerp(collide, t);
        },
        0x1b3faced, /*jitter=*/0.01);
}

WorkloadProfile
makeLibquantum()
{
    // libquantum: extremely regular single-phase streaming over a large
    // vector; essentially one stable region end to end.
    PhaseSpec gate = intBase();
    gate.name = "libquantum.gate";
    gate.baseCpi = 0.70;
    gate.loadFrac = 0.26;
    gate.storeFrac = 0.12;
    gate.branchFrac = 0.12;
    gate.hotFrac = 0.60;
    gate.warmFrac = 0.02;
    gate.coldSeqFrac = 0.97;
    gate.coldBytes = 64ull << 20;
    gate.mlp = 4.0;
    gate.activity = 0.60;

    return WorkloadProfile(
        "libq.", 120,
        [=](std::size_t) { return gate; },
        0x11bc0aa7, /*jitter=*/0.008);
}

WorkloadProfile
makeMilc()
{
    // milc: CPU-intensive FP with periodic memory-intensive bursts
    // (paper: "some memory intensive phases, however it is more CPU
    // intensive").
    PhaseSpec su3 = fpBase();
    su3.name = "milc.su3";
    su3.baseCpi = 1.15;
    su3.hotFrac = 0.945;
    su3.warmFrac = 0.045;
    su3.coldSeqFrac = 0.60;
    su3.mlp = 2.0;

    PhaseSpec gather = fpBase();
    gather.name = "milc.gather";
    gather.baseCpi = 1.05;
    gather.hotFrac = 0.80;
    gather.warmFrac = 0.10;
    gather.coldSeqFrac = 0.75;
    gather.coldBytes = 96ull << 20;
    gather.mlp = 3.0;

    return WorkloadProfile(
        "milc", 170,
        [=](std::size_t s) {
            // A gather burst of 6 samples every 24 samples.
            return (s % 24) < 6 ? gather : su3;
        },
        0x317c2006, /*jitter=*/0.03);
}

WorkloadProfile
makeMcf()
{
    // mcf: network-simplex pointer chasing over a huge graph —
    // strongly memory bound with almost no MLP and poor row locality.
    PhaseSpec chase = intBase();
    chase.name = "mcf.simplex";
    chase.baseCpi = 1.10;
    chase.loadFrac = 0.30;
    chase.storeFrac = 0.08;
    chase.hotFrac = 0.72;
    chase.warmFrac = 0.07;
    chase.coldSeqFrac = 0.05;
    chase.coldBytes = 256ull << 20;
    chase.mlp = 1.1;
    chase.activity = 0.55;

    PhaseSpec refresh_tree = chase;
    refresh_tree.name = "mcf.tree";
    refresh_tree.baseCpi = 0.95;
    refresh_tree.hotFrac = 0.80;
    refresh_tree.coldSeqFrac = 0.35;
    refresh_tree.mlp = 1.6;

    return WorkloadProfile(
        "mcf", 140,
        [=](std::size_t s) {
            // Long simplex iterations with periodic tree rebuilds.
            return (s % 18) < 14 ? chase : refresh_tree;
        },
        0x3cf00d17, /*jitter=*/0.03);
}

WorkloadProfile
makeHmmer()
{
    // hmmer: profile HMM scoring, dense and regular, tiny footprint —
    // the most CPU-bound benchmark in the set.
    PhaseSpec score = intBase();
    score.name = "hmmer.viterbi";
    score.baseCpi = 0.65;
    score.branchFrac = 0.08;
    score.hotFrac = 0.9965;
    score.warmFrac = 0.003;
    score.hotBytes = 20 * kKiB;
    score.mlp = 2.2;
    score.activity = 0.75;

    return WorkloadProfile(
        "hmmer", 90, [=](std::size_t) { return score; }, 0x44e12a9,
        /*jitter=*/0.02);
}

WorkloadProfile
makeSjeng()
{
    // sjeng: chess tree search; branchy with transposition-table
    // lookups, alternating faster than gobmk.
    PhaseSpec search = intBase();
    search.name = "sjeng.search";
    search.baseCpi = 0.85;
    search.branchFrac = 0.22;
    search.hotFrac = 0.965;
    search.warmFrac = 0.03;
    search.mlp = 1.3;

    PhaseSpec ttable = intBase();
    ttable.name = "sjeng.ttable";
    ttable.baseCpi = 1.05;
    ttable.hotFrac = 0.90;
    ttable.warmFrac = 0.07;
    ttable.coldSeqFrac = 0.05;
    ttable.coldBytes = 96ull << 20;
    ttable.mlp = 1.6;

    return WorkloadProfile(
        "sjeng", 110,
        [=](std::size_t s) { return s % 3 == 2 ? ttable : search; },
        0x53e9a221, /*jitter=*/0.03);
}

WorkloadProfile
makeOmnetpp()
{
    // omnetpp: discrete-event simulation walking heap-allocated event
    // queues — irregular, moderately memory bound.
    PhaseSpec events = intBase();
    events.name = "omnetpp.events";
    events.baseCpi = 1.00;
    events.hotFrac = 0.87;
    events.warmFrac = 0.09;
    events.coldSeqFrac = 0.15;
    events.warmBytes = 1280 * kKiB;
    events.coldBytes = 80ull << 20;
    events.mlp = 1.4;

    PhaseSpec stats = events;
    stats.name = "omnetpp.stats";
    stats.baseCpi = 0.90;
    stats.hotFrac = 0.93;
    stats.warmFrac = 0.05;

    return WorkloadProfile(
        "omnetpp", 130,
        [=](std::size_t s) {
            // Mostly event processing; statistics windows every 16.
            return (s % 16) < 13 ? events : stats;
        },
        0x0e47e77a, /*jitter=*/0.035);
}

WorkloadProfile
makeNamd()
{
    // namd: molecular dynamics force loops — floating-point dense,
    // blocked to fit caches, very stable.
    PhaseSpec forces = fpBase();
    forces.name = "namd.forces";
    forces.baseCpi = 0.85;
    forces.fpFrac = 0.40;
    forces.hotFrac = 0.97;
    forces.warmFrac = 0.025;
    forces.mlp = 2.0;
    forces.activity = 0.90;

    return WorkloadProfile(
        "namd", 100, [=](std::size_t) { return forces; }, 0x9a3dfab1,
        /*jitter=*/0.015);
}

WorkloadProfile
makeSoplex()
{
    // soplex: simplex LP solver streaming large sparse matrices, with
    // factorization bursts that are compute-heavy.
    PhaseSpec price = fpBase();
    price.name = "soplex.price";
    price.baseCpi = 1.05;
    price.loadFrac = 0.30;
    price.hotFrac = 0.70;
    price.warmFrac = 0.08;
    price.coldSeqFrac = 0.80;
    price.coldBytes = 96ull << 20;
    price.mlp = 2.8;

    PhaseSpec factor = fpBase();
    factor.name = "soplex.factor";
    factor.baseCpi = 1.20;
    factor.hotFrac = 0.94;
    factor.warmFrac = 0.045;
    factor.mlp = 1.8;
    factor.activity = 0.85;

    return WorkloadProfile(
        "soplex", 150,
        [=](std::size_t s) {
            // Factorization burst every 25 samples.
            return (s % 25) < 6 ? factor : price;
        },
        0x50f1e321, /*jitter=*/0.03);
}

WorkloadProfile
makeGlrender()
{
    // glrender: a mobile render loop.  The submit phase issues GPU
    // kicks at a high rate (frame draw calls) with modest CPU work;
    // the prepare phase is CPU-bound scene/physics work with only a
    // trickle of kicks.  The alternation makes the optimal setting
    // swing between GPU-priority and CPU-priority corners, which is
    // what the budget arbiter's cap tables act on.
    PhaseSpec submit = intBase();
    submit.name = "glrender.submit";
    submit.baseCpi = 0.95;
    submit.loadFrac = 0.20;
    submit.storeFrac = 0.08;
    submit.branchFrac = 0.12;
    submit.gpuKickFrac = 0.004;
    submit.gpuCyclesPerKick = 220'000.0;
    submit.gpuActivity = 0.85;
    submit.hotFrac = 0.93;
    submit.warmFrac = 0.05;
    submit.coldSeqFrac = 0.70;
    submit.mlp = 2.0;
    submit.activity = 0.55;

    PhaseSpec prepare = intBase();
    prepare.name = "glrender.prepare";
    prepare.baseCpi = 0.80;
    prepare.gpuKickFrac = 0.0004;
    prepare.gpuCyclesPerKick = 120'000.0;
    prepare.gpuActivity = 0.70;
    prepare.hotFrac = 0.95;
    prepare.warmFrac = 0.04;
    prepare.mlp = 1.6;
    prepare.activity = 0.75;

    return WorkloadProfile(
        "glrender", 96,
        [=](std::size_t s) {
            // 8-sample frames: 3 submit-heavy, 5 prepare-heavy, with a
            // blended boundary sample.
            switch (s % 8) {
              case 0:
              case 1:
              case 2:
                return submit;
              case 3:
                return submit.lerp(prepare, 0.5);
              default:
                return prepare;
            }
        },
        0x61e4de12, /*jitter=*/0.03);
}

std::vector<WorkloadProfile>
standardWorkloads()
{
    std::vector<WorkloadProfile> all;
    all.push_back(makeBzip2());
    all.push_back(makeGcc());
    all.push_back(makeGobmk());
    all.push_back(makeLbm());
    all.push_back(makeLibquantum());
    all.push_back(makeMilc());
    return all;
}

std::vector<WorkloadProfile>
extendedWorkloads()
{
    std::vector<WorkloadProfile> all = standardWorkloads();
    all.push_back(makeMcf());
    all.push_back(makeHmmer());
    all.push_back(makeSjeng());
    all.push_back(makeOmnetpp());
    all.push_back(makeNamd());
    all.push_back(makeSoplex());
    all.push_back(makeGlrender());
    return all;
}

WorkloadProfile
workloadByName(const std::string &name)
{
    for (auto &profile : extendedWorkloads()) {
        if (profile.name() == name)
            return profile;
    }
    fatal("unknown workload '", name,
          "' (expected one of: bzip2 gcc gobmk lbm libq. milc mcf "
          "hmmer sjeng omnetpp namd soplex glrender)");
}

} // namespace mcdvfs
