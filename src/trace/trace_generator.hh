/**
 * @file
 * Deterministic synthetic instruction-stream generation.
 *
 * Given a PhaseSpec and a seed, TraceGenerator emits a stream of
 * InstrRecords whose instruction mix and memory reference pattern match
 * the spec.  The same (spec, seed) pair always produces the same
 * stream, so cache contents and miss classifications are reproducible
 * and — crucially for the characterize-once design — independent of
 * the frequency settings later applied by the timing model.
 *
 * Memory references fall into three footprint tiers at disjoint base
 * addresses: a hot set sized to fit in L1, a warm set sized to fit in
 * L2, and a cold set exceeding L2.  Cold references are a mix of a
 * sequential stream (row-buffer friendly) and uniform-random accesses.
 */

#ifndef MCDVFS_TRACE_TRACE_GENERATOR_HH
#define MCDVFS_TRACE_TRACE_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "trace/instruction.hh"
#include "trace/phase.hh"
#include "trace/trace_source.hh"

namespace mcdvfs
{

/** Streaming generator of synthetic instructions for one phase. */
class TraceGenerator : public TraceSource
{
  public:
    /** @name Tier base addresses (disjoint by construction). */
    ///@{
    static constexpr std::uint64_t kHotBase = 0x1000'0000ull;
    static constexpr std::uint64_t kWarmBase = 0x4000'0000ull;
    static constexpr std::uint64_t kColdBase = 0x8000'0000ull;
    ///@}

    /**
     * @param spec validated phase specification
     * @param seed deterministic stream seed
     * @throws FatalError when @c spec is inconsistent
     */
    TraceGenerator(const PhaseSpec &spec, std::uint64_t seed);

    /** Produce the next dynamic instruction. */
    InstrRecord next() override;

    /** Append @c n instructions to @c out. */
    void generate(Count n, std::vector<InstrRecord> &out);

    /** The phase being generated. */
    const PhaseSpec &spec() const { return spec_; }

  private:
    std::uint64_t nextAddress();

    PhaseSpec spec_;
    Rng rng_;
    std::uint64_t coldCursor_ = 0;  ///< sequential cold-stream offset
};

} // namespace mcdvfs

#endif // MCDVFS_TRACE_TRACE_GENERATOR_HH
