/**
 * @file
 * Instruction records produced by the synthetic trace generator and
 * consumed by the sample simulator.
 */

#ifndef MCDVFS_TRACE_INSTRUCTION_HH
#define MCDVFS_TRACE_INSTRUCTION_HH

#include <cstdint>

namespace mcdvfs
{

/** Coarse instruction classes; enough to drive timing and power. */
enum class InstrKind : std::uint8_t
{
    IntAlu,   ///< integer ALU op
    IntMul,   ///< integer multiply/divide
    FpOp,     ///< floating-point op
    Load,     ///< memory read
    Store,    ///< memory write
    Branch,   ///< control transfer
    GpuKick,  ///< asynchronous GPU offload submission
};

/** One dynamic instruction. @c addr is meaningful for Load/Store only. */
struct InstrRecord
{
    InstrKind kind = InstrKind::IntAlu;
    std::uint64_t addr = 0;
};

/** True for loads and stores. */
constexpr bool
isMemory(InstrKind kind)
{
    return kind == InstrKind::Load || kind == InstrKind::Store;
}

} // namespace mcdvfs

#endif // MCDVFS_TRACE_INSTRUCTION_HH
