/**
 * @file
 * SPEC CPU2006-like workload profiles.
 *
 * SPEC itself is not redistributable, so each benchmark the paper
 * evaluates is modelled as a deterministic phase script whose CPI/MPKI
 * evolution matches the published characterization of that benchmark
 * (see DESIGN.md, substitutions).  A WorkloadProfile maps each
 * 10 M-instruction sample index to a PhaseSpec, with small
 * deterministic per-sample jitter layered on top.
 */

#ifndef MCDVFS_TRACE_WORKLOADS_HH
#define MCDVFS_TRACE_WORKLOADS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hh"
#include "trace/phase.hh"

namespace mcdvfs
{

/** A benchmark as a sequence of per-sample phase specifications. */
class WorkloadProfile
{
  public:
    /** Script mapping a sample index to its (pre-jitter) phase. */
    using Script = std::function<PhaseSpec(std::size_t)>;

    /** How per-sample trace seeds are derived. */
    enum class SeedMode
    {
        /**
         * Every sample gets a distinct stream seed derived from the
         * workload seed and the sample index (the historical default;
         * all golden grids were built this way).
         */
        PerSample,
        /**
         * The stream seed is the content fingerprint of the sample's
         * post-jitter phase: samples repeating the same phase — within
         * this workload or across workloads — share a seed, so their
         * characterizations are byte-identical and memoizable
         * (sim::ProfileCache).  Per-sample jitter still draws from the
         * PerSample stream, so jittered phases stay distinct.
         */
        PerPhase,
    };

    /**
     * @param name benchmark name (e.g. "gobmk")
     * @param sample_count number of samples in the run
     * @param script per-sample phase script
     * @param seed workload-level RNG seed
     * @param jitter relative magnitude of per-sample jitter (0 = none)
     * @param seed_mode trace-seed derivation (see SeedMode)
     */
    WorkloadProfile(std::string name, std::size_t sample_count,
                    Script script, std::uint64_t seed,
                    double jitter = 0.02,
                    SeedMode seed_mode = SeedMode::PerSample);

    /** Benchmark name. */
    const std::string &name() const { return name_; }

    /** Number of samples in the run. */
    std::size_t sampleCount() const { return sampleCount_; }

    /**
     * Instructions each sample represents in the paper's units.  Plots
     * and normalizations use this count (the paper's samples are 10 M
     * user-mode instructions).
     */
    Count modeledInstructionsPerSample() const { return kModeledPerSample; }

    /** Total modeled instructions over the whole run. */
    Count totalModeledInstructions() const;

    /**
     * Phase for one sample, with deterministic jitter applied.
     *
     * @throws FatalError when @c sample is out of range.
     */
    PhaseSpec phaseFor(std::size_t sample) const;

    /** Deterministic seed for the trace of one sample (per seedMode). */
    std::uint64_t traceSeedFor(std::size_t sample) const;

    /** Trace-seed derivation mode. */
    SeedMode seedMode() const { return seedMode_; }

  private:
    static constexpr Count kModeledPerSample = 10'000'000;

    /** The historical per-sample stream seed (jitter always uses it). */
    std::uint64_t sampleSeedFor(std::size_t sample) const;

    std::string name_;
    std::size_t sampleCount_;
    Script script_;
    std::uint64_t seed_;
    double jitter_;
    SeedMode seedMode_;
};

/** @name Profiles for the paper's six reported benchmarks. */
///@{
WorkloadProfile makeBzip2();
WorkloadProfile makeGcc();
WorkloadProfile makeGobmk();
WorkloadProfile makeLbm();
WorkloadProfile makeLibquantum();
WorkloadProfile makeMilc();
///@}

/**
 * @name Additional SPEC-like profiles.
 * The paper simulated 12 integer and 9 floating-point benchmarks
 * (§III-C) but plots six; these extend the library toward that wider
 * set with distinct published behaviours.
 */
///@{
WorkloadProfile makeMcf();        ///< INT, pointer-chasing, memory bound
WorkloadProfile makeHmmer();      ///< INT, regular, strongly CPU bound
WorkloadProfile makeSjeng();      ///< INT, branchy search, gobmk-like
WorkloadProfile makeOmnetpp();    ///< INT, irregular heap traversal
WorkloadProfile makeNamd();       ///< FP, compute dense, CPU bound
WorkloadProfile makeSoplex();     ///< FP, long memory/compute phases
///@}

/**
 * GPU-offload workload for the three-domain (CPU x mem x GPU) spaces:
 * render-loop phases that alternate GPU-bound frame submission with
 * CPU-bound scene preparation, exercising the trace generator's GPU
 * kick channel.  On a two-domain space the kicks cost nothing and the
 * workload degenerates to a light CPU phase.
 */
WorkloadProfile makeGlrender();

/** The six benchmarks the paper reports, in its order. */
std::vector<WorkloadProfile> standardWorkloads();

/** The full twelve-benchmark set (standard + additional). */
std::vector<WorkloadProfile> extendedWorkloads();

/**
 * Look up any workload (standard or extended) by name.
 * @throws FatalError for unknown names.
 */
WorkloadProfile workloadByName(const std::string &name);

} // namespace mcdvfs

#endif // MCDVFS_TRACE_WORKLOADS_HH
