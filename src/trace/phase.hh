/**
 * @file
 * Phase specifications for synthetic workloads.
 *
 * A PhaseSpec describes the behaviour of a workload over one or more
 * 10 M-instruction samples: the instruction mix, a three-tier memory
 * footprint (hot set sized to live in L1, warm set sized to live in L2,
 * cold set exceeding L2), the spatial pattern of cold accesses, the
 * memory-level parallelism and the switching activity.  The SPEC-like
 * profiles in workloads.cc are built from these.
 */

#ifndef MCDVFS_TRACE_PHASE_HH
#define MCDVFS_TRACE_PHASE_HH

#include <cstdint>
#include <string>

namespace mcdvfs
{

/** Behavioural parameters of one workload phase. */
struct PhaseSpec
{
    /** Phase label (for traces and debugging). */
    std::string name = "default";

    /** @name Instruction mix (fractions of dynamic instructions). */
    ///@{
    double loadFrac = 0.22;    ///< loads
    double storeFrac = 0.10;   ///< stores
    double branchFrac = 0.15;  ///< branches
    double fpFrac = 0.0;       ///< floating-point ops
    double mulFrac = 0.02;     ///< integer multiplies
    ///@}

    /**
     * Core cycles per instruction excluding all cache/memory stalls
     * (captures issue width, dependencies, branch penalties).
     */
    double baseCpi = 0.9;

    /** @name Memory footprint tiers. */
    ///@{
    double hotFrac = 0.90;   ///< accesses hitting the hot (L1-sized) set
    double warmFrac = 0.08;  ///< accesses to the warm (L2-sized) set
    // The cold fraction is the remainder: 1 - hotFrac - warmFrac.
    std::uint64_t hotBytes = 24 * 1024;        ///< hot set size
    std::uint64_t warmBytes = 768 * 1024;      ///< warm set size
    std::uint64_t coldBytes = 48ull << 20;     ///< cold set size
    ///@}

    /**
     * Fraction of cold-set accesses that stream sequentially (row-buffer
     * friendly); the rest are uniform random in the cold set.
     */
    double coldSeqFrac = 0.5;

    /**
     * Average number of outstanding DRAM misses a phase can sustain
     * (1 = fully serialized pointer chasing, >1 = overlapping misses).
     */
    double mlp = 1.5;

    /** Dynamic-power activity factor in [0, 1] relative to peak. */
    double activity = 0.7;

    /** @name GPU offload channel (0 everywhere = CPU-only phase). */
    ///@{
    /**
     * Fraction of dynamic instructions that are GPU kick commands
     * (asynchronous offload submissions); part of the instruction mix
     * sum alongside loads/stores/branches/fp/mul.
     */
    double gpuKickFrac = 0.0;
    /** GPU cycles of work each kick enqueues. */
    double gpuCyclesPerKick = 0.0;
    /** GPU dynamic-power activity factor in [0, 1] while busy. */
    double gpuActivity = 0.0;
    ///@}

    /** Cold fraction implied by the tier fractions. */
    double coldFrac() const { return 1.0 - hotFrac - warmFrac; }

    /** Total fraction of memory instructions. */
    double memFrac() const { return loadFrac + storeFrac; }

    /**
     * Validate internal consistency.
     * @throws FatalError when fractions are out of range.
     */
    void validate() const;

    /**
     * Linear interpolation between two phases (for gradual phase
     * drift); @c t in [0,1], 0 yields @c *this.
     */
    PhaseSpec lerp(const PhaseSpec &other, double t) const;

    /**
     * FNV-1a content hash over every field (doubles by bit pattern,
     * with -0.0 normalized to +0.0).  Two specs with equal fingerprints
     * generate identical traces for a given seed, so the fingerprint is
     * a valid characterization-memoization key component; it also seeds
     * phase-keyed trace streams (WorkloadProfile::SeedMode::PerPhase).
     *
     * @param seed chaining basis, FNV offset basis by default
     */
    std::uint64_t fingerprint(
        std::uint64_t seed = 0xcbf29ce484222325ull) const;
};

} // namespace mcdvfs

#endif // MCDVFS_TRACE_PHASE_HH
