/**
 * @file
 * Abstract instruction-stream source.
 *
 * The characterization pass consumes instructions through this
 * interface, so synthetic generation (TraceGenerator) and recorded
 * traces (TraceReplay) are interchangeable — the hook for driving the
 * simulator with real application traces instead of the SPEC-like
 * profiles.
 */

#ifndef MCDVFS_TRACE_TRACE_SOURCE_HH
#define MCDVFS_TRACE_TRACE_SOURCE_HH

#include "trace/instruction.hh"

namespace mcdvfs
{

/** Produces one dynamic instruction per call. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Next dynamic instruction. */
    virtual InstrRecord next() = 0;
};

} // namespace mcdvfs

#endif // MCDVFS_TRACE_TRACE_SOURCE_HH
