#include "trace/phase.hh"

#include <algorithm>
#include <bit>

#include "common/hash.hh"
#include "common/logging.hh"

namespace mcdvfs
{

void
PhaseSpec::validate() const
{
    auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
    if (!in01(loadFrac) || !in01(storeFrac) || !in01(branchFrac) ||
        !in01(fpFrac) || !in01(mulFrac)) {
        fatal("phase '", name, "': instruction-mix fraction out of [0,1]");
    }
    if (!in01(gpuKickFrac))
        fatal("phase '", name, "': gpuKickFrac out of [0,1]");
    if (loadFrac + storeFrac + branchFrac + fpFrac + mulFrac +
            gpuKickFrac >
        1.0 + 1e-9)
        fatal("phase '", name, "': instruction mix exceeds 1.0");
    if (!in01(hotFrac) || !in01(warmFrac) || hotFrac + warmFrac > 1.0 + 1e-9)
        fatal("phase '", name, "': footprint tier fractions invalid");
    if (!in01(coldSeqFrac))
        fatal("phase '", name, "': coldSeqFrac out of [0,1]");
    if (baseCpi <= 0.0)
        fatal("phase '", name, "': baseCpi must be positive");
    if (mlp < 1.0)
        fatal("phase '", name, "': mlp must be >= 1");
    if (!in01(activity))
        fatal("phase '", name, "': activity out of [0,1]");
    if (!in01(gpuActivity))
        fatal("phase '", name, "': gpuActivity out of [0,1]");
    if (gpuCyclesPerKick < 0.0)
        fatal("phase '", name, "': gpuCyclesPerKick must be >= 0");
    if (hotBytes == 0 || warmBytes == 0 || coldBytes == 0)
        fatal("phase '", name, "': footprint sizes must be positive");
}

std::uint64_t
PhaseSpec::fingerprint(std::uint64_t seed) const
{
    std::uint64_t h = seed;
    auto addDouble = [&h](double v) {
        // Normalize -0.0 so equal-comparing specs hash equally (the
        // svc::HashBuilder fingerprints follow the same rule).
        if (v == 0.0)
            v = 0.0;
        h = fnv1aWordBytes(h, std::bit_cast<std::uint64_t>(v));
    };
    auto addWord = [&h](std::uint64_t v) { h = fnv1aWordBytes(h, v); };

    h = fnv1aString(h, name);
    addWord(name.size());
    addDouble(loadFrac);
    addDouble(storeFrac);
    addDouble(branchFrac);
    addDouble(fpFrac);
    addDouble(mulFrac);
    addDouble(baseCpi);
    addDouble(hotFrac);
    addDouble(warmFrac);
    addWord(hotBytes);
    addWord(warmBytes);
    addWord(coldBytes);
    addDouble(coldSeqFrac);
    addDouble(mlp);
    addDouble(activity);
    addDouble(gpuKickFrac);
    addDouble(gpuCyclesPerKick);
    addDouble(gpuActivity);
    return h;
}

PhaseSpec
PhaseSpec::lerp(const PhaseSpec &other, double t) const
{
    const double u = std::clamp(t, 0.0, 1.0);
    auto mix = [u](double a, double b) { return a + (b - a) * u; };
    auto mixSize = [u](std::uint64_t a, std::uint64_t b) {
        const double v = static_cast<double>(a) +
                         (static_cast<double>(b) - static_cast<double>(a)) * u;
        return static_cast<std::uint64_t>(v);
    };

    PhaseSpec out = *this;
    out.loadFrac = mix(loadFrac, other.loadFrac);
    out.storeFrac = mix(storeFrac, other.storeFrac);
    out.branchFrac = mix(branchFrac, other.branchFrac);
    out.fpFrac = mix(fpFrac, other.fpFrac);
    out.mulFrac = mix(mulFrac, other.mulFrac);
    out.baseCpi = mix(baseCpi, other.baseCpi);
    out.hotFrac = mix(hotFrac, other.hotFrac);
    out.warmFrac = mix(warmFrac, other.warmFrac);
    out.hotBytes = mixSize(hotBytes, other.hotBytes);
    out.warmBytes = mixSize(warmBytes, other.warmBytes);
    out.coldBytes = mixSize(coldBytes, other.coldBytes);
    out.coldSeqFrac = mix(coldSeqFrac, other.coldSeqFrac);
    out.mlp = mix(mlp, other.mlp);
    out.activity = mix(activity, other.activity);
    out.gpuKickFrac = mix(gpuKickFrac, other.gpuKickFrac);
    out.gpuCyclesPerKick = mix(gpuCyclesPerKick, other.gpuCyclesPerKick);
    out.gpuActivity = mix(gpuActivity, other.gpuActivity);
    return out;
}

} // namespace mcdvfs
