#include "trace/trace_io.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace mcdvfs
{

namespace
{

char
kindLetter(InstrKind kind)
{
    switch (kind) {
      case InstrKind::IntAlu:
        return 'A';
      case InstrKind::IntMul:
        return 'M';
      case InstrKind::FpOp:
        return 'F';
      case InstrKind::Branch:
        return 'B';
      case InstrKind::Load:
        return 'L';
      case InstrKind::Store:
        return 'S';
    }
    MCDVFS_PANIC("unreachable instruction kind");
}

InstrKind
kindFromLetter(char letter)
{
    switch (letter) {
      case 'A':
        return InstrKind::IntAlu;
      case 'M':
        return InstrKind::IntMul;
      case 'F':
        return InstrKind::FpOp;
      case 'B':
        return InstrKind::Branch;
      case 'L':
        return InstrKind::Load;
      case 'S':
        return InstrKind::Store;
      default:
        fatal("trace io: unknown instruction kind '", letter, "'");
    }
}

} // namespace

void
recordTrace(TraceSource &source, Count n, std::ostream &os)
{
    for (Count i = 0; i < n; ++i) {
        const InstrRecord rec = source.next();
        os << kindLetter(rec.kind);
        if (isMemory(rec.kind))
            os << ' ' << std::hex << rec.addr << std::dec;
        os << '\n';
    }
}

TraceReplay::TraceReplay(std::vector<InstrRecord> records)
    : records_(std::move(records))
{
    if (records_.empty())
        fatal("trace io: empty trace");
}

TraceReplay::TraceReplay(std::istream &is)
    : TraceReplay([&is] {
          std::vector<InstrRecord> records;
          std::string line;
          while (std::getline(is, line)) {
              if (line.empty())
                  continue;
              InstrRecord rec;
              rec.kind = kindFromLetter(line[0]);
              if (isMemory(rec.kind)) {
                  if (line.size() < 3)
                      fatal("trace io: memory op without address");
                  rec.addr =
                      std::stoull(line.substr(2), nullptr, 16);
              }
              records.push_back(rec);
          }
          return records;
      }())
{
}

TraceReplay
TraceReplay::fromString(const std::string &text)
{
    std::istringstream is(text);
    return TraceReplay(is);
}

InstrRecord
TraceReplay::next()
{
    const InstrRecord rec = records_[cursor_];
    if (++cursor_ == records_.size()) {
        cursor_ = 0;
        wrapped_ = true;
    }
    return rec;
}

} // namespace mcdvfs
