#include "trace/trace_generator.hh"

namespace mcdvfs
{

namespace
{

/** Access granularity of the synthetic stream (one word). */
constexpr std::uint64_t kAccessBytes = 8;

} // namespace

TraceGenerator::TraceGenerator(const PhaseSpec &spec, std::uint64_t seed)
    : spec_(spec), rng_(seed)
{
    spec_.validate();
    // Start the sequential cold stream at a seed-dependent offset so
    // different samples touch different rows.
    coldCursor_ = rng_.uniformInt(spec_.coldBytes / kAccessBytes) *
                  kAccessBytes;
}

std::uint64_t
TraceGenerator::nextAddress()
{
    const double tier = rng_.uniform();
    if (tier < spec_.hotFrac) {
        const std::uint64_t words = spec_.hotBytes / kAccessBytes;
        return kHotBase + rng_.uniformInt(words) * kAccessBytes;
    }
    if (tier < spec_.hotFrac + spec_.warmFrac) {
        const std::uint64_t words = spec_.warmBytes / kAccessBytes;
        return kWarmBase + rng_.uniformInt(words) * kAccessBytes;
    }
    // Cold tier: sequential stream or uniform random.
    if (rng_.chance(spec_.coldSeqFrac)) {
        const std::uint64_t addr = kColdBase + coldCursor_;
        coldCursor_ += kAccessBytes;
        if (coldCursor_ >= spec_.coldBytes)
            coldCursor_ = 0;
        return addr;
    }
    const std::uint64_t words = spec_.coldBytes / kAccessBytes;
    return kColdBase + rng_.uniformInt(words) * kAccessBytes;
}

InstrRecord
TraceGenerator::next()
{
    InstrRecord rec;
    const double k = rng_.uniform();
    double edge = spec_.loadFrac;
    if (k < edge) {
        rec.kind = InstrKind::Load;
        rec.addr = nextAddress();
        return rec;
    }
    edge += spec_.storeFrac;
    if (k < edge) {
        rec.kind = InstrKind::Store;
        rec.addr = nextAddress();
        return rec;
    }
    edge += spec_.branchFrac;
    if (k < edge) {
        rec.kind = InstrKind::Branch;
        return rec;
    }
    edge += spec_.fpFrac;
    if (k < edge) {
        rec.kind = InstrKind::FpOp;
        return rec;
    }
    edge += spec_.mulFrac;
    if (k < edge) {
        rec.kind = InstrKind::IntMul;
        return rec;
    }
    // GPU kick edge: gpuKickFrac is 0 for CPU-only phases, so the edge
    // collapses (edge += 0.0 leaves the bits unchanged) and the branch
    // structure — and therefore the RNG stream — is identical to the
    // two-domain generator.
    edge += spec_.gpuKickFrac;
    if (k < edge) {
        rec.kind = InstrKind::GpuKick;
        return rec;
    }
    rec.kind = InstrKind::IntAlu;
    return rec;
}

void
TraceGenerator::generate(Count n, std::vector<InstrRecord> &out)
{
    out.reserve(out.size() + n);
    for (Count i = 0; i < n; ++i)
        out.push_back(next());
}

} // namespace mcdvfs
