/**
 * @file
 * Per-sample optimal frequency settings under an inefficiency budget
 * (the paper's §V algorithm).
 *
 * For each sample: filter all settings whose per-sample inefficiency
 * is within the budget, find the feasible setting with the highest
 * speedup, and — to filter simulation noise — among all feasible
 * settings within 0.5% of that speedup pick the one with the highest
 * CPU frequency first and then the highest memory frequency.
 */

#ifndef MCDVFS_CORE_OPTIMAL_SETTINGS_HH
#define MCDVFS_CORE_OPTIMAL_SETTINGS_HH

#include <vector>

#include "core/inefficiency.hh"
#include "dvfs/settings_space.hh"

namespace mcdvfs
{

/** The chosen optimum for one sample. */
struct OptimalChoice
{
    std::size_t settingIndex = 0;
    FrequencySetting setting{};
    double speedup = 0.0;       ///< per-sample speedup at the optimum
    double inefficiency = 0.0;  ///< per-sample inefficiency at the optimum
};

/** §V search: budget filter, speedup maximization, noise tie-break. */
class OptimalSettingsFinder
{
  public:
    /**
     * @param analysis precomputed inefficiency tables (must outlive
     *                 the finder)
     * @param noise_threshold relative speedup window treated as a tie
     *                        (paper: 0.5%)
     * @throws FatalError for a negative noise threshold
     */
    explicit OptimalSettingsFinder(const InefficiencyAnalysis &analysis,
                                   double noise_threshold = 0.005);

    /**
     * All settings whose per-sample inefficiency is within @c budget.
     *
     * @param budget inefficiency budget >= 1 (kUnboundedBudget for
     *               the unconstrained case)
     * @throws FatalError for budgets below 1
     */
    std::vector<std::size_t> feasibleSettings(std::size_t sample,
                                              double budget) const;

    /** The optimal setting of one sample under @c budget. */
    OptimalChoice optimalForSample(std::size_t sample,
                                   double budget) const;

    /** Optimal settings for every sample in order. */
    std::vector<OptimalChoice> optimalTrajectory(double budget) const;

    const InefficiencyAnalysis &analysis() const { return analysis_; }
    double noiseThreshold() const { return noiseThreshold_; }

  private:
    const InefficiencyAnalysis &analysis_;
    double noiseThreshold_;
};

} // namespace mcdvfs

#endif // MCDVFS_CORE_OPTIMAL_SETTINGS_HH
