/**
 * @file
 * Tuning-overhead model (§VI-C).
 *
 * The paper measured that one tuning event over the 70-setting space —
 * computing inefficiencies, searching for the optimal setting, and
 * transitioning the hardware — costs about 500 us and 30 uJ.  The
 * model charges that lump per tuning event and scales the search
 * component linearly with the size of the settings space (brute-force
 * search is linear in the number of settings).
 */

#ifndef MCDVFS_CORE_TUNING_COST_HH
#define MCDVFS_CORE_TUNING_COST_HH

#include <cstddef>

#include "common/units.hh"

namespace mcdvfs
{

/** Calibration of the per-event overhead. */
struct TuningCostParams
{
    /** Latency of one tuning event at the reference space size. */
    Seconds latencyPerEvent = microSeconds(500.0);
    /** Energy of one tuning event at the reference space size. */
    Joules energyPerEvent = microJoules(30.0);
    /** Settings-space size the costs were measured at (paper: 70). */
    std::size_t referenceSettings = 70;
    /**
     * Fraction of the event cost that is search (scales with the
     * space size); the rest is the hardware transition (fixed).
     */
    double searchFraction = 0.6;
};

/** Accumulated overhead of a policy's tuning events. */
struct TuningOverhead
{
    std::size_t events = 0;
    Seconds latency = 0.0;
    Joules energy = 0.0;
};

/** Charges tuning overhead per event. */
class TuningCostModel
{
  public:
    /** @throws FatalError on invalid calibration */
    explicit TuningCostModel(const TuningCostParams &params = {});

    /** Latency of one event over a space of @c settings points. */
    Seconds eventLatency(std::size_t settings) const;

    /** Energy of one event over a space of @c settings points. */
    Joules eventEnergy(std::size_t settings) const;

    /** Total overhead of @c events tuning events. */
    TuningOverhead overhead(std::size_t events,
                            std::size_t settings) const;

    const TuningCostParams &params() const { return params_; }

  private:
    /** Scale factor for a space of @c settings points. */
    double scale(std::size_t settings) const;

    TuningCostParams params_;
};

} // namespace mcdvfs

#endif // MCDVFS_CORE_TUNING_COST_HH
