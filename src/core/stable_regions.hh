/**
 * @file
 * Stable regions (§VI-B).
 *
 * A stable region is a maximal run of consecutive samples that share
 * at least one common setting across all their performance clusters.
 * The finder implements the paper's greedy algorithm: walk sample by
 * sample intersecting the available-settings set with the next
 * sample's cluster; when the intersection would become empty, close
 * the region and start a new one.  The setting chosen for a region is
 * the common setting with the highest CPU frequency first, then the
 * highest memory frequency.
 *
 * The growth step operates on SettingMask bitsets: each intersection
 * is a handful of word-wise ANDs and the emptiness test a word-wise
 * OR, replacing the per-sample sorted-vector set_intersection the
 * scalar reference path (core/reference_analysis.hh) still performs.
 * Golden tests keep both paths bit-identical; spaces beyond
 * SettingMask::kCapacity fall back to the reference.
 */

#ifndef MCDVFS_CORE_STABLE_REGIONS_HH
#define MCDVFS_CORE_STABLE_REGIONS_HH

#include <vector>

#include "core/performance_clusters.hh"

namespace mcdvfs
{

/** One stable region of consecutive samples. */
struct StableRegion
{
    std::size_t first = 0;  ///< first sample (inclusive)
    std::size_t last = 0;   ///< last sample (inclusive)
    /** Settings common to every sample's cluster in the region. */
    std::vector<std::size_t> availableSettings;
    /** The preferred common setting the region runs at. */
    std::size_t chosenSettingIndex = 0;
    FrequencySetting chosenSetting{};

    /** Region length in samples. */
    std::size_t length() const { return last - first + 1; }
};

/**
 * Resumable greedy region growth: feed cluster masks sample by sample;
 * the builder keeps the closed regions plus the open region's start
 * and surviving-settings mask.  Feeding one more sample is O(1) mask
 * work, so a checkpointing analyzer extends regions in O(new samples)
 * — and StableRegionFinder::fromTable is a feed loop over this same
 * builder, which is what guarantees append == recompute bit for bit.
 */
class StableRegionBuilder
{
  public:
    /** Grow by one sample's cluster mask (§VI-B intersection step). */
    void feed(const SettingsSpace &space, const SettingMask &mask);

    /**
     * The regions of everything fed so far: the closed regions plus
     * the open region closed at the last fed sample.  Does not mutate
     * the builder — feeding may continue afterwards.  At least one
     * sample must have been fed.
     */
    std::vector<StableRegion> regions(const SettingsSpace &space) const;

    /** Samples fed so far. */
    std::size_t fedSamples() const { return fed_; }

  private:
    std::vector<StableRegion> closed_;
    /** Open region (valid once fed_ > 0). */
    StableRegion current_;
    /** Settings common to every cluster of the open region. */
    SettingMask available_;
    std::size_t fed_ = 0;
};

/** Greedy stable-region construction over per-sample clusters. */
class StableRegionFinder
{
  public:
    /** @param clusters cluster source (must outlive the finder) */
    explicit StableRegionFinder(const ClusterFinder &clusters);

    /**
     * All stable regions of the run for a budget and threshold.
     * Regions tile the run: region i+1 starts at region i's last+1.
     * The per-sample cluster computation optionally fans out over
     * @c pool; the result is bit-identical for any worker count.
     */
    std::vector<StableRegion> find(double budget, double threshold,
                                   exec::ThreadPool *pool = nullptr) const;

    /**
     * Grow regions from a precomputed cluster table by word-wise mask
     * intersection (lets callers reuse one cluster computation across
     * analyses).
     */
    std::vector<StableRegion> fromTable(const ClusterTable &table) const;

    /**
     * Build regions from vector-form clusters (compatibility API;
     * converts to masks when the space fits, otherwise falls back to
     * the scalar reference path).
     */
    std::vector<StableRegion> fromClusters(
        const std::vector<PerformanceCluster> &clusters) const;

  private:
    const ClusterFinder &clusters_;
};

} // namespace mcdvfs

#endif // MCDVFS_CORE_STABLE_REGIONS_HH
