/**
 * @file
 * The paper's central metric: inefficiency I = E / Emin (§II).
 *
 * Emin is found by brute-force search over all settings — the first of
 * the paper's two proposed computation methods; the learning-based
 * predictor lives in src/runtime/.  Inefficiency is computed both per
 * sample (for budget-constrained tuning, §V-§VI) and for the whole run
 * at a fixed setting (Fig. 2).
 */

#ifndef MCDVFS_CORE_INEFFICIENCY_HH
#define MCDVFS_CORE_INEFFICIENCY_HH

#include <limits>
#include <mutex>
#include <vector>

#include "sim/measured_grid.hh"

namespace mcdvfs
{

/** Budget value meaning "unconstrained" (the paper's infinity). */
inline constexpr double kUnboundedBudget =
    std::numeric_limits<double>::infinity();

/** Precomputed inefficiency tables over a measured grid. */
class InefficiencyAnalysis
{
  public:
    /**
     * Precompute per-sample Emin/slowest-time and whole-run
     * aggregates by brute force over the grid.
     *
     * The grid must outlive this analysis.
     */
    explicit InefficiencyAnalysis(const MeasuredGrid &grid);

    /** A temporary grid would dangle — forbidden at compile time. */
    explicit InefficiencyAnalysis(MeasuredGrid &&) = delete;

    /** Per-sample inefficiency I_s(k) = E_s(k) / Emin_s. */
    double sampleInefficiency(std::size_t sample,
                              std::size_t setting) const;

    /**
     * Per-sample speedup: slowest execution of this sample over its
     * execution at @c setting (>= 1, paper §IV convention).
     */
    double sampleSpeedup(std::size_t sample, std::size_t setting) const;

    /** Brute-force per-sample Emin. */
    Joules sampleEmin(std::size_t sample) const;

    /** Slowest execution of a sample over all settings. */
    Seconds sampleSlowest(std::size_t sample) const;

    /** Whole-run inefficiency of a fixed setting (Fig. 2 y-axis). */
    double runInefficiency(std::size_t setting) const;

    /** Whole-run speedup of a fixed setting (Fig. 2 x-axis). */
    double runSpeedup(std::size_t setting) const;

    /** Whole-run brute-force Emin. */
    Joules eminTotal() const;

    /**
     * The workload's maximum achievable whole-run inefficiency Imax
     * (the paper observes 1.5-2 across its benchmarks).
     */
    double maxRunInefficiency() const;

    const MeasuredGrid &grid() const { return grid_; }

  private:
    /**
     * Build the whole-run tables on first use.  The per-setting
     * totalEnergy/totalTime sums are O(settings x samples) — an order
     * more work than everything else construction does — and only the
     * Fig. 2-style whole-run queries need them, so the per-sample
     * analysis chain (and the incremental analyzer's tail-range
     * construction) never pays for history it will not read.
     */
    void ensureRunAggregates() const;

    const MeasuredGrid &grid_;
    std::vector<Joules> sampleEmin_;
    std::vector<Seconds> sampleSlowest_;
    mutable std::once_flag runAggregatesOnce_;
    mutable std::vector<Joules> runEnergy_;
    mutable std::vector<Seconds> runTime_;
    mutable Joules eminTotal_ = 0.0;
    mutable Seconds slowestTotal_ = 0.0;
};

} // namespace mcdvfs

#endif // MCDVFS_CORE_INEFFICIENCY_HH
