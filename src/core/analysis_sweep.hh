/**
 * @file
 * Parallel multi-budget / multi-threshold analysis sweeps.
 *
 * The paper's cluster figures (Figs. 9-12) and the retune-schedule
 * study evaluate the same grid at a cross product of inefficiency
 * budgets and cluster thresholds.  Every (budget, threshold, sample)
 * cell is independent, so the sweep flattens the cross product and
 * fans the per-sample cluster kernel over the thread pool, then grows
 * each point's stable regions from its finished mask table.  Results
 * are bit-identical to the serial nested loops for any worker count.
 */

#ifndef MCDVFS_CORE_ANALYSIS_SWEEP_HH
#define MCDVFS_CORE_ANALYSIS_SWEEP_HH

#include <vector>

#include "core/stable_regions.hh"

namespace mcdvfs
{

/** One point of the sweep's cross product. */
struct SweepPoint
{
    double budget = 1.0;
    double threshold = 0.0;
};

/** Clusters and regions of one sweep point. */
struct SweepResult
{
    SweepPoint point;
    ClusterTable table;
    std::vector<StableRegion> regions;

    /** Mean cluster size in settings (Fig. 9 y-axis). */
    double avgClusterSize() const;
    /** Mean stable-region length in samples (Fig. 10 y-axis). */
    double avgRegionLength() const;
};

/** Evaluates many (budget, threshold) points over one grid. */
class AnalysisSweep
{
  public:
    /**
     * @param clusters cluster source (must outlive the sweep); its
     *        settings space must fit SettingMask::kCapacity
     */
    explicit AnalysisSweep(const ClusterFinder &clusters);

    /**
     * Evaluate every point, fanning the flattened point x sample work
     * list over @c pool (nullptr = serial).  Output order follows
     * @c points.
     *
     * @throws FatalError when the settings space exceeds the mask
     *         capacity (sweeps target the paper's 70/496 spaces)
     */
    std::vector<SweepResult> run(const std::vector<SweepPoint> &points,
                                 exec::ThreadPool *pool = nullptr) const;

  private:
    const ClusterFinder &clusters_;
    StableRegionFinder regions_;
};

} // namespace mcdvfs

#endif // MCDVFS_CORE_ANALYSIS_SWEEP_HH
