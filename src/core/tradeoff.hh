/**
 * @file
 * Whole-run energy-performance trade-off evaluation (§VI-C, Figs.
 * 10 and 11).
 *
 * Two policies are compared under an inefficiency budget:
 *
 *  - optimal tracking: re-tune every sample to the per-sample optimal
 *    setting (the paper's "ideal" but expensive policy);
 *  - cluster policy: run every stable region at its common setting,
 *    re-tuning only at region boundaries.
 *
 * Each policy is evaluated with and without the §VI-C tuning overhead
 * (500 us + 30 uJ per tuning event): with overhead included, allowing
 * a small performance degradation can *improve* end-to-end performance
 * because the cluster policy tunes so much less often.
 */

#ifndef MCDVFS_CORE_TRADEOFF_HH
#define MCDVFS_CORE_TRADEOFF_HH

#include "core/stable_regions.hh"
#include "core/transitions.hh"
#include "core/tuning_cost.hh"

namespace mcdvfs
{

/** End-to-end outcome of one policy run. */
struct PolicyOutcome
{
    Seconds time = 0.0;    ///< execution time, no tuning overhead
    Joules energy = 0.0;   ///< energy, no tuning overhead
    std::size_t tuningEvents = 0;
    std::size_t transitions = 0;
    Seconds timeWithOverhead = 0.0;
    Joules energyWithOverhead = 0.0;
    /** Run inefficiency vs. the sum of per-sample Emin. */
    double achievedInefficiency = 0.0;
};

/** Relative trade-off of the cluster policy vs. optimal tracking. */
struct TradeoffRow
{
    /** Performance change, % (negative = cluster policy slower). */
    double perfPct = 0.0;
    /** Energy change, % (negative = cluster policy saves energy). */
    double energyPct = 0.0;
    /** Same, with tuning overhead charged to both policies. */
    double perfPctWithOverhead = 0.0;
    double energyPctWithOverhead = 0.0;
};

/** Evaluates policies over a measured grid. */
class TradeoffEvaluator
{
  public:
    /**
     * @param regions stable-region machinery (must outlive the
     *        evaluator)
     * @param clusters cluster finder feeding @c regions
     * @param cost_model per-event tuning overhead
     */
    TradeoffEvaluator(const StableRegionFinder &regions,
                      const ClusterFinder &clusters,
                      const TuningCostModel &cost_model);

    /** Optimal-tracking policy: re-tune every sample. */
    PolicyOutcome optimalTracking(double budget) const;

    /** Cluster policy: one tuning event per stable region. */
    PolicyOutcome clusterPolicy(double budget, double threshold) const;

    /** Fig. 11 comparison at one (budget, threshold) point. */
    TradeoffRow compare(double budget, double threshold) const;

    /**
     * Fig. 10 series: execution time of optimal tracking at @c budget
     * normalized to the execution time at budget 1.0.
     */
    double normalizedExecutionTime(double budget) const;

  private:
    /** Evaluate a per-sample setting sequence end to end. */
    PolicyOutcome evaluateSequence(
        const std::vector<std::size_t> &setting_per_sample,
        std::size_t tuning_events) const;

    const StableRegionFinder &regions_;
    const ClusterFinder &clusters_;
    TuningCostModel costModel_;
};

} // namespace mcdvfs

#endif // MCDVFS_CORE_TRADEOFF_HH
