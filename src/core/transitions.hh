/**
 * @file
 * Frequency-transition accounting (Figs. 6-9).
 *
 * Given a per-sample setting sequence — produced either by tracking
 * the optimal settings every sample or by running each stable region
 * at its common setting — TransitionAnalysis counts the actual setting
 * changes, normalizes them per billion modeled instructions (the
 * paper's Fig. 8 metric), and collects the distribution of
 * constant-setting run lengths (Fig. 9).
 */

#ifndef MCDVFS_CORE_TRANSITIONS_HH
#define MCDVFS_CORE_TRANSITIONS_HH

#include <vector>

#include "common/stats.hh"
#include "core/stable_regions.hh"

namespace mcdvfs
{

/** Transition counts for one policy run. */
struct TransitionReport
{
    /** Number of samples whose setting differs from the previous. */
    std::size_t transitions = 0;
    /** Transitions normalized per 10^9 modeled instructions. */
    double perBillionInstructions = 0.0;
    /** Lengths (in samples) of maximal constant-setting runs. */
    Distribution runLengths;
};

/** Computes transition statistics for the paper's two policies. */
class TransitionAnalysis
{
  public:
    /**
     * @param region_finder stable-region machinery (provides cluster
     *        and optimal-settings access; must outlive the analysis)
     * @param cluster_finder the underlying cluster finder
     */
    TransitionAnalysis(const StableRegionFinder &region_finder,
                       const ClusterFinder &cluster_finder);

    /** Tracking the per-sample optimum exactly (threshold "optimal"). */
    TransitionReport forOptimalTracking(double budget) const;

    /** Running each stable region at its common setting. */
    TransitionReport forClusterPolicy(double budget,
                                      double threshold) const;

    /** Per-sample setting sequence of the cluster policy. */
    std::vector<std::size_t> clusterSettingSequence(
        double budget, double threshold) const;

    /**
     * Count transitions and run lengths of an arbitrary per-sample
     * setting sequence.
     */
    static TransitionReport fromSettingSequence(
        const std::vector<std::size_t> &setting_per_sample,
        Count total_instructions);

  private:
    const StableRegionFinder &regionFinder_;
    const ClusterFinder &clusterFinder_;
};

} // namespace mcdvfs

#endif // MCDVFS_CORE_TRANSITIONS_HH
