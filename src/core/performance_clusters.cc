#include "core/performance_clusters.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mcdvfs
{

bool
PerformanceCluster::contains(std::size_t setting_index) const
{
    return std::find(settings.begin(), settings.end(), setting_index) !=
           settings.end();
}

ClusterFinder::ClusterFinder(const OptimalSettingsFinder &finder)
    : finder_(finder)
{
}

PerformanceCluster
ClusterFinder::clusterForSample(std::size_t sample, double budget,
                                double threshold) const
{
    if (threshold < 0.0)
        fatal("cluster threshold must be >= 0, got ", threshold);

    const InefficiencyAnalysis &analysis = finder_.analysis();

    PerformanceCluster cluster;
    // First pass (paper §VI-A): the optimal setting under the budget.
    cluster.optimal = finder_.optimalForSample(sample, budget);

    // Second pass: every feasible setting whose speedup is within the
    // threshold of the optimal speedup.
    const double cutoff = cluster.optimal.speedup * (1.0 - threshold);
    for (const std::size_t k : finder_.feasibleSettings(sample, budget)) {
        if (analysis.sampleSpeedup(sample, k) >= cutoff)
            cluster.settings.push_back(k);
    }
    MCDVFS_ASSERT(cluster.contains(cluster.optimal.settingIndex),
                  "cluster must contain its optimum");
    return cluster;
}

std::vector<PerformanceCluster>
ClusterFinder::clusters(double budget, double threshold) const
{
    const std::size_t samples =
        finder_.analysis().grid().sampleCount();
    std::vector<PerformanceCluster> out;
    out.reserve(samples);
    for (std::size_t s = 0; s < samples; ++s)
        out.push_back(clusterForSample(s, budget, threshold));
    return out;
}

} // namespace mcdvfs
