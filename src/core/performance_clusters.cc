#include "core/performance_clusters.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/reference_analysis.hh"
#include "exec/thread_pool.hh"

namespace mcdvfs
{

bool
PerformanceCluster::contains(std::size_t setting_index) const
{
    MCDVFS_DEBUG_ASSERT(std::is_sorted(settings.begin(), settings.end()),
                        "cluster settings must be sorted");
    return std::binary_search(settings.begin(), settings.end(),
                              setting_index);
}

PerformanceCluster
ClusterTable::materialize(std::size_t sample) const
{
    MCDVFS_ASSERT(sample < masks.size(), "sample out of range");
    PerformanceCluster cluster;
    cluster.optimal = optimal[sample];
    cluster.settings.reserve(masks[sample].count());
    for (const std::size_t k : masks[sample])
        cluster.settings.push_back(k);
    return cluster;
}

ClusterFinder::ClusterFinder(const OptimalSettingsFinder &finder)
    : ClusterFinder(finder, 0)
{
}

ClusterFinder::ClusterFinder(const OptimalSettingsFinder &finder,
                             std::size_t first_sample)
    : finder_(finder),
      settings_(finder.analysis().grid().space().all()),
      tableFirst_(first_sample)
{
    const InefficiencyAnalysis &analysis = finder_.analysis();
    const MeasuredGrid &grid = analysis.grid();
    const std::size_t settings = grid.settingCount();
    if (!SettingMask::supports(settings))
        return;

    // Hoist every division out of the query path: each cell's speedup
    // and inefficiency mirror InefficiencyAnalysis::sampleSpeedup /
    // sampleInefficiency exactly, so every downstream comparison stays
    // bit-identical to the scalar reference.  A tail-range finder
    // hoists only [tableFirst_, samples): the division work stays
    // proportional to the samples it will be asked about.
    const std::size_t samples = grid.sampleCount();
    MCDVFS_ASSERT(tableFirst_ <= samples,
                  "table range start out of range");
    speedups_.resize((samples - tableFirst_) * settings);
    inefficiencies_.resize((samples - tableFirst_) * settings);
    for (std::size_t s = tableFirst_; s < samples; ++s) {
        const double emin = analysis.sampleEmin(s);
        const double slowest = analysis.sampleSlowest(s);
        const double *sec = grid.secondsRow(s);
        const double *cpu = grid.cpuEnergyRow(s);
        const double *mem = grid.memEnergyRow(s);
        const double *gpu = grid.gpuEnergyRow(s);
        double *spd =
            speedups_.data() + (s - tableFirst_) * settings;
        double *ineff =
            inefficiencies_.data() + (s - tableFirst_) * settings;
        for (std::size_t k = 0; k < settings; ++k) {
            spd[k] = slowest / sec[k];
            // Same association as MeasuredGrid::energyAt: the GPU
            // column is +0.0 on two-domain grids, so their bits are
            // untouched.
            ineff[k] = ((cpu[k] + mem[k]) + gpu[k]) / emin;
        }
    }
}

void
ClusterFinder::fillSample(std::size_t sample, double budget,
                          double threshold, OptimalChoice &optimal,
                          SettingMask &mask) const
{
    if (threshold < 0.0)
        fatal("cluster threshold must be >= 0, got ", threshold);

    SettingMask feasible;
    fillBudget(sample, budget, optimal, feasible);
    fillCluster(sample, threshold, optimal, feasible, mask);
}

void
ClusterFinder::fillBudget(std::size_t sample, double budget,
                          OptimalChoice &optimal,
                          SettingMask &feasible_out) const
{
    if (budget < 1.0) {
        fatal("inefficiency budget must be >= 1 (the most efficient "
              "execution has inefficiency exactly 1), got ", budget);
    }

    const MeasuredGrid &grid = finder_.analysis().grid();
    const std::size_t settings = grid.settingCount();
    MCDVFS_ASSERT(SettingMask::supports(settings),
                  "settings space exceeds SettingMask capacity");
    MCDVFS_ASSERT(sample < grid.sampleCount(), "sample out of range");

    const double *speedups = speedupRow(sample);
    const double *ineff = inefficiencyRow(sample);

    // Pass 1: one compare per setting over the precomputed rows derives
    // budget feasibility and the best feasible speedup — the divisions
    // behind both values were hoisted to construction.  Filled into
    // the caller's mask directly so sweep loops reuse one scratch
    // object per thread instead of copying a local per cell.
    feasible_out = SettingMask(settings);
    SettingMask &feasible = feasible_out;
    double best_speedup = 0.0;
#if MCDVFS_SIMD_AVX2
    if (simd::haveAvx2()) {
        // Four lanes per compare: the LE predicate word comes from a
        // movemask and the best feasible speedup from a masked max
        // (infeasible lanes contribute 0.0, below every speedup).
        // Max over doubles selects one of the operands, so any
        // reduction order yields the same bits as the scalar loop.
        const __m256d vbudget = _mm256_set1_pd(budget);
        __m256d vbest = _mm256_setzero_pd();
        for (std::size_t w = 0; w * 64 < settings; ++w) {
            const std::size_t base = w * 64;
            const std::size_t lanes = std::min<std::size_t>(
                64, settings - base);
            std::uint64_t bits = 0;
            std::size_t j = 0;
            for (; j + 4 <= lanes; j += 4) {
                const __m256d vineff =
                    _mm256_loadu_pd(ineff + base + j);
                const __m256d le =
                    _mm256_cmp_pd(vineff, vbudget, _CMP_LE_OQ);
                bits |= static_cast<std::uint64_t>(
                            _mm256_movemask_pd(le))
                        << j;
                const __m256d vspd =
                    _mm256_loadu_pd(speedups + base + j);
                vbest = _mm256_max_pd(vbest,
                                      _mm256_and_pd(le, vspd));
            }
            for (; j < lanes; ++j) {
                if (ineff[base + j] <= budget) {
                    bits |= std::uint64_t{1} << j;
                    best_speedup = std::max(best_speedup,
                                            speedups[base + j]);
                }
            }
            feasible.setWord(w, bits);
        }
        alignas(32) double fold[4];
        _mm256_store_pd(fold, vbest);
        for (const double lane : fold)
            best_speedup = std::max(best_speedup, lane);
    } else
#elif MCDVFS_SIMD_NEON
    if (simd::haveNeon()) {
        const float64x2_t vbudget = vdupq_n_f64(budget);
        float64x2_t vbest = vdupq_n_f64(0.0);
        for (std::size_t w = 0; w * 64 < settings; ++w) {
            const std::size_t base = w * 64;
            const std::size_t lanes = std::min<std::size_t>(
                64, settings - base);
            std::uint64_t bits = 0;
            std::size_t j = 0;
            for (; j + 2 <= lanes; j += 2) {
                const uint64x2_t le = vcleq_f64(
                    vld1q_f64(ineff + base + j), vbudget);
                bits |= (vgetq_lane_u64(le, 0) & 1) << j;
                bits |= (vgetq_lane_u64(le, 1) & 1) << (j + 1);
                const float64x2_t vspd =
                    vld1q_f64(speedups + base + j);
                vbest = vmaxq_f64(
                    vbest,
                    vreinterpretq_f64_u64(vandq_u64(
                        le, vreinterpretq_u64_f64(vspd))));
            }
            for (; j < lanes; ++j) {
                if (ineff[base + j] <= budget) {
                    bits |= std::uint64_t{1} << j;
                    best_speedup = std::max(best_speedup,
                                            speedups[base + j]);
                }
            }
            feasible.setWord(w, bits);
        }
        best_speedup = std::max(best_speedup,
                                vgetq_lane_f64(vbest, 0));
        best_speedup = std::max(best_speedup,
                                vgetq_lane_f64(vbest, 1));
    } else
#endif
    {
        for (std::size_t k = 0; k < settings; ++k) {
            if (ineff[k] <= budget) {
                feasible.set(k);
                best_speedup = std::max(best_speedup, speedups[k]);
            }
        }
    }
    // The Emin setting always has inefficiency exactly 1.
    MCDVFS_ASSERT(feasible.any(), "budget filter produced no settings");

    // Pass 2 (§V tie-break): among feasible settings within the noise
    // window of the best speedup, prefer highest CPU frequency, then
    // highest memory frequency.  The cutoff filter is word-wise, so
    // the per-bit walk only touches the few candidates in the window.
    const double noise_cutoff =
        best_speedup * (1.0 - finder_.noiseThreshold());
    bool have_choice = false;
    OptimalChoice choice;
    for (const std::size_t k : feasible.filterGE(speedups, noise_cutoff)) {
        const FrequencySetting candidate = settings_[k];
        if (!have_choice || settingPreferred(candidate, choice.setting)) {
            have_choice = true;
            choice.settingIndex = k;
            choice.setting = candidate;
        }
    }
    MCDVFS_ASSERT(have_choice, "tie-break produced no setting");
    choice.speedup = speedups[choice.settingIndex];
    choice.inefficiency = ineff[choice.settingIndex];

    optimal = choice;
}

void
ClusterFinder::fillCluster(std::size_t sample, double threshold,
                           const OptimalChoice &optimal,
                           const SettingMask &feasible,
                           SettingMask &mask) const
{
    if (threshold < 0.0)
        fatal("cluster threshold must be >= 0, got ", threshold);

    const double *speedups = speedupRow(sample);

    // Pass 3 (§VI-A): the cluster is the feasible set minus settings
    // below the threshold cutoff, one word-wise filter.
    const double cluster_cutoff = optimal.speedup * (1.0 - threshold);
    mask = feasible.filterGE(speedups, cluster_cutoff);
    MCDVFS_ASSERT(mask.test(optimal.settingIndex),
                  "cluster must contain its optimum");
}

PerformanceCluster
ClusterFinder::clusterForSample(std::size_t sample, double budget,
                                double threshold) const
{
    const std::size_t settings =
        finder_.analysis().grid().settingCount();
    if (!SettingMask::supports(settings))
        return referenceClusterForSample(finder_, sample, budget,
                                         threshold);

    OptimalChoice optimal;
    SettingMask mask;
    fillSample(sample, budget, threshold, optimal, mask);

    PerformanceCluster cluster;
    cluster.optimal = optimal;
    cluster.settings.reserve(mask.count());
    for (const std::size_t k : mask)
        cluster.settings.push_back(k);
    return cluster;
}

ClusterTable
ClusterFinder::table(double budget, double threshold,
                     exec::ThreadPool *pool) const
{
    const MeasuredGrid &grid = finder_.analysis().grid();
    const std::size_t samples = grid.sampleCount();

    ClusterTable out;
    out.budget = budget;
    out.threshold = threshold;
    out.optimal.resize(samples);
    out.masks.resize(samples);

    auto body = [&](std::size_t s) {
        fillSample(s, budget, threshold, out.optimal[s], out.masks[s]);
    };
    if (pool != nullptr) {
        // Chunk the fan-out so each claimed range amortizes the shared
        // counter: the fill is comparison-only, so per-sample chunks
        // would be all overhead.  Chunking never changes which slot an
        // index writes, so the result stays bit-identical.
        const std::size_t grain = std::max<std::size_t>(
            1, samples / (4 * (pool->size() + 1)));
        pool->parallelFor(std::size_t{0}, samples, body, grain);
    } else {
        for (std::size_t s = 0; s < samples; ++s)
            body(s);
    }
    return out;
}

std::vector<PerformanceCluster>
ClusterFinder::clusters(double budget, double threshold) const
{
    return clusters(budget, threshold, nullptr);
}

std::vector<PerformanceCluster>
ClusterFinder::clusters(double budget, double threshold,
                        exec::ThreadPool *pool) const
{
    const std::size_t settings =
        finder_.analysis().grid().settingCount();
    if (!SettingMask::supports(settings))
        return referenceClusters(finder_, budget, threshold);

    const ClusterTable tbl = table(budget, threshold, pool);
    std::vector<PerformanceCluster> out;
    out.reserve(tbl.sampleCount());
    for (std::size_t s = 0; s < tbl.sampleCount(); ++s)
        out.push_back(tbl.materialize(s));
    return out;
}

} // namespace mcdvfs
