#include "core/step_sensitivity.hh"

#include "core/reference_analysis.hh"
#include "sim/sample_simulator.hh"

namespace mcdvfs
{

double
StepSensitivityResult::finePerfImprovementPct() const
{
    if (coarse.optimalTime <= 0.0)
        return 0.0;
    return (coarse.optimalTime - fine.optimalTime) / coarse.optimalTime *
           100.0;
}

StepSensitivity::StepSensitivity(GridRunner &runner)
    : runner_(runner)
{
}

SpaceCharacterization
StepSensitivity::characterizeSpace(const MeasuredGrid &grid, double budget,
                                   double threshold, exec::ThreadPool *pool)
{
    if (!SettingMask::supports(grid.settingCount()))
        return referenceCharacterizeSpace(grid, budget, threshold);

    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    StableRegionFinder regions(clusters);

    SpaceCharacterization out;
    out.settings = grid.settingCount();

    // One mask-table pass feeds every statistic of the row.
    const ClusterTable table = clusters.table(budget, threshold, pool);
    double cluster_total = 0.0;
    for (const SettingMask &mask : table.masks)
        cluster_total += static_cast<double>(mask.count());
    out.avgClusterSize =
        cluster_total / static_cast<double>(table.sampleCount());

    const std::vector<StableRegion> region_list = regions.fromTable(table);
    double length_total = 0.0;
    for (const StableRegion &region : region_list)
        length_total += static_cast<double>(region.length());
    out.avgRegionLength =
        length_total / static_cast<double>(region_list.size());

    std::vector<std::size_t> sequence(grid.sampleCount(), 0);
    for (const StableRegion &region : region_list) {
        for (std::size_t s = region.first; s <= region.last; ++s)
            sequence[s] = region.chosenSettingIndex;
    }
    out.transitions =
        TransitionAnalysis::fromSettingSequence(sequence,
                                                grid.totalInstructions())
            .transitions;

    Seconds optimal_time = 0.0;
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        optimal_time +=
            grid.cell(s, table.optimal[s].settingIndex).seconds;
    }
    out.optimalTime = optimal_time;
    return out;
}

StepSensitivityResult
StepSensitivity::compare(const WorkloadProfile &workload, double budget,
                         double threshold, const SettingsSpace &coarse,
                         const SettingsSpace &fine)
{
    // One characterization pass shared by both grids.
    SampleSimulator simulator(runner_.config().sampler);
    const std::vector<SampleProfile> profiles =
        simulator.characterize(workload);

    const MeasuredGrid coarse_grid = runner_.runWithProfiles(
        workload.name(), profiles, coarse,
        workload.modeledInstructionsPerSample());
    const MeasuredGrid fine_grid = runner_.runWithProfiles(
        workload.name(), profiles, fine,
        workload.modeledInstructionsPerSample());

    StepSensitivityResult result;
    result.coarse = characterizeSpace(coarse_grid, budget, threshold, pool_);
    result.fine = characterizeSpace(fine_grid, budget, threshold, pool_);
    return result;
}

} // namespace mcdvfs
