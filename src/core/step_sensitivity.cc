#include "core/step_sensitivity.hh"

#include "sim/sample_simulator.hh"

namespace mcdvfs
{

double
StepSensitivityResult::finePerfImprovementPct() const
{
    if (coarse.optimalTime <= 0.0)
        return 0.0;
    return (coarse.optimalTime - fine.optimalTime) / coarse.optimalTime *
           100.0;
}

StepSensitivity::StepSensitivity(GridRunner &runner)
    : runner_(runner)
{
}

SpaceCharacterization
StepSensitivity::characterizeSpace(const MeasuredGrid &grid, double budget,
                                   double threshold) const
{
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    StableRegionFinder regions(clusters);
    TransitionAnalysis transitions(regions, clusters);

    SpaceCharacterization out;
    out.settings = grid.settingCount();

    const std::vector<PerformanceCluster> per_sample =
        clusters.clusters(budget, threshold);
    double cluster_total = 0.0;
    for (const PerformanceCluster &cluster : per_sample)
        cluster_total += static_cast<double>(cluster.settings.size());
    out.avgClusterSize =
        cluster_total / static_cast<double>(per_sample.size());

    const std::vector<StableRegion> region_list =
        regions.fromClusters(per_sample);
    double length_total = 0.0;
    for (const StableRegion &region : region_list)
        length_total += static_cast<double>(region.length());
    out.avgRegionLength =
        length_total / static_cast<double>(region_list.size());

    out.transitions =
        transitions.forClusterPolicy(budget, threshold).transitions;

    Seconds optimal_time = 0.0;
    std::size_t sample = 0;
    for (const OptimalChoice &choice : finder.optimalTrajectory(budget)) {
        optimal_time += grid.cell(sample, choice.settingIndex).seconds;
        ++sample;
    }
    out.optimalTime = optimal_time;
    return out;
}

StepSensitivityResult
StepSensitivity::compare(const WorkloadProfile &workload, double budget,
                         double threshold, const SettingsSpace &coarse,
                         const SettingsSpace &fine)
{
    // One characterization pass shared by both grids.
    SampleSimulator simulator(runner_.config().sampler);
    const std::vector<SampleProfile> profiles =
        simulator.characterize(workload);

    const MeasuredGrid coarse_grid = runner_.runWithProfiles(
        workload.name(), profiles, coarse,
        workload.modeledInstructionsPerSample());
    const MeasuredGrid fine_grid = runner_.runWithProfiles(
        workload.name(), profiles, fine,
        workload.modeledInstructionsPerSample());

    StepSensitivityResult result;
    result.coarse = characterizeSpace(coarse_grid, budget, threshold);
    result.fine = characterizeSpace(fine_grid, budget, threshold);
    return result;
}

} // namespace mcdvfs
