#include "core/reference_analysis.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/transitions.hh"

namespace mcdvfs
{

namespace
{

/** Intersection of a sorted available set with a cluster's settings. */
std::vector<std::size_t>
intersect(const std::vector<std::size_t> &available,
          const std::vector<std::size_t> &cluster)
{
    std::vector<std::size_t> out;
    out.reserve(std::min(available.size(), cluster.size()));
    std::set_intersection(available.begin(), available.end(),
                          cluster.begin(), cluster.end(),
                          std::back_inserter(out));
    return out;
}

} // namespace

PerformanceCluster
referenceClusterForSample(const OptimalSettingsFinder &finder,
                          std::size_t sample, double budget,
                          double threshold)
{
    if (threshold < 0.0)
        fatal("cluster threshold must be >= 0, got ", threshold);

    const InefficiencyAnalysis &analysis = finder.analysis();

    PerformanceCluster cluster;
    // First pass (paper §VI-A): the optimal setting under the budget.
    cluster.optimal = finder.optimalForSample(sample, budget);

    // Second pass: every feasible setting whose speedup is within the
    // threshold of the optimal speedup.
    const double cutoff = cluster.optimal.speedup * (1.0 - threshold);
    for (const std::size_t k : finder.feasibleSettings(sample, budget)) {
        if (analysis.sampleSpeedup(sample, k) >= cutoff)
            cluster.settings.push_back(k);
    }
    MCDVFS_ASSERT(cluster.contains(cluster.optimal.settingIndex),
                  "cluster must contain its optimum");
    return cluster;
}

std::vector<PerformanceCluster>
referenceClusters(const OptimalSettingsFinder &finder, double budget,
                  double threshold)
{
    const std::size_t samples = finder.analysis().grid().sampleCount();
    std::vector<PerformanceCluster> out;
    out.reserve(samples);
    for (std::size_t s = 0; s < samples; ++s)
        out.push_back(
            referenceClusterForSample(finder, s, budget, threshold));
    return out;
}

std::vector<StableRegion>
referenceStableRegions(const SettingsSpace &space,
                       const std::vector<PerformanceCluster> &clusters)
{
    MCDVFS_ASSERT(!clusters.empty(), "no clusters to regionize");

    auto sorted_settings = [](const PerformanceCluster &cluster) {
        std::vector<std::size_t> s = cluster.settings;
        std::sort(s.begin(), s.end());
        return s;
    };

    auto choose = [&space](const std::vector<std::size_t> &available) {
        MCDVFS_ASSERT(!available.empty(), "region with no settings");
        std::size_t best = available.front();
        for (const std::size_t k : available) {
            if (settingPreferred(space.at(k), space.at(best)))
                best = k;
        }
        return best;
    };

    std::vector<StableRegion> regions;
    StableRegion current;
    current.first = 0;
    current.availableSettings = sorted_settings(clusters.front());

    for (std::size_t s = 1; s < clusters.size(); ++s) {
        std::vector<std::size_t> next =
            intersect(current.availableSettings, sorted_settings(clusters[s]));
        if (next.empty()) {
            // Close the region at the previous sample.
            current.last = s - 1;
            current.chosenSettingIndex = choose(current.availableSettings);
            current.chosenSetting = space.at(current.chosenSettingIndex);
            regions.push_back(std::move(current));
            current = StableRegion{};
            current.first = s;
            current.availableSettings = sorted_settings(clusters[s]);
        } else {
            current.availableSettings = std::move(next);
        }
    }
    current.last = clusters.size() - 1;
    current.chosenSettingIndex = choose(current.availableSettings);
    current.chosenSetting = space.at(current.chosenSettingIndex);
    regions.push_back(std::move(current));
    return regions;
}

SpaceCharacterization
referenceCharacterizeSpace(const MeasuredGrid &grid, double budget,
                           double threshold)
{
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);

    SpaceCharacterization out;
    out.settings = grid.settingCount();

    const std::vector<PerformanceCluster> per_sample =
        referenceClusters(finder, budget, threshold);
    double cluster_total = 0.0;
    for (const PerformanceCluster &cluster : per_sample)
        cluster_total += static_cast<double>(cluster.settings.size());
    out.avgClusterSize =
        cluster_total / static_cast<double>(per_sample.size());

    const std::vector<StableRegion> region_list =
        referenceStableRegions(grid.space(), per_sample);
    double length_total = 0.0;
    for (const StableRegion &region : region_list)
        length_total += static_cast<double>(region.length());
    out.avgRegionLength =
        length_total / static_cast<double>(region_list.size());

    std::vector<std::size_t> sequence(grid.sampleCount(), 0);
    for (const StableRegion &region : region_list) {
        for (std::size_t s = region.first; s <= region.last; ++s)
            sequence[s] = region.chosenSettingIndex;
    }
    out.transitions =
        TransitionAnalysis::fromSettingSequence(sequence,
                                                grid.totalInstructions())
            .transitions;

    Seconds optimal_time = 0.0;
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        optimal_time +=
            grid.cell(s, finder.optimalForSample(s, budget).settingIndex)
                .seconds;
    }
    out.optimalTime = optimal_time;
    return out;
}

} // namespace mcdvfs
