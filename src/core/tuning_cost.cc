#include "core/tuning_cost.hh"

#include "common/logging.hh"

namespace mcdvfs
{

TuningCostModel::TuningCostModel(const TuningCostParams &params)
    : params_(params)
{
    if (params_.latencyPerEvent < 0.0 || params_.energyPerEvent < 0.0)
        fatal("tuning cost: per-event costs must be non-negative");
    if (params_.referenceSettings == 0)
        fatal("tuning cost: reference settings count must be positive");
    if (params_.searchFraction < 0.0 || params_.searchFraction > 1.0)
        fatal("tuning cost: searchFraction must be in [0,1]");
}

double
TuningCostModel::scale(std::size_t settings) const
{
    const double ratio = static_cast<double>(settings) /
                         static_cast<double>(params_.referenceSettings);
    // Search scales linearly with the space; the transition is fixed.
    return params_.searchFraction * ratio +
           (1.0 - params_.searchFraction);
}

Seconds
TuningCostModel::eventLatency(std::size_t settings) const
{
    return params_.latencyPerEvent * scale(settings);
}

Joules
TuningCostModel::eventEnergy(std::size_t settings) const
{
    return params_.energyPerEvent * scale(settings);
}

TuningOverhead
TuningCostModel::overhead(std::size_t events, std::size_t settings) const
{
    TuningOverhead total;
    total.events = events;
    total.latency = eventLatency(settings) * static_cast<double>(events);
    total.energy = eventEnergy(settings) * static_cast<double>(events);
    return total;
}

} // namespace mcdvfs
