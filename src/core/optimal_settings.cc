#include "core/optimal_settings.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mcdvfs
{

OptimalSettingsFinder::OptimalSettingsFinder(
    const InefficiencyAnalysis &analysis, double noise_threshold)
    : analysis_(analysis), noiseThreshold_(noise_threshold)
{
    if (noise_threshold < 0.0)
        fatal("optimal settings: noise threshold must be >= 0");
}

std::vector<std::size_t>
OptimalSettingsFinder::feasibleSettings(std::size_t sample,
                                        double budget) const
{
    if (budget < 1.0) {
        fatal("inefficiency budget must be >= 1 (the most efficient "
              "execution has inefficiency exactly 1), got ", budget);
    }
    const std::size_t settings = analysis_.grid().settingCount();
    std::vector<std::size_t> feasible;
    feasible.reserve(settings);
    for (std::size_t k = 0; k < settings; ++k) {
        if (analysis_.sampleInefficiency(sample, k) <= budget)
            feasible.push_back(k);
    }
    // The Emin setting always has inefficiency exactly 1.
    MCDVFS_ASSERT(!feasible.empty(), "budget filter produced no settings");
    return feasible;
}

OptimalChoice
OptimalSettingsFinder::optimalForSample(std::size_t sample,
                                        double budget) const
{
    const MeasuredGrid &grid = analysis_.grid();
    const std::vector<std::size_t> feasible =
        feasibleSettings(sample, budget);

    // First pass: highest speedup among feasible settings.
    double best_speedup = 0.0;
    for (const std::size_t k : feasible) {
        best_speedup =
            std::max(best_speedup, analysis_.sampleSpeedup(sample, k));
    }

    // Second pass: among settings within the noise window of the best
    // speedup, prefer highest CPU frequency, then highest memory
    // frequency (the paper's tie-break, §V).
    const double cutoff = best_speedup * (1.0 - noiseThreshold_);
    bool have_choice = false;
    OptimalChoice choice;
    for (const std::size_t k : feasible) {
        if (analysis_.sampleSpeedup(sample, k) < cutoff)
            continue;
        const FrequencySetting candidate = grid.space().at(k);
        if (!have_choice || settingPreferred(candidate, choice.setting)) {
            have_choice = true;
            choice.settingIndex = k;
            choice.setting = candidate;
        }
    }
    MCDVFS_ASSERT(have_choice, "tie-break produced no setting");
    choice.speedup = analysis_.sampleSpeedup(sample, choice.settingIndex);
    choice.inefficiency =
        analysis_.sampleInefficiency(sample, choice.settingIndex);
    return choice;
}

std::vector<OptimalChoice>
OptimalSettingsFinder::optimalTrajectory(double budget) const
{
    const std::size_t samples = analysis_.grid().sampleCount();
    std::vector<OptimalChoice> trajectory;
    trajectory.reserve(samples);
    for (std::size_t s = 0; s < samples; ++s)
        trajectory.push_back(optimalForSample(s, budget));
    return trajectory;
}

} // namespace mcdvfs
