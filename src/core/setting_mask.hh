/**
 * @file
 * Fixed-capacity bitset over the settings space.
 *
 * The analysis layer's sets — "which settings are feasible under this
 * budget", "which settings are in this sample's performance cluster",
 * "which settings are still common to every sample of this stable
 * region" — are all subsets of one settings space, whose size is small
 * and fixed per grid (70 coarse, 496 fine).  SettingMask represents
 * such a subset as 64-bit words held inline (no allocation), so
 * membership is one shift+AND, cluster size is a popcount, and the
 * stable-region growth step — previously a sorted-vector
 * set_intersection — collapses to a handful of word-wise ANDs.  This
 * is the dense-bitmap representation kernel cpufreq/devfreq code uses
 * for frequency-table masks, applied to the paper's §V/§VI machinery.
 *
 * Capacity is a compile-time constant covering both paper spaces with
 * headroom.  Callers handling arbitrary spaces check supports() and
 * fall back to the scalar reference path (core/reference_analysis.hh)
 * beyond it.
 */

#ifndef MCDVFS_CORE_SETTING_MASK_HH
#define MCDVFS_CORE_SETTING_MASK_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/logging.hh"
#include "common/simd.hh"

namespace mcdvfs
{

/** Fixed-capacity bitset of setting indices, one bit per setting. */
class SettingMask
{
  public:
    /** Largest representable settings space (fine space is 496). */
    static constexpr std::size_t kCapacity = 512;
    /** Inline 64-bit words backing the bits. */
    static constexpr std::size_t kWords = kCapacity / 64;
    /** firstSet() result when no bit is set. */
    static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

    /** Empty mask over an empty (size-0) space. */
    SettingMask() = default;

    /**
     * Empty mask over a @c size -setting space.
     *
     * @throws FatalError when @c size exceeds kCapacity
     */
    explicit SettingMask(std::size_t size)
        : size_(size)
    {
        if (size > kCapacity) {
            fatal("SettingMask: settings space of ", size,
                  " exceeds the mask capacity of ", kCapacity);
        }
    }

    /** True when a @c settings -sized space fits in the mask. */
    static bool
    supports(std::size_t settings)
    {
        return settings <= kCapacity;
    }

    /** Number of settings in the space (bit positions in use). */
    std::size_t size() const { return size_; }

    void
    set(std::size_t idx)
    {
        MCDVFS_DEBUG_ASSERT(idx < size_, "mask index out of range");
        words_[idx >> 6] |= (std::uint64_t{1} << (idx & 63));
    }

    void
    reset(std::size_t idx)
    {
        MCDVFS_DEBUG_ASSERT(idx < size_, "mask index out of range");
        words_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    }

    bool
    test(std::size_t idx) const
    {
        MCDVFS_DEBUG_ASSERT(idx < size_, "mask index out of range");
        return (words_[idx >> 6] >> (idx & 63)) & 1;
    }

    /** Clear every bit (size is kept). */
    void
    clear()
    {
        words_.fill(0);
    }

    /** Word-wise intersection: this &= other. */
    void
    andInplace(const SettingMask &other)
    {
        for (std::size_t w = 0; w < kWords; ++w)
            words_[w] &= other.words_[w];
    }

    /**
     * Fused stable-region growth step: this &= other, reporting
     * whether any bit survived.  One pass over the words instead of
     * andInplace() + any(); the AVX2 path runs the AND 256 bits at a
     * time and folds the emptiness test into one vptest.
     */
    bool
    andInplaceAny(const SettingMask &other)
    {
#if MCDVFS_SIMD_AVX2
        if (simd::haveAvx2()) {
            static_assert(kWords % 4 == 0, "whole-register words");
            __m256i acc = _mm256_setzero_si256();
            for (std::size_t w = 0; w < kWords; w += 4) {
                const __m256i a = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(&words_[w]));
                const __m256i b = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(
                        &other.words_[w]));
                const __m256i anded = _mm256_and_si256(a, b);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(&words_[w]), anded);
                acc = _mm256_or_si256(acc, anded);
            }
            return !_mm256_testz_si256(acc, acc);
        }
#endif
        std::uint64_t survived = 0;
        for (std::size_t w = 0; w < kWords; ++w) {
            words_[w] &= other.words_[w];
            survived |= words_[w];
        }
        return survived != 0;
    }

    /** Raw backing word @c w (tests and digests). */
    std::uint64_t
    word(std::size_t w) const
    {
        MCDVFS_DEBUG_ASSERT(w < kWords, "mask word out of range");
        return words_[w];
    }

    /**
     * Overwrite backing word @c w with @c bits (vector kernels build
     * whole predicate words at once).  Bits at or above size() must be
     * zero.
     */
    void
    setWord(std::size_t w, std::uint64_t bits)
    {
        MCDVFS_DEBUG_ASSERT(w < kWords, "mask word out of range");
        MCDVFS_DEBUG_ASSERT(
            w * 64 >= size_ ? bits == 0
                            : size_ - w * 64 >= 64 ||
                                  (bits >> (size_ - w * 64)) == 0,
            "mask word bits beyond the settings space");
        words_[w] = bits;
    }

    /** Number of set bits (cluster size). */
    std::size_t
    count() const
    {
        std::size_t total = 0;
        for (const std::uint64_t word : words_)
            total += static_cast<std::size_t>(std::popcount(word));
        return total;
    }

    /** Lowest set index, or kNpos when empty. */
    std::size_t
    firstSet() const
    {
        for (std::size_t w = 0; w < kWords; ++w) {
            if (words_[w])
                return w * 64 +
                       static_cast<std::size_t>(
                           std::countr_zero(words_[w]));
        }
        return kNpos;
    }

    bool
    any() const
    {
        for (const std::uint64_t word : words_)
            if (word)
                return true;
        return false;
    }

    bool none() const { return !any(); }

    /** True when this and @c other share at least one set bit. */
    bool
    intersects(const SettingMask &other) const
    {
        for (std::size_t w = 0; w < kWords; ++w)
            if (words_[w] & other.words_[w])
                return true;
        return false;
    }

    /**
     * Set bits of this mask whose @c values entry is at least
     * @c cutoff.  Built word-wise and branchless — one compare per
     * lane folded into the word — so cutoff filtering never walks the
     * set bits one by one.  @c values must hold size() entries.
     *
     * The AVX2/NEON paths predicate 4/2 lanes per compare and movemask
     * the results into the keep word; >= maps to the ordered-quiet GE
     * predicate, which matches the scalar compare exactly (both are
     * false on NaN), so the filtered mask is bit-identical to the
     * scalar loop on any input.
     */
    SettingMask
    filterGE(const double *values, double cutoff) const
    {
#if MCDVFS_SIMD_AVX2
        if (simd::haveAvx2())
            return filterGEAvx2(values, cutoff);
#endif
#if MCDVFS_SIMD_NEON
        if (simd::haveNeon())
            return filterGENeon(values, cutoff);
#endif
        SettingMask out(size_);
        for (std::size_t w = 0; w * 64 < size_; ++w) {
            const std::size_t base = w * 64;
            const std::size_t lanes = std::min<std::size_t>(
                64, size_ - base);
            std::uint64_t keep = 0;
            for (std::size_t j = 0; j < lanes; ++j) {
                keep |= static_cast<std::uint64_t>(
                            values[base + j] >= cutoff)
                        << j;
            }
            out.words_[w] = words_[w] & keep;
        }
        return out;
    }

    bool
    operator==(const SettingMask &other) const
    {
        return size_ == other.size_ && words_ == other.words_;
    }

    bool
    operator!=(const SettingMask &other) const
    {
        return !(*this == other);
    }

    /** Forward iterator over set-bit indices, ascending. */
    class Iterator
    {
      public:
        Iterator(const SettingMask *mask, std::size_t word)
            : mask_(mask), word_(word)
        {
            if (word_ < kWords)
                bits_ = mask_->words_[word_];
            advance();
        }

        std::size_t
        operator*() const
        {
            return word_ * 64 +
                   static_cast<std::size_t>(std::countr_zero(bits_));
        }

        Iterator &
        operator++()
        {
            bits_ &= bits_ - 1;  // drop the lowest set bit
            advance();
            return *this;
        }

        bool
        operator!=(const Iterator &other) const
        {
            return word_ != other.word_ || bits_ != other.bits_;
        }

      private:
        /** Skip to the next word holding a set bit. */
        void
        advance()
        {
            while (!bits_ && word_ < kWords) {
                ++word_;
                bits_ = word_ < kWords ? mask_->words_[word_] : 0;
            }
        }

        const SettingMask *mask_;
        std::size_t word_;
        std::uint64_t bits_ = 0;
    };

    Iterator begin() const { return Iterator(this, 0); }
    Iterator end() const { return Iterator(this, kWords); }

  private:
#if MCDVFS_SIMD_AVX2
    SettingMask
    filterGEAvx2(const double *values, double cutoff) const
    {
        SettingMask out(size_);
        const __m256d vcut = _mm256_set1_pd(cutoff);
        for (std::size_t w = 0; w * 64 < size_; ++w) {
            const std::size_t base = w * 64;
            const std::size_t lanes = std::min<std::size_t>(
                64, size_ - base);
            std::uint64_t keep = 0;
            std::size_t j = 0;
            for (; j + 4 <= lanes; j += 4) {
                const __m256d v =
                    _mm256_loadu_pd(values + base + j);
                const __m256d ge =
                    _mm256_cmp_pd(v, vcut, _CMP_GE_OQ);
                keep |= static_cast<std::uint64_t>(
                            _mm256_movemask_pd(ge))
                        << j;
            }
            for (; j < lanes; ++j) {
                keep |= static_cast<std::uint64_t>(
                            values[base + j] >= cutoff)
                        << j;
            }
            out.words_[w] = words_[w] & keep;
        }
        return out;
    }
#endif

#if MCDVFS_SIMD_NEON
    SettingMask
    filterGENeon(const double *values, double cutoff) const
    {
        SettingMask out(size_);
        const float64x2_t vcut = vdupq_n_f64(cutoff);
        for (std::size_t w = 0; w * 64 < size_; ++w) {
            const std::size_t base = w * 64;
            const std::size_t lanes = std::min<std::size_t>(
                64, size_ - base);
            std::uint64_t keep = 0;
            std::size_t j = 0;
            for (; j + 2 <= lanes; j += 2) {
                const uint64x2_t ge =
                    vcgeq_f64(vld1q_f64(values + base + j), vcut);
                keep |= (vgetq_lane_u64(ge, 0) & 1) << j;
                keep |= (vgetq_lane_u64(ge, 1) & 1) << (j + 1);
            }
            for (; j < lanes; ++j) {
                keep |= static_cast<std::uint64_t>(
                            values[base + j] >= cutoff)
                        << j;
            }
            out.words_[w] = words_[w] & keep;
        }
        return out;
    }
#endif

    std::array<std::uint64_t, kWords> words_{};
    std::size_t size_ = 0;
};

} // namespace mcdvfs

#endif // MCDVFS_CORE_SETTING_MASK_HH
