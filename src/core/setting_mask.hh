/**
 * @file
 * Tiered-capacity bitset over the settings space.
 *
 * The analysis layer's sets — "which settings are feasible under this
 * budget", "which settings are in this sample's performance cluster",
 * "which settings are still common to every sample of this stable
 * region" — are all subsets of one settings space, whose size is small
 * and fixed per grid (70 coarse, 496 fine, 560 with the GPU domain).
 * SettingMask represents such a subset as 64-bit words, so membership
 * is one shift+AND, cluster size is a popcount, and the stable-region
 * growth step — previously a sorted-vector set_intersection —
 * collapses to a handful of word-wise ANDs.  This is the dense-bitmap
 * representation kernel cpufreq/devfreq code uses for frequency-table
 * masks, applied to the paper's §V/§VI machinery.
 *
 * Storage is tiered: spaces up to kCapacity (512) live in an inline
 * word array with exactly kWords words — no allocation, and every loop
 * runs the same trip count it always has, which is what keeps the
 * 1-2-word fast path bit-identical to the fixed-capacity mask
 * (core_simd_golden_test pins this).  Larger spaces (a 3-domain
 * CPU x mem x GPU cross product) spill to a heap word vector sized to
 * the space, rounded up to a whole number of 256-bit registers so the
 * AVX2 kernels never need a scalar tail.  supports() now only excludes
 * absurd sizes (kMaxCapacity); callers handling arbitrary spaces still
 * check it and fall back to the scalar reference path
 * (core/reference_analysis.hh) beyond it.
 */

#ifndef MCDVFS_CORE_SETTING_MASK_HH
#define MCDVFS_CORE_SETTING_MASK_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/simd.hh"

namespace mcdvfs
{

/** Tiered-capacity bitset of setting indices, one bit per setting. */
class SettingMask
{
  public:
    /** Largest space the inline (no-allocation) tier holds. */
    static constexpr std::size_t kCapacity = 512;
    /** Inline 64-bit words backing the bits of the inline tier. */
    static constexpr std::size_t kWords = kCapacity / 64;
    /** Largest representable settings space across both tiers. */
    static constexpr std::size_t kMaxCapacity = std::size_t{1} << 20;
    /** firstSet() result when no bit is set. */
    static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

    /** Empty mask over an empty (size-0) space. */
    SettingMask() = default;

    /**
     * Empty mask over a @c size -setting space.
     *
     * @throws FatalError when @c size exceeds kMaxCapacity
     */
    explicit SettingMask(std::size_t size)
        : size_(size)
    {
        if (size > kMaxCapacity) {
            fatal("SettingMask: settings space of ", size,
                  " exceeds the mask capacity of ", kMaxCapacity);
        }
        if (size > kCapacity)
            heap_.assign(heapWords(size), 0);
    }

    /** True when a @c settings -sized space fits in the mask. */
    static bool
    supports(std::size_t settings)
    {
        return settings <= kMaxCapacity;
    }

    /** Number of settings in the space (bit positions in use). */
    std::size_t size() const { return size_; }

    /**
     * Backing words in use: always kWords for the inline tier (so the
     * small-space loops keep their historical trip count), the
     * rounded-up heap size beyond it.  Trailing words past size() are
     * zero in both tiers.
     */
    std::size_t
    wordCount() const
    {
        return heap_.empty() ? kWords : heap_.size();
    }

    void
    set(std::size_t idx)
    {
        MCDVFS_DEBUG_ASSERT(idx < size_, "mask index out of range");
        words()[idx >> 6] |= (std::uint64_t{1} << (idx & 63));
    }

    void
    reset(std::size_t idx)
    {
        MCDVFS_DEBUG_ASSERT(idx < size_, "mask index out of range");
        words()[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    }

    bool
    test(std::size_t idx) const
    {
        MCDVFS_DEBUG_ASSERT(idx < size_, "mask index out of range");
        return (words()[idx >> 6] >> (idx & 63)) & 1;
    }

    /** Clear every bit (size is kept). */
    void
    clear()
    {
        if (heap_.empty())
            inline_.fill(0);
        else
            std::fill(heap_.begin(), heap_.end(), 0);
    }

    /** Word-wise intersection: this &= other. */
    void
    andInplace(const SettingMask &other)
    {
        MCDVFS_DEBUG_ASSERT(size_ == other.size_,
                            "mask spaces differ");
        std::uint64_t *w = words();
        const std::uint64_t *o = other.words();
        const std::size_t n = wordCount();
        for (std::size_t i = 0; i < n; ++i)
            w[i] &= o[i];
    }

    /**
     * Fused stable-region growth step: this &= other, reporting
     * whether any bit survived.  One pass over the words instead of
     * andInplace() + any(); the AVX2 path runs the AND 256 bits at a
     * time and folds the emptiness test into one vptest.
     */
    bool
    andInplaceAny(const SettingMask &other)
    {
        MCDVFS_DEBUG_ASSERT(size_ == other.size_,
                            "mask spaces differ");
        std::uint64_t *w = words();
        const std::uint64_t *o = other.words();
        const std::size_t n = wordCount();
#if MCDVFS_SIMD_AVX2
        if (simd::haveAvx2()) {
            // Both tiers hold whole 256-bit registers: the inline
            // array by the static_assert, the heap tier by
            // heapWords() rounding up.
            static_assert(kWords % 4 == 0, "whole-register words");
            __m256i acc = _mm256_setzero_si256();
            for (std::size_t i = 0; i < n; i += 4) {
                const __m256i a = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(&w[i]));
                const __m256i b = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(&o[i]));
                const __m256i anded = _mm256_and_si256(a, b);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(&w[i]), anded);
                acc = _mm256_or_si256(acc, anded);
            }
            return !_mm256_testz_si256(acc, acc);
        }
#endif
        std::uint64_t survived = 0;
        for (std::size_t i = 0; i < n; ++i) {
            w[i] &= o[i];
            survived |= w[i];
        }
        return survived != 0;
    }

    /** Raw backing word @c w (tests and digests). */
    std::uint64_t
    word(std::size_t w) const
    {
        MCDVFS_DEBUG_ASSERT(w < wordCount(), "mask word out of range");
        return words()[w];
    }

    /**
     * Overwrite backing word @c w with @c bits (vector kernels build
     * whole predicate words at once).  Bits at or above size() must be
     * zero.
     */
    void
    setWord(std::size_t w, std::uint64_t bits)
    {
        MCDVFS_DEBUG_ASSERT(w < wordCount(), "mask word out of range");
        MCDVFS_DEBUG_ASSERT(
            w * 64 >= size_ ? bits == 0
                            : size_ - w * 64 >= 64 ||
                                  (bits >> (size_ - w * 64)) == 0,
            "mask word bits beyond the settings space");
        words()[w] = bits;
    }

    /** Number of set bits (cluster size). */
    std::size_t
    count() const
    {
        const std::uint64_t *w = words();
        const std::size_t n = wordCount();
        std::size_t total = 0;
        for (std::size_t i = 0; i < n; ++i)
            total += static_cast<std::size_t>(std::popcount(w[i]));
        return total;
    }

    /** Lowest set index, or kNpos when empty. */
    std::size_t
    firstSet() const
    {
        const std::uint64_t *w = words();
        const std::size_t n = wordCount();
        for (std::size_t i = 0; i < n; ++i) {
            if (w[i])
                return i * 64 +
                       static_cast<std::size_t>(
                           std::countr_zero(w[i]));
        }
        return kNpos;
    }

    bool
    any() const
    {
        const std::uint64_t *w = words();
        const std::size_t n = wordCount();
        for (std::size_t i = 0; i < n; ++i)
            if (w[i])
                return true;
        return false;
    }

    bool none() const { return !any(); }

    /** True when this and @c other share at least one set bit. */
    bool
    intersects(const SettingMask &other) const
    {
        MCDVFS_DEBUG_ASSERT(size_ == other.size_,
                            "mask spaces differ");
        const std::uint64_t *w = words();
        const std::uint64_t *o = other.words();
        const std::size_t n = wordCount();
        for (std::size_t i = 0; i < n; ++i)
            if (w[i] & o[i])
                return true;
        return false;
    }

    /**
     * Set bits of this mask whose @c values entry is at least
     * @c cutoff.  Built word-wise and branchless — one compare per
     * lane folded into the word — so cutoff filtering never walks the
     * set bits one by one.  @c values must hold size() entries.
     *
     * The AVX2/NEON paths predicate 4/2 lanes per compare and movemask
     * the results into the keep word; >= maps to the ordered-quiet GE
     * predicate, which matches the scalar compare exactly (both are
     * false on NaN), so the filtered mask is bit-identical to the
     * scalar loop on any input.
     */
    SettingMask
    filterGE(const double *values, double cutoff) const
    {
#if MCDVFS_SIMD_AVX2
        if (simd::haveAvx2())
            return filterGEAvx2(values, cutoff);
#endif
#if MCDVFS_SIMD_NEON
        if (simd::haveNeon())
            return filterGENeon(values, cutoff);
#endif
        SettingMask out(size_);
        const std::uint64_t *w = words();
        std::uint64_t *ow = out.words();
        for (std::size_t i = 0; i * 64 < size_; ++i) {
            const std::size_t base = i * 64;
            const std::size_t lanes = std::min<std::size_t>(
                64, size_ - base);
            std::uint64_t keep = 0;
            for (std::size_t j = 0; j < lanes; ++j) {
                keep |= static_cast<std::uint64_t>(
                            values[base + j] >= cutoff)
                        << j;
            }
            ow[i] = w[i] & keep;
        }
        return out;
    }

    bool
    operator==(const SettingMask &other) const
    {
        if (size_ != other.size_)
            return false;
        const std::uint64_t *w = words();
        const std::uint64_t *o = other.words();
        return std::equal(w, w + wordCount(), o);
    }

    bool
    operator!=(const SettingMask &other) const
    {
        return !(*this == other);
    }

    /** Forward iterator over set-bit indices, ascending. */
    class Iterator
    {
      public:
        Iterator(const SettingMask *mask, std::size_t word)
            : mask_(mask), word_(word)
        {
            if (word_ < mask_->wordCount())
                bits_ = mask_->words()[word_];
            advance();
        }

        std::size_t
        operator*() const
        {
            return word_ * 64 +
                   static_cast<std::size_t>(std::countr_zero(bits_));
        }

        Iterator &
        operator++()
        {
            bits_ &= bits_ - 1;  // drop the lowest set bit
            advance();
            return *this;
        }

        bool
        operator!=(const Iterator &other) const
        {
            return word_ != other.word_ || bits_ != other.bits_;
        }

      private:
        /** Skip to the next word holding a set bit. */
        void
        advance()
        {
            const std::size_t n = mask_->wordCount();
            while (!bits_ && word_ < n) {
                ++word_;
                bits_ = word_ < n ? mask_->words()[word_] : 0;
            }
        }

        const SettingMask *mask_;
        std::size_t word_;
        std::uint64_t bits_ = 0;
    };

    Iterator begin() const { return Iterator(this, 0); }
    Iterator end() const { return Iterator(this, wordCount()); }

  private:
    /** Heap tier word count: whole 256-bit registers over the space. */
    static std::size_t
    heapWords(std::size_t size)
    {
        const std::size_t raw = (size + 63) / 64;
        return (raw + 3) & ~std::size_t{3};
    }

    const std::uint64_t *
    words() const
    {
        return heap_.empty() ? inline_.data() : heap_.data();
    }

    std::uint64_t *
    words()
    {
        return heap_.empty() ? inline_.data() : heap_.data();
    }

#if MCDVFS_SIMD_AVX2
    SettingMask
    filterGEAvx2(const double *values, double cutoff) const
    {
        SettingMask out(size_);
        const std::uint64_t *w = words();
        std::uint64_t *ow = out.words();
        const __m256d vcut = _mm256_set1_pd(cutoff);
        for (std::size_t i = 0; i * 64 < size_; ++i) {
            const std::size_t base = i * 64;
            const std::size_t lanes = std::min<std::size_t>(
                64, size_ - base);
            std::uint64_t keep = 0;
            std::size_t j = 0;
            for (; j + 4 <= lanes; j += 4) {
                const __m256d v =
                    _mm256_loadu_pd(values + base + j);
                const __m256d ge =
                    _mm256_cmp_pd(v, vcut, _CMP_GE_OQ);
                keep |= static_cast<std::uint64_t>(
                            _mm256_movemask_pd(ge))
                        << j;
            }
            for (; j < lanes; ++j) {
                keep |= static_cast<std::uint64_t>(
                            values[base + j] >= cutoff)
                        << j;
            }
            ow[i] = w[i] & keep;
        }
        return out;
    }
#endif

#if MCDVFS_SIMD_NEON
    SettingMask
    filterGENeon(const double *values, double cutoff) const
    {
        SettingMask out(size_);
        const std::uint64_t *w = words();
        std::uint64_t *ow = out.words();
        const float64x2_t vcut = vdupq_n_f64(cutoff);
        for (std::size_t i = 0; i * 64 < size_; ++i) {
            const std::size_t base = i * 64;
            const std::size_t lanes = std::min<std::size_t>(
                64, size_ - base);
            std::uint64_t keep = 0;
            std::size_t j = 0;
            for (; j + 2 <= lanes; j += 2) {
                const uint64x2_t ge =
                    vcgeq_f64(vld1q_f64(values + base + j), vcut);
                keep |= (vgetq_lane_u64(ge, 0) & 1) << j;
                keep |= (vgetq_lane_u64(ge, 1) & 1) << (j + 1);
            }
            for (; j < lanes; ++j) {
                keep |= static_cast<std::uint64_t>(
                            values[base + j] >= cutoff)
                        << j;
            }
            ow[i] = w[i] & keep;
        }
        return out;
    }
#endif

    /** Inline tier (size_ <= kCapacity): fixed kWords words. */
    std::array<std::uint64_t, kWords> inline_{};
    /** Heap tier (size_ > kCapacity): heapWords(size_) words. */
    std::vector<std::uint64_t> heap_;
    std::size_t size_ = 0;
};

} // namespace mcdvfs

#endif // MCDVFS_CORE_SETTING_MASK_HH
