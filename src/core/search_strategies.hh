/**
 * @file
 * Search strategies for the per-sample optimal-settings problem.
 *
 * §VI-C prices the tuning event partly by its search, and §VI-B
 * observes that "algorithms can reduce the overhead of optimal
 * settings search by starting search from the settings selected for
 * the previous interval as application phases are often stable".
 * This module implements three searches for the *energy-constrained*
 * problem (maximize speedup s.t. I <= budget) so the claim can be
 * measured on the problem the paper actually poses:
 *
 *  - brute force: evaluate every setting (the reference);
 *  - steepest ascent from the minimum setting: hill-climb in the
 *    2-D frequency lattice;
 *  - warm-started ascent: the same climber started from the previous
 *    sample's answer.
 *
 * Each search counts candidate evaluations, the currency of §VI-C's
 * 500 µs event cost.
 */

#ifndef MCDVFS_CORE_SEARCH_STRATEGIES_HH
#define MCDVFS_CORE_SEARCH_STRATEGIES_HH

#include <vector>

#include "core/optimal_settings.hh"

namespace mcdvfs
{

/** Outcome of one search over one sample. */
struct SearchOutcome
{
    std::size_t settingIndex = 0;
    double speedup = 0.0;
    /** Candidate settings whose (time, energy) were evaluated. */
    std::size_t evaluations = 0;
};

/** Aggregate over a whole trajectory. */
struct SearchTrajectory
{
    std::vector<SearchOutcome> perSample;
    std::size_t totalEvaluations = 0;
    /** Mean speedup shortfall vs brute force, in percent. */
    double optimalityGapPct = 0.0;
};

/** Lattice searches for the budget-constrained optimum. */
class SettingsSearch
{
  public:
    /** @param analysis inefficiency tables (must outlive this) */
    explicit SettingsSearch(const InefficiencyAnalysis &analysis);

    /** Reference: evaluate all settings (the §V algorithm). */
    SearchOutcome bruteForce(std::size_t sample, double budget) const;

    /**
     * Greedy hill climb from @c start: repeatedly move to the
     * feasible lattice neighbour (one step in either domain, up or
     * down) with the best speedup; stop at a local optimum.
     */
    SearchOutcome hillClimb(std::size_t sample, double budget,
                            std::size_t start) const;

    /** Full trajectories, counting evaluations per §VI-C. */
    SearchTrajectory runBruteForce(double budget) const;
    SearchTrajectory runColdClimb(double budget) const;  ///< from min
    SearchTrajectory runWarmClimb(double budget) const;  ///< warm start

  private:
    /** Speedup if feasible, -1 otherwise; counts the evaluation. */
    double evaluate(std::size_t sample, std::size_t setting,
                    double budget, std::size_t &evaluations) const;

    /** Fill the gap statistics of @c trajectory vs brute force. */
    void finalize(SearchTrajectory &trajectory, double budget) const;

    const InefficiencyAnalysis &analysis_;
};

} // namespace mcdvfs

#endif // MCDVFS_CORE_SEARCH_STRATEGIES_HH
