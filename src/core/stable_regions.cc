#include "core/stable_regions.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/reference_analysis.hh"

namespace mcdvfs
{

namespace
{

/**
 * Preferred setting among a mask's members: highest CPU frequency
 * first, then highest memory frequency (§VI-B choice rule).
 */
std::size_t
chooseFromMask(const SettingsSpace &space, const SettingMask &available)
{
    MCDVFS_ASSERT(available.any(), "region with no settings");
    std::size_t best = available.firstSet();
    for (const std::size_t k : available) {
        if (settingPreferred(space.at(k), space.at(best)))
            best = k;
    }
    return best;
}

/** Close a region: materialize its common set and pick its setting. */
void
closeRegion(const SettingsSpace &space, StableRegion &region,
            std::size_t last, const SettingMask &available)
{
    region.last = last;
    region.availableSettings.clear();
    region.availableSettings.reserve(available.count());
    for (const std::size_t k : available)
        region.availableSettings.push_back(k);
    region.chosenSettingIndex = chooseFromMask(space, available);
    region.chosenSetting = space.at(region.chosenSettingIndex);
}

} // namespace

StableRegionFinder::StableRegionFinder(const ClusterFinder &clusters)
    : clusters_(clusters)
{
}

std::vector<StableRegion>
StableRegionFinder::find(double budget, double threshold,
                         exec::ThreadPool *pool) const
{
    const std::size_t settings =
        clusters_.finder().analysis().grid().settingCount();
    if (!SettingMask::supports(settings)) {
        return referenceStableRegions(
            clusters_.finder().analysis().grid().space(),
            referenceClusters(clusters_.finder(), budget, threshold));
    }
    return fromTable(clusters_.table(budget, threshold, pool));
}

std::vector<StableRegion>
StableRegionFinder::fromTable(const ClusterTable &table) const
{
    MCDVFS_ASSERT(table.sampleCount() > 0, "no clusters to regionize");
    const SettingsSpace &space =
        clusters_.finder().analysis().grid().space();

    std::vector<StableRegion> regions;
    StableRegion current;
    current.first = 0;
    SettingMask available = table.masks.front();

    for (std::size_t s = 1; s < table.sampleCount(); ++s) {
        SettingMask next = available;
        next.andInplace(table.masks[s]);
        if (next.none()) {
            // Close the region at the previous sample.
            closeRegion(space, current, s - 1, available);
            regions.push_back(std::move(current));
            current = StableRegion{};
            current.first = s;
            available = table.masks[s];
        } else {
            available = next;
        }
    }
    closeRegion(space, current, table.sampleCount() - 1, available);
    regions.push_back(std::move(current));
    return regions;
}

std::vector<StableRegion>
StableRegionFinder::fromClusters(
    const std::vector<PerformanceCluster> &clusters) const
{
    MCDVFS_ASSERT(!clusters.empty(), "no clusters to regionize");
    const SettingsSpace &space =
        clusters_.finder().analysis().grid().space();
    if (!SettingMask::supports(space.size()))
        return referenceStableRegions(space, clusters);

    ClusterTable table;
    table.optimal.reserve(clusters.size());
    table.masks.reserve(clusters.size());
    for (const PerformanceCluster &cluster : clusters) {
        SettingMask mask(space.size());
        for (const std::size_t k : cluster.settings)
            mask.set(k);
        table.optimal.push_back(cluster.optimal);
        table.masks.push_back(mask);
    }
    return fromTable(table);
}

} // namespace mcdvfs
