#include "core/stable_regions.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/reference_analysis.hh"

namespace mcdvfs
{

namespace
{

/**
 * Preferred setting among a mask's members: highest CPU frequency
 * first, then highest memory frequency (§VI-B choice rule).
 */
std::size_t
chooseFromMask(const SettingsSpace &space, const SettingMask &available)
{
    MCDVFS_ASSERT(available.any(), "region with no settings");
    std::size_t best = available.firstSet();
    for (const std::size_t k : available) {
        if (settingPreferred(space.at(k), space.at(best)))
            best = k;
    }
    return best;
}

/** Close a region: materialize its common set and pick its setting. */
void
closeRegion(const SettingsSpace &space, StableRegion &region,
            std::size_t last, const SettingMask &available)
{
    region.last = last;
    region.availableSettings.clear();
    region.availableSettings.reserve(available.count());
    for (const std::size_t k : available)
        region.availableSettings.push_back(k);
    region.chosenSettingIndex = chooseFromMask(space, available);
    region.chosenSetting = space.at(region.chosenSettingIndex);
}

} // namespace

void
StableRegionBuilder::feed(const SettingsSpace &space,
                          const SettingMask &mask)
{
    if (fed_ == 0) {
        current_ = StableRegion{};
        current_.first = 0;
        available_ = mask;
        fed_ = 1;
        return;
    }
    SettingMask next = available_;
    if (!next.andInplaceAny(mask)) {
        // Close the region at the previous sample.
        closeRegion(space, current_, fed_ - 1, available_);
        closed_.push_back(std::move(current_));
        current_ = StableRegion{};
        current_.first = fed_;
        available_ = mask;
    } else {
        available_ = next;
    }
    ++fed_;
}

std::vector<StableRegion>
StableRegionBuilder::regions(const SettingsSpace &space) const
{
    MCDVFS_ASSERT(fed_ > 0, "no clusters to regionize");
    std::vector<StableRegion> out;
    out.reserve(closed_.size() + 1);
    out = closed_;
    StableRegion last = current_;
    closeRegion(space, last, fed_ - 1, available_);
    out.push_back(std::move(last));
    return out;
}

StableRegionFinder::StableRegionFinder(const ClusterFinder &clusters)
    : clusters_(clusters)
{
}

std::vector<StableRegion>
StableRegionFinder::find(double budget, double threshold,
                         exec::ThreadPool *pool) const
{
    const std::size_t settings =
        clusters_.finder().analysis().grid().settingCount();
    if (!SettingMask::supports(settings)) {
        return referenceStableRegions(
            clusters_.finder().analysis().grid().space(),
            referenceClusters(clusters_.finder(), budget, threshold));
    }
    return fromTable(clusters_.table(budget, threshold, pool));
}

std::vector<StableRegion>
StableRegionFinder::fromTable(const ClusterTable &table) const
{
    MCDVFS_ASSERT(table.sampleCount() > 0, "no clusters to regionize");
    const SettingsSpace &space =
        clusters_.finder().analysis().grid().space();

    // One feed loop over the resumable builder — the exact code path
    // incremental checkpoints extend, so the two can never diverge.
    StableRegionBuilder builder;
    for (std::size_t s = 0; s < table.sampleCount(); ++s)
        builder.feed(space, table.masks[s]);
    return builder.regions(space);
}

std::vector<StableRegion>
StableRegionFinder::fromClusters(
    const std::vector<PerformanceCluster> &clusters) const
{
    MCDVFS_ASSERT(!clusters.empty(), "no clusters to regionize");
    const SettingsSpace &space =
        clusters_.finder().analysis().grid().space();
    if (!SettingMask::supports(space.size()))
        return referenceStableRegions(space, clusters);

    ClusterTable table;
    table.optimal.reserve(clusters.size());
    table.masks.reserve(clusters.size());
    for (const PerformanceCluster &cluster : clusters) {
        SettingMask mask(space.size());
        for (const std::size_t k : cluster.settings)
            mask.set(k);
        table.optimal.push_back(cluster.optimal);
        table.masks.push_back(mask);
    }
    return fromTable(table);
}

} // namespace mcdvfs
