#include "core/stable_regions.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mcdvfs
{

namespace
{

/** Intersection of a sorted available set with a cluster's settings. */
std::vector<std::size_t>
intersect(const std::vector<std::size_t> &available,
          const std::vector<std::size_t> &cluster)
{
    std::vector<std::size_t> out;
    out.reserve(std::min(available.size(), cluster.size()));
    std::set_intersection(available.begin(), available.end(),
                          cluster.begin(), cluster.end(),
                          std::back_inserter(out));
    return out;
}

} // namespace

StableRegionFinder::StableRegionFinder(const ClusterFinder &clusters)
    : clusters_(clusters)
{
}

std::vector<StableRegion>
StableRegionFinder::find(double budget, double threshold) const
{
    return fromClusters(clusters_.clusters(budget, threshold));
}

std::vector<StableRegion>
StableRegionFinder::fromClusters(
    const std::vector<PerformanceCluster> &clusters) const
{
    MCDVFS_ASSERT(!clusters.empty(), "no clusters to regionize");
    const SettingsSpace &space =
        clusters_.finder().analysis().grid().space();

    auto sorted_settings = [](const PerformanceCluster &cluster) {
        std::vector<std::size_t> s = cluster.settings;
        std::sort(s.begin(), s.end());
        return s;
    };

    auto choose = [&space](const std::vector<std::size_t> &available) {
        MCDVFS_ASSERT(!available.empty(), "region with no settings");
        std::size_t best = available.front();
        for (const std::size_t k : available) {
            if (settingPreferred(space.at(k), space.at(best)))
                best = k;
        }
        return best;
    };

    std::vector<StableRegion> regions;
    StableRegion current;
    current.first = 0;
    current.availableSettings = sorted_settings(clusters.front());

    for (std::size_t s = 1; s < clusters.size(); ++s) {
        std::vector<std::size_t> next =
            intersect(current.availableSettings, sorted_settings(clusters[s]));
        if (next.empty()) {
            // Close the region at the previous sample.
            current.last = s - 1;
            current.chosenSettingIndex = choose(current.availableSettings);
            current.chosenSetting = space.at(current.chosenSettingIndex);
            regions.push_back(std::move(current));
            current = StableRegion{};
            current.first = s;
            current.availableSettings = sorted_settings(clusters[s]);
        } else {
            current.availableSettings = std::move(next);
        }
    }
    current.last = clusters.size() - 1;
    current.chosenSettingIndex = choose(current.availableSettings);
    current.chosenSetting = space.at(current.chosenSettingIndex);
    regions.push_back(std::move(current));
    return regions;
}

} // namespace mcdvfs
