/**
 * @file
 * Scalar reference implementations of the §V/§VI analyses.
 *
 * These are the pre-bitset analysis algorithms, kept verbatim as the
 * golden baseline for the mask-based kernels in
 * core/performance_clusters.hh and core/stable_regions.hh — the same
 * kernel-vs-reference pattern sim/reference_kernel.hh uses for grid
 * evaluation.  The golden tests
 * (tests/core_analysis_kernel_golden_test.cc) assert exact equality of
 * every cluster, stable region and step-sensitivity table between the
 * two paths; any change to the bitset kernels must keep them in
 * lockstep or the tier-1 suite fails.
 *
 * The reference path is also the fallback for settings spaces larger
 * than SettingMask::kCapacity.
 */

#ifndef MCDVFS_CORE_REFERENCE_ANALYSIS_HH
#define MCDVFS_CORE_REFERENCE_ANALYSIS_HH

#include <vector>

#include "core/stable_regions.hh"
#include "core/step_sensitivity.hh"

namespace mcdvfs
{

/**
 * Scalar §VI-A cluster of one sample: budget filter via
 * OptimalSettingsFinder::feasibleSettings, then one speedup compare
 * per feasible setting.
 */
PerformanceCluster referenceClusterForSample(
    const OptimalSettingsFinder &finder, std::size_t sample,
    double budget, double threshold);

/** Scalar clusters for every sample in order. */
std::vector<PerformanceCluster> referenceClusters(
    const OptimalSettingsFinder &finder, double budget, double threshold);

/**
 * Scalar §VI-B stable regions: greedy growth by sorted-vector
 * set_intersection of consecutive clusters.
 */
std::vector<StableRegion> referenceStableRegions(
    const SettingsSpace &space,
    const std::vector<PerformanceCluster> &clusters);

/**
 * Scalar §VI-D characterization of one settings space (the
 * step-sensitivity table row): per-sample clusters, regions grown by
 * set_intersection, transitions of the cluster policy, and the
 * optimal-tracking time.
 */
SpaceCharacterization referenceCharacterizeSpace(const MeasuredGrid &grid,
                                                 double budget,
                                                 double threshold);

} // namespace mcdvfs

#endif // MCDVFS_CORE_REFERENCE_ANALYSIS_HH
