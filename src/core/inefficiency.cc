#include "core/inefficiency.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mcdvfs
{

InefficiencyAnalysis::InefficiencyAnalysis(const MeasuredGrid &grid)
    : grid_(grid)
{
    const std::size_t samples = grid.sampleCount();
    sampleEmin_.resize(samples);
    sampleSlowest_.resize(samples);
    for (std::size_t s = 0; s < samples; ++s) {
        sampleEmin_[s] = grid.sampleEmin(s);
        sampleSlowest_[s] = grid.sampleSlowest(s);
        MCDVFS_ASSERT(sampleEmin_[s] > 0.0,
                      "sample energy must be positive");
    }
}

void
InefficiencyAnalysis::ensureRunAggregates() const
{
    std::call_once(runAggregatesOnce_, [this] {
        const std::size_t settings = grid_.settingCount();
        runEnergy_.resize(settings);
        runTime_.resize(settings);
        for (std::size_t k = 0; k < settings; ++k) {
            runEnergy_[k] = grid_.totalEnergy(k);
            runTime_[k] = grid_.totalTime(k);
        }
        eminTotal_ = *std::min_element(runEnergy_.begin(),
                                       runEnergy_.end());
        slowestTotal_ = *std::max_element(runTime_.begin(),
                                          runTime_.end());
    });
}

double
InefficiencyAnalysis::sampleInefficiency(std::size_t sample,
                                         std::size_t setting) const
{
    return grid_.energyAt(sample, setting) / sampleEmin_[sample];
}

double
InefficiencyAnalysis::sampleSpeedup(std::size_t sample,
                                    std::size_t setting) const
{
    return sampleSlowest_[sample] / grid_.secondsAt(sample, setting);
}

Joules
InefficiencyAnalysis::sampleEmin(std::size_t sample) const
{
    MCDVFS_ASSERT(sample < sampleEmin_.size(), "sample out of range");
    return sampleEmin_[sample];
}

Seconds
InefficiencyAnalysis::sampleSlowest(std::size_t sample) const
{
    MCDVFS_ASSERT(sample < sampleSlowest_.size(), "sample out of range");
    return sampleSlowest_[sample];
}

double
InefficiencyAnalysis::runInefficiency(std::size_t setting) const
{
    ensureRunAggregates();
    MCDVFS_ASSERT(setting < runEnergy_.size(), "setting out of range");
    return runEnergy_[setting] / eminTotal_;
}

double
InefficiencyAnalysis::runSpeedup(std::size_t setting) const
{
    ensureRunAggregates();
    MCDVFS_ASSERT(setting < runTime_.size(), "setting out of range");
    return slowestTotal_ / runTime_[setting];
}

Joules
InefficiencyAnalysis::eminTotal() const
{
    ensureRunAggregates();
    return eminTotal_;
}

double
InefficiencyAnalysis::maxRunInefficiency() const
{
    ensureRunAggregates();
    double imax = 0.0;
    for (std::size_t k = 0; k < runEnergy_.size(); ++k)
        imax = std::max(imax, runInefficiency(k));
    return imax;
}

} // namespace mcdvfs
