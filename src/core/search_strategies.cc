#include "core/search_strategies.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mcdvfs
{

SettingsSearch::SettingsSearch(const InefficiencyAnalysis &analysis)
    : analysis_(analysis)
{
}

double
SettingsSearch::evaluate(std::size_t sample, std::size_t setting,
                         double budget, std::size_t &evaluations) const
{
    ++evaluations;
    if (analysis_.sampleInefficiency(sample, setting) > budget)
        return -1.0;
    return analysis_.sampleSpeedup(sample, setting);
}

SearchOutcome
SettingsSearch::bruteForce(std::size_t sample, double budget) const
{
    const MeasuredGrid &grid = analysis_.grid();
    SearchOutcome outcome;
    double best = -1.0;
    for (std::size_t k = 0; k < grid.settingCount(); ++k) {
        const double speedup =
            evaluate(sample, k, budget, outcome.evaluations);
        if (speedup > best) {
            best = speedup;
            outcome.settingIndex = k;
        }
    }
    MCDVFS_ASSERT(best >= 0.0, "no feasible setting at budget");
    outcome.speedup = best;
    return outcome;
}

SearchOutcome
SettingsSearch::hillClimb(std::size_t sample, double budget,
                          std::size_t start) const
{
    const MeasuredGrid &grid = analysis_.grid();
    const std::size_t mem_steps = grid.space().memLadder().size();
    const std::size_t cpu_steps = grid.space().cpuLadder().size();

    SearchOutcome outcome;
    // A real tuner caches what it already computed this interval:
    // each setting is evaluated (and charged) at most once per climb.
    std::vector<double> memo(grid.settingCount(), -2.0);
    auto cached = [&](std::size_t k) {
        if (memo[k] < -1.5)
            memo[k] = evaluate(sample, k, budget, outcome.evaluations);
        return memo[k];
    };

    std::size_t here = start;
    double here_speedup = cached(here);
    if (here_speedup < 0.0) {
        // Infeasible start: fall back to the guaranteed-feasible
        // minimum-energy direction by restarting at the Emin setting
        // (found with a linear scan over energies — each a lookup the
        // tuner already has, charged as evaluations).
        double best_energy = 1e300;
        std::size_t emin = 0;
        for (std::size_t k = 0; k < grid.settingCount(); ++k) {
            ++outcome.evaluations;
            const double energy = grid.cell(sample, k).energy();
            if (energy < best_energy) {
                best_energy = energy;
                emin = k;
            }
        }
        here = emin;
        here_speedup = cached(here);
        MCDVFS_ASSERT(here_speedup >= 0.0, "Emin must be feasible");
    }

    for (;;) {
        const std::size_t cpu = here / mem_steps;
        const std::size_t mem = here % mem_steps;
        std::size_t best_neighbour = here;
        double best_speedup = here_speedup;

        auto consider = [&](std::size_t candidate) {
            const double speedup = cached(candidate);
            if (speedup > best_speedup) {
                best_speedup = speedup;
                best_neighbour = candidate;
            }
        };
        if (cpu + 1 < cpu_steps)
            consider(here + mem_steps);
        if (cpu > 0)
            consider(here - mem_steps);
        if (mem + 1 < mem_steps)
            consider(here + 1);
        if (mem > 0)
            consider(here - 1);

        if (best_neighbour == here)
            break;
        here = best_neighbour;
        here_speedup = best_speedup;
    }
    outcome.settingIndex = here;
    outcome.speedup = here_speedup;
    return outcome;
}

void
SettingsSearch::finalize(SearchTrajectory &trajectory,
                         double budget) const
{
    const std::size_t samples = analysis_.grid().sampleCount();
    double gap = 0.0;
    for (std::size_t s = 0; s < samples; ++s) {
        std::size_t ignored = 0;
        double best = -1.0;
        for (std::size_t k = 0; k < analysis_.grid().settingCount();
             ++k) {
            best = std::max(best, evaluate(s, k, budget, ignored));
        }
        gap += (best - trajectory.perSample[s].speedup) / best;
        trajectory.totalEvaluations +=
            trajectory.perSample[s].evaluations;
    }
    trajectory.optimalityGapPct =
        gap / static_cast<double>(samples) * 100.0;
}

SearchTrajectory
SettingsSearch::runBruteForce(double budget) const
{
    SearchTrajectory trajectory;
    const std::size_t samples = analysis_.grid().sampleCount();
    trajectory.perSample.reserve(samples);
    for (std::size_t s = 0; s < samples; ++s)
        trajectory.perSample.push_back(bruteForce(s, budget));
    finalize(trajectory, budget);
    return trajectory;
}

SearchTrajectory
SettingsSearch::runColdClimb(double budget) const
{
    const MeasuredGrid &grid = analysis_.grid();
    const std::size_t min_idx =
        grid.space().indexOf(grid.space().minSetting());
    SearchTrajectory trajectory;
    trajectory.perSample.reserve(grid.sampleCount());
    for (std::size_t s = 0; s < grid.sampleCount(); ++s)
        trajectory.perSample.push_back(hillClimb(s, budget, min_idx));
    finalize(trajectory, budget);
    return trajectory;
}

SearchTrajectory
SettingsSearch::runWarmClimb(double budget) const
{
    const MeasuredGrid &grid = analysis_.grid();
    const std::size_t min_idx =
        grid.space().indexOf(grid.space().minSetting());
    SearchTrajectory trajectory;
    trajectory.perSample.reserve(grid.sampleCount());
    std::size_t start = min_idx;
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        trajectory.perSample.push_back(hillClimb(s, budget, start));
        start = trajectory.perSample.back().settingIndex;
    }
    finalize(trajectory, budget);
    return trajectory;
}

} // namespace mcdvfs
