#include "core/tradeoff.hh"

#include "common/logging.hh"

namespace mcdvfs
{

TradeoffEvaluator::TradeoffEvaluator(const StableRegionFinder &regions,
                                     const ClusterFinder &clusters,
                                     const TuningCostModel &cost_model)
    : regions_(regions), clusters_(clusters), costModel_(cost_model)
{
}

PolicyOutcome
TradeoffEvaluator::evaluateSequence(
    const std::vector<std::size_t> &setting_per_sample,
    std::size_t tuning_events) const
{
    const InefficiencyAnalysis &analysis = clusters_.finder().analysis();
    const MeasuredGrid &grid = analysis.grid();
    MCDVFS_ASSERT(setting_per_sample.size() == grid.sampleCount(),
                  "sequence length mismatch");

    PolicyOutcome outcome;
    Joules emin_sum = 0.0;
    for (std::size_t s = 0; s < setting_per_sample.size(); ++s) {
        const GridCell &cell = grid.cell(s, setting_per_sample[s]);
        outcome.time += cell.seconds;
        outcome.energy += cell.energy();
        emin_sum += analysis.sampleEmin(s);
        if (s > 0 && setting_per_sample[s] != setting_per_sample[s - 1])
            ++outcome.transitions;
    }
    outcome.tuningEvents = tuning_events;
    const TuningOverhead overhead =
        costModel_.overhead(tuning_events, grid.settingCount());
    outcome.timeWithOverhead = outcome.time + overhead.latency;
    outcome.energyWithOverhead = outcome.energy + overhead.energy;
    outcome.achievedInefficiency = outcome.energy / emin_sum;
    return outcome;
}

PolicyOutcome
TradeoffEvaluator::optimalTracking(double budget) const
{
    const OptimalSettingsFinder &finder = clusters_.finder();
    std::vector<std::size_t> sequence;
    sequence.reserve(finder.analysis().grid().sampleCount());
    for (const OptimalChoice &choice : finder.optimalTrajectory(budget))
        sequence.push_back(choice.settingIndex);
    // Optimal tracking re-tunes at the end of every sample.
    return evaluateSequence(sequence, sequence.size());
}

PolicyOutcome
TradeoffEvaluator::clusterPolicy(double budget, double threshold) const
{
    const MeasuredGrid &grid = clusters_.finder().analysis().grid();
    const std::vector<StableRegion> regions =
        regions_.find(budget, threshold);
    std::vector<std::size_t> sequence(grid.sampleCount(), 0);
    for (const StableRegion &region : regions) {
        for (std::size_t s = region.first; s <= region.last; ++s)
            sequence[s] = region.chosenSettingIndex;
    }
    // One tuning event at the start of each stable region.
    return evaluateSequence(sequence, regions.size());
}

TradeoffRow
TradeoffEvaluator::compare(double budget, double threshold) const
{
    const PolicyOutcome optimal = optimalTracking(budget);
    const PolicyOutcome cluster = clusterPolicy(budget, threshold);

    TradeoffRow row;
    row.perfPct = (optimal.time - cluster.time) / optimal.time * 100.0;
    row.energyPct =
        (cluster.energy - optimal.energy) / optimal.energy * 100.0;
    row.perfPctWithOverhead = (optimal.timeWithOverhead -
                               cluster.timeWithOverhead) /
                              optimal.timeWithOverhead * 100.0;
    row.energyPctWithOverhead = (cluster.energyWithOverhead -
                                 optimal.energyWithOverhead) /
                                optimal.energyWithOverhead * 100.0;
    return row;
}

double
TradeoffEvaluator::normalizedExecutionTime(double budget) const
{
    const Seconds at_budget = optimalTracking(budget).time;
    const Seconds at_unity = optimalTracking(1.0).time;
    return at_budget / at_unity;
}

} // namespace mcdvfs
