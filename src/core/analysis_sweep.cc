#include "core/analysis_sweep.hh"

#include <algorithm>

#include "common/logging.hh"
#include "exec/thread_pool.hh"

namespace mcdvfs
{

double
SweepResult::avgClusterSize() const
{
    MCDVFS_ASSERT(table.sampleCount() > 0, "empty sweep result");
    double total = 0.0;
    for (const SettingMask &mask : table.masks)
        total += static_cast<double>(mask.count());
    return total / static_cast<double>(table.sampleCount());
}

double
SweepResult::avgRegionLength() const
{
    MCDVFS_ASSERT(!regions.empty(), "empty sweep result");
    double total = 0.0;
    for (const StableRegion &region : regions)
        total += static_cast<double>(region.length());
    return total / static_cast<double>(regions.size());
}

AnalysisSweep::AnalysisSweep(const ClusterFinder &clusters)
    : clusters_(clusters), regions_(clusters)
{
}

std::vector<SweepResult>
AnalysisSweep::run(const std::vector<SweepPoint> &points,
                   exec::ThreadPool *pool) const
{
    const MeasuredGrid &grid = clusters_.finder().analysis().grid();
    const std::size_t samples = grid.sampleCount();
    const std::size_t settings = grid.settingCount();
    if (!SettingMask::supports(settings)) {
        fatal("analysis sweep: settings space of ", settings,
              " exceeds the mask capacity of ", SettingMask::kCapacity);
    }
    if (points.empty())
        return {};

    std::vector<SweepResult> out(points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
        out[p].point = points[p];
        out[p].table.budget = points[p].budget;
        out[p].table.threshold = points[p].threshold;
        out[p].table.optimal.resize(samples);
        out[p].table.masks.resize(samples);
    }

    // The budget-feasible set and the §V optimum depend only on
    // (sample, budget), so points sharing a budget share one
    // fillBudget() per sample and differ only in the per-threshold
    // cluster filter.  Sweeps are typically a budget x threshold
    // cross product, so this cuts the expensive half of the kernel
    // from points to distinct-budgets.
    struct BudgetGroup
    {
        double budget;
        std::vector<std::size_t> points;
    };
    std::vector<BudgetGroup> groups;
    for (std::size_t p = 0; p < points.size(); ++p) {
        auto it = std::find_if(groups.begin(), groups.end(),
                               [&](const BudgetGroup &g) {
                                   return g.budget == points[p].budget;
                               });
        if (it == groups.end()) {
            groups.push_back({points[p].budget, {p}});
        } else {
            it->points.push_back(p);
        }
    }

    // Every (group, sample) cell is independent: flatten the cross
    // product so the pool balances across both dimensions.
    auto fill = [&](std::size_t i) {
        const std::size_t g = i / samples;
        const std::size_t s = i % samples;
        // Per-thread scratch, reused across every cell this worker
        // claims: fillBudget/fillCluster fully overwrite both, so the
        // hot body constructs nothing per cell.
        static thread_local OptimalChoice choice;
        static thread_local SettingMask feasible;
        clusters_.fillBudget(s, groups[g].budget, choice, feasible);
        for (const std::size_t p : groups[g].points) {
            out[p].table.optimal[s] = choice;
            clusters_.fillCluster(s, points[p].threshold, choice,
                                  feasible, out[p].table.masks[s]);
        }
    };
    // Region growth is a serial scan per point, but points are
    // independent of each other.
    auto grow = [&](std::size_t p) {
        out[p].regions = regions_.fromTable(out[p].table);
    };

    if (pool != nullptr) {
        // Chunk the flattened fan-out so each claimed range amortizes
        // the shared counter (the fill body is comparison-only).
        // Chunking never changes which slot a cell writes, so the
        // sweep stays bit-identical to the serial loops.
        const std::size_t cells = groups.size() * samples;
        const std::size_t grain = std::max<std::size_t>(
            1, cells / (4 * (pool->size() + 1)));
        pool->parallelFor(std::size_t{0}, cells, fill, grain);
        pool->parallelFor(std::size_t{0}, points.size(), grow);
    } else {
        for (std::size_t i = 0; i < groups.size() * samples; ++i)
            fill(i);
        for (std::size_t p = 0; p < points.size(); ++p)
            grow(p);
    }
    return out;
}

} // namespace mcdvfs
