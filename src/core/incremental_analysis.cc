#include "core/incremental_analysis.hh"

#include "common/logging.hh"

namespace mcdvfs
{

void
IncrementalAnalyzer::extend(AnalysisCheckpoint &checkpoint,
                            const ClusterFinder &clusters,
                            std::size_t new_total)
{
    const MeasuredGrid &grid = clusters.finder().analysis().grid();
    const SettingsSpace &space = grid.space();
    MCDVFS_ASSERT(new_total <= grid.sampleCount(),
                  "extend target beyond the grid");
    MCDVFS_ASSERT(new_total >= checkpoint.samples,
                  "checkpoints only extend forward");
    MCDVFS_ASSERT(clusters.tableFirst() <= checkpoint.samples,
                  "cluster tables must cover the appended range");
    MCDVFS_ASSERT(checkpoint.regions.fedSamples() == checkpoint.samples,
                  "checkpoint region state out of sync");

    checkpoint.optimal.reserve(new_total);
    checkpoint.masks.reserve(new_total);
    for (std::size_t s = checkpoint.samples; s < new_total; ++s) {
        OptimalChoice choice;
        SettingMask mask;
        clusters.fillSample(s, checkpoint.budget, checkpoint.threshold,
                            choice, mask);
        checkpoint.regions.feed(space, mask);
        checkpoint.optimal.push_back(choice);
        checkpoint.masks.push_back(mask);
    }
    checkpoint.samples = new_total;
}

AnalysisCheckpoint
IncrementalAnalyzer::build(const ClusterFinder &clusters, double budget,
                           double threshold, std::size_t samples)
{
    AnalysisCheckpoint checkpoint;
    checkpoint.budget = budget;
    checkpoint.threshold = threshold;
    extend(checkpoint, clusters, samples);
    return checkpoint;
}

AnalysisCheckpoint
IncrementalAnalyzer::fromTable(const SettingsSpace &space,
                               const ClusterTable &table)
{
    AnalysisCheckpoint checkpoint;
    checkpoint.budget = table.budget;
    checkpoint.threshold = table.threshold;
    checkpoint.samples = table.sampleCount();
    checkpoint.optimal = table.optimal;
    checkpoint.masks = table.masks;
    for (const SettingMask &mask : checkpoint.masks)
        checkpoint.regions.feed(space, mask);
    return checkpoint;
}

PerformanceCluster
IncrementalAnalyzer::materializeCluster(const OptimalChoice &optimal,
                                        const SettingMask &mask)
{
    PerformanceCluster cluster;
    cluster.optimal = optimal;
    cluster.settings.reserve(mask.count());
    for (const std::size_t k : mask)
        cluster.settings.push_back(k);
    return cluster;
}

} // namespace mcdvfs
