/**
 * @file
 * Performance clusters (§VI-A).
 *
 * The performance cluster of a sample, for a given inefficiency budget
 * and cluster threshold, is the set of all settings that (a) are
 * within the inefficiency budget and (b) perform within the threshold
 * of the optimal setting's performance for that budget.  Clusters are
 * what let a tuner trade a bounded performance loss for dramatically
 * fewer frequency transitions.
 */

#ifndef MCDVFS_CORE_PERFORMANCE_CLUSTERS_HH
#define MCDVFS_CORE_PERFORMANCE_CLUSTERS_HH

#include <vector>

#include "core/optimal_settings.hh"

namespace mcdvfs
{

/** One sample's cluster: the optimum plus all near-optimal settings. */
struct PerformanceCluster
{
    OptimalChoice optimal;
    /** Setting indices in the cluster (always contains the optimum). */
    std::vector<std::size_t> settings;

    bool contains(std::size_t setting_index) const;
};

/** Computes performance clusters over a measured grid. */
class ClusterFinder
{
  public:
    /**
     * @param finder optimal-settings search to cluster around (must
     *               outlive the ClusterFinder)
     */
    explicit ClusterFinder(const OptimalSettingsFinder &finder);

    /**
     * Cluster of one sample.
     *
     * @param budget inefficiency budget (>= 1)
     * @param threshold tolerated performance degradation relative to
     *        the optimum, e.g. 0.01 for 1%
     * @throws FatalError for negative thresholds or budgets below 1
     */
    PerformanceCluster clusterForSample(std::size_t sample, double budget,
                                        double threshold) const;

    /** Clusters for every sample in order. */
    std::vector<PerformanceCluster> clusters(double budget,
                                             double threshold) const;

    const OptimalSettingsFinder &finder() const { return finder_; }

  private:
    const OptimalSettingsFinder &finder_;
};

} // namespace mcdvfs

#endif // MCDVFS_CORE_PERFORMANCE_CLUSTERS_HH
