/**
 * @file
 * Performance clusters (§VI-A).
 *
 * The performance cluster of a sample, for a given inefficiency budget
 * and cluster threshold, is the set of all settings that (a) are
 * within the inefficiency budget and (b) perform within the threshold
 * of the optimal setting's performance for that budget.  Clusters are
 * what let a tuner trade a bounded performance loss for dramatically
 * fewer frequency transitions.
 *
 * ClusterFinder hoists all divisions to construction: one streaming
 * pass over the grid's SoA energy/time columns fills per-cell speedup
 * and inefficiency tables (the exact divisions of
 * InefficiencyAnalysis::sampleSpeedup/sampleInefficiency, so results
 * stay bit-identical).  Every (budget, threshold) query is then pure
 * comparisons: one compare per setting derives feasibility (filling a
 * SettingMask), the §V argmin/tie-break picks the optimum from the
 * speedup row, and one compare per feasible setting fills the cluster
 * mask — no divisions, no intermediate index vectors.  The
 * pre-bitset scalar algorithm survives as
 * core/reference_analysis.hh; golden tests keep the two bit-identical,
 * and spaces beyond SettingMask::kCapacity fall back to it.
 */

#ifndef MCDVFS_CORE_PERFORMANCE_CLUSTERS_HH
#define MCDVFS_CORE_PERFORMANCE_CLUSTERS_HH

#include <vector>

#include "core/optimal_settings.hh"
#include "core/setting_mask.hh"

namespace mcdvfs
{

namespace exec
{
class ThreadPool;
} // namespace exec

/** One sample's cluster: the optimum plus all near-optimal settings. */
struct PerformanceCluster
{
    OptimalChoice optimal;
    /** Setting indices in the cluster, ascending (contains the optimum). */
    std::vector<std::size_t> settings;

    bool contains(std::size_t setting_index) const;
};

/**
 * All samples' clusters at one (budget, threshold), in mask form: the
 * per-sample optimum plus the cluster membership bitset.  This is the
 * working representation of the analysis pipeline — stable-region
 * growth, sweeps and the characterization service consume the masks
 * directly; materialize() assembles the classic vector form.
 */
struct ClusterTable
{
    double budget = 1.0;
    double threshold = 0.0;
    /** Per-sample §V optimum under the budget. */
    std::vector<OptimalChoice> optimal;
    /** Per-sample cluster membership over the settings space. */
    std::vector<SettingMask> masks;

    std::size_t sampleCount() const { return masks.size(); }

    /** The classic vector-form cluster of one sample. */
    PerformanceCluster materialize(std::size_t sample) const;
};

/** Computes performance clusters over a measured grid. */
class ClusterFinder
{
  public:
    /**
     * @param finder optimal-settings search to cluster around (must
     *               outlive the ClusterFinder)
     */
    explicit ClusterFinder(const OptimalSettingsFinder &finder);

    /**
     * Tail-range construction for incremental analysis: hoist the
     * speedup/inefficiency tables only for samples in
     * [@c first_sample, sampleCount()).  Queries below @c first_sample
     * are out of range — an IncrementalAnalyzer extending a checkpoint
     * past its old length only ever touches the new tail, so the
     * per-cell division work is O(new samples), not O(history).
     */
    ClusterFinder(const OptimalSettingsFinder &finder,
                  std::size_t first_sample);

    /**
     * Cluster of one sample.
     *
     * @param budget inefficiency budget (>= 1)
     * @param threshold tolerated performance degradation relative to
     *        the optimum, e.g. 0.01 for 1%
     * @throws FatalError for negative thresholds or budgets below 1
     */
    PerformanceCluster clusterForSample(std::size_t sample, double budget,
                                        double threshold) const;

    /** Clusters for every sample in order. */
    std::vector<PerformanceCluster> clusters(double budget,
                                             double threshold) const;

    /**
     * Clusters for every sample, the per-sample kernel fanned over
     * @c pool (nullptr = serial).  Samples are independent, so the
     * result is bit-identical to the serial loop for any worker count.
     */
    std::vector<PerformanceCluster> clusters(double budget,
                                             double threshold,
                                             exec::ThreadPool *pool) const;

    /**
     * All samples' optima and cluster masks in one pass (optionally
     * fanned over @c pool; bit-identical either way).
     */
    ClusterTable table(double budget, double threshold,
                       exec::ThreadPool *pool = nullptr) const;

    /**
     * The per-sample kernel: fill one sample's optimum and cluster
     * mask.  @c mask is assigned a mask sized to the settings space.
     */
    void fillSample(std::size_t sample, double budget, double threshold,
                    OptimalChoice &optimal, SettingMask &mask) const;

    /**
     * The threshold-independent half of the kernel: one sample's
     * budget-feasible set and §V optimum.  Sweeps over several
     * thresholds share one fillBudget() per (sample, budget) and call
     * fillCluster() per threshold.
     */
    void fillBudget(std::size_t sample, double budget,
                    OptimalChoice &optimal, SettingMask &feasible) const;

    /**
     * The per-threshold half: the cluster mask from a sample's
     * precomputed optimum and feasible set (both from fillBudget()).
     */
    void fillCluster(std::size_t sample, double threshold,
                     const OptimalChoice &optimal,
                     const SettingMask &feasible, SettingMask &mask) const;

    const OptimalSettingsFinder &finder() const { return finder_; }

    /** First sample the hoisted tables cover (0 for full grids). */
    std::size_t tableFirst() const { return tableFirst_; }

  private:
    /** Hoisted-table row of one sample (tableFirst()-relative). */
    const double *
    speedupRow(std::size_t sample) const
    {
        MCDVFS_DEBUG_ASSERT(sample >= tableFirst_,
                            "sample below the hoisted table range");
        return speedups_.data() +
               (sample - tableFirst_) * settings_.size();
    }

    const double *
    inefficiencyRow(std::size_t sample) const
    {
        MCDVFS_DEBUG_ASSERT(sample >= tableFirst_,
                            "sample below the hoisted table range");
        return inefficiencies_.data() +
               (sample - tableFirst_) * settings_.size();
    }

    const OptimalSettingsFinder &finder_;
    /** The settings space materialized once (the §V tie-break scans it). */
    std::vector<FrequencySetting> settings_;
    /**
     * Per-cell speedup and inefficiency, sample-major from
     * tableFirst_, hoisted at construction so queries are
     * division-free.  Left empty when the space exceeds SettingMask
     * capacity (the reference path serves those spaces).
     */
    std::vector<double> speedups_;
    std::vector<double> inefficiencies_;
    /** First sample covered by the hoisted tables. */
    std::size_t tableFirst_ = 0;
};

} // namespace mcdvfs

#endif // MCDVFS_CORE_PERFORMANCE_CLUSTERS_HH
