/**
 * @file
 * Sensitivity of performance clusters to frequency step size (§VI-D,
 * Fig. 12).
 *
 * The same characterization (one set of sample profiles) is evaluated
 * over two settings spaces — the coarse 70-setting grid and the fine
 * 496-setting grid — and the resulting cluster/region structures are
 * compared.  The paper's findings this reproduces: finer steps give
 * more (and slightly better) choices, so stable regions get shorter,
 * while the performance gain with free tuning stays under 1%.
 */

#ifndef MCDVFS_CORE_STEP_SENSITIVITY_HH
#define MCDVFS_CORE_STEP_SENSITIVITY_HH

#include "core/tradeoff.hh"
#include "sim/grid_runner.hh"

namespace mcdvfs
{

/** Comparison of one settings space's cluster structure. */
struct SpaceCharacterization
{
    std::size_t settings = 0;
    std::size_t transitions = 0;
    double avgRegionLength = 0.0;   ///< samples per stable region
    double avgClusterSize = 0.0;    ///< settings per cluster
    Seconds optimalTime = 0.0;      ///< optimal tracking, no overhead
};

/** Fig. 12 result: coarse vs. fine side by side. */
struct StepSensitivityResult
{
    SpaceCharacterization coarse;
    SpaceCharacterization fine;

    /** Performance gain of the fine grid with free tuning, %. */
    double finePerfImprovementPct() const;
};

/** Runs the §VI-D comparison. */
class StepSensitivity
{
  public:
    /** @param runner grid builder (must outlive the analysis) */
    explicit StepSensitivity(GridRunner &runner);

    /**
     * Fan the per-sample cluster kernel over @c pool (nullptr =
     * serial; results are bit-identical either way).  The pool must
     * outlive the analysis.
     */
    void setThreadPool(exec::ThreadPool *pool) { pool_ = pool; }

    /**
     * Characterize @c workload once and compare the two spaces at the
     * given budget and cluster threshold.
     */
    StepSensitivityResult compare(const WorkloadProfile &workload,
                                  double budget, double threshold,
                                  const SettingsSpace &coarse,
                                  const SettingsSpace &fine);

    /**
     * One row of the Fig. 12 table: cluster/region structure and
     * optimal-tracking time of one grid.  Built from a single
     * mask-table pass (kept bit-identical to
     * referenceCharacterizeSpace by the golden tests).
     */
    static SpaceCharacterization characterizeSpace(
        const MeasuredGrid &grid, double budget, double threshold,
        exec::ThreadPool *pool = nullptr);

  private:
    GridRunner &runner_;
    exec::ThreadPool *pool_ = nullptr;
};

} // namespace mcdvfs

#endif // MCDVFS_CORE_STEP_SENSITIVITY_HH
