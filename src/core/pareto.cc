#include "core/pareto.hh"

#include <algorithm>

namespace mcdvfs
{

namespace
{

/** Strict Pareto dominance in (time, energy): a <= b and a < b once. */
bool
dominatesPair(Seconds ta, Joules ea, Seconds tb, Joules eb)
{
    return ta <= tb && ea <= eb && (ta < tb || ea < eb);
}

} // namespace

ParetoAnalysis::ParetoAnalysis(const InefficiencyAnalysis &analysis)
    : analysis_(analysis)
{
}

bool
ParetoAnalysis::dominates(std::size_t a, std::size_t b) const
{
    const MeasuredGrid &grid = analysis_.grid();
    return dominatesPair(grid.totalTime(a), grid.totalEnergy(a),
                         grid.totalTime(b), grid.totalEnergy(b));
}

std::vector<ParetoPoint>
ParetoAnalysis::runFrontier() const
{
    const MeasuredGrid &grid = analysis_.grid();
    const std::size_t settings = grid.settingCount();

    std::vector<ParetoPoint> frontier;
    for (std::size_t k = 0; k < settings; ++k) {
        bool dominated = false;
        for (std::size_t other = 0; other < settings && !dominated;
             ++other) {
            dominated = other != k && dominates(other, k);
        }
        if (!dominated) {
            ParetoPoint point;
            point.settingIndex = k;
            point.setting = grid.space().at(k);
            point.time = grid.totalTime(k);
            point.energy = grid.totalEnergy(k);
            point.speedup = analysis_.runSpeedup(k);
            point.inefficiency = analysis_.runInefficiency(k);
            frontier.push_back(point);
        }
    }
    std::sort(frontier.begin(), frontier.end(),
              [](const ParetoPoint &a, const ParetoPoint &b) {
                  return a.time < b.time;
              });
    return frontier;
}

std::vector<std::size_t>
ParetoAnalysis::sampleFrontier(std::size_t sample) const
{
    const MeasuredGrid &grid = analysis_.grid();
    const std::size_t settings = grid.settingCount();

    std::vector<std::size_t> frontier;
    for (std::size_t k = 0; k < settings; ++k) {
        const GridCell &cell = grid.cell(sample, k);
        bool dominated = false;
        for (std::size_t other = 0; other < settings && !dominated;
             ++other) {
            if (other == k)
                continue;
            const GridCell &oc = grid.cell(sample, other);
            dominated = dominatesPair(oc.seconds, oc.energy(),
                                      cell.seconds, cell.energy());
        }
        if (!dominated)
            frontier.push_back(k);
    }
    return frontier;
}

double
ParetoAnalysis::dominatedFraction() const
{
    const std::size_t settings = analysis_.grid().settingCount();
    const std::size_t frontier = runFrontier().size();
    return 1.0 - static_cast<double>(frontier) /
                     static_cast<double>(settings);
}

} // namespace mcdvfs
