/**
 * @file
 * Energy-performance Pareto analysis.
 *
 * The paper's introduction argues that adding memory DFS to CPU DVFS
 * enlarges the setting space but "also provides more incorrect
 * settings that waste energy or degrade performance".  This analysis
 * makes that quantitative: a setting is *dominated* when some other
 * setting is at least as fast and uses at most as much energy (and is
 * strictly better in one of the two); dominated settings are exactly
 * the "incorrect" ones a tuner must avoid.
 */

#ifndef MCDVFS_CORE_PARETO_HH
#define MCDVFS_CORE_PARETO_HH

#include <vector>

#include "core/inefficiency.hh"

namespace mcdvfs
{

/** One point of a Pareto frontier. */
struct ParetoPoint
{
    std::size_t settingIndex = 0;
    FrequencySetting setting{};
    Seconds time = 0.0;
    Joules energy = 0.0;
    double speedup = 0.0;
    double inefficiency = 0.0;
};

/** Whole-run and per-sample Pareto frontiers over a measured grid. */
class ParetoAnalysis
{
  public:
    /** @param analysis inefficiency tables (must outlive this) */
    explicit ParetoAnalysis(const InefficiencyAnalysis &analysis);

    /**
     * Whole-run frontier: non-dominated settings in (total time,
     * total energy), sorted fastest first.
     */
    std::vector<ParetoPoint> runFrontier() const;

    /** Indices of one sample's non-dominated settings. */
    std::vector<std::size_t> sampleFrontier(std::size_t sample) const;

    /**
     * Fraction of the whole-run settings that are dominated — the
     * "incorrect settings" mass the paper's introduction warns about.
     */
    double dominatedFraction() const;

    /** True when setting @c a dominates setting @c b (whole run). */
    bool dominates(std::size_t a, std::size_t b) const;

  private:
    const InefficiencyAnalysis &analysis_;
};

} // namespace mcdvfs

#endif // MCDVFS_CORE_PARETO_HH
