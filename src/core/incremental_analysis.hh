/**
 * @file
 * Incremental (streaming) §V/§VI analysis.
 *
 * A streaming tuner sees the same workload grow a few samples at a
 * time, and every batch used to recompute optimal settings, clusters
 * and stable regions over the full history.  All three outputs are
 * prefix-extendable: per-sample optima and cluster masks only depend
 * on their own sample, and the greedy region walk only needs the open
 * region's start and surviving-settings mask (StableRegionBuilder) to
 * continue.  An AnalysisCheckpoint captures exactly that state for one
 * (budget, threshold); IncrementalAnalyzer::extend() advances it over
 * the appended samples in O(new samples x settings), never touching
 * history.
 *
 * Both the from-scratch and the resumed paths run the same
 * ClusterFinder fill kernel and the same StableRegionBuilder feed, so
 * append == recompute bit for bit (pinned by golden tests against
 * core/reference_analysis).
 */

#ifndef MCDVFS_CORE_INCREMENTAL_ANALYSIS_HH
#define MCDVFS_CORE_INCREMENTAL_ANALYSIS_HH

#include <cstddef>
#include <vector>

#include "core/stable_regions.hh"

namespace mcdvfs
{

/**
 * Resumable state of one (budget, threshold) analysis over a sample
 * prefix.  Cached by svc::AnalysisCache keyed by the grid's chained
 * prefix digest (MeasuredGrid::prefixDigest), so a grown grid finds
 * the checkpoint of its unchanged prefix and only analyzes the tail.
 */
struct AnalysisCheckpoint
{
    double budget = 1.0;
    double threshold = 0.0;
    /** Samples covered (the prefix length). */
    std::size_t samples = 0;
    /** Per-sample §V optimum under the budget. */
    std::vector<OptimalChoice> optimal;
    /** Per-sample cluster membership masks (§VI-A). */
    std::vector<SettingMask> masks;
    /** Open-region state of the greedy §VI-B walk. */
    StableRegionBuilder regions;
};

/** Extends and materializes analysis checkpoints. */
class IncrementalAnalyzer
{
  public:
    /**
     * Advance @c checkpoint in place from its current prefix to
     * @c new_total samples of @c clusters ' grid.  @c clusters may be
     * a tail-range finder (ClusterFinder range constructor) as long as
     * its tables cover [checkpoint.samples, new_total) — this is what
     * keeps the division hoisting O(new samples) too.  No-op when
     * new_total equals the checkpoint's prefix.
     */
    static void extend(AnalysisCheckpoint &checkpoint,
                       const ClusterFinder &clusters,
                       std::size_t new_total);

    /**
     * Fresh checkpoint covering the first @c samples samples — an
     * extend() from zero, so it is the recompute oracle of itself.
     */
    static AnalysisCheckpoint build(const ClusterFinder &clusters,
                                    double budget, double threshold,
                                    std::size_t samples);

    /**
     * Checkpoint equivalent to an already-computed cluster table
     * (reuses a pooled table() fill instead of refilling serially).
     */
    static AnalysisCheckpoint fromTable(const SettingsSpace &space,
                                        const ClusterTable &table);

    /** Vector-form cluster of one checkpointed sample. */
    static PerformanceCluster materializeCluster(
        const OptimalChoice &optimal, const SettingMask &mask);
};

} // namespace mcdvfs

#endif // MCDVFS_CORE_INCREMENTAL_ANALYSIS_HH
