#include "core/transitions.hh"

#include "common/logging.hh"

namespace mcdvfs
{

TransitionAnalysis::TransitionAnalysis(
    const StableRegionFinder &region_finder,
    const ClusterFinder &cluster_finder)
    : regionFinder_(region_finder), clusterFinder_(cluster_finder)
{
}

TransitionReport
TransitionAnalysis::fromSettingSequence(
    const std::vector<std::size_t> &setting_per_sample,
    Count total_instructions)
{
    MCDVFS_ASSERT(!setting_per_sample.empty(), "empty setting sequence");
    TransitionReport report;
    std::size_t run_length = 1;
    for (std::size_t s = 1; s < setting_per_sample.size(); ++s) {
        if (setting_per_sample[s] != setting_per_sample[s - 1]) {
            ++report.transitions;
            report.runLengths.add(static_cast<double>(run_length));
            run_length = 1;
        } else {
            ++run_length;
        }
    }
    report.runLengths.add(static_cast<double>(run_length));
    if (total_instructions > 0) {
        report.perBillionInstructions =
            static_cast<double>(report.transitions) * 1e9 /
            static_cast<double>(total_instructions);
    }
    return report;
}

TransitionReport
TransitionAnalysis::forOptimalTracking(double budget) const
{
    const OptimalSettingsFinder &finder = clusterFinder_.finder();
    const MeasuredGrid &grid = finder.analysis().grid();
    std::vector<std::size_t> sequence;
    sequence.reserve(grid.sampleCount());
    for (const OptimalChoice &choice : finder.optimalTrajectory(budget))
        sequence.push_back(choice.settingIndex);
    return fromSettingSequence(sequence, grid.totalInstructions());
}

std::vector<std::size_t>
TransitionAnalysis::clusterSettingSequence(double budget,
                                           double threshold) const
{
    const MeasuredGrid &grid =
        clusterFinder_.finder().analysis().grid();
    std::vector<std::size_t> sequence(grid.sampleCount(), 0);
    for (const StableRegion &region :
         regionFinder_.find(budget, threshold)) {
        for (std::size_t s = region.first; s <= region.last; ++s)
            sequence[s] = region.chosenSettingIndex;
    }
    return sequence;
}

TransitionReport
TransitionAnalysis::forClusterPolicy(double budget, double threshold) const
{
    const MeasuredGrid &grid =
        clusterFinder_.finder().analysis().grid();
    return fromSettingSequence(clusterSettingSequence(budget, threshold),
                               grid.totalInstructions());
}

} // namespace mcdvfs
