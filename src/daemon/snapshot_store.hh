/**
 * @file
 * Persistent, fingerprint-addressed store of grid and analysis
 * snapshots.
 *
 * A fleet-scale daemon must not recharacterize the world on every
 * restart: a MeasuredGrid is the expensive artifact (hundreds of
 * samples through the cache/DRAM simulator) and the §V/§VI analysis
 * chain is the second-most expensive, yet both are pure functions of
 * content-fingerprinted inputs (svc/fingerprint.hh).  SnapshotStore
 * persists both as checksummed binary files addressed by their cache
 * keys, so a restarting daemon reloads them into GridCache /
 * AnalysisCache and serves its first requests hot.
 *
 * Layout: one file per snapshot inside one directory —
 *
 *   grid-<16-hex-digit key digest>.snap
 *   analysis-<16-hex-digit key digest>.snap
 *
 * Each file is a container header (magic, version, kind, the full
 * cache key, payload length, an FNV-1a checksum covering the key
 * bytes and the payload) followed by the payload: for grids the sim/grid_io binary snapshot (itself
 * checksummed and bit-identical on round trip), for analyses a
 * common/binio.hh serialization of svc::AnalysisResult.
 *
 * Durability: every store writes to a unique temporary name in the
 * same directory and atomically renames it into place, so a crash
 * (kill -9) mid-write leaves either the old file or no file — never a
 * torn one.  Loads verify magic, version, kind, key, and checksum;
 * anything that fails verification is counted, warned about, and
 * skipped (a corrupt snapshot degrades to a cache miss, never to UB).
 */

#ifndef MCDVFS_DAEMON_SNAPSHOT_STORE_HH
#define MCDVFS_DAEMON_SNAPSHOT_STORE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "svc/analysis_cache.hh"
#include "svc/grid_cache.hh"

namespace mcdvfs
{
namespace daemon
{

/** Directory-backed snapshot store (thread-safe; see file comment). */
class SnapshotStore
{
  public:
    /** Magic leading every snapshot container. */
    static constexpr char kMagic[8] = {'m', 'c', 'd', 'v',
                                       'f', 's', 'S', 'S'};

    /**
     * Current container version.  v2 added the GPU frequency to every
     * serialized FrequencySetting (optimal choices and stable-region
     * chosen settings); v1 containers are rejected as a counted miss
     * and simply recomputed.
     */
    static constexpr std::uint32_t kVersion = 2;

    /** Monotonic per-store I/O counters. */
    struct Stats
    {
        std::uint64_t gridStores = 0;
        std::uint64_t gridLoads = 0;
        std::uint64_t analysisStores = 0;
        std::uint64_t analysisLoads = 0;
        /** Files rejected as truncated / corrupt / mismatched. */
        std::uint64_t loadErrors = 0;
    };

    /** One reloaded grid snapshot with its cache key. */
    struct GridEntry
    {
        svc::GridKey key;
        std::shared_ptr<const MeasuredGrid> grid;
    };

    /** One reloaded analysis snapshot with its cache key. */
    struct AnalysisEntry
    {
        svc::AnalysisKey key;
        std::shared_ptr<const svc::AnalysisResult> result;
    };

    /**
     * Open (creating if needed) the store directory.
     * @throws FatalError when the directory cannot be created.
     */
    explicit SnapshotStore(std::string directory);

    const std::string &directory() const { return directory_; }

    /** Persist a grid under its cache key (write-to-temp + rename). */
    void storeGrid(const svc::GridKey &key, const MeasuredGrid &grid);

    /**
     * Load the grid stored under @c key; nullptr when absent or when
     * the file fails verification (counted in stats().loadErrors).
     */
    std::shared_ptr<const MeasuredGrid> loadGrid(const svc::GridKey &key);

    /** Persist an analysis under its cache key. */
    void storeAnalysis(const svc::AnalysisKey &key,
                       const svc::AnalysisResult &result);

    /** Load the analysis stored under @c key (nullptr as loadGrid). */
    std::shared_ptr<const svc::AnalysisResult> loadAnalysis(
        const svc::AnalysisKey &key);

    /**
     * Load every verifiable grid snapshot in the directory (warm
     * restart).  Corrupt or foreign files are skipped with a warning.
     */
    std::vector<GridEntry> loadAllGrids();

    /** Load every verifiable analysis snapshot in the directory. */
    std::vector<AnalysisEntry> loadAllAnalyses();

    Stats stats() const;

  private:
    enum class Kind : std::uint32_t
    {
        Grid = 1,
        Analysis = 2,
    };

    std::string gridPath(const svc::GridKey &key) const;
    std::string analysisPath(const svc::AnalysisKey &key) const;

    /** Write container + payload to a temp file, rename into place. */
    void writeSnapshot(const std::string &path, Kind kind,
                       const std::string &keyBytes,
                       const std::string &payload);

    /**
     * Read and verify one container; returns false (after counting
     * and warning) when the file is absent or fails verification.
     * On success fills @c keyBytes and @c payload.
     */
    bool readSnapshot(const std::string &path, Kind kind,
                      std::string &keyBytes, std::string &payload);

    std::string directory_;
    std::atomic<std::uint64_t> tempSeq_{0};
    std::atomic<std::uint64_t> gridStores_{0};
    std::atomic<std::uint64_t> gridLoads_{0};
    std::atomic<std::uint64_t> analysisStores_{0};
    std::atomic<std::uint64_t> analysisLoads_{0};
    std::atomic<std::uint64_t> loadErrors_{0};
};

} // namespace daemon
} // namespace mcdvfs

#endif // MCDVFS_DAEMON_SNAPSHOT_STORE_HH
