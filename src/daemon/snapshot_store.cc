#include "daemon/snapshot_store.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/binio.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "sim/grid_io.hh"

namespace mcdvfs
{
namespace daemon
{

namespace
{

namespace fs = std::filesystem;

/** Process-wide snapshot-store metrics (all stores share them). */
struct StoreMetrics
{
    obs::Counter gridStores;
    obs::Counter gridLoads;
    obs::Counter analysisStores;
    obs::Counter analysisLoads;
    obs::Counter loadErrors;
    obs::Histogram storeNs;
    obs::Histogram loadNs;

    StoreMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        const auto latency = obs::MetricsRegistry::latencyBucketsNs();
        gridStores = reg.counter("daemon.snapshot.grid_stores");
        gridLoads = reg.counter("daemon.snapshot.grid_loads");
        analysisStores = reg.counter("daemon.snapshot.analysis_stores");
        analysisLoads = reg.counter("daemon.snapshot.analysis_loads");
        loadErrors = reg.counter("daemon.snapshot.load_errors");
        storeNs = reg.histogram("daemon.snapshot.store_ns", latency);
        loadNs = reg.histogram("daemon.snapshot.load_ns", latency);
    }
};

StoreMetrics &
storeMetrics()
{
    static StoreMetrics metrics;
    return metrics;
}

/** Snapshot files cannot plausibly exceed this (see grid_io). */
constexpr std::uint64_t kMaxSnapshotBytes = 1ull << 31;

std::string
hexDigest(std::uint64_t digest)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(digest));
    return std::string(buffer, 16);
}

std::string
gridKeyBytes(const svc::GridKey &key)
{
    ByteWriter w;
    w.u64(key.workload);
    w.u64(key.space);
    w.u64(key.config);
    return w.take();
}

svc::GridKey
parseGridKey(const std::string &bytes)
{
    ByteReader r(bytes, "grid snapshot key");
    svc::GridKey key;
    key.workload = r.u64();
    key.space = r.u64();
    key.config = r.u64();
    r.expectEnd();
    return key;
}

std::string
analysisKeyBytes(const svc::AnalysisKey &key)
{
    ByteWriter w;
    w.u64(key.grid);
    w.f64(key.budget);
    w.f64(key.threshold);
    return w.take();
}

svc::AnalysisKey
parseAnalysisKey(const std::string &bytes)
{
    ByteReader r(bytes, "analysis snapshot key");
    svc::AnalysisKey key;
    key.grid = r.u64();
    key.budget = r.f64();
    key.threshold = r.f64();
    r.expectEnd();
    return key;
}

void
writeChoice(ByteWriter &w, const OptimalChoice &choice)
{
    w.u64(choice.settingIndex);
    w.f64(choice.setting.cpu);
    w.f64(choice.setting.mem);
    w.f64(choice.setting.gpu);
    w.f64(choice.speedup);
    w.f64(choice.inefficiency);
}

OptimalChoice
readChoice(ByteReader &r)
{
    OptimalChoice choice;
    choice.settingIndex = r.u64();
    choice.setting.cpu = r.f64();
    choice.setting.mem = r.f64();
    choice.setting.gpu = r.f64();
    choice.speedup = r.f64();
    choice.inefficiency = r.f64();
    return choice;
}

/** Guard a deserialized element count against corrupt length words. */
std::uint32_t
checkedCount(std::uint32_t count, const char *what)
{
    if (count > 100'000'000)
        fatal("analysis snapshot: implausible ", what, " count ", count);
    return count;
}

std::string
analysisPayload(const svc::AnalysisResult &result)
{
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(result.optimal.size()));
    for (const OptimalChoice &choice : result.optimal)
        writeChoice(w, choice);

    w.u32(static_cast<std::uint32_t>(result.clusters.size()));
    for (const PerformanceCluster &cluster : result.clusters) {
        writeChoice(w, cluster.optimal);
        w.u32(static_cast<std::uint32_t>(cluster.settings.size()));
        for (const std::size_t setting : cluster.settings)
            w.u64(setting);
    }

    w.u32(static_cast<std::uint32_t>(result.regions.size()));
    for (const StableRegion &region : result.regions) {
        w.u64(region.first);
        w.u64(region.last);
        w.u32(static_cast<std::uint32_t>(
            region.availableSettings.size()));
        for (const std::size_t setting : region.availableSettings)
            w.u64(setting);
        w.u64(region.chosenSettingIndex);
        w.f64(region.chosenSetting.cpu);
        w.f64(region.chosenSetting.mem);
        w.f64(region.chosenSetting.gpu);
    }
    return w.take();
}

svc::AnalysisResult
parseAnalysisPayload(const std::string &payload)
{
    ByteReader r(payload, "analysis snapshot");
    svc::AnalysisResult result;

    const std::uint32_t optima = checkedCount(r.u32(), "optimal");
    result.optimal.reserve(optima);
    for (std::uint32_t i = 0; i < optima; ++i)
        result.optimal.push_back(readChoice(r));

    const std::uint32_t clusters = checkedCount(r.u32(), "cluster");
    result.clusters.reserve(clusters);
    for (std::uint32_t i = 0; i < clusters; ++i) {
        PerformanceCluster cluster;
        cluster.optimal = readChoice(r);
        const std::uint32_t members =
            checkedCount(r.u32(), "cluster member");
        cluster.settings.reserve(members);
        for (std::uint32_t j = 0; j < members; ++j)
            cluster.settings.push_back(r.u64());
        result.clusters.push_back(std::move(cluster));
    }

    const std::uint32_t regions = checkedCount(r.u32(), "region");
    result.regions.reserve(regions);
    for (std::uint32_t i = 0; i < regions; ++i) {
        StableRegion region;
        region.first = r.u64();
        region.last = r.u64();
        const std::uint32_t avail =
            checkedCount(r.u32(), "region setting");
        region.availableSettings.reserve(avail);
        for (std::uint32_t j = 0; j < avail; ++j)
            region.availableSettings.push_back(r.u64());
        region.chosenSettingIndex = r.u64();
        region.chosenSetting.cpu = r.f64();
        region.chosenSetting.mem = r.f64();
        region.chosenSetting.gpu = r.f64();
        result.regions.push_back(std::move(region));
    }
    r.expectEnd();
    return result;
}

} // namespace

SnapshotStore::SnapshotStore(std::string directory)
    : directory_(std::move(directory))
{
    if (directory_.empty())
        fatal("snapshot store: empty directory path");
    std::error_code ec;
    fs::create_directories(directory_, ec);
    if (ec || !fs::is_directory(directory_)) {
        fatal("snapshot store: cannot create directory '", directory_,
              "': ", ec.message());
    }
}

std::string
SnapshotStore::gridPath(const svc::GridKey &key) const
{
    return directory_ + "/grid-" + hexDigest(key.combined()) + ".snap";
}

std::string
SnapshotStore::analysisPath(const svc::AnalysisKey &key) const
{
    return directory_ + "/analysis-" + hexDigest(key.combined()) +
           ".snap";
}

void
SnapshotStore::writeSnapshot(const std::string &path, Kind kind,
                             const std::string &keyBytes,
                             const std::string &payload)
{
    obs::ScopedTimer store_timer(storeMetrics().storeNs);
    ByteWriter header;
    for (const char c : kMagic)
        header.u8(static_cast<std::uint8_t>(c));
    header.u32(kVersion);
    header.u32(static_cast<std::uint32_t>(kind));
    header.str(keyBytes);
    header.u64(payload.size());
    // The checksum covers the key bytes too: a flipped bit in the key
    // region must read as corruption, not as a different snapshot.
    header.u64(
        fnv1aString(fnv1aString(kFnvOffsetBasis, keyBytes), payload));

    // Unique temp name per writer, atomically renamed into place:
    // a crash mid-write leaves the old snapshot (or none), never a
    // torn file under the final name.
    const std::string temp =
        path + ".tmp" +
        std::to_string(tempSeq_.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("snapshot store: cannot open '", temp,
                  "' for writing");
        out.write(header.bytes().data(),
                  static_cast<std::streamsize>(header.bytes().size()));
        out.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
        if (!out)
            fatal("snapshot store: write failed for '", temp, "'");
    }
    std::error_code ec;
    fs::rename(temp, path, ec);
    if (ec) {
        fs::remove(temp, ec);
        fatal("snapshot store: cannot rename '", temp, "' to '", path,
              "'");
    }
}

bool
SnapshotStore::readSnapshot(const std::string &path, Kind kind,
                            std::string &keyBytes, std::string &payload)
{
    std::error_code ec;
    if (!fs::exists(path, ec) || ec)
        return false;

    obs::ScopedTimer load_timer(storeMetrics().loadNs);
    try {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            fatal("snapshot store: cannot open '", path, "'");
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const std::string bytes = buffer.str();
        if (bytes.size() > kMaxSnapshotBytes)
            fatal("snapshot store: implausible file size ",
                  bytes.size());

        ByteReader r(bytes, "snapshot container");
        for (const char expected : kMagic) {
            if (static_cast<char>(r.u8()) != expected)
                fatal("snapshot container: bad magic in '", path, "'");
        }
        const std::uint32_t version = r.u32();
        if (version != kVersion)
            fatal("snapshot container: unsupported version ", version,
                  " in '", path, "' (expected ", kVersion, ")");
        const std::uint32_t file_kind = r.u32();
        if (file_kind != static_cast<std::uint32_t>(kind))
            fatal("snapshot container: kind ", file_kind, " in '", path,
                  "' does not match the expected kind ",
                  static_cast<std::uint32_t>(kind));
        keyBytes = r.str();
        const std::uint64_t payload_size = r.u64();
        const std::uint64_t checksum = r.u64();
        if (payload_size != r.remaining())
            fatal("snapshot container: truncated payload in '", path,
                  "' (header claims ", payload_size, " bytes, file has ",
                  r.remaining(), ")");
        payload = bytes.substr(bytes.size() - payload_size);
        if (fnv1aString(fnv1aString(kFnvOffsetBasis, keyBytes),
                        payload) != checksum) {
            fatal("snapshot container: checksum mismatch in '", path,
                  "' (corrupt snapshot)");
        }
        return true;
    } catch (const FatalError &err) {
        loadErrors_.fetch_add(1, std::memory_order_relaxed);
        storeMetrics().loadErrors.add(1);
        warn("snapshot store: rejecting '", path, "': ", err.what());
        return false;
    }
}

void
SnapshotStore::storeGrid(const svc::GridKey &key, const MeasuredGrid &grid)
{
    writeSnapshot(gridPath(key), Kind::Grid, gridKeyBytes(key),
                  saveGridBinaryToString(grid));
    gridStores_.fetch_add(1, std::memory_order_relaxed);
    storeMetrics().gridStores.add(1);
}

std::shared_ptr<const MeasuredGrid>
SnapshotStore::loadGrid(const svc::GridKey &key)
{
    std::string key_bytes;
    std::string payload;
    if (!readSnapshot(gridPath(key), Kind::Grid, key_bytes, payload))
        return nullptr;
    try {
        if (!(parseGridKey(key_bytes) == key))
            fatal("stored key does not match the requested key");
        auto grid = std::make_shared<const MeasuredGrid>(
            loadGridBinaryFromString(payload));
        gridLoads_.fetch_add(1, std::memory_order_relaxed);
        storeMetrics().gridLoads.add(1);
        return grid;
    } catch (const FatalError &err) {
        loadErrors_.fetch_add(1, std::memory_order_relaxed);
        storeMetrics().loadErrors.add(1);
        warn("snapshot store: rejecting '", gridPath(key), "': ",
             err.what());
        return nullptr;
    }
}

void
SnapshotStore::storeAnalysis(const svc::AnalysisKey &key,
                             const svc::AnalysisResult &result)
{
    writeSnapshot(analysisPath(key), Kind::Analysis,
                  analysisKeyBytes(key), analysisPayload(result));
    analysisStores_.fetch_add(1, std::memory_order_relaxed);
    storeMetrics().analysisStores.add(1);
}

std::shared_ptr<const svc::AnalysisResult>
SnapshotStore::loadAnalysis(const svc::AnalysisKey &key)
{
    std::string key_bytes;
    std::string payload;
    if (!readSnapshot(analysisPath(key), Kind::Analysis, key_bytes,
                      payload)) {
        return nullptr;
    }
    try {
        if (!(parseAnalysisKey(key_bytes) == key))
            fatal("stored key does not match the requested key");
        auto result = std::make_shared<const svc::AnalysisResult>(
            parseAnalysisPayload(payload));
        analysisLoads_.fetch_add(1, std::memory_order_relaxed);
        storeMetrics().analysisLoads.add(1);
        return result;
    } catch (const FatalError &err) {
        loadErrors_.fetch_add(1, std::memory_order_relaxed);
        storeMetrics().loadErrors.add(1);
        warn("snapshot store: rejecting '", analysisPath(key), "': ",
             err.what());
        return nullptr;
    }
}

std::vector<SnapshotStore::GridEntry>
SnapshotStore::loadAllGrids()
{
    std::vector<GridEntry> entries;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(directory_)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("grid-", 0) != 0 ||
            name.size() < 5 || name.substr(name.size() - 5) != ".snap") {
            continue;
        }
        std::string key_bytes;
        std::string payload;
        if (!readSnapshot(entry.path().string(), Kind::Grid, key_bytes,
                          payload)) {
            continue;
        }
        try {
            GridEntry loaded;
            loaded.key = parseGridKey(key_bytes);
            loaded.grid = std::make_shared<const MeasuredGrid>(
                loadGridBinaryFromString(payload));
            gridLoads_.fetch_add(1, std::memory_order_relaxed);
            storeMetrics().gridLoads.add(1);
            entries.push_back(std::move(loaded));
        } catch (const FatalError &err) {
            loadErrors_.fetch_add(1, std::memory_order_relaxed);
            storeMetrics().loadErrors.add(1);
            warn("snapshot store: rejecting '", entry.path().string(),
                 "': ", err.what());
        }
    }
    return entries;
}

std::vector<SnapshotStore::AnalysisEntry>
SnapshotStore::loadAllAnalyses()
{
    std::vector<AnalysisEntry> entries;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(directory_)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("analysis-", 0) != 0 ||
            name.size() < 5 || name.substr(name.size() - 5) != ".snap") {
            continue;
        }
        std::string key_bytes;
        std::string payload;
        if (!readSnapshot(entry.path().string(), Kind::Analysis,
                          key_bytes, payload)) {
            continue;
        }
        try {
            AnalysisEntry loaded;
            loaded.key = parseAnalysisKey(key_bytes);
            loaded.result = std::make_shared<const svc::AnalysisResult>(
                parseAnalysisPayload(payload));
            analysisLoads_.fetch_add(1, std::memory_order_relaxed);
            storeMetrics().analysisLoads.add(1);
            entries.push_back(std::move(loaded));
        } catch (const FatalError &err) {
            loadErrors_.fetch_add(1, std::memory_order_relaxed);
            storeMetrics().loadErrors.add(1);
            warn("snapshot store: rejecting '", entry.path().string(),
                 "': ", err.what());
        }
    }
    return entries;
}

SnapshotStore::Stats
SnapshotStore::stats() const
{
    Stats stats;
    stats.gridStores = gridStores_.load(std::memory_order_relaxed);
    stats.gridLoads = gridLoads_.load(std::memory_order_relaxed);
    stats.analysisStores =
        analysisStores_.load(std::memory_order_relaxed);
    stats.analysisLoads = analysisLoads_.load(std::memory_order_relaxed);
    stats.loadErrors = loadErrors_.load(std::memory_order_relaxed);
    return stats;
}

} // namespace daemon
} // namespace mcdvfs
