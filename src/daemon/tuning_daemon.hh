/**
 * @file
 * Long-running fleet tuning daemon: an async request pipeline over
 * svc::CharacterizationService.
 *
 * The paper's §VII tuner is a per-device loop; this daemon is the
 * fleet-scale serving shape of the same computation.  Requests flow
 * through four stages:
 *
 *   submit() --> bounded queue --> batcher --> grid stage --> analysis
 *               (admission       (coalesce    (GridCache /   stage
 *                control,         by grid      build over    (Analysis-
 *                load-shed)       fingerprint) the pool)      Cache)
 *
 *  - Admission control: the submit queue is bounded; once its depth
 *    reaches the shed watermark, new requests are rejected immediately
 *    with a reason (the future still resolves — callers never hang),
 *    counted in daemon.shed_*.  A saturated daemon degrades by
 *    shedding load, not by growing an unbounded backlog.
 *  - Batching/coalescing: a dedicated batcher thread drains up to
 *    maxBatch requests at a time and groups them by grid fingerprint
 *    (workload, space, config); each group characterizes its grid once
 *    and fans the per-request analyses from it.  Groups run as
 *    independent pool tasks, so distinct grids characterize
 *    concurrently.
 *  - Persistence: with a SnapshotStore attached, every fresh grid
 *    build and fresh analysis is written through to the store, and
 *    construction warm-loads every stored snapshot into the caches —
 *    a restarted daemon answers its first requests from the store
 *    instead of recharacterizing the fleet (snapshots round-trip
 *    bit-identically, so warm results equal cold results exactly).
 *  - Shutdown: drain() stops admission (Draining sheds), finishes the
 *    queue and every in-flight batch, then drains the pool — no
 *    accepted request is ever dropped.
 *
 * Metrics live under the daemon.* namespace (docs/OBSERVABILITY.md).
 */

#ifndef MCDVFS_DAEMON_TUNING_DAEMON_HH
#define MCDVFS_DAEMON_TUNING_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/snapshot_store.hh"
#include "obs/journal.hh"
#include "obs/metrics.hh"
#include "svc/characterization_service.hh"

namespace mcdvfs
{
namespace daemon
{

/** Why a request was rejected instead of tuned. */
enum class ShedReason
{
    None = 0,     ///< not shed: the response carries a result
    QueueFull,    ///< queue depth at or above the shed watermark
    Draining,     ///< daemon is shutting down
};

/** Human-readable label of a shed reason. */
const char *shedReasonName(ShedReason reason);

/** The daemon's answer to one submitted request. */
struct DaemonResponse
{
    /** Valid (grid != nullptr) only when shed == None. */
    svc::TuningResult result;
    ShedReason shed = ShedReason::None;
    /** Nanoseconds from submit() to queue exit (0 when shed). */
    std::uint64_t queueNs = 0;
    /** Nanoseconds in the grid stage (cache lookup or build). */
    std::uint64_t gridNs = 0;
    /** Nanoseconds in the analysis stage. */
    std::uint64_t analysisNs = 0;
    /** Nanoseconds from submit() to completion. */
    std::uint64_t totalNs = 0;

    bool ok() const { return shed == ShedReason::None; }
};

/** Sizing and policy knobs of a TuningDaemon. */
struct DaemonOptions
{
    /** Service sizing (pool workers, cache capacities). */
    svc::ServiceOptions service;
    /** Hard bound on queued (admitted, not yet dispatched) requests. */
    std::size_t queueCapacity = 4096;
    /**
     * Queue depth at which admission control starts shedding; 0 means
     * "at capacity".  A watermark below capacity sheds early so the
     * queue keeps headroom for bursts already admitted.
     */
    std::size_t shedWatermark = 0;
    /** Most requests the batcher dispatches as one batch. */
    std::size_t maxBatch = 128;
    /**
     * Snapshot store directory; empty disables persistence.  When set,
     * construction warm-loads every stored snapshot and every fresh
     * grid/analysis is written through.
     */
    std::string storeDir;
};

/** Counters summarizing a daemon's lifetime (see also daemon.*). */
struct DaemonStats
{
    std::uint64_t admitted = 0;
    std::uint64_t shedQueueFull = 0;
    std::uint64_t shedDraining = 0;
    std::uint64_t batches = 0;
    /** Requests that shared a batch group with an earlier request. */
    std::uint64_t coalesced = 0;
    std::uint64_t completed = 0;
    /**
     * Analyses that resumed from an incremental checkpoint of a
     * shorter content prefix instead of recomputing the full history.
     */
    std::uint64_t analysisResumed = 0;
    /** Grid snapshots warm-loaded at construction. */
    std::uint64_t warmGrids = 0;
    /** Analysis snapshots warm-loaded at construction. */
    std::uint64_t warmAnalyses = 0;
};

/** The long-running server loop (one instance per process, usually). */
class TuningDaemon
{
  public:
    using Options = DaemonOptions;

    /**
     * Build the service, warm-load the snapshot store (when
     * configured), and start the batcher thread.  The daemon accepts
     * requests as soon as the constructor returns.
     */
    explicit TuningDaemon(
        const SystemConfig &config = SystemConfig::paperDefault(),
        const Options &options = Options());

    /** Drains (if not already drained) and stops the batcher. */
    ~TuningDaemon();

    TuningDaemon(const TuningDaemon &) = delete;
    TuningDaemon &operator=(const TuningDaemon &) = delete;

    /**
     * Submit one request.  Never blocks on the pipeline and never
     * throws for capacity reasons: a shed request resolves its future
     * immediately with the shed reason filled in.
     */
    std::future<DaemonResponse> submit(const svc::TuningRequest &request);

    /**
     * Graceful shutdown: stop admitting (subsequent submits shed with
     * Draining), finish every queued and in-flight request, then drain
     * the pool.  Idempotent.
     */
    void drain();

    /** Requests admitted but not yet dispatched to the pool. */
    std::size_t queueDepth() const;

    DaemonStats stats() const;
    svc::CharacterizationService &service() { return service_; }
    SnapshotStore *store() { return store_.get(); }

    /**
     * Attach a journal: every request (served or shed) appends one
     * RequestRecord carrying its request/class ids, stage latencies
     * and cache outcomes.  Set before traffic; the journal must
     * outlive the daemon.
     */
    void setJournal(obs::DecisionJournal *journal) { journal_ = journal; }

  private:
    /** One admitted request waiting in the submit queue. */
    struct Pending
    {
        svc::TuningRequest request;
        std::promise<DaemonResponse> promise;
        obs::Clock::time_point submittedAt;
        /** Process-unique request id (also the trace flow id). */
        std::uint64_t requestId = 0;
        /** FNV-1a hash of the workload class name. */
        std::uint64_t classId = 0;
    };

    void warmLoad();
    void batcherLoop();
    /** Dispatch one drained batch as per-grid-group pool tasks. */
    void dispatchBatch(std::vector<Pending> batch);
    /** Grid stage + analysis stage for one coalesced group. */
    void runGroup(const svc::GridKey &key,
                  std::shared_ptr<std::vector<Pending>> members);
    /** Resolve a request immediately with a shed response. */
    static void shed(std::promise<DaemonResponse> promise,
                     ShedReason reason);

    SystemConfig config_;
    Options options_;
    svc::CharacterizationService service_;
    std::unique_ptr<SnapshotStore> store_;
    obs::DecisionJournal *journal_ = nullptr;

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<Pending> queue_;
    bool draining_ = false;

    /** In-flight batch-group futures, reaped as they complete. */
    std::mutex inflightMutex_;
    std::vector<std::future<void>> inflight_;

    /** Serializes drain() callers (drain is idempotent). */
    std::mutex drainMutex_;

    std::atomic<std::uint64_t> admitted_{0};
    std::atomic<std::uint64_t> shedQueueFull_{0};
    std::atomic<std::uint64_t> shedDraining_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> coalesced_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> analysisResumed_{0};
    std::uint64_t warmGrids_ = 0;
    std::uint64_t warmAnalyses_ = 0;

    std::thread batcher_;
};

} // namespace daemon
} // namespace mcdvfs

#endif // MCDVFS_DAEMON_TUNING_DAEMON_HH
