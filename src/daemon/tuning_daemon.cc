#include "daemon/tuning_daemon.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mcdvfs
{
namespace daemon
{

namespace
{

/** Process-wide daemon metrics (all instances share them). */
struct DaemonMetrics
{
    obs::Gauge queueDepth;
    obs::Counter submitted;
    obs::Counter admitted;
    obs::Counter shed;
    obs::Counter shedQueueFull;
    obs::Counter shedDraining;
    /** Labeled views of `shed` (reasons sum to the total). */
    obs::Counter shedReasonQueueFull;
    obs::Counter shedReasonDraining;
    obs::Counter batches;
    obs::Counter coalesced;
    obs::Counter completed;
    obs::Counter analysisResumed;
    obs::Histogram queueWaitNs;
    obs::Histogram gridStageNs;
    obs::Histogram analysisStageNs;
    obs::Histogram requestNs;

    DaemonMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        const auto latency = obs::MetricsRegistry::latencyBucketsNs();
        queueDepth = reg.gauge("daemon.queue_depth");
        submitted = reg.counter("daemon.submitted");
        admitted = reg.counter("daemon.admitted");
        shed = reg.counter("daemon.shed");
        shedQueueFull = reg.counter("daemon.shed_queue_full");
        shedDraining = reg.counter("daemon.shed_draining");
        shedReasonQueueFull =
            reg.counter("daemon.shed", {{"reason", "queue_full"}});
        shedReasonDraining =
            reg.counter("daemon.shed", {{"reason", "draining"}});
        batches = reg.counter("daemon.batches");
        coalesced = reg.counter("daemon.coalesced");
        completed = reg.counter("daemon.completed");
        analysisResumed = reg.counter("daemon.analysis_resumed");
        queueWaitNs = reg.histogram("daemon.queue_wait_ns", latency);
        gridStageNs = reg.histogram("daemon.grid_stage_ns", latency);
        analysisStageNs =
            reg.histogram("daemon.analysis_stage_ns", latency);
        requestNs = reg.histogram("daemon.request_ns", latency);
    }
};

DaemonMetrics &
daemonMetrics()
{
    static DaemonMetrics metrics;
    return metrics;
}

/**
 * Process-wide request id allocator: unique across daemon instances
 * (a warm restart in the same process keeps extending the same trace
 * flow id space, so flows never collide).
 */
std::uint64_t
nextRequestId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

/** FNV-1a of a workload class name (the journal/trace class id). */
std::uint64_t
classIdOf(const std::string &name)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : name) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

const char *
shedReasonName(ShedReason reason)
{
    switch (reason) {
    case ShedReason::None:
        return "none";
    case ShedReason::QueueFull:
        return "queue-full";
    case ShedReason::Draining:
        return "draining";
    }
    return "unknown";
}

TuningDaemon::TuningDaemon(const SystemConfig &config,
                           const Options &options)
    : config_(config), options_(options),
      service_(config, options.service)
{
    if (options_.queueCapacity == 0)
        fatal("tuning daemon: queue capacity must be >= 1");
    if (options_.maxBatch == 0)
        fatal("tuning daemon: max batch must be >= 1");
    if (options_.shedWatermark == 0 ||
        options_.shedWatermark > options_.queueCapacity) {
        options_.shedWatermark = options_.queueCapacity;
    }
    if (!options_.storeDir.empty()) {
        store_ = std::make_unique<SnapshotStore>(options_.storeDir);
        warmLoad();
    }
    batcher_ = std::thread([this] { batcherLoop(); });
}

TuningDaemon::~TuningDaemon()
{
    drain();
}

void
TuningDaemon::warmLoad()
{
    obs::TraceSpan warm_span("daemon.warm_load");
    for (SnapshotStore::GridEntry &entry : store_->loadAllGrids()) {
        service_.primeGrid(entry.key, std::move(entry.grid));
        ++warmGrids_;
    }
    for (SnapshotStore::AnalysisEntry &entry :
         store_->loadAllAnalyses()) {
        service_.primeAnalysis(entry.key, std::move(entry.result));
        ++warmAnalyses_;
    }
    if (warmGrids_ + warmAnalyses_ > 0) {
        inform("tuning daemon: warm-loaded ", warmGrids_,
               " grid and ", warmAnalyses_,
               " analysis snapshots from '", store_->directory(), "'");
    }
}

void
TuningDaemon::shed(std::promise<DaemonResponse> promise,
                   ShedReason reason)
{
    DaemonResponse response;
    response.shed = reason;
    promise.set_value(std::move(response));
}

std::future<DaemonResponse>
TuningDaemon::submit(const svc::TuningRequest &request)
{
    std::promise<DaemonResponse> promise;
    std::future<DaemonResponse> future = promise.get_future();

    // Request scope starts here: the id doubles as the trace flow id
    // and the journal's request_id, so one fleet request is
    // reconstructible across threads and artifacts.
    const std::uint64_t request_id = nextRequestId();
    const std::uint64_t class_id = classIdOf(request.workload.name());
    obs::ScopedTraceContext context(
        obs::TraceContext{request_id, class_id});
    daemonMetrics().submitted.add(1);

    ShedReason reason = ShedReason::None;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_) {
            reason = ShedReason::Draining;
        } else if (queue_.size() >= options_.shedWatermark) {
            reason = ShedReason::QueueFull;
        } else {
            queue_.push_back(Pending{request, std::move(promise),
                                     obs::metricsNow(), request_id,
                                     class_id});
            daemonMetrics().queueDepth.set(
                static_cast<std::int64_t>(queue_.size()));
        }
    }

    if (reason != ShedReason::None) {
        daemonMetrics().shed.add(1);
        if (reason == ShedReason::Draining) {
            shedDraining_.fetch_add(1, std::memory_order_relaxed);
            daemonMetrics().shedDraining.add(1);
            daemonMetrics().shedReasonDraining.add(1);
            obs::traceInstant("daemon.shed_draining", request_id);
        } else {
            shedQueueFull_.fetch_add(1, std::memory_order_relaxed);
            daemonMetrics().shedQueueFull.add(1);
            daemonMetrics().shedReasonQueueFull.add(1);
            obs::traceInstant("daemon.shed_queue_full", request_id);
        }
        if (journal_ != nullptr) {
            obs::RequestRecord record;
            record.requestId = request_id;
            record.classId = class_id;
            record.workload = request.workload.name();
            record.budget = request.budget;
            record.threshold = request.threshold;
            record.shed = true;
            journal_->appendRequest(std::move(record));
        }
        shed(std::move(promise), reason);
        return future;
    }

    admitted_.fetch_add(1, std::memory_order_relaxed);
    daemonMetrics().admitted.add(1);
    obs::traceInstant("daemon.submit", request_id);
    wake_.notify_one();
    return future;
}

void
TuningDaemon::batcherLoop()
{
    for (;;) {
        std::vector<Pending> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return draining_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // draining and nothing left to dispatch
            const std::size_t take =
                std::min(options_.maxBatch, queue_.size());
            batch.reserve(take);
            for (std::size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            daemonMetrics().queueDepth.set(
                static_cast<std::int64_t>(queue_.size()));
        }
        dispatchBatch(std::move(batch));
    }
}

void
TuningDaemon::dispatchBatch(std::vector<Pending> batch)
{
    obs::TraceSpan batch_span("daemon.dispatch_batch", batch.size());
    batches_.fetch_add(1, std::memory_order_relaxed);
    daemonMetrics().batches.add(1);

    // Coalesce by grid identity: every group characterizes its grid
    // once; distinct groups run as independent pool tasks.
    struct Group
    {
        svc::GridKey key;
        std::shared_ptr<std::vector<Pending>> members;
    };
    std::map<std::uint64_t, Group> groups;
    for (Pending &pending : batch) {
        const svc::GridKey key = service_.keyFor(
            pending.request.workload, pending.request.space);
        Group &group = groups[key.combined()];
        if (group.members == nullptr) {
            group.key = key;
            group.members = std::make_shared<std::vector<Pending>>();
        } else {
            coalesced_.fetch_add(1, std::memory_order_relaxed);
            daemonMetrics().coalesced.add(1);
        }
        group.members->push_back(std::move(pending));
    }

    std::lock_guard<std::mutex> lock(inflightMutex_);
    // Reap finished groups so the in-flight list stays small.
    inflight_.erase(
        std::remove_if(inflight_.begin(), inflight_.end(),
                       [](std::future<void> &f) {
                           return f.wait_for(std::chrono::seconds(0)) ==
                                  std::future_status::ready;
                       }),
        inflight_.end());
    for (auto &[digest, group] : groups) {
        inflight_.push_back(service_.pool().submit(
            [this, key = group.key, members = group.members] {
                runGroup(key, members);
            }));
    }
}

void
TuningDaemon::runGroup(const svc::GridKey &key,
                       std::shared_ptr<std::vector<Pending>> members)
{
    obs::TraceSpan group_span("daemon.run_group", members->size());
    std::size_t resolved = 0;
    try {
        // Grid stage: one characterization (or cache hit) per group,
        // attributed to the first member's request flow.
        const obs::Clock::time_point grid_start = obs::metricsNow();
        bool grid_hit = false;
        const Pending &lead = members->front();
        std::shared_ptr<const MeasuredGrid> grid;
        {
            obs::ScopedTraceContext grid_context(
                obs::TraceContext{lead.requestId, lead.classId});
            grid = service_.grid(lead.request.workload,
                                 lead.request.space, grid_hit);
        }
        const std::uint64_t grid_ns = obs::elapsedNs(grid_start);
        daemonMetrics().gridStageNs.record(grid_ns);
        if (!grid_hit && store_ != nullptr)
            store_->storeGrid(key, *grid);

        // Analysis stage: one per member (later members share the
        // grid, so their grid stage is a hit by construction).
        const std::uint64_t digest = key.combined();
        for (Pending &pending : *members) {
            // Re-enter the member's request scope on this pool
            // thread: svc/analysis/arbiter spans and journal fills
            // below all stamp its request id.
            obs::ScopedTraceContext member_context(
                obs::TraceContext{pending.requestId, pending.classId});
            const std::uint64_t queue_ns =
                obs::elapsedNs(pending.submittedAt);
            daemonMetrics().queueWaitNs.record(queue_ns);

            const obs::Clock::time_point analysis_start =
                obs::metricsNow();
            svc::TuningResult result = service_.analyze(
                pending.request, digest, grid,
                resolved == 0 ? grid_hit : true);
            const std::uint64_t analysis_ns =
                obs::elapsedNs(analysis_start);
            daemonMetrics().analysisStageNs.record(analysis_ns);
            if (result.analysisResumed) {
                analysisResumed_.fetch_add(1,
                                           std::memory_order_relaxed);
                daemonMetrics().analysisResumed.add(1);
            }

            if (!result.analysisCacheHit && store_ != nullptr) {
                svc::AnalysisResult snapshot;
                snapshot.optimal = result.optimal;
                snapshot.clusters = result.clusters;
                snapshot.regions = result.regions;
                store_->storeAnalysis(
                    svc::AnalysisKey{digest, pending.request.budget,
                                     pending.request.threshold},
                    snapshot);
            }

            if (journal_ != nullptr) {
                obs::RequestRecord record;
                record.requestId = pending.requestId;
                record.classId = pending.classId;
                record.workload = pending.request.workload.name();
                record.budget = pending.request.budget;
                record.threshold = pending.request.threshold;
                record.cacheHit = result.cacheHit;
                record.analysisCacheHit = result.analysisCacheHit;
                record.analysisResumed = result.analysisResumed;
                record.queueWaitNs = queue_ns;
                record.requestNs = obs::elapsedNs(pending.submittedAt);
                record.regions = result.regions.size();
                journal_->appendRequest(std::move(record));
            }

            DaemonResponse response;
            response.result = std::move(result);
            response.queueNs = queue_ns;
            response.gridNs = grid_ns;
            response.analysisNs = analysis_ns;
            response.totalNs = obs::elapsedNs(pending.submittedAt);
            daemonMetrics().requestNs.record(response.totalNs);
            completed_.fetch_add(1, std::memory_order_relaxed);
            daemonMetrics().completed.add(1);
            obs::MetricsRegistry::global()
                .counter("daemon.completed",
                         {{"wl", pending.request.workload.name()}})
                .add(1);
            pending.promise.set_value(std::move(response));
            ++resolved;
        }
    } catch (...) {
        // A grid- or analysis-stage failure fails every member that
        // has not been resolved yet; the caller sees the exception
        // through its future.
        for (std::size_t i = resolved; i < members->size(); ++i) {
            (*members)[i].promise.set_exception(
                std::current_exception());
        }
    }
}

void
TuningDaemon::drain()
{
    std::lock_guard<std::mutex> drain_lock(drainMutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        draining_ = true;
    }
    wake_.notify_all();
    if (batcher_.joinable())
        batcher_.join();

    // Every dispatched group must finish before the pool drains (a
    // drained pool rejects the service's internal batch submits).
    std::vector<std::future<void>> inflight;
    {
        std::lock_guard<std::mutex> lock(inflightMutex_);
        inflight.swap(inflight_);
    }
    for (std::future<void> &future : inflight)
        future.get();

    if (!service_.pool().draining())
        service_.pool().drain();
}

std::size_t
TuningDaemon::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

DaemonStats
TuningDaemon::stats() const
{
    DaemonStats stats;
    stats.admitted = admitted_.load(std::memory_order_relaxed);
    stats.shedQueueFull =
        shedQueueFull_.load(std::memory_order_relaxed);
    stats.shedDraining = shedDraining_.load(std::memory_order_relaxed);
    stats.batches = batches_.load(std::memory_order_relaxed);
    stats.coalesced = coalesced_.load(std::memory_order_relaxed);
    stats.completed = completed_.load(std::memory_order_relaxed);
    stats.analysisResumed =
        analysisResumed_.load(std::memory_order_relaxed);
    stats.warmGrids = warmGrids_;
    stats.warmAnalyses = warmAnalyses_;
    return stats;
}

} // namespace daemon
} // namespace mcdvfs
