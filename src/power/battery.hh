/**
 * @file
 * Simple smartphone battery model.
 *
 * The paper's motivation (§I) is battery lifetime as the top user
 * complaint; inefficiency expresses "the amount of battery life that
 * the user is willing to sacrifice to improve performance" (§VIII).
 * Battery turns the library's energy numbers into lifetime numbers: a
 * nominal capacity drained by task energy, with remaining-life
 * estimates under an average power draw.
 */

#ifndef MCDVFS_POWER_BATTERY_HH
#define MCDVFS_POWER_BATTERY_HH

#include "common/units.hh"

namespace mcdvfs
{

/** Battery electrical configuration. */
struct BatteryConfig
{
    /** Nominal capacity in watt-hours (~3000 mAh at 3.7 V). */
    double capacityWh = 11.1;
    /** Fraction of nominal capacity usable before shutdown. */
    double usableFraction = 0.92;
};

/** Discharge-only battery state. */
class Battery
{
  public:
    /** @throws FatalError on non-positive capacity */
    explicit Battery(const BatteryConfig &config = {});

    /** Usable energy when full. */
    Joules capacity() const { return capacity_; }

    /** Energy left. */
    Joules remaining() const { return remaining_; }

    /** State of charge in [0, 1]. */
    double stateOfCharge() const;

    /** True once the usable capacity is exhausted. */
    bool depleted() const { return remaining_ <= 0.0; }

    /**
     * Drain task energy; clamps at empty.
     *
     * @return energy actually drained
     */
    Joules drain(Joules energy);

    /** Time until empty at a constant average power draw. */
    Seconds lifetimeAt(Watts average_power) const;

  private:
    Joules capacity_;
    Joules remaining_;
};

} // namespace mcdvfs

#endif // MCDVFS_POWER_BATTERY_HH
