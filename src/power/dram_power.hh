/**
 * @file
 * DRAMPower-style LPDDR3 energy model.
 *
 * Follows the DRAMPower / Micron "Calculating Memory System Power"
 * method the paper uses: per-operation energies are differences of
 * datasheet IDD currents times rail voltage times the operation's
 * duration, and background power is standby current times voltage.
 * LPDDR3 has two supply rails — VDD1 = 1.8 V (core) and VDD2 = 1.2 V
 * (array/IO) — both fixed: the paper scales memory *frequency* only.
 *
 * Frequency scaling (Micron technote): currents are specified at the
 * part's maximum clock and have a static component plus a clocked
 * component proportional to frequency.  Background power therefore
 * drops almost linearly with memory frequency — the effect that makes
 * low memory frequency attractive for CPU-bound phases (the paper's
 * bzip2 example: 1/4 the background energy at 200 vs 800 MHz).
 */

#ifndef MCDVFS_POWER_DRAM_POWER_HH
#define MCDVFS_POWER_DRAM_POWER_HH

#include <vector>

#include "common/units.hh"
#include "dvfs/frequency_ladder.hh"
#include "mem/dram.hh"

namespace mcdvfs
{

/** Datasheet-style current pair: one value per supply rail (amps). */
struct RailCurrents
{
    double vdd1 = 0.0;  ///< current on the 1.8 V rail
    double vdd2 = 0.0;  ///< current on the 1.2 V rail
};

/** LPDDR3 electrical parameters (representative Micron 16Gb x32). */
struct DramPowerParams
{
    Volts vdd1 = 1.8;
    Volts vdd2 = 1.2;
    /** Clock at which the IDD currents are specified. */
    Hertz specFreq = megaHertz(800);

    // Currents are for the full two-die x32 module (per-die datasheet
    // values doubled), giving phone-class module power: ~90 mW active
    // standby at 800 MHz, ~3.5 nJ per line transfer.
    RailCurrents idd0{milliAmps(16.0), milliAmps(150.0)};   ///< act-pre
    RailCurrents idd2n{milliAmps(1.6), milliAmps(46.0)};    ///< pre stby
    RailCurrents idd3n{milliAmps(2.8), milliAmps(56.0)};    ///< act stby
    RailCurrents idd4r{milliAmps(10.0), milliAmps(400.0)};  ///< read
    RailCurrents idd4w{milliAmps(20.0), milliAmps(350.0)};  ///< write
    RailCurrents idd5{milliAmps(56.0), milliAmps(260.0)};   ///< refresh
    /** Precharge power-down current (low-power idle state). */
    RailCurrents idd2p{milliAmps(0.8), milliAmps(10.0)};

    /**
     * MemScale-style active low-power modes: when enabled, the
     * controller drops idle fractions of the window into precharge
     * power-down instead of active standby.  Off by default (the
     * paper's configuration scales frequency only); an extension
     * point for studying deeper memory energy management under an
     * inefficiency budget.
     */
    bool enablePowerDown = false;
    /** Fraction of idle time actually spendable powered down. */
    double powerDownResidency = 0.7;

    /** Static fraction of standby current (rest scales with clock). */
    double backgroundStaticFrac = 0.10;
    /** Static fraction of burst/operation currents. */
    double burstStaticFrac = 0.20;

    /** Row cycle time tRC = tRAS + tRP (activate-energy window). */
    Seconds tRc = nanoSeconds(60.0);
    /** Refresh interval and refresh cycle time. */
    Seconds tRefi = microSeconds(3.9);
    Seconds tRfc = nanoSeconds(130.0);
};

/** Per-sample DRAM energy decomposition. */
struct DramEnergyBreakdown
{
    Joules background = 0.0;  ///< standby + refresh over the window
    Joules activate = 0.0;    ///< row activate/precharge
    Joules readWrite = 0.0;   ///< burst data movement

    Joules total() const { return background + activate + readWrite; }
};

/**
 * Precomputed energy coefficients of one memory frequency: everything
 * energy() derives per call that depends only on the clock.  Built
 * once per grid build so the kernel's per-cell memory energy is three
 * multiply-adds over these values.
 */
struct DramFreqCoefficients
{
    /** Active-standby + refresh background power. */
    Watts activeBackground = 0.0;
    /** Precharge power-down background power (power-down mixing). */
    Watts powerDownBackground = 0.0;
    Joules activateEnergy = 0.0;  ///< one row activate + precharge
    Joules readEnergy = 0.0;      ///< one line read burst
    Joules writeEnergy = 0.0;     ///< one line write burst
};

/** IDD-based LPDDR3 power/energy model with frequency scaling. */
class DramPowerModel
{
  public:
    /**
     * @param params electrical parameters
     * @param timing device timing (for burst durations)
     * @param config device organization
     * @throws FatalError on inconsistent parameters
     */
    DramPowerModel(const DramPowerParams &params, const DramTiming &timing,
                   const DramConfig &config);

    /** Model with the paper's representative configuration. */
    static DramPowerModel paperDefault();

    /** Standby (background + refresh) power at @c mem_freq. */
    Watts backgroundPower(Hertz mem_freq) const;

    /**
     * Background power when the channel is busy only a fraction of
     * the time and power-down is enabled: idle time (derated by the
     * achievable residency) drops to the power-down current.  Falls
     * back to backgroundPower() when power-down is disabled.
     *
     * @param channel_util fraction of the window with bus activity
     */
    Watts backgroundPower(Hertz mem_freq, double channel_util) const;

    /** Energy of one row activate + precharge cycle. */
    Joules activateEnergy(Hertz mem_freq) const;

    /** Energy of one line read burst. */
    Joules readEnergy(Hertz mem_freq) const;

    /** Energy of one line write burst. */
    Joules writeEnergy(Hertz mem_freq) const;

    /**
     * Total DRAM energy of an execution window of @c duration seconds
     * whose transactions are summarized by @c stats.
     */
    DramEnergyBreakdown energy(const DramStats &stats, Hertz mem_freq,
                               Seconds duration) const;

    /**
     * Like energy(), with channel utilization available so power-down
     * can be applied when enabled.
     */
    DramEnergyBreakdown energy(const DramStats &stats, Hertz mem_freq,
                               Seconds duration,
                               double channel_util) const;

    /**
     * Clock-dependent coefficients at @c mem_freq.  energy() factors
     * through exactly these values, so a kernel evaluating from the
     * table is bit-identical to per-cell energy() calls.
     */
    DramFreqCoefficients coefficients(Hertz mem_freq) const;

    /** Coefficients for every step of a memory frequency ladder. */
    std::vector<DramFreqCoefficients>
    table(const FrequencyLadder &ladder) const;

    const DramPowerParams &params() const { return params_; }

  private:
    /** Scale a spec current to @c mem_freq with a static floor. */
    double scaledCurrent(double amps_at_spec, double static_frac,
                         Hertz mem_freq) const;

    /** Rail-weighted power for a current pair. */
    Watts railPower(const RailCurrents &currents, double static_frac,
                    Hertz mem_freq) const;

    DramPowerParams params_;
    DramTiming timing_;
    DramConfig config_;
};

} // namespace mcdvfs

#endif // MCDVFS_POWER_DRAM_POWER_HH
