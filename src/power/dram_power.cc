#include "power/dram_power.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mcdvfs
{

DramPowerModel::DramPowerModel(const DramPowerParams &params,
                               const DramTiming &timing,
                               const DramConfig &config)
    : params_(params), timing_(timing), config_(config)
{
    config_.validate();
    if (params_.specFreq <= 0.0)
        fatal("dram power model: specFreq must be positive");
    if (params_.vdd1 <= 0.0 || params_.vdd2 <= 0.0)
        fatal("dram power model: rail voltages must be positive");
    auto frac_ok = [](double v) { return v >= 0.0 && v <= 1.0; };
    if (!frac_ok(params_.backgroundStaticFrac) ||
        !frac_ok(params_.burstStaticFrac)) {
        fatal("dram power model: static fractions must be in [0,1]");
    }
}

DramPowerModel
DramPowerModel::paperDefault()
{
    return DramPowerModel(DramPowerParams{}, DramTiming{}, DramConfig{});
}

double
DramPowerModel::scaledCurrent(double amps_at_spec, double static_frac,
                              Hertz mem_freq) const
{
    const double clock_ratio = mem_freq / params_.specFreq;
    return amps_at_spec * (static_frac + (1.0 - static_frac) * clock_ratio);
}

Watts
DramPowerModel::railPower(const RailCurrents &currents, double static_frac,
                          Hertz mem_freq) const
{
    return scaledCurrent(currents.vdd1, static_frac, mem_freq) *
               params_.vdd1 +
           scaledCurrent(currents.vdd2, static_frac, mem_freq) *
               params_.vdd2;
}

Watts
DramPowerModel::backgroundPower(Hertz mem_freq) const
{
    // Open-page policy keeps rows open most of the time, so active
    // standby (IDD3N) is the dominant background state.
    const Watts standby =
        railPower(params_.idd3n, params_.backgroundStaticFrac, mem_freq);
    // Refresh adds (IDD5 - IDD3N) for tRFC out of every tREFI; refresh
    // current is set by the array, not the interface clock.
    const Watts refresh_delta =
        (params_.idd5.vdd1 - params_.idd3n.vdd1) * params_.vdd1 +
        (params_.idd5.vdd2 - params_.idd3n.vdd2) * params_.vdd2;
    const Watts refresh = refresh_delta * (params_.tRfc / params_.tRefi);
    return standby + refresh;
}

Watts
DramPowerModel::backgroundPower(Hertz mem_freq,
                                double channel_util) const
{
    const Watts active = backgroundPower(mem_freq);
    if (!params_.enablePowerDown)
        return active;
    const double util = std::clamp(channel_util, 0.0, 1.0);
    // Idle time the controller can actually spend powered down.
    const double down_frac =
        (1.0 - util) * std::clamp(params_.powerDownResidency, 0.0, 1.0);
    const Watts down =
        railPower(params_.idd2p, params_.backgroundStaticFrac,
                  mem_freq);
    // Refresh continues in power-down (self-refresh not modelled).
    return active * (1.0 - down_frac) + down * down_frac;
}

Joules
DramPowerModel::activateEnergy(Hertz mem_freq) const
{
    // (IDD0 - IDD3N) over one row cycle (Micron power technote).  The
    // activate current is array-dominated; apply the burst static
    // floor to its clocked share.
    const double delta1 =
        scaledCurrent(params_.idd0.vdd1, params_.burstStaticFrac,
                      mem_freq) -
        scaledCurrent(params_.idd3n.vdd1, params_.backgroundStaticFrac,
                      mem_freq);
    const double delta2 =
        scaledCurrent(params_.idd0.vdd2, params_.burstStaticFrac,
                      mem_freq) -
        scaledCurrent(params_.idd3n.vdd2, params_.backgroundStaticFrac,
                      mem_freq);
    const Watts power = std::max(0.0, delta1) * params_.vdd1 +
                        std::max(0.0, delta2) * params_.vdd2;
    return power * params_.tRc;
}

Joules
DramPowerModel::readEnergy(Hertz mem_freq) const
{
    const double delta1 =
        scaledCurrent(params_.idd4r.vdd1, params_.burstStaticFrac,
                      mem_freq) -
        scaledCurrent(params_.idd3n.vdd1, params_.backgroundStaticFrac,
                      mem_freq);
    const double delta2 =
        scaledCurrent(params_.idd4r.vdd2, params_.burstStaticFrac,
                      mem_freq) -
        scaledCurrent(params_.idd3n.vdd2, params_.backgroundStaticFrac,
                      mem_freq);
    const Watts power = std::max(0.0, delta1) * params_.vdd1 +
                        std::max(0.0, delta2) * params_.vdd2;
    return power * timing_.burstSeconds(mem_freq, config_);
}

Joules
DramPowerModel::writeEnergy(Hertz mem_freq) const
{
    const double delta1 =
        scaledCurrent(params_.idd4w.vdd1, params_.burstStaticFrac,
                      mem_freq) -
        scaledCurrent(params_.idd3n.vdd1, params_.backgroundStaticFrac,
                      mem_freq);
    const double delta2 =
        scaledCurrent(params_.idd4w.vdd2, params_.burstStaticFrac,
                      mem_freq) -
        scaledCurrent(params_.idd3n.vdd2, params_.backgroundStaticFrac,
                      mem_freq);
    const Watts power = std::max(0.0, delta1) * params_.vdd1 +
                        std::max(0.0, delta2) * params_.vdd2;
    return power * timing_.burstSeconds(mem_freq, config_);
}

DramFreqCoefficients
DramPowerModel::coefficients(Hertz mem_freq) const
{
    DramFreqCoefficients out;
    out.activeBackground = backgroundPower(mem_freq);
    out.powerDownBackground =
        railPower(params_.idd2p, params_.backgroundStaticFrac, mem_freq);
    out.activateEnergy = activateEnergy(mem_freq);
    out.readEnergy = readEnergy(mem_freq);
    out.writeEnergy = writeEnergy(mem_freq);
    return out;
}

std::vector<DramFreqCoefficients>
DramPowerModel::table(const FrequencyLadder &ladder) const
{
    std::vector<DramFreqCoefficients> table;
    table.reserve(ladder.size());
    for (const Hertz mem : ladder.steps())
        table.push_back(coefficients(mem));
    return table;
}

DramEnergyBreakdown
DramPowerModel::energy(const DramStats &stats, Hertz mem_freq,
                       Seconds duration) const
{
    return energy(stats, mem_freq, duration, /*channel_util=*/1.0);
}

DramEnergyBreakdown
DramPowerModel::energy(const DramStats &stats, Hertz mem_freq,
                       Seconds duration, double channel_util) const
{
    MCDVFS_ASSERT(duration >= 0.0, "negative window duration");
    DramEnergyBreakdown out;
    out.background =
        backgroundPower(mem_freq, channel_util) * duration;
    const Count activates = stats.rowClosed + stats.rowConflicts;
    out.activate =
        activateEnergy(mem_freq) * static_cast<double>(activates);
    out.readWrite =
        readEnergy(mem_freq) * static_cast<double>(stats.reads) +
        writeEnergy(mem_freq) * static_cast<double>(stats.writes);
    return out;
}

} // namespace mcdvfs
