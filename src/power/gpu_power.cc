#include "power/gpu_power.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mcdvfs
{

GpuPowerModel::GpuPowerModel(const GpuPowerParams &params,
                             const VoltageCurve &curve)
    : params_(params), curve_(curve)
{
    if (params_.peakDynamic <= 0.0 || params_.peakBackground < 0.0 ||
        params_.leakageAtVmax < 0.0) {
        fatal("gpu power model: calibration constants must be positive");
    }
}

VoltageCurve
GpuPowerModel::paperGpuCurve()
{
    return VoltageCurve(megaHertz(200), megaHertz(900), 0.65, 1.10);
}

GpuPowerModel
GpuPowerModel::paperDefault()
{
    return GpuPowerModel(GpuPowerParams{}, paperGpuCurve());
}

GpuPowerBreakdown
GpuPowerModel::power(Hertz freq, double activity) const
{
    const double act = std::clamp(activity, 0.0, 1.0);
    const GpuOperatingPoint point = operatingPoint(freq);

    GpuPowerBreakdown out;
    out.dynamic = point.dynamicScale * act;
    out.background = point.background;
    out.leakage = point.leakage;
    return out;
}

GpuOperatingPoint
GpuPowerModel::operatingPoint(Hertz freq) const
{
    MCDVFS_ASSERT(freq > 0.0, "gpu frequency must be positive");
    const Volts v = curve_.voltageAt(freq);
    const double v_ratio = v / curve_.vMax();
    const double f_ratio = freq / curve_.fMax();
    const double vf_scale = v_ratio * v_ratio * f_ratio;

    GpuOperatingPoint point;
    point.dynamicScale = params_.peakDynamic * vf_scale;
    point.background = params_.peakBackground * vf_scale;
    point.leakage = params_.leakageAtVmax * (v / curve_.vMax());
    return point;
}

std::vector<GpuOperatingPoint>
GpuPowerModel::table(const FrequencyLadder &ladder) const
{
    std::vector<GpuOperatingPoint> table;
    table.reserve(ladder.size());
    for (const Hertz f : ladder.steps())
        table.push_back(operatingPoint(f));
    return table;
}

Joules
GpuPowerModel::energy(Hertz freq, double activity, Seconds busy,
                      Seconds total) const
{
    MCDVFS_ASSERT(busy >= 0.0 && total >= busy,
                  "gpu busy window exceeds the sample");
    const GpuPowerBreakdown busy_power = power(freq, activity);
    return busy_power.dynamic * busy +
           (busy_power.background + busy_power.leakage) * total;
}

} // namespace mcdvfs
