#include "power/cpu_power.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mcdvfs
{

CpuPowerModel::CpuPowerModel(const CpuPowerParams &params,
                             const VoltageCurve &curve)
    : params_(params), curve_(curve)
{
    if (params_.peakDynamic <= 0.0 || params_.peakBackground < 0.0 ||
        params_.leakageAtVmax < 0.0) {
        fatal("cpu power model: calibration constants must be positive");
    }
    if (params_.stallActivity < 0.0 || params_.stallActivity > 1.0)
        fatal("cpu power model: stallActivity must be in [0,1]");
}

CpuPowerModel
CpuPowerModel::paperDefault()
{
    return CpuPowerModel(CpuPowerParams{}, VoltageCurve::paperCpu());
}

CpuPowerBreakdown
CpuPowerModel::power(Hertz freq, double activity) const
{
    const double act = std::clamp(activity, 0.0, 1.0);
    const CpuOperatingPoint point = operatingPoint(freq);

    CpuPowerBreakdown out;
    out.dynamic = point.dynamicScale * act;
    // Background power is clocked, so it scales like dynamic power
    // (paper §III-B) but does not depend on what the workload does.
    out.background = point.background;
    // Linear sub-threshold leakage model (Narendra et al.).
    out.leakage = point.leakage;
    return out;
}

CpuOperatingPoint
CpuPowerModel::operatingPoint(Hertz freq) const
{
    MCDVFS_ASSERT(freq > 0.0, "cpu frequency must be positive");
    const Volts v = curve_.voltageAt(freq);
    const double v_ratio = v / curve_.vMax();
    const double f_ratio = freq / curve_.fMax();
    const double vf_scale = v_ratio * v_ratio * f_ratio;

    CpuOperatingPoint point;
    point.dynamicScale = params_.peakDynamic * vf_scale;
    point.background = params_.peakBackground * vf_scale;
    point.leakage = params_.leakageAtVmax * (v / curve_.vMax());
    return point;
}

std::vector<CpuOperatingPoint>
CpuPowerModel::table(const FrequencyLadder &ladder) const
{
    std::vector<CpuOperatingPoint> table;
    table.reserve(ladder.size());
    for (const Hertz f : ladder.steps())
        table.push_back(operatingPoint(f));
    return table;
}

Joules
CpuPowerModel::energy(Hertz freq, double activity, Seconds busy,
                      Seconds stalled) const
{
    MCDVFS_ASSERT(busy >= 0.0 && stalled >= 0.0,
                  "negative execution time");
    const CpuPowerBreakdown busy_power = power(freq, activity);
    const CpuPowerBreakdown stall_power =
        power(freq, activity * params_.stallActivity);
    const Watts static_power = busy_power.background + busy_power.leakage;
    return busy_power.dynamic * busy + stall_power.dynamic * stalled +
           static_power * (busy + stalled);
}

} // namespace mcdvfs
