/**
 * @file
 * Empirical CPU power model in the paper's decomposition (§III-B):
 *
 *  - dynamic power     ∝ V² f, scaled by a workload activity factor;
 *  - background power  consumed by idle-but-clocked units, scaled the
 *    same way as dynamic power (the paper measures it as power-on-idle
 *    minus deep sleep);
 *  - leakage power     ∝ supply voltage (linear sub-threshold model),
 *    around 30% of peak at the top operating point.
 *
 * Calibration targets OMAP4430/Cortex-A9-class magnitudes (PandaBoard
 * measurements in the paper): roughly 1 W peak at 1 GHz / 1.25 V.
 */

#ifndef MCDVFS_POWER_CPU_POWER_HH
#define MCDVFS_POWER_CPU_POWER_HH

#include <vector>

#include "common/units.hh"
#include "dvfs/frequency_ladder.hh"
#include "power/opp.hh"

namespace mcdvfs
{

/** Power decomposition at one operating point. */
struct CpuPowerBreakdown
{
    Watts dynamic = 0.0;
    Watts background = 0.0;
    Watts leakage = 0.0;

    Watts total() const { return dynamic + background + leakage; }
};

/** Calibration constants of the empirical model. */
struct CpuPowerParams
{
    /** Dynamic power at fMax/vMax with activity factor 1. */
    Watts peakDynamic = 0.70;
    /** Background (clocked-idle) power at fMax/vMax. */
    Watts peakBackground = 0.50;
    /** Leakage power at vMax. */
    Watts leakageAtVmax = 0.13;
    /**
     * Residual activity while the core is stalled on memory (clock
     * gating is imperfect; speculative wakeups, prefetch, snoops).
     */
    double stallActivity = 0.20;
};

/**
 * Precomputed power coefficients of one (frequency, voltage) operating
 * point.  dynamicScale is peak dynamic power times the V²f scale — the
 * workload activity factor multiplies it per sample; background and
 * leakage are complete as-is.  Built once per grid build so the kernel
 * inner loop never touches the voltage curve.
 */
struct CpuOperatingPoint
{
    Watts dynamicScale = 0.0;  ///< dynamic power per unit activity
    Watts background = 0.0;    ///< clocked-idle power at this point
    Watts leakage = 0.0;       ///< sub-threshold leakage at this point
};

/** Voltage- and frequency-dependent CPU power/energy model. */
class CpuPowerModel
{
  public:
    /**
     * @param params calibration constants
     * @param curve voltage-frequency operating curve
     * @throws FatalError for non-positive calibration values
     */
    CpuPowerModel(const CpuPowerParams &params, const VoltageCurve &curve);

    /** Model with the paper's calibration. */
    static CpuPowerModel paperDefault();

    /**
     * Power at frequency @c freq with the given activity factor.
     * Voltage comes from the operating curve.
     */
    CpuPowerBreakdown power(Hertz freq, double activity) const;

    /**
     * Energy over one execution window split into busy (computing,
     * full activity) and stalled (waiting on memory, residual
     * activity) time.  Background and leakage accrue over both.
     */
    Joules energy(Hertz freq, double activity, Seconds busy,
                  Seconds stalled) const;

    /**
     * Coefficients of the operating point at @c freq.  power() and
     * energy() factor through exactly these values, so evaluating from
     * the table is bit-identical to calling them per cell.
     */
    CpuOperatingPoint operatingPoint(Hertz freq) const;

    /** Operating points for every step of a CPU frequency ladder. */
    std::vector<CpuOperatingPoint>
    table(const FrequencyLadder &ladder) const;

    const VoltageCurve &curve() const { return curve_; }
    const CpuPowerParams &params() const { return params_; }

  private:
    CpuPowerParams params_;
    VoltageCurve curve_;
};

} // namespace mcdvfs

#endif // MCDVFS_POWER_CPU_POWER_HH
