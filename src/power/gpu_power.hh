/**
 * @file
 * Empirical GPU power model for the SysScale-style third DVFS domain.
 *
 * Same decomposition as the CPU model (§III-B applied to a mobile GPU
 * core): dynamic power ∝ V²f scaled by a kernel activity factor,
 * clocked-idle background power scaling the same way, and linear
 * sub-threshold leakage.  Calibration targets an SGX540/Adreno-class
 * mobile GPU next to the OMAP4430 CPU: a few hundred milliwatts at the
 * top operating point.
 *
 * The energy split differs from the CPU model: GPU work overlaps the
 * CPU's execution (kicks are asynchronous), so dynamic energy accrues
 * only over the GPU's own busy window while background and leakage
 * accrue over the whole sample — the GPU domain is powered as long as
 * the SoC runs the sample.
 */

#ifndef MCDVFS_POWER_GPU_POWER_HH
#define MCDVFS_POWER_GPU_POWER_HH

#include <vector>

#include "common/units.hh"
#include "dvfs/frequency_ladder.hh"
#include "power/opp.hh"

namespace mcdvfs
{

/** Power decomposition at one GPU operating point. */
struct GpuPowerBreakdown
{
    Watts dynamic = 0.0;
    Watts background = 0.0;
    Watts leakage = 0.0;

    Watts total() const { return dynamic + background + leakage; }
};

/** Calibration constants of the empirical GPU model. */
struct GpuPowerParams
{
    /** Dynamic power at fMax/vMax with activity factor 1. */
    Watts peakDynamic = 0.45;
    /** Background (clocked-idle) power at fMax/vMax. */
    Watts peakBackground = 0.18;
    /** Leakage power at vMax. */
    Watts leakageAtVmax = 0.06;
};

/**
 * Precomputed power coefficients of one (frequency, voltage) GPU
 * operating point; same role as CpuOperatingPoint — built once per
 * grid build so the kernel inner loop never touches the voltage curve.
 */
struct GpuOperatingPoint
{
    Watts dynamicScale = 0.0;  ///< dynamic power per unit activity
    Watts background = 0.0;    ///< clocked-idle power at this point
    Watts leakage = 0.0;       ///< sub-threshold leakage at this point
};

/** Voltage- and frequency-dependent GPU power/energy model. */
class GpuPowerModel
{
  public:
    /**
     * @param params calibration constants
     * @param curve voltage-frequency operating curve
     * @throws FatalError for non-positive calibration values
     */
    GpuPowerModel(const GpuPowerParams &params, const VoltageCurve &curve);

    /** Model with the default mobile-GPU calibration. */
    static GpuPowerModel paperDefault();

    /** The GPU domain's operating curve: 200-900 MHz, 0.65-1.10 V. */
    static VoltageCurve paperGpuCurve();

    /** Power at frequency @c freq with the given activity factor. */
    GpuPowerBreakdown power(Hertz freq, double activity) const;

    /**
     * Energy over one sample: dynamic power over the GPU's busy
     * window, background + leakage over the whole sample (the domain
     * stays clocked while the CPU side runs).
     */
    Joules energy(Hertz freq, double activity, Seconds busy,
                  Seconds total) const;

    /**
     * Coefficients of the operating point at @c freq.  power() and
     * energy() factor through exactly these values, so evaluating from
     * the table is bit-identical to calling them per cell.
     */
    GpuOperatingPoint operatingPoint(Hertz freq) const;

    /** Operating points for every step of a GPU frequency ladder. */
    std::vector<GpuOperatingPoint>
    table(const FrequencyLadder &ladder) const;

    const VoltageCurve &curve() const { return curve_; }
    const GpuPowerParams &params() const { return params_; }

  private:
    GpuPowerParams params_;
    VoltageCurve curve_;
};

} // namespace mcdvfs

#endif // MCDVFS_POWER_GPU_POWER_HH
