#include "power/opp.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mcdvfs
{

VoltageCurve::VoltageCurve(Hertz f_min, Hertz f_max, Volts v_min,
                           Volts v_max)
    : fMin_(f_min), fMax_(f_max), vMin_(v_min), vMax_(v_max)
{
    if (f_min <= 0.0 || f_max <= f_min)
        fatal("voltage curve: need 0 < fMin < fMax");
    if (v_min <= 0.0 || v_max < v_min)
        fatal("voltage curve: need 0 < vMin <= vMax");
}

VoltageCurve
VoltageCurve::paperCpu()
{
    return VoltageCurve(megaHertz(100), megaHertz(1000), 0.75, 1.25);
}

Volts
VoltageCurve::voltageAt(Hertz freq) const
{
    const Hertz f = std::clamp(freq, fMin_, fMax_);
    const double t = (f - fMin_) / (fMax_ - fMin_);
    return vMin_ + t * (vMax_ - vMin_);
}

} // namespace mcdvfs
