#include "power/battery.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace mcdvfs
{

Battery::Battery(const BatteryConfig &config)
{
    if (config.capacityWh <= 0.0)
        fatal("battery: capacity must be positive");
    if (config.usableFraction <= 0.0 || config.usableFraction > 1.0)
        fatal("battery: usableFraction must be in (0,1]");
    // 1 Wh = 3600 J.
    capacity_ = config.capacityWh * 3600.0 * config.usableFraction;
    remaining_ = capacity_;
}

double
Battery::stateOfCharge() const
{
    return remaining_ / capacity_;
}

Joules
Battery::drain(Joules energy)
{
    MCDVFS_ASSERT(energy >= 0.0, "cannot drain negative energy");
    const Joules drained = std::min(energy, remaining_);
    remaining_ -= drained;
    return drained;
}

Seconds
Battery::lifetimeAt(Watts average_power) const
{
    if (average_power <= 0.0)
        return std::numeric_limits<double>::infinity();
    return remaining_ / average_power;
}

} // namespace mcdvfs
