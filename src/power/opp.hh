/**
 * @file
 * Operating-performance-point (OPP) voltage curve for the CPU domain.
 *
 * The paper scales CPU voltage with frequency up to 1.25 V at 1 GHz
 * (§III-C).  VoltageCurve maps any frequency in the DVFS range to its
 * supply voltage by linear interpolation, which matches how OPP tables
 * are populated on OMAP-class parts.
 */

#ifndef MCDVFS_POWER_OPP_HH
#define MCDVFS_POWER_OPP_HH

#include "common/units.hh"

namespace mcdvfs
{

/** Linear voltage-frequency operating curve. */
class VoltageCurve
{
  public:
    /**
     * @param f_min lowest DVFS frequency
     * @param f_max highest DVFS frequency
     * @param v_min voltage at @c f_min
     * @param v_max voltage at @c f_max
     * @throws FatalError on non-positive or inverted ranges
     */
    VoltageCurve(Hertz f_min, Hertz f_max, Volts v_min, Volts v_max);

    /** The paper's CPU domain: 100-1000 MHz, 0.70-1.25 V. */
    static VoltageCurve paperCpu();

    /**
     * Supply voltage at @c freq (clamped to the curve's range so
     * queries slightly outside the ladder remain meaningful).
     */
    Volts voltageAt(Hertz freq) const;

    Hertz fMin() const { return fMin_; }
    Hertz fMax() const { return fMax_; }
    Volts vMin() const { return vMin_; }
    Volts vMax() const { return vMax_; }

  private:
    Hertz fMin_;
    Hertz fMax_;
    Volts vMin_;
    Volts vMax_;
};

} // namespace mcdvfs

#endif // MCDVFS_POWER_OPP_HH
