#include "common/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace mcdvfs
{
namespace simd
{

namespace
{

/** Best level the build carries code for. */
constexpr Level
compiledBest()
{
#if MCDVFS_SIMD_AVX2
    return Level::Avx2;
#elif MCDVFS_SIMD_NEON
    return Level::Neon;
#else
    return Level::Scalar;
#endif
}

/** True when the CPU executing us can run @c level. */
bool
cpuSupports(Level level)
{
    switch (level) {
    case Level::Scalar:
        return true;
    case Level::Neon:
        // NEON is baseline on every aarch64 CPU the NEON path can be
        // compiled for; no runtime probe exists or is needed.
        return MCDVFS_SIMD_NEON != 0;
    case Level::Avx2:
#if MCDVFS_SIMD_AVX2
        return __builtin_cpu_supports("avx2");
#else
        return false;
#endif
    }
    return false;
}

/** Clamp a requested level to what is compiled in and runnable. */
Level
clampLevel(Level requested)
{
    if (static_cast<int>(requested) > static_cast<int>(compiledBest()))
        requested = compiledBest();
    while (requested != Level::Scalar && !cpuSupports(requested)) {
        requested = static_cast<Level>(static_cast<int>(requested) - 1);
    }
    return requested;
}

/** Resolve the startup level: compiled best ∩ CPU ∩ MCDVFS_SIMD. */
Level
resolveLevel()
{
    Level level = clampLevel(compiledBest());
    const char *env = std::getenv("MCDVFS_SIMD");
    if (env == nullptr || std::strcmp(env, "auto") == 0 ||
        env[0] == '\0') {
        return level;
    }
    if (std::strcmp(env, "scalar") == 0)
        return Level::Scalar;
    if (std::strcmp(env, "neon") == 0)
        return clampLevel(Level::Neon);
    if (std::strcmp(env, "avx2") == 0)
        return clampLevel(Level::Avx2);
    warn("MCDVFS_SIMD: unknown level '", env,
         "' (want scalar, neon, avx2 or auto); using ",
         levelName(level));
    return level;
}

/** -1 = unresolved; otherwise a Level. */
std::atomic<int> g_level{-1};

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
    case Level::Scalar:
        return "scalar";
    case Level::Neon:
        return "neon";
    case Level::Avx2:
        return "avx2";
    }
    return "unknown";
}

Level
level()
{
    int current = g_level.load(std::memory_order_relaxed);
    if (current < 0) {
        // Racing resolvers all compute the same value, so a plain
        // compare-exchange-free store is fine.
        current = static_cast<int>(resolveLevel());
        g_level.store(current, std::memory_order_relaxed);
    }
    return static_cast<Level>(current);
}

Level
forceLevel(Level requested)
{
    const Level effective = clampLevel(requested);
    g_level.store(static_cast<int>(effective),
                  std::memory_order_relaxed);
    return effective;
}

bool
haveAvx2()
{
    return MCDVFS_SIMD_AVX2 != 0 && level() == Level::Avx2;
}

bool
haveNeon()
{
    return MCDVFS_SIMD_NEON != 0 && level() == Level::Neon;
}

} // namespace simd
} // namespace mcdvfs
