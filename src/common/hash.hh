/**
 * @file
 * Shared FNV-1a hashing primitives.
 *
 * Two hot paths hash with FNV-1a and must keep doing it with the same
 * constants forever: the deterministic per-cell noise seed in the grid
 * kernel (sim/grid_runner.cc) and the content fingerprints that key the
 * grid cache (svc/fingerprint.cc).  Both build on these primitives so
 * the constants and the mixing steps exist exactly once.
 *
 * Two mixing granularities are provided on purpose:
 *  - byte-wise steps (fnv1aByte / fnv1aWordBytes / fnv1aString) give
 *    the avalanche quality fingerprints need;
 *  - whole-word steps (fnv1aMixWord) are the historical cell-seed mix,
 *    kept bit-compatible so stored grids and goldens stay valid.
 */

#ifndef MCDVFS_COMMON_HASH_HH
#define MCDVFS_COMMON_HASH_HH

#include <cstdint>
#include <string_view>

namespace mcdvfs
{

/** FNV-1a 64-bit offset basis. */
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;

/** FNV-1a 64-bit prime. */
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/** One FNV-1a step over a single byte. */
constexpr std::uint64_t
fnv1aByte(std::uint64_t hash, std::uint8_t byte)
{
    return (hash ^ static_cast<std::uint64_t>(byte)) * kFnvPrime;
}

/**
 * One xor-multiply step over a whole 64-bit word (not byte-wise).
 * This is the cell-seed mix; it is weaker than byte-wise FNV-1a but
 * must stay bit-compatible with existing seeds.
 */
constexpr std::uint64_t
fnv1aMixWord(std::uint64_t hash, std::uint64_t word)
{
    return (hash ^ word) * kFnvPrime;
}

/** FNV-1a over the eight bytes of a word, low to high. */
constexpr std::uint64_t
fnv1aWordBytes(std::uint64_t hash, std::uint64_t word)
{
    for (int i = 0; i < 8; ++i)
        hash = fnv1aByte(hash, static_cast<std::uint8_t>(word >> (8 * i)));
    return hash;
}

/** FNV-1a over the bytes of a string (no length terminator). */
constexpr std::uint64_t
fnv1aString(std::uint64_t hash, std::string_view text)
{
    for (const char c : text)
        hash = fnv1aByte(hash, static_cast<std::uint8_t>(c));
    return hash;
}

} // namespace mcdvfs

#endif // MCDVFS_COMMON_HASH_HH
