/**
 * @file
 * Minimal JSON reader for the repo's own artifacts.
 *
 * Every exporter in this codebase (bench_json.hh, metrics, timeseries,
 * journal) writes plain, flat JSON; tools/bench_gate and tests need to
 * read those documents back without an external dependency.  This is a
 * strict recursive-descent parser over the standard grammar — objects,
 * arrays, strings (with escapes), numbers, booleans, null — that keeps
 * numbers as doubles (every value we emit fits) and object keys in
 * insertion order.
 *
 * Not a general-purpose library: documents are trusted repo artifacts,
 * so errors throw FatalError rather than supporting recovery.
 */

#ifndef MCDVFS_COMMON_JSON_HH
#define MCDVFS_COMMON_JSON_HH

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mcdvfs
{
namespace json
{

/** One parsed JSON value (a tagged tree). */
class Value
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Value() = default;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** @throws FatalError when the value is not of the asked type. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<Value> &asArray() const;

    /** Object members in document order. */
    const std::vector<std::pair<std::string, Value>> &members() const;

    /** True when the object has a member named @c key. */
    bool has(const std::string &key) const;

    /**
     * Member lookup.
     * @throws FatalError when not an object or the key is absent.
     */
    const Value &at(const std::string &key) const;

    /** asNumber() of at(key), or @c fallback when absent. */
    double numberOr(const std::string &key, double fallback) const;

    /** asString() of at(key), or @c fallback when absent. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

  private:
    friend class Parser;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> array_;
    std::vector<std::pair<std::string, Value>> object_;
};

/**
 * Parse one JSON document (trailing whitespace allowed, trailing
 * garbage rejected).
 * @throws FatalError on any syntax error, with byte offset.
 */
Value parse(const std::string &text);

/**
 * Read and parse a JSON file.
 * @throws FatalError on I/O or syntax errors.
 */
Value parseFile(const std::string &path);

} // namespace json
} // namespace mcdvfs

#endif // MCDVFS_COMMON_JSON_HH
