#include "common/args.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace mcdvfs
{

ArgParser::ArgParser(std::string program)
    : program_(std::move(program))
{
}

void
ArgParser::addOption(const std::string &name)
{
    knownOptions_.insert(name);
}

void
ArgParser::addFlag(const std::string &name)
{
    knownFlags_.insert(name);
}

void
ArgParser::parse(const std::vector<std::string> &args)
{
    bool options_done = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (!options_done && arg == "--") {
            options_done = true;
            continue;
        }
        if (!options_done && arg.rfind("--", 0) == 0) {
            const std::string name = arg.substr(2);
            if (knownFlags_.count(name)) {
                flags_.insert(name);
                continue;
            }
            if (knownOptions_.count(name)) {
                if (i + 1 >= args.size()) {
                    fatal(program_, ": option --", name,
                          " needs a value");
                }
                values_[name] = args[++i];
                continue;
            }
            fatal(program_, ": unknown option --", name);
        }
        positionals_.push_back(arg);
    }
}

void
ArgParser::parse(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    parse(args);
}

bool
ArgParser::flag(const std::string &name) const
{
    return flags_.count(name) > 0;
}

bool
ArgParser::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
ArgParser::get(const std::string &name, const std::string &fallback) const
{
    const auto it = values_.find(name);
    return it != values_.end() ? it->second : fallback;
}

double
ArgParser::getDouble(const std::string &name, double fallback) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal(program_, ": option --", name, " expects a number, got '",
              it->second, "'");
    return value;
}

long long
ArgParser::getInt(const std::string &name, long long fallback) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const long long value =
        std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        fatal(program_, ": option --", name,
              " expects an integer, got '", it->second, "'");
    return value;
}

long long
ArgParser::getInt(const std::string &name, long long fallback,
                  long long min, long long max) const
{
    if (!has(name))
        return fallback;
    const long long value = getInt(name, fallback);
    if (value < min || value > max)
        fatal(program_, ": option --", name, " must be between ", min,
              " and ", max, ", got ", value);
    return value;
}

} // namespace mcdvfs
