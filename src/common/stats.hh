/**
 * @file
 * Descriptive statistics used by the characterization analyses.
 *
 * RunningStats accumulates streaming mean/variance/min/max (Welford's
 * algorithm); Distribution keeps all values and provides quantiles and
 * the five-number box-plot summary the paper's Figure 9 reports.
 */

#ifndef MCDVFS_COMMON_STATS_HH
#define MCDVFS_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace mcdvfs
{

/** Streaming mean/variance/extrema accumulator (Welford). */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return count_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sample variance (n-1 denominator); 0 when fewer than 2 values. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation; 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest observation; 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Five-number summary for box plots (Figure 9 style). */
struct BoxSummary
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double mean = 0.0;
    std::size_t count = 0;
};

/** Value collection with quantile queries. */
class Distribution
{
  public:
    /** Add one observation. */
    void add(double x) { values_.push_back(x); }

    /** Number of observations. */
    std::size_t count() const { return values_.size(); }

    /** True when no observations have been added. */
    bool empty() const { return values_.empty(); }

    /**
     * Quantile by linear interpolation between closest ranks.
     *
     * @param q requested quantile in [0, 1].
     */
    double quantile(double q) const;

    /** Five-number summary plus mean. */
    BoxSummary summary() const;

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Read access to raw values (unsorted insertion order). */
    const std::vector<double> &values() const { return values_; }

  private:
    std::vector<double> values_;
};

} // namespace mcdvfs

#endif // MCDVFS_COMMON_STATS_HH
