#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace mcdvfs
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    MCDVFS_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        fatal("table row has ", cells.size(), " cells, expected ",
              headers_.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
Table::num(long long value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    if (!title_.empty())
        os << "# " << title_ << '\n';
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace mcdvfs
