/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workload traces must be exactly reproducible across runs and across
 * machines, so mcdvfs does not use std::mt19937 (whose distributions
 * are implementation-defined).  Rng implements xoshiro256** seeded via
 * SplitMix64, with distribution helpers defined by this library.
 */

#ifndef MCDVFS_COMMON_RNG_HH
#define MCDVFS_COMMON_RNG_HH

#include <cstdint>

namespace mcdvfs
{

/** Deterministic xoshiro256** generator with convenience draws. */
class Rng
{
  public:
    /** Seed deterministically from a 64-bit seed via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) without modulo bias; bound > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Geometric draw: number of failures before the first success with
     * success probability p in (0, 1]; returns 0 when p >= 1.
     */
    std::uint64_t geometric(double p);

    /** Standard normal draw (Box-Muller, deterministic). */
    double gaussian();

    /** Fork a child generator whose stream is independent of ours. */
    Rng fork();

  private:
    std::uint64_t state_[4];
};

} // namespace mcdvfs

#endif // MCDVFS_COMMON_RNG_HH
