/**
 * @file
 * Aligned text tables and CSV emission for the figure harnesses.
 *
 * Every bench binary prints the series a paper figure reports; Table
 * renders them as aligned columns on stdout and, optionally, as CSV so
 * the data can be re-plotted.
 */

#ifndef MCDVFS_COMMON_TABLE_HH
#define MCDVFS_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace mcdvfs
{

/** Column-aligned table with an optional title, built row by row. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Optional title printed above the table. */
    void setTitle(std::string title) { title_ = std::move(title); }

    /** Append a fully formed row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision (helper for rows). */
    static std::string num(double value, int precision = 3);

    /** Format an integer (helper for rows). */
    static std::string num(long long value);

    /** Render as aligned text. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows so far. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mcdvfs

#endif // MCDVFS_COMMON_TABLE_HH
