/**
 * @file
 * Compile-time and runtime SIMD dispatch for the vector kernels.
 *
 * The explicit vector paths (SettingMask filters, the cluster compare
 * passes, the grid kernel's fixed-point strip) are compiled only when
 * the build opts into host tuning (-DMCDVFS_NATIVE=ON) *and* the
 * target ISA provides the instructions (AVX2 on x86-64, NEON on
 * aarch64).  At runtime one resolved Level gates every dispatch site:
 * the compiled-in best, narrowed by a CPU-feature probe, narrowed
 * again by the MCDVFS_SIMD environment variable ("scalar" forces the
 * fallback everywhere — this is how CI proves the scalar path stays
 * exercised on vector-capable hosts).
 *
 * Every vector kernel is bit-identical to its scalar fallback: the
 * lanes run the same IEEE operations in the same per-element order,
 * compares map to the same predicates, and MCDVFS_NATIVE's
 * -ffp-contract=off keeps the compiler from fusing either path
 * differently (docs/PERF.md "Vector kernels").
 */

#ifndef MCDVFS_COMMON_SIMD_HH
#define MCDVFS_COMMON_SIMD_HH

/** @name Compiled SIMD support.
 *
 * MCDVFS_SIMD_AVX2 / MCDVFS_SIMD_NEON are 1 when the corresponding
 * intrinsics are compiled in.  Both require the MCDVFS_NATIVE build
 * option: the default toolchain build carries no vector paths at all,
 * so the portable artifact stays portable.
 */
///@{
#if defined(MCDVFS_NATIVE_ENABLED) && defined(__AVX2__)
#define MCDVFS_SIMD_AVX2 1
#else
#define MCDVFS_SIMD_AVX2 0
#endif

#if defined(MCDVFS_NATIVE_ENABLED) && defined(__ARM_NEON)
#define MCDVFS_SIMD_NEON 1
#else
#define MCDVFS_SIMD_NEON 0
#endif
///@}

#if MCDVFS_SIMD_AVX2
#include <immintrin.h>
#endif
#if MCDVFS_SIMD_NEON
#include <arm_neon.h>
#endif

namespace mcdvfs
{
namespace simd
{

/** Instruction-set level a kernel dispatches to. */
enum class Level
{
    Scalar,  ///< portable fallback (always available)
    Neon,    ///< 2 x f64 lanes (aarch64)
    Avx2,    ///< 4 x f64 lanes (x86-64)
};

/** Human-readable level name ("scalar", "neon", "avx2"). */
const char *levelName(Level level);

/**
 * The resolved dispatch level: compiled-in best, narrowed by the
 * runtime CPU probe and the MCDVFS_SIMD environment variable
 * ("scalar", "neon", "avx2", or "auto"/unset).  Resolved once on
 * first use; one relaxed atomic load afterwards.
 */
Level level();

/**
 * Override the resolved level (tests and benches pin the scalar path
 * to golden-check it against the vector path in one process).
 * Requesting a level that is not compiled in or not supported by the
 * CPU clamps to the best available.  Returns the level actually in
 * effect.
 */
Level forceLevel(Level level);

/** True when the AVX2 kernels are compiled in and active. */
bool haveAvx2();

/** True when the NEON kernels are compiled in and active. */
bool haveNeon();

} // namespace simd
} // namespace mcdvfs

#endif // MCDVFS_COMMON_SIMD_HH
