#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace mcdvfs
{

namespace
{

/** SplitMix64 step, used only for seeding. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
    // xoshiro's state must not be all zero; SplitMix64 cannot produce
    // four zero words from any seed, but guard anyway.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
        state_[0] = 0x9e3779b97f4a7c15ull;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    MCDVFS_ASSERT(bound > 0, "uniformInt bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::uniformRange(std::int64_t lo, std::int64_t hi)
{
    MCDVFS_ASSERT(lo <= hi, "uniformRange requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    if (p >= 1.0)
        return 0;
    MCDVFS_ASSERT(p > 0.0, "geometric requires p > 0");
    const double u = uniform();
    return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

double
Rng::gaussian()
{
    // Box-Muller; draw u1 away from zero to keep log finite.
    double u1 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace mcdvfs
