/**
 * @file
 * Minimal command-line argument parsing for the CLI tool and
 * examples: positionals plus "--key value" options plus "--flag"
 * switches.  Unknown options are errors; "--" ends option parsing.
 */

#ifndef MCDVFS_COMMON_ARGS_HH
#define MCDVFS_COMMON_ARGS_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mcdvfs
{

/** Declarative parser: declare options/flags, then parse. */
class ArgParser
{
  public:
    /** @param program name used in error messages */
    explicit ArgParser(std::string program);

    /** Declare a value option, e.g. addOption("budget"). */
    void addOption(const std::string &name);

    /** Declare a boolean flag, e.g. addFlag("csv"). */
    void addFlag(const std::string &name);

    /**
     * Parse an argument vector (excluding argv[0]).
     * @throws FatalError on unknown options or missing values.
     */
    void parse(const std::vector<std::string> &args);

    /** Convenience overload for main()'s argc/argv. */
    void parse(int argc, char **argv);

    /** True when a declared flag was given. */
    bool flag(const std::string &name) const;

    /** True when a declared option was given a value. */
    bool has(const std::string &name) const;

    /** Option value, or @c fallback when absent. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Option value as double, or @c fallback when absent. */
    double getDouble(const std::string &name, double fallback) const;

    /** Option value as integer, or @c fallback when absent. */
    long long getInt(const std::string &name, long long fallback) const;

    /**
     * Option value as integer constrained to [min, max], or
     * @c fallback when absent (the fallback is the caller's default
     * and is not range-checked).
     *
     * Guards options like "--jobs N" where a stray 0 or negative value
     * would otherwise be cast to an enormous unsigned count.
     *
     * @throws FatalError when a given value is outside [min, max].
     */
    long long getInt(const std::string &name, long long fallback,
                     long long min, long long max) const;

    /** Positional arguments in order. */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

  private:
    std::string program_;
    std::set<std::string> knownOptions_;
    std::set<std::string> knownFlags_;
    std::map<std::string, std::string> values_;
    std::set<std::string> flags_;
    std::vector<std::string> positionals_;
};

} // namespace mcdvfs

#endif // MCDVFS_COMMON_ARGS_HH
