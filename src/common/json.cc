#include "common/json.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace mcdvfs
{
namespace json
{

bool
Value::asBool() const
{
    if (type_ != Type::Bool)
        fatal("json: value is not a bool");
    return bool_;
}

double
Value::asNumber() const
{
    if (type_ != Type::Number)
        fatal("json: value is not a number");
    return number_;
}

const std::string &
Value::asString() const
{
    if (type_ != Type::String)
        fatal("json: value is not a string");
    return string_;
}

const std::vector<Value> &
Value::asArray() const
{
    if (type_ != Type::Array)
        fatal("json: value is not an array");
    return array_;
}

const std::vector<std::pair<std::string, Value>> &
Value::members() const
{
    if (type_ != Type::Object)
        fatal("json: value is not an object");
    return object_;
}

bool
Value::has(const std::string &key) const
{
    if (type_ != Type::Object)
        return false;
    for (const auto &[name, value] : object_) {
        if (name == key)
            return true;
    }
    return false;
}

const Value &
Value::at(const std::string &key) const
{
    if (type_ != Type::Object)
        fatal("json: value is not an object (looking up '", key, "')");
    for (const auto &[name, value] : object_) {
        if (name == key)
            return value;
    }
    fatal("json: object has no member '", key, "'");
}

double
Value::numberOr(const std::string &key, double fallback) const
{
    return has(key) ? at(key).asNumber() : fallback;
}

std::string
Value::stringOr(const std::string &key,
                const std::string &fallback) const
{
    return has(key) ? at(key).asString() : fallback;
}

/** Recursive-descent parser over a complete in-memory document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    document()
    {
        skipSpace();
        Value value = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing garbage after document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const char *message)
    {
        fatal("json: ", message, " at byte ", pos_);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of document");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consumeWord(const char *word)
    {
        std::size_t n = 0;
        while (word[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value
    parseValue()
    {
        switch (peek()) {
        case '{':
            return parseObject();
        case '[':
            return parseArray();
        case '"':
            return parseString();
        case 't':
        case 'f':
            return parseBool();
        case 'n':
            if (!consumeWord("null"))
                fail("bad literal");
            return Value{};
        default:
            return parseNumber();
        }
    }

    Value
    parseObject()
    {
        expect('{');
        Value value;
        value.type_ = Value::Type::Object;
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        for (;;) {
            skipSpace();
            Value key = parseString();
            skipSpace();
            expect(':');
            skipSpace();
            value.object_.emplace_back(key.string_, parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return value;
        }
    }

    Value
    parseArray()
    {
        expect('[');
        Value value;
        value.type_ = Value::Type::Array;
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        for (;;) {
            skipSpace();
            value.array_.push_back(parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return value;
        }
    }

    Value
    parseString()
    {
        expect('"');
        Value value;
        value.type_ = Value::Type::String;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return value;
            if (c != '\\') {
                value.string_ += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char escape = text_[pos_++];
            switch (escape) {
            case '"':
            case '\\':
            case '/':
                value.string_ += escape;
                break;
            case 'b':
                value.string_ += '\b';
                break;
            case 'f':
                value.string_ += '\f';
                break;
            case 'n':
                value.string_ += '\n';
                break;
            case 'r':
                value.string_ += '\r';
                break;
            case 't':
                value.string_ += '\t';
                break;
            case 'u': {
                // Our own exporters never emit \u escapes; accept
                // them as raw code-unit pass-through of the hex pair.
                if (pos_ + 4 > text_.size())
                    fail("bad \\u escape");
                const std::string hex = text_.substr(pos_, 4);
                pos_ += 4;
                const unsigned long code =
                    std::strtoul(hex.c_str(), nullptr, 16);
                if (code < 0x80) {
                    value.string_ += static_cast<char>(code);
                } else {
                    value.string_ += '?';
                }
                break;
            }
            default:
                fail("bad escape character");
            }
        }
    }

    Value
    parseBool()
    {
        Value value;
        value.type_ = Value::Type::Bool;
        if (consumeWord("true")) {
            value.bool_ = true;
            return value;
        }
        if (consumeWord("false")) {
            value.bool_ = false;
            return value;
        }
        fail("bad literal");
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("bad number");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double parsed = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("bad number");
        Value value;
        value.type_ = Value::Type::Number;
        value.number_ = parsed;
        return value;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

Value
parse(const std::string &text)
{
    Parser parser(text);
    return parser.document();
}

Value
parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("json: cannot open ", path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str());
}

} // namespace json
} // namespace mcdvfs
