/**
 * @file
 * Bounds-checked little-endian binary serialization primitives.
 *
 * The binary grid snapshots (sim/grid_io) and the daemon's persistent
 * snapshot store (daemon/snapshot_store) both serialize typed fields
 * into a byte payload that must survive hostile input: a snapshot file
 * can be truncated by a crash mid-write, corrupted on disk, or written
 * by a different version.  ByteWriter builds the payload; ByteReader
 * parses it and calls fatal() — never UB — the moment a read would run
 * past the end of the buffer.
 *
 * Doubles are serialized by bit pattern (not decimal text), so a
 * round trip is bit-identical by construction.  All integers are
 * little-endian regardless of host order.
 */

#ifndef MCDVFS_COMMON_BINIO_HH
#define MCDVFS_COMMON_BINIO_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/logging.hh"

namespace mcdvfs
{

/** Appends little-endian fields to a growing byte buffer. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t value)
    {
        buffer_.push_back(static_cast<char>(value));
    }

    void
    u32(std::uint32_t value)
    {
        for (int i = 0; i < 4; ++i)
            buffer_.push_back(static_cast<char>(value >> (8 * i)));
    }

    void
    u64(std::uint64_t value)
    {
        for (int i = 0; i < 8; ++i)
            buffer_.push_back(static_cast<char>(value >> (8 * i)));
    }

    /** Double by bit pattern (exact round trip). */
    void
    f64(double value)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &value, sizeof(bits));
        u64(bits);
    }

    /** Length-prefixed string (u32 length + raw bytes). */
    void
    str(const std::string &value)
    {
        u32(static_cast<std::uint32_t>(value.size()));
        buffer_.append(value);
    }

    const std::string &bytes() const { return buffer_; }
    std::string take() { return std::move(buffer_); }

  private:
    std::string buffer_;
};

/**
 * Parses little-endian fields out of a fixed byte buffer; every read
 * past the end is a fatal() with the reader's context in the message.
 * The buffer must outlive the reader.
 */
class ByteReader
{
  public:
    /** @param context label prefixed to every diagnostic */
    ByteReader(std::string_view data, std::string context)
        : data_(data), context_(std::move(context))
    {}

    std::uint8_t
    u8()
    {
        need(1, "u8");
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    std::uint32_t
    u32()
    {
        need(4, "u32");
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            value |= static_cast<std::uint32_t>(
                         static_cast<std::uint8_t>(data_[pos_ + i]))
                     << (8 * i);
        }
        pos_ += 4;
        return value;
    }

    std::uint64_t
    u64()
    {
        need(8, "u64");
        std::uint64_t value = 0;
        for (int i = 0; i < 8; ++i) {
            value |= static_cast<std::uint64_t>(
                         static_cast<std::uint8_t>(data_[pos_ + i]))
                     << (8 * i);
        }
        pos_ += 8;
        return value;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double value = 0.0;
        std::memcpy(&value, &bits, sizeof(value));
        return value;
    }

    std::string
    str()
    {
        const std::uint32_t length = u32();
        need(length, "string body");
        std::string value(data_.substr(pos_, length));
        pos_ += length;
        return value;
    }

    std::size_t remaining() const { return data_.size() - pos_; }

    /** Every byte must have been consumed. */
    void
    expectEnd() const
    {
        if (pos_ != data_.size()) {
            fatal(context_, ": ", data_.size() - pos_,
                  " trailing bytes after the last expected field");
        }
    }

  private:
    void
    need(std::size_t bytes, const char *what) const
    {
        if (data_.size() - pos_ < bytes) {
            fatal(context_, ": truncated input (need ", bytes,
                  " bytes for ", what, " at offset ", pos_, ", have ",
                  data_.size() - pos_, ")");
        }
    }

    std::string_view data_;
    std::size_t pos_ = 0;
    std::string context_;
};

} // namespace mcdvfs

#endif // MCDVFS_COMMON_BINIO_HH
