/**
 * @file
 * Physical-unit conventions used throughout mcdvfs.
 *
 * All quantities are stored as doubles in SI base units and named for
 * their unit: frequencies in hertz (Hz), voltages in volts (V), power
 * in watts (W), energy in joules (J), time in seconds (s).  The helpers
 * below construct values from the scaled units the paper uses (MHz, mW,
 * uJ, us) so call sites read like the paper's text.
 */

#ifndef MCDVFS_COMMON_UNITS_HH
#define MCDVFS_COMMON_UNITS_HH

#include <cstdint>

namespace mcdvfs
{

/** Frequency in hertz. */
using Hertz = double;
/** Voltage in volts. */
using Volts = double;
/** Power in watts. */
using Watts = double;
/** Energy in joules. */
using Joules = double;
/** Time in seconds. */
using Seconds = double;
/** Counts of events (instructions, accesses, cycles). */
using Count = std::uint64_t;

/** Construct a frequency from megahertz. */
constexpr Hertz
megaHertz(double mhz)
{
    return mhz * 1e6;
}

/** Convert a frequency to megahertz (for printing). */
constexpr double
toMegaHertz(Hertz hz)
{
    return hz / 1e6;
}

/** Construct a time from nanoseconds. */
constexpr Seconds
nanoSeconds(double ns)
{
    return ns * 1e-9;
}

/** Construct a time from microseconds. */
constexpr Seconds
microSeconds(double us)
{
    return us * 1e-6;
}

/** Convert a time to nanoseconds (for printing). */
constexpr double
toNanoSeconds(Seconds s)
{
    return s * 1e9;
}

/** Construct a power from milliwatts. */
constexpr Watts
milliWatts(double mw)
{
    return mw * 1e-3;
}

/** Construct an energy from microjoules. */
constexpr Joules
microJoules(double uj)
{
    return uj * 1e-6;
}

/** Construct an energy from millijoules. */
constexpr Joules
milliJoules(double mj)
{
    return mj * 1e-3;
}

/** Construct a current from milliamperes (value in amperes). */
constexpr double
milliAmps(double ma)
{
    return ma * 1e-3;
}

/** Bytes per kibibyte / mebibyte, for cache sizing. */
constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

} // namespace mcdvfs

#endif // MCDVFS_COMMON_UNITS_HH
