#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace mcdvfs
{

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
Distribution::quantile(double q) const
{
    MCDVFS_ASSERT(!values_.empty(), "quantile of empty distribution");
    MCDVFS_ASSERT(q >= 0.0 && q <= 1.0, "quantile requires q in [0,1]");
    std::vector<double> sorted(values_);
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

BoxSummary
Distribution::summary() const
{
    BoxSummary box;
    if (values_.empty())
        return box;
    box.min = quantile(0.0);
    box.q1 = quantile(0.25);
    box.median = quantile(0.5);
    box.q3 = quantile(0.75);
    box.max = quantile(1.0);
    box.mean = mean();
    box.count = values_.size();
    return box;
}

double
Distribution::mean() const
{
    if (values_.empty())
        return 0.0;
    const double total =
        std::accumulate(values_.begin(), values_.end(), 0.0);
    return total / static_cast<double>(values_.size());
}

} // namespace mcdvfs
