#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mcdvfs
{

namespace
{

std::atomic<LogLevel> gLogLevel{LogLevel::Info};
std::atomic<LogSink> gLogSink{nullptr};
std::atomic<detail::LogCounterHook> gCounterHook{nullptr};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
      case LogLevel::Silent:
        return "silent";
    }
    return "?";
}

/** Count, filter, and deliver one advisory message. */
void
logImpl(LogLevel level, const std::string &msg)
{
    if (detail::LogCounterHook hook =
            gCounterHook.load(std::memory_order_relaxed))
        hook(level);
    if (static_cast<int>(level) <
        static_cast<int>(gLogLevel.load(std::memory_order_relaxed)))
        return;
    if (LogSink sink = gLogSink.load(std::memory_order_relaxed)) {
        sink(level, msg);
        return;
    }
    std::fprintf(stderr, "%s: %s\n", levelName(level), msg.c_str());
}

} // namespace

LogLevel
logLevel()
{
    return gLogLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    gLogLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevelFromString(const std::string &text)
{
    if (text == "debug")
        return LogLevel::Debug;
    if (text == "info")
        return LogLevel::Info;
    if (text == "warn")
        return LogLevel::Warn;
    if (text == "error")
        return LogLevel::Error;
    if (text == "silent")
        return LogLevel::Silent;
    fatal("unknown log level '", text,
          "' (expected debug, info, warn, error, or silent)");
}

LogSink
setLogSink(LogSink sink)
{
    return gLogSink.exchange(sink, std::memory_order_relaxed);
}

namespace detail
{

void
setLogCounterHook(LogCounterHook hook)
{
    gCounterHook.store(hook, std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    logImpl(LogLevel::Warn, msg);
}

void
informImpl(const std::string &msg)
{
    logImpl(LogLevel::Info, msg);
}

} // namespace detail
} // namespace mcdvfs
