/**
 * @file
 * Error-reporting and logging primitives.
 *
 * The conventions follow the gem5 distinction:
 *  - fatal():  the situation is the caller's fault (bad configuration,
 *              invalid argument).  Throws FatalError so library users and
 *              tests can recover.
 *  - panic():  an internal invariant of this library was violated (a bug
 *              in mcdvfs itself).  Aborts the process.
 *  - warn()/inform(): advisory messages on stderr.
 */

#ifndef MCDVFS_COMMON_LOGGING_HH
#define MCDVFS_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace mcdvfs
{

/** Exception thrown by fatal() for user-correctable errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Severity of one advisory message (ordered, least severe first). */
enum class LogLevel
{
    Debug = 0,
    Info,
    Warn,
    Error,
    Silent,  ///< Threshold-only value: suppresses every message.
};

/**
 * Sink receiving every advisory message that passes the level filter.
 * Must be callable from any thread; the default sink writes to stderr.
 */
using LogSink = void (*)(LogLevel, const std::string &);

/** Current advisory threshold (messages below it are dropped). */
LogLevel logLevel();

/** Set the advisory threshold (thread-safe). */
void setLogLevel(LogLevel level);

/**
 * Parse a threshold name: debug, info, warn, error, or silent.
 * @throws FatalError on anything else.
 */
LogLevel logLevelFromString(const std::string &text);

/**
 * Install a message sink, returning the previous one (nullptr means
 * the built-in stderr sink was active).  Pass nullptr to restore the
 * stderr sink.
 */
LogSink setLogSink(LogSink sink);

namespace detail
{

/** Concatenate a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/**
 * Observer called once per advisory message, before level filtering,
 * so metrics can count emissions even when the threshold hides them.
 * Installed by the obs layer; not part of the public API.
 */
using LogCounterHook = void (*)(LogLevel);
void setLogCounterHook(LogCounterHook hook);

} // namespace detail

/**
 * Report a user-correctable error (bad configuration or argument).
 *
 * @throws FatalError always.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat(std::forward<Args>(args)...));
}

/** Emit a warning to stderr (does not stop execution). */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit an informational message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Abort on an internal invariant violation (a bug in mcdvfs itself).
 * Use MCDVFS_PANIC so the failing file/line are captured.
 */
#define MCDVFS_PANIC(...)                                                   \
    ::mcdvfs::detail::panicImpl(__FILE__, __LINE__,                         \
                                ::mcdvfs::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; panics with the condition text. */
#define MCDVFS_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            MCDVFS_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__);    \
        }                                                                   \
    } while (0)

/**
 * Debug-build-only assertion for hot-path invariants (bounds checks in
 * grid accessors and kernels).  Compiles to nothing under NDEBUG so
 * release builds pay no cost; use MCDVFS_ASSERT where the check must
 * survive into release builds.
 */
#ifdef NDEBUG
#define MCDVFS_DEBUG_ASSERT(cond, ...)                                      \
    do {                                                                    \
    } while (0)
#else
#define MCDVFS_DEBUG_ASSERT(cond, ...) MCDVFS_ASSERT(cond, ##__VA_ARGS__)
#endif

} // namespace mcdvfs

#endif // MCDVFS_COMMON_LOGGING_HH
