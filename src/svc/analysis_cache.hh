/**
 * @file
 * Sharded LRU cache of analysis results.
 *
 * A grid served from GridCache still pays the §V/§VI analysis chain on
 * every request — optimal trajectory, clusters, stable regions — which
 * dominates the hot path once characterization is cached.  Tuning
 * traffic is repetitive in exactly that dimension: dashboards and
 * retune loops ask for the same (grid, budget, threshold) triple over
 * and over.  AnalysisCache keys finished analyses by the grid's
 * content fingerprint plus the bit patterns of budget and threshold,
 * so repeated requests skip the analysis chain too.
 *
 * Structure mirrors GridCache: sharded key space with a mutex per
 * shard, shard capacities summing exactly to the configured total, and
 * shared_ptr values so eviction never invalidates a result a caller
 * still holds.  Process-wide counters are exported as
 * svc.analysis.{hits,misses,evictions,inserts} and the
 * svc.analysis.entries gauge.
 *
 * Next to finished results the cache keeps a second, independently
 * sized LRU store of AnalysisCheckpoints — resumable incremental
 * state keyed by (grid *content prefix* digest, budget, threshold),
 * see MeasuredGrid::prefixDigest.  A streaming workload that grew by a
 * few samples has a different result key (its full fingerprint
 * changed) but shares every prefix digest with its shorter past, so
 * the service can find the longest checkpointed prefix and analyze
 * only the tail.  Checkpoint counters are exported as
 * svc.analysis.checkpoint_{hits,misses,evictions,inserts} and the
 * svc.analysis.checkpoint_entries gauge; one findLongestCheckpoint
 * walk counts a single hit or miss however many prefixes it probes.
 */

#ifndef MCDVFS_SVC_ANALYSIS_CACHE_HH
#define MCDVFS_SVC_ANALYSIS_CACHE_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/incremental_analysis.hh"
#include "core/stable_regions.hh"

namespace mcdvfs
{
namespace svc
{

/** Identity of one analysis: a grid at one budget and threshold. */
struct AnalysisKey
{
    /** GridKey::combined() of the analyzed grid. */
    std::uint64_t grid = 0;
    double budget = 0.0;
    double threshold = 0.0;

    /** Exact bit-pattern equality on the doubles (cache identity). */
    bool operator==(const AnalysisKey &other) const;

    /** Combined 64-bit digest (shard selection and map hashing). */
    std::uint64_t combined() const;
};

/** One cached analysis: the §V/§VI chain's output for its key. */
struct AnalysisResult
{
    std::vector<OptimalChoice> optimal;
    std::vector<PerformanceCluster> clusters;
    std::vector<StableRegion> regions;
};

/** Sharded, mutex-guarded LRU cache of AnalysisResults. */
class AnalysisCache
{
  public:
    /** Hit/miss/eviction counters (monotonic over the cache's life). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;
        /** Checkpoint-store counters (one hit/miss per prefix walk). */
        std::uint64_t checkpointHits = 0;
        std::uint64_t checkpointMisses = 0;
        std::uint64_t checkpointEvictions = 0;
        std::size_t checkpointEntries = 0;
    };

    /**
     * @param capacity maximum cached analyses across all shards (>= 1)
     * @param shards number of independently locked shards (>= 1);
     *        per-shard capacities sum exactly to @c capacity
     * @param checkpoint_capacity maximum resumable checkpoints across
     *        all shards; 0 disables the checkpoint store (every walk
     *        misses, inserts are dropped)
     * @throws FatalError for a zero capacity or shard count
     */
    explicit AnalysisCache(std::size_t capacity, std::size_t shards = 8,
                           std::size_t checkpoint_capacity = 64);

    ~AnalysisCache();

    /**
     * Look up an analysis, refreshing its LRU position.  Counts a hit
     * or a miss; returns nullptr on miss.
     */
    std::shared_ptr<const AnalysisResult> find(const AnalysisKey &key);

    /**
     * Insert (or refresh) an analysis, evicting the shard's least
     * recently used entry when the shard is full.
     */
    void insert(const AnalysisKey &key,
                std::shared_ptr<const AnalysisResult> result);

    /**
     * Find the checkpoint of the longest cached prefix.  @c keys must
     * be ordered longest prefix first (the caller builds them from
     * MeasuredGrid::prefixDigest, all sharing budget and threshold);
     * the first key present wins and has its LRU position refreshed.
     * The whole walk counts one checkpoint hit or one miss, however
     * many prefixes it probes.  Returns nullptr on miss.
     */
    std::shared_ptr<const AnalysisCheckpoint> findLongestCheckpoint(
        const std::vector<AnalysisKey> &keys);

    /**
     * Insert (or refresh) a resumable checkpoint under the digest of
     * the prefix it covers.  Dropped when the store is disabled.
     */
    void insertCheckpoint(
        const AnalysisKey &key,
        std::shared_ptr<const AnalysisCheckpoint> checkpoint);

    /** Drop every entry, results and checkpoints (counters kept). */
    void clear();

    Stats stats() const;
    std::size_t capacity() const { return capacity_; }
    std::size_t checkpointCapacity() const { return checkpointCapacity_; }
    std::size_t shardCount() const { return shards_.size(); }

  private:
    struct Entry
    {
        AnalysisKey key;
        std::shared_ptr<const AnalysisResult> result;
    };

    /** One LRU list + index, guarded by its own mutex. */
    struct Shard
    {
        std::mutex mutex;
        /** Entries this shard may hold (shard capacities sum to
         *  the cache capacity). */
        std::size_t capacity = 1;
        /** Front = most recently used. */
        std::list<Entry> lru;
        std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
            index;
    };

    /** Checkpoint-store sibling of Shard (own LRU + index + lock). */
    struct CheckpointEntry
    {
        AnalysisKey key;
        std::shared_ptr<const AnalysisCheckpoint> checkpoint;
    };

    struct CheckpointShard
    {
        std::mutex mutex;
        std::size_t capacity = 1;
        /** Front = most recently used. */
        std::list<CheckpointEntry> lru;
        std::unordered_map<std::uint64_t,
                           std::list<CheckpointEntry>::iterator>
            index;
    };

    Shard &shardFor(const AnalysisKey &key);
    CheckpointShard &checkpointShardFor(const AnalysisKey &key);

    std::size_t capacity_;
    std::size_t checkpointCapacity_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::unique_ptr<CheckpointShard>> checkpointShards_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> checkpointHits_{0};
    std::atomic<std::uint64_t> checkpointMisses_{0};
    std::atomic<std::uint64_t> checkpointEvictions_{0};
};

} // namespace svc
} // namespace mcdvfs

#endif // MCDVFS_SVC_ANALYSIS_CACHE_HH
