#include "svc/fingerprint.hh"

#include <bit>

#include "common/hash.hh"

namespace mcdvfs
{
namespace svc
{

namespace
{

void
addPhase(HashBuilder &h, const PhaseSpec &phase)
{
    h.add(phase.name)
        .add(phase.loadFrac)
        .add(phase.storeFrac)
        .add(phase.branchFrac)
        .add(phase.fpFrac)
        .add(phase.mulFrac)
        .add(phase.baseCpi)
        .add(phase.hotFrac)
        .add(phase.warmFrac)
        .add(phase.hotBytes)
        .add(phase.warmBytes)
        .add(phase.coldBytes)
        .add(phase.coldSeqFrac)
        .add(phase.mlp)
        .add(phase.activity)
        .add(phase.gpuKickFrac)
        .add(phase.gpuCyclesPerKick)
        .add(phase.gpuActivity);
}

void
addCache(HashBuilder &h, const CacheConfig &cache)
{
    h.add(cache.name)
        .add(cache.sizeBytes)
        .add(std::uint64_t{cache.associativity})
        .add(std::uint64_t{cache.lineBytes})
        .add(std::uint64_t{cache.latencyCycles});
}

void
addDramConfig(HashBuilder &h, const DramConfig &dram)
{
    h.add(std::uint64_t{dram.banks})
        .add(std::uint64_t{dram.rowBytes})
        .add(std::uint64_t{dram.busBytes})
        .add(std::uint64_t{dram.lineBytes});
}

void
addDramTiming(HashBuilder &h, const DramTiming &timing)
{
    h.add(timing.tRp)
        .add(timing.tRcd)
        .add(timing.tCas)
        .add(timing.interfaceCycles)
        .add(timing.maxUtilization);
}

void
addRails(HashBuilder &h, const RailCurrents &rails)
{
    h.add(rails.vdd1).add(rails.vdd2);
}

} // namespace

HashBuilder &
HashBuilder::add(std::uint64_t value)
{
    hash_ = fnv1aWordBytes(hash_, value);
    return *this;
}

HashBuilder &
HashBuilder::add(double value)
{
    // Bit-pattern hash: keys are exact.  Normalize -0.0 so the two
    // zero encodings collide (they compare equal everywhere else).
    if (value == 0.0)
        value = 0.0;
    return add(std::bit_cast<std::uint64_t>(value));
}

HashBuilder &
HashBuilder::add(bool value)
{
    hash_ = fnv1aMixWord(hash_, value ? 1u : 0u);
    return *this;
}

HashBuilder &
HashBuilder::add(const std::string &value)
{
    hash_ = fnv1aString(hash_, value);
    // Length terminator so ("ab","c") and ("a","bc") differ.
    return add(static_cast<std::uint64_t>(value.size()));
}

std::uint64_t
fingerprintWorkload(const WorkloadProfile &workload)
{
    HashBuilder h;
    h.add(workload.name())
        .add(static_cast<std::uint64_t>(workload.sampleCount()))
        .add(static_cast<std::uint64_t>(
            workload.modeledInstructionsPerSample()));
    for (std::size_t s = 0; s < workload.sampleCount(); ++s) {
        addPhase(h, workload.phaseFor(s));
        h.add(workload.traceSeedFor(s));
    }
    return h.digest();
}

std::uint64_t
fingerprintSpace(const SettingsSpace &space)
{
    // Hash the domain list itself — count, then every ladder with its
    // own length — rather than the flattened cross product.  Flattened
    // (cpu, mem) tuples can be identical between a two-domain space
    // and a three-domain space sharing its CPU x mem prefix (e.g. a
    // one-step GPU ladder), and those must never collide: their grids
    // have different shapes and different GPU columns.
    HashBuilder h;
    h.add(static_cast<std::uint64_t>(space.domainCount()));
    const auto add_ladder = [&h](const FrequencyLadder &ladder) {
        h.add(static_cast<std::uint64_t>(ladder.size()));
        for (const Hertz f : ladder.steps())
            h.add(f);
    };
    add_ladder(space.cpuLadder());
    add_ladder(space.memLadder());
    if (space.hasGpu())
        add_ladder(space.gpuLadder());
    return h.digest();
}

std::uint64_t
fingerprintConfig(const SystemConfig &config)
{
    HashBuilder h;

    const SampleSimulatorConfig &sampler = config.sampler;
    h.add(static_cast<std::uint64_t>(sampler.simInstructionsPerSample))
        .add(static_cast<std::uint64_t>(sampler.warmupInstructions));
    addCache(h, sampler.hierarchy.l1);
    addCache(h, sampler.hierarchy.l2);
    h.add(sampler.hierarchy.nextLinePrefetch);
    addDramConfig(h, sampler.dram);

    const TimingParams &timing = config.timing;
    h.add(timing.l2StallExposure)
        .add(timing.bwUtilizationCap)
        .add(static_cast<std::uint64_t>(timing.fixedPointIterations))
        .add(timing.modelBandwidth)
        .add(std::uint64_t{timing.l2LatencyCycles});
    addDramTiming(h, timing.dramTiming);
    addDramConfig(h, timing.dramConfig);

    const CpuPowerParams &cpu = config.cpuPower;
    h.add(cpu.peakDynamic)
        .add(cpu.peakBackground)
        .add(cpu.leakageAtVmax)
        .add(cpu.stallActivity);

    const GpuPowerParams &gpu = config.gpuPower;
    h.add(gpu.peakDynamic)
        .add(gpu.peakBackground)
        .add(gpu.leakageAtVmax);

    const DramPowerParams &dram = config.dramPower;
    h.add(dram.vdd1).add(dram.vdd2).add(dram.specFreq);
    addRails(h, dram.idd0);
    addRails(h, dram.idd2n);
    addRails(h, dram.idd3n);
    addRails(h, dram.idd4r);
    addRails(h, dram.idd4w);
    addRails(h, dram.idd5);
    addRails(h, dram.idd2p);
    h.add(dram.enablePowerDown)
        .add(dram.powerDownResidency)
        .add(dram.backgroundStaticFrac)
        .add(dram.burstStaticFrac)
        .add(dram.tRc)
        .add(dram.tRefi)
        .add(dram.tRfc);

    h.add(config.measurementNoise);
    return h.digest();
}

} // namespace svc
} // namespace mcdvfs
