#include "svc/analysis_cache.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace mcdvfs
{
namespace svc
{

namespace
{

/** Process-wide analysis-cache metrics (all instances share them). */
struct AnalysisCacheMetrics
{
    obs::Counter hits;
    obs::Counter misses;
    obs::Counter evictions;
    obs::Counter inserts;
    obs::Gauge entries;
    obs::Counter checkpointHits;
    obs::Counter checkpointMisses;
    obs::Counter checkpointEvictions;
    obs::Counter checkpointInserts;
    obs::Gauge checkpointEntries;

    AnalysisCacheMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        hits = reg.counter("svc.analysis.hits");
        misses = reg.counter("svc.analysis.misses");
        evictions = reg.counter("svc.analysis.evictions");
        inserts = reg.counter("svc.analysis.inserts");
        entries = reg.gauge("svc.analysis.entries");
        checkpointHits = reg.counter("svc.analysis.checkpoint_hits");
        checkpointMisses =
            reg.counter("svc.analysis.checkpoint_misses");
        checkpointEvictions =
            reg.counter("svc.analysis.checkpoint_evictions");
        checkpointInserts =
            reg.counter("svc.analysis.checkpoint_inserts");
        checkpointEntries =
            reg.gauge("svc.analysis.checkpoint_entries");
    }
};

AnalysisCacheMetrics &
analysisCacheMetrics()
{
    static AnalysisCacheMetrics metrics;
    return metrics;
}

} // namespace

bool
AnalysisKey::operator==(const AnalysisKey &other) const
{
    return grid == other.grid &&
           std::bit_cast<std::uint64_t>(budget) ==
               std::bit_cast<std::uint64_t>(other.budget) &&
           std::bit_cast<std::uint64_t>(threshold) ==
               std::bit_cast<std::uint64_t>(other.threshold);
}

std::uint64_t
AnalysisKey::combined() const
{
    // FNV-style mix of the grid digest and the parameter bit patterns
    // (same scheme as GridKey::combined).
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const std::uint64_t part :
         {grid, std::bit_cast<std::uint64_t>(budget),
          std::bit_cast<std::uint64_t>(threshold)}) {
        for (int i = 0; i < 8; ++i)
            hash = (hash ^ ((part >> (8 * i)) & 0xff)) *
                   0x100000001b3ull;
    }
    return hash;
}

AnalysisCache::AnalysisCache(std::size_t capacity, std::size_t shards,
                             std::size_t checkpoint_capacity)
    : capacity_(capacity), checkpointCapacity_(checkpoint_capacity)
{
    if (capacity == 0)
        fatal("AnalysisCache capacity must be at least 1");
    if (shards == 0)
        fatal("AnalysisCache shard count must be at least 1");
    // Same distribution as GridCache: cap shards so each can hold at
    // least one entry, then hand the remainder to the first shards so
    // shard capacities sum exactly to the configured total.
    const std::size_t result_shards = std::min(shards, capacity);
    {
        const std::size_t base = capacity / result_shards;
        const std::size_t remainder = capacity % result_shards;
        shards_.reserve(result_shards);
        for (std::size_t i = 0; i < result_shards; ++i) {
            auto shard = std::make_unique<Shard>();
            shard->capacity = base + (i < remainder ? 1 : 0);
            shards_.push_back(std::move(shard));
        }
    }
    if (checkpointCapacity_ > 0) {
        const std::size_t cp_shards =
            std::min(shards, checkpointCapacity_);
        const std::size_t base = checkpointCapacity_ / cp_shards;
        const std::size_t remainder = checkpointCapacity_ % cp_shards;
        checkpointShards_.reserve(cp_shards);
        for (std::size_t i = 0; i < cp_shards; ++i) {
            auto shard = std::make_unique<CheckpointShard>();
            shard->capacity = base + (i < remainder ? 1 : 0);
            checkpointShards_.push_back(std::move(shard));
        }
    }
}

AnalysisCache::~AnalysisCache()
{
    // Return this instance's resident entries to the global gauges.
    std::size_t resident = 0;
    for (const auto &shard : shards_)
        resident += shard->lru.size();
    analysisCacheMetrics().entries.add(
        -static_cast<std::int64_t>(resident));
    std::size_t cp_resident = 0;
    for (const auto &shard : checkpointShards_)
        cp_resident += shard->lru.size();
    analysisCacheMetrics().checkpointEntries.add(
        -static_cast<std::int64_t>(cp_resident));
}

AnalysisCache::Shard &
AnalysisCache::shardFor(const AnalysisKey &key)
{
    return *shards_[key.combined() % shards_.size()];
}

AnalysisCache::CheckpointShard &
AnalysisCache::checkpointShardFor(const AnalysisKey &key)
{
    return *checkpointShards_[key.combined() %
                              checkpointShards_.size()];
}

std::shared_ptr<const AnalysisResult>
AnalysisCache::find(const AnalysisKey &key)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key.combined());
    if (it == shard.index.end() || !(it->second->key == key)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        analysisCacheMetrics().misses.add(1);
        return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    analysisCacheMetrics().hits.add(1);
    return it->second->result;
}

void
AnalysisCache::insert(const AnalysisKey &key,
                      std::shared_ptr<const AnalysisResult> result)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::uint64_t digest = key.combined();
    analysisCacheMetrics().inserts.add(1);
    const auto it = shard.index.find(digest);
    if (it != shard.index.end()) {
        it->second->result = std::move(result);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    if (shard.lru.size() >= shard.capacity) {
        const Entry &victim = shard.lru.back();
        shard.index.erase(victim.key.combined());
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
        analysisCacheMetrics().evictions.add(1);
        analysisCacheMetrics().entries.add(-1);
    }
    shard.lru.push_front(Entry{key, std::move(result)});
    shard.index.emplace(digest, shard.lru.begin());
    analysisCacheMetrics().entries.add(1);
}

std::shared_ptr<const AnalysisCheckpoint>
AnalysisCache::findLongestCheckpoint(
    const std::vector<AnalysisKey> &keys)
{
    if (checkpointShards_.empty()) {
        checkpointMisses_.fetch_add(1, std::memory_order_relaxed);
        analysisCacheMetrics().checkpointMisses.add(1);
        return nullptr;
    }
    for (const AnalysisKey &key : keys) {
        CheckpointShard &shard = checkpointShardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.index.find(key.combined());
        if (it == shard.index.end() || !(it->second->key == key))
            continue;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        checkpointHits_.fetch_add(1, std::memory_order_relaxed);
        analysisCacheMetrics().checkpointHits.add(1);
        return it->second->checkpoint;
    }
    checkpointMisses_.fetch_add(1, std::memory_order_relaxed);
    analysisCacheMetrics().checkpointMisses.add(1);
    return nullptr;
}

void
AnalysisCache::insertCheckpoint(
    const AnalysisKey &key,
    std::shared_ptr<const AnalysisCheckpoint> checkpoint)
{
    if (checkpointShards_.empty())
        return;
    CheckpointShard &shard = checkpointShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::uint64_t digest = key.combined();
    analysisCacheMetrics().checkpointInserts.add(1);
    const auto it = shard.index.find(digest);
    if (it != shard.index.end()) {
        it->second->checkpoint = std::move(checkpoint);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    if (shard.lru.size() >= shard.capacity) {
        const CheckpointEntry &victim = shard.lru.back();
        shard.index.erase(victim.key.combined());
        shard.lru.pop_back();
        checkpointEvictions_.fetch_add(1, std::memory_order_relaxed);
        analysisCacheMetrics().checkpointEvictions.add(1);
        analysisCacheMetrics().checkpointEntries.add(-1);
    }
    shard.lru.push_front(CheckpointEntry{key, std::move(checkpoint)});
    shard.index.emplace(digest, shard.lru.begin());
    analysisCacheMetrics().checkpointEntries.add(1);
}

void
AnalysisCache::clear()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        analysisCacheMetrics().entries.add(
            -static_cast<std::int64_t>(shard->lru.size()));
        shard->lru.clear();
        shard->index.clear();
    }
    for (auto &shard : checkpointShards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        analysisCacheMetrics().checkpointEntries.add(
            -static_cast<std::int64_t>(shard->lru.size()));
        shard->lru.clear();
        shard->index.clear();
    }
}

AnalysisCache::Stats
AnalysisCache::stats() const
{
    Stats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        stats.entries += shard->lru.size();
    }
    stats.checkpointHits =
        checkpointHits_.load(std::memory_order_relaxed);
    stats.checkpointMisses =
        checkpointMisses_.load(std::memory_order_relaxed);
    stats.checkpointEvictions =
        checkpointEvictions_.load(std::memory_order_relaxed);
    for (const auto &shard : checkpointShards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        stats.checkpointEntries += shard->lru.size();
    }
    return stats;
}

} // namespace svc
} // namespace mcdvfs
