#include "svc/characterization_service.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/logging.hh"
#include "core/incremental_analysis.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "svc/fingerprint.hh"

namespace mcdvfs
{
namespace svc
{

namespace
{

/** Process-wide service metrics (all instances share them). */
struct ServiceMetrics
{
    obs::Counter requests;
    obs::Counter batches;
    obs::Counter gridBuilds;
    obs::Counter coalescedWaits;
    obs::Counter analyzeNs;
    obs::Gauge inflightBuilds;
    obs::Histogram submitNs;
    obs::Histogram buildNs;

    ServiceMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        const auto latency = obs::MetricsRegistry::latencyBucketsNs();
        requests = reg.counter("svc.service.requests");
        batches = reg.counter("svc.service.batches");
        gridBuilds = reg.counter("svc.service.grid_builds");
        coalescedWaits = reg.counter("svc.service.coalesced_waits");
        analyzeNs = reg.counter("svc.service.analyze_ns");
        inflightBuilds = reg.gauge("svc.service.inflight_builds");
        submitNs = reg.histogram("svc.service.submit_ns", latency);
        buildNs = reg.histogram("svc.service.build_ns", latency);
    }
};

ServiceMetrics &
serviceMetrics()
{
    static ServiceMetrics metrics;
    return metrics;
}

} // namespace

CharacterizationService::CharacterizationService(const SystemConfig &config,
                                                 const Options &options)
    : config_(config), configFingerprint_(fingerprintConfig(config)),
      pool_(std::max<std::size_t>(1, options.jobs)),
      profileCache_(options.profileCacheCapacity > 0
                        ? std::make_unique<ProfileCache>(
                              options.profileCacheCapacity,
                              options.profileCacheShards, "svc.profile")
                        : nullptr),
      runner_(config_), cache_(options.cacheCapacity, options.cacheShards),
      analysisCache_(options.analysisCapacity, options.analysisShards,
                     options.checkpointCapacity)
{
    runner_.setThreadPool(&pool_);
    if (profileCache_ != nullptr) {
        runner_.setProfileCache(profileCache_.get());
        // Memoized (canonical) characterization produces different grid
        // content than the historical warm-state path, so the mode must
        // be part of every grid's identity: mix a tag plus the warmup
        // length into the config fingerprint so memoized and
        // non-memoized grids never alias in the grid cache, the
        // analysis cache, or a snapshot store.
        configFingerprint_ = fnv1aMixWord(
            fnv1aMixWord(configFingerprint_, 0x70726f66696c6531ull),
            config_.sampler.profileWarmupInstructions);
    }
}

GridKey
CharacterizationService::keyFor(const WorkloadProfile &workload,
                                const SettingsSpace &space) const
{
    return GridKey{fingerprintWorkload(workload), fingerprintSpace(space),
                   configFingerprint_};
}

std::shared_ptr<const MeasuredGrid>
CharacterizationService::grid(const WorkloadProfile &workload,
                              const SettingsSpace &space)
{
    bool cache_hit = false;
    return gridFor(keyFor(workload, space), workload, space, cache_hit);
}

std::shared_ptr<const MeasuredGrid>
CharacterizationService::grid(const WorkloadProfile &workload,
                              const SettingsSpace &space,
                              bool &cache_hit)
{
    cache_hit = false;
    return gridFor(keyFor(workload, space), workload, space, cache_hit);
}

void
CharacterizationService::primeGrid(const GridKey &key,
                                   std::shared_ptr<const MeasuredGrid> grid)
{
    cache_.insert(key, std::move(grid));
}

void
CharacterizationService::primeAnalysis(
    const AnalysisKey &key, std::shared_ptr<const AnalysisResult> result)
{
    analysisCache_.insert(key, std::move(result));
}

std::shared_ptr<const MeasuredGrid>
CharacterizationService::gridFor(const GridKey &key,
                                 const WorkloadProfile &workload,
                                 const SettingsSpace &space,
                                 bool &cache_hit)
{
    const std::uint64_t digest = key.combined();

    if (auto cached = cache_.find(key)) {
        obs::traceInstant("svc.cache_hit");
        cache_hit = true;
        return cached;
    }

    // Not cached: either claim the build or coalesce with whoever is
    // already characterizing this key.  The builder runs the build on
    // its own thread (never queued behind a waiter), so waiting on the
    // shared future cannot deadlock, even from a pool worker.
    std::promise<std::shared_ptr<const MeasuredGrid>> promise;
    std::shared_future<std::shared_ptr<const MeasuredGrid>> watch;
    {
        std::lock_guard<std::mutex> lock(inflightMutex_);
        const auto it = inflight_.find(digest);
        if (it != inflight_.end()) {
            watch = it->second;
        } else {
            inflight_.emplace(digest, promise.get_future().share());
        }
    }
    if (watch.valid()) {
        serviceMetrics().coalescedWaits.add(1);
        obs::TraceSpan wait_span("svc.coalesced_wait");
        cache_hit = true;
        return watch.get();
    }

    serviceMetrics().inflightBuilds.add(1);
    try {
        const obs::Clock::time_point build_start = obs::metricsNow();
        obs::TraceSpan build_span("svc.grid_build");
        auto grid = std::make_shared<const MeasuredGrid>(
            runner_.run(workload, space));
        build_span.end();
        serviceMetrics().buildNs.record(obs::elapsedNs(build_start));
        serviceMetrics().gridBuilds.add(1);
        cache_.insert(key, grid);
        {
            std::lock_guard<std::mutex> lock(inflightMutex_);
            inflight_.erase(digest);
        }
        serviceMetrics().inflightBuilds.add(-1);
        promise.set_value(grid);
        cache_hit = false;
        return grid;
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(inflightMutex_);
            inflight_.erase(digest);
        }
        serviceMetrics().inflightBuilds.add(-1);
        promise.set_exception(std::current_exception());
        throw;
    }
}

TuningResult
CharacterizationService::analyze(const TuningRequest &request,
                                 std::uint64_t grid_digest,
                                 std::shared_ptr<const MeasuredGrid> grid,
                                 bool cache_hit)
{
    const obs::Clock::time_point analyze_start = obs::metricsNow();
    obs::TraceSpan analyze_span("svc.analyze");
    TuningResult result;
    result.budget = request.budget;
    result.threshold = request.threshold;
    result.cacheHit = cache_hit;

    const AnalysisKey key{grid_digest, request.budget, request.threshold};
    std::shared_ptr<const AnalysisResult> cached =
        analysisCache_.find(key);
    if (cached == nullptr) {
        InefficiencyAnalysis analysis(*grid);
        OptimalSettingsFinder finder(analysis);

        auto fresh = std::make_shared<AnalysisResult>();
        if (SettingMask::supports(grid->settingCount())) {
            const std::size_t samples = grid->sampleCount();

            // Streaming resume: probe the checkpoint store for the
            // longest analyzed content prefix of this grid.  A grown
            // workload misses the result cache (its full fingerprint
            // changed) but shares every prefix digest with its past.
            const bool streaming =
                analysisCache_.checkpointCapacity() > 0;
            std::vector<AnalysisKey> prefix_keys;
            std::shared_ptr<const AnalysisCheckpoint> resumed;
            if (streaming) {
                prefix_keys.reserve(samples);
                for (std::size_t len = samples; len >= 1; --len)
                    prefix_keys.push_back(
                        AnalysisKey{grid->prefixDigest(len),
                                    request.budget, request.threshold});
                resumed =
                    analysisCache_.findLongestCheckpoint(prefix_keys);
            }

            if (resumed != nullptr) {
                // Clone the checkpoint and analyze only the tail:
                // the range ClusterFinder fills [resumed, samples),
                // extend() feeds the same fill kernel and region
                // builder the from-scratch path runs, so the result
                // is bit-identical to a full recompute.
                obs::traceInstant("svc.analysis_resumed");
                auto cp =
                    std::make_shared<AnalysisCheckpoint>(*resumed);
                ClusterFinder cluster_finder(finder, cp->samples);
                IncrementalAnalyzer::extend(*cp, cluster_finder,
                                            samples);
                fresh->optimal = cp->optimal;
                fresh->clusters.reserve(samples);
                for (std::size_t s = 0; s < samples; ++s)
                    fresh->clusters.push_back(
                        IncrementalAnalyzer::materializeCluster(
                            cp->optimal[s], cp->masks[s]));
                fresh->regions = cp->regions.regions(grid->space());
                result.analysisResumed = true;
                result.resumedFromSamples = resumed->samples;
                analysisCache_.insertCheckpoint(prefix_keys.front(),
                                                std::move(cp));
            } else {
                // One mask-table pass feeds all three outputs, with
                // the per-sample kernel fanned over the pool
                // (bit-identical to the serial scalar chain;
                // parallelFor is nest-safe, so this is fine from a
                // batch worker too).
                ClusterFinder cluster_finder(finder);
                StableRegionFinder region_finder(cluster_finder);
                const ClusterTable table = cluster_finder.table(
                    request.budget, request.threshold, &pool_);
                fresh->optimal = table.optimal;
                fresh->clusters.reserve(table.sampleCount());
                for (std::size_t s = 0; s < table.sampleCount(); ++s)
                    fresh->clusters.push_back(table.materialize(s));
                fresh->regions = region_finder.fromTable(table);
                if (streaming)
                    analysisCache_.insertCheckpoint(
                        prefix_keys.front(),
                        std::make_shared<AnalysisCheckpoint>(
                            IncrementalAnalyzer::fromTable(
                                grid->space(), table)));
            }
        } else {
            ClusterFinder cluster_finder(finder);
            StableRegionFinder region_finder(cluster_finder);
            fresh->optimal = finder.optimalTrajectory(request.budget);
            fresh->clusters = cluster_finder.clusters(request.budget,
                                                      request.threshold);
            fresh->regions =
                region_finder.fromClusters(fresh->clusters);
        }
        analysisCache_.insert(key, fresh);
        cached = std::move(fresh);
    } else {
        obs::traceInstant("svc.analysis_cache_hit");
        result.analysisCacheHit = true;
    }

    result.optimal = cached->optimal;
    result.clusters = cached->clusters;
    result.regions = cached->regions;
    result.grid = std::move(grid);
    serviceMetrics().analyzeNs.add(obs::elapsedNs(analyze_start));
    return result;
}

TuningResult
CharacterizationService::submit(const TuningRequest &request)
{
    obs::ScopedTimer submit_timer(serviceMetrics().submitNs);
    obs::TraceSpan submit_span("svc.submit");
    serviceMetrics().requests.add(1);
    obs::MetricsRegistry::global()
        .counter("svc.service.requests",
                 {{"wl", request.workload.name()}})
        .add(1);
    bool cache_hit = false;
    const GridKey key = keyFor(request.workload, request.space);
    auto grid = gridFor(key, request.workload, request.space, cache_hit);
    return analyze(request, key.combined(), std::move(grid), cache_hit);
}

std::vector<TuningResult>
CharacterizationService::submitBatch(
    const std::vector<TuningRequest> &requests)
{
    std::vector<TuningResult> results(requests.size());
    obs::TraceSpan batch_span("svc.submit_batch", requests.size());
    serviceMetrics().batches.add(1);
    serviceMetrics().requests.add(requests.size());
    for (const TuningRequest &request : requests) {
        obs::MetricsRegistry::global()
            .counter("svc.service.requests",
                     {{"wl", request.workload.name()}})
            .add(1);
    }
    const obs::Clock::time_point batch_start = obs::metricsNow();

    // Group requests sharing a grid so each distinct characterization
    // runs exactly once, then fan the groups out across the pool.
    struct Group
    {
        GridKey key;
        std::vector<std::size_t> members;
    };
    std::map<std::uint64_t, Group> groups;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const GridKey key = keyFor(requests[i].workload,
                                   requests[i].space);
        Group &group = groups[key.combined()];
        group.key = key;
        group.members.push_back(i);
    }

    std::vector<std::future<void>> pending;
    pending.reserve(groups.size());
    for (const auto &[digest, group] : groups) {
        pending.push_back(pool_.submit([this, &requests, &results,
                                        &group, batch_start] {
            bool cache_hit = false;
            const std::vector<std::size_t> &members = group.members;
            auto grid = gridFor(group.key,
                                requests[members.front()].workload,
                                requests[members.front()].space,
                                cache_hit);
            const std::uint64_t grid_digest = group.key.combined();
            for (std::size_t j = 0; j < members.size(); ++j) {
                const std::size_t i = members[j];
                // Later members of the group reuse the first build.
                results[i] = analyze(requests[i], grid_digest, grid,
                                     j == 0 ? cache_hit : true);
                // Submit-to-complete latency of each batch member.
                serviceMetrics().submitNs.record(
                    obs::elapsedNs(batch_start));
            }
        }));
    }
    for (auto &future : pending)
        future.get();
    return results;
}

} // namespace svc
} // namespace mcdvfs
