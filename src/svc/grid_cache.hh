/**
 * @file
 * Sharded LRU cache of characterization results.
 *
 * Characterizing a workload is the dominant cost of every analysis
 * (hundreds of samples through the cache/DRAM simulator), while the
 * result — a MeasuredGrid — is reusable across budgets and thresholds.
 * GridCache keeps recently built grids keyed by the fingerprint triple
 * (workload, settings space, system config) so repeated requests skip
 * re-characterization entirely.
 *
 * The key space is sharded and each shard holds its own mutex, so
 * concurrent service threads only contend when they land on the same
 * shard.  Grids are held by shared_ptr: eviction never invalidates a
 * grid a caller is still analyzing.
 */

#ifndef MCDVFS_SVC_GRID_CACHE_HH
#define MCDVFS_SVC_GRID_CACHE_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sim/measured_grid.hh"

namespace mcdvfs
{
namespace svc
{

/** Identity of one characterization (see svc/fingerprint.hh). */
struct GridKey
{
    std::uint64_t workload = 0;  ///< fingerprintWorkload()
    std::uint64_t space = 0;     ///< fingerprintSpace()
    std::uint64_t config = 0;    ///< fingerprintConfig()

    bool
    operator==(const GridKey &other) const
    {
        return workload == other.workload && space == other.space &&
               config == other.config;
    }

    /** Combined 64-bit digest (shard selection and map hashing). */
    std::uint64_t combined() const;
};

/** Sharded, mutex-guarded LRU cache of MeasuredGrids. */
class GridCache
{
  public:
    /** Hit/miss/eviction counters (monotonic over the cache's life). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;
    };

    /**
     * @param capacity maximum cached grids across all shards (>= 1)
     * @param shards number of independently locked shards (>= 1);
     *        per-shard capacities sum exactly to @c capacity, so the
     *        cache never holds more grids than configured
     * @throws FatalError for a zero capacity or shard count
     */
    explicit GridCache(std::size_t capacity, std::size_t shards = 8);

    ~GridCache();

    /**
     * Look up a grid, refreshing its LRU position.  Counts a hit or a
     * miss; returns nullptr on miss.
     */
    std::shared_ptr<const MeasuredGrid> find(const GridKey &key);

    /**
     * Insert (or refresh) a grid, evicting the shard's least recently
     * used entry when the shard is full.
     */
    void insert(const GridKey &key,
                std::shared_ptr<const MeasuredGrid> grid);

    /** Drop every entry (counters are kept). */
    void clear();

    Stats stats() const;
    std::size_t capacity() const { return capacity_; }
    std::size_t shardCount() const { return shards_.size(); }

  private:
    struct Entry
    {
        GridKey key;
        std::shared_ptr<const MeasuredGrid> grid;
    };

    /** One LRU list + index, guarded by its own mutex. */
    struct Shard
    {
        std::mutex mutex;
        /** Entries this shard may hold (shard capacities sum to
         *  the cache capacity). */
        std::size_t capacity = 1;
        /** Front = most recently used. */
        std::list<Entry> lru;
        std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
            index;
    };

    Shard &shardFor(const GridKey &key);

    std::size_t capacity_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace svc
} // namespace mcdvfs

#endif // MCDVFS_SVC_GRID_CACHE_HH
