/**
 * @file
 * Batched characterization + tuning front end.
 *
 * CharacterizationService is the serving layer over the whole library:
 * one object owning a thread pool and a grid cache, answering tuning
 * requests — "what are the optimal settings, clusters and stable
 * regions of this workload over this settings space under this
 * budget?" — without the caller touching GridRunner or the analysis
 * chain.
 *
 * Four mechanisms make repeated and concurrent traffic cheap:
 *  - the per-setting model evaluation of a grid build fans out over
 *    the pool (bit-identical to the serial build, see GridRunner);
 *  - finished grids land in a sharded LRU cache keyed by content
 *    fingerprints, so any request over the same (workload, space,
 *    config) skips characterization entirely;
 *  - identical characterizations already in flight are coalesced:
 *    concurrent submitters of the same key wait for the first build
 *    instead of duplicating it;
 *  - finished analyses land in a second sharded LRU cache keyed by
 *    (grid fingerprint, budget, threshold), so repeated tuning
 *    requests skip the §V/§VI analysis chain as well;
 *  - streaming workloads resume: when the result cache misses, the
 *    service probes the analysis cache's checkpoint store for the
 *    longest already-analyzed *content prefix* of the grid
 *    (MeasuredGrid::prefixDigest) and extends it over just the new
 *    samples (core/incremental_analysis.hh), bit-identical to a full
 *    recompute.
 */

#ifndef MCDVFS_SVC_CHARACTERIZATION_SERVICE_HH
#define MCDVFS_SVC_CHARACTERIZATION_SERVICE_HH

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/stable_regions.hh"
#include "exec/thread_pool.hh"
#include "sim/grid_runner.hh"
#include "sim/profile_cache.hh"
#include "svc/analysis_cache.hh"
#include "svc/grid_cache.hh"

namespace mcdvfs
{
namespace svc
{

/** One batched tuning request. */
struct TuningRequest
{
    WorkloadProfile workload;
    SettingsSpace space;
    /** Inefficiency budget (>= 1), as in OptimalSettingsFinder. */
    double budget = 1.3;
    /** Cluster performance threshold (e.g. 0.03 for 3%). */
    double threshold = 0.03;
};

/** Everything a tuner needs for one (workload, budget, threshold). */
struct TuningResult
{
    /** The measured grid (shared with the cache; always valid). */
    std::shared_ptr<const MeasuredGrid> grid;
    /** Per-sample optimal settings under the budget (§V). */
    std::vector<OptimalChoice> optimal;
    /** Per-sample performance clusters (§VI-A). */
    std::vector<PerformanceCluster> clusters;
    /** Stable regions tiling the run (§VI-B). */
    std::vector<StableRegion> regions;
    double budget = 0.0;
    double threshold = 0.0;
    /**
     * True when the grid came from the cache or was coalesced with an
     * identical build (in the batch or already in flight) instead of
     * being characterized for this request.
     */
    bool cacheHit = false;
    /**
     * True when the §V/§VI analysis came from the analysis cache
     * instead of being recomputed for this request.
     */
    bool analysisCacheHit = false;
    /**
     * True when the analysis resumed from a cached incremental
     * checkpoint of a sample prefix instead of recomputing the full
     * history; resumedFromSamples is the prefix length it resumed
     * from (0 when not resumed).
     */
    bool analysisResumed = false;
    std::size_t resumedFromSamples = 0;
};

/** Sizing knobs of a CharacterizationService. */
struct ServiceOptions
{
    /**
     * Worker threads for grid builds and batch fan-out; 1 keeps
     * everything on the calling thread (still correct, see
     * ThreadPool), 0 is promoted to 1.
     */
    std::size_t jobs = 1;
    /** Grids kept by the LRU cache. */
    std::size_t cacheCapacity = 32;
    /** Cache shards (lock granularity). */
    std::size_t cacheShards = 8;
    /** Analyses kept by the analysis LRU cache. */
    std::size_t analysisCapacity = 64;
    /** Analysis-cache shards (lock granularity). */
    std::size_t analysisShards = 8;
    /**
     * Incremental-analysis checkpoints kept by the analysis cache's
     * checkpoint store; 0 disables streaming resume entirely.
     */
    std::size_t checkpointCapacity = 64;
    /**
     * Characterization memoization (sim::ProfileCache) capacity; 0 —
     * the default — disables it and keeps the historical warm-state
     * characterization bit-identical.  When enabled, every sample is
     * characterized canonically and each distinct (phase, seed,
     * instructions, sampler config) simulates once *across all
     * workloads* the service ever sees ("svc.profile.*" counters).
     * Enabling changes grid content (canonical vs warm-state
     * profiles), so it is mixed into the config fingerprint: grids
     * built with and without memoization never alias in the grid
     * cache or the snapshot store.
     */
    std::size_t profileCacheCapacity = 0;
    /** Profile-cache shards (lock granularity). */
    std::size_t profileCacheShards = 8;
};

/** Thread-pooled, grid-cached tuning service. */
class CharacterizationService
{
  public:
    using Options = ServiceOptions;

    explicit CharacterizationService(
        const SystemConfig &config = SystemConfig::paperDefault(),
        const Options &options = ServiceOptions());

    /**
     * The measured grid of @c workload over @c space: served from the
     * cache when fingerprints match, coalesced with an identical build
     * in flight, characterized (in parallel) otherwise.
     */
    std::shared_ptr<const MeasuredGrid> grid(
        const WorkloadProfile &workload, const SettingsSpace &space);

    /**
     * Same, reporting through @c cache_hit whether the grid was served
     * from the cache (or coalesced with a build already in flight)
     * instead of characterized for this call.  Staged pipelines (the
     * daemon's grid stage) use this to attribute latency and hit rates
     * per stage.
     */
    std::shared_ptr<const MeasuredGrid> grid(
        const WorkloadProfile &workload, const SettingsSpace &space,
        bool &cache_hit);

    /** Content identity of one characterization. */
    GridKey keyFor(const WorkloadProfile &workload,
                   const SettingsSpace &space) const;

    /**
     * Run (or fetch from the analysis cache) the §V/§VI analysis chain
     * for one request over an already-fetched grid.  @c grid_digest is
     * the grid's GridKey::combined(); @c cache_hit is copied into the
     * result's cacheHit field.  This is the daemon's analysis stage;
     * submit() is equivalent to keyFor + grid + analyze.
     */
    TuningResult analyze(const TuningRequest &request,
                         std::uint64_t grid_digest,
                         std::shared_ptr<const MeasuredGrid> grid,
                         bool cache_hit);

    /** Answer one tuning request. */
    TuningResult submit(const TuningRequest &request);

    /**
     * @name Warm-restart priming.
     *
     * Insert an externally obtained (snapshot-loaded) grid or analysis
     * directly into the caches, so a daemon restart starts hot instead
     * of recharacterizing.  Neither counts a hit or a miss; entries
     * are subject to normal LRU eviction.
     */
    ///@{
    void primeGrid(const GridKey &key,
                   std::shared_ptr<const MeasuredGrid> grid);
    void primeAnalysis(const AnalysisKey &key,
                       std::shared_ptr<const AnalysisResult> result);
    ///@}

    /**
     * Answer a batch: requests with distinct grids characterize
     * concurrently across the pool; requests sharing a grid (same
     * workload, space and config — budgets/thresholds may differ)
     * characterize it once.  Results are in request order.
     */
    std::vector<TuningResult> submitBatch(
        const std::vector<TuningRequest> &requests);

    GridCache::Stats cacheStats() const { return cache_.stats(); }
    AnalysisCache::Stats analysisStats() const
    {
        return analysisCache_.stats();
    }

    /** True when characterization memoization is on. */
    bool profileCacheEnabled() const { return profileCache_ != nullptr; }

    /**
     * Profile-cache traffic (all zeros when memoization is disabled).
     */
    ProfileCache::Stats profileStats() const
    {
        return profileCache_ ? profileCache_->stats()
                             : ProfileCache::Stats{};
    }
    const SystemConfig &config() const { return config_; }
    std::size_t jobs() const { return pool_.size(); }

    /** The pool grid builds and batches fan out over. */
    exec::ThreadPool &pool() { return pool_; }

  private:
    /** Grid lookup that also reports whether a build was skipped. */
    std::shared_ptr<const MeasuredGrid> gridFor(
        const GridKey &key, const WorkloadProfile &workload,
        const SettingsSpace &space, bool &cache_hit);

    SystemConfig config_;
    std::uint64_t configFingerprint_;
    exec::ThreadPool pool_;
    /**
     * Characterization memoization shared by every build this service
     * runs (created only when profileCacheCapacity > 0).  Declared
     * before runner_, which holds a pointer into it.
     */
    std::unique_ptr<ProfileCache> profileCache_;
    /**
     * One runner for all builds, so precomputed per-space tables and
     * the profile cache persist across workloads (run() is
     * thread-safe; concurrent builders share it).
     */
    GridRunner runner_;
    GridCache cache_;
    AnalysisCache analysisCache_;

    /** Builds of grids currently characterizing, for coalescing. */
    std::mutex inflightMutex_;
    std::map<std::uint64_t,
             std::shared_future<std::shared_ptr<const MeasuredGrid>>>
        inflight_;
};

} // namespace svc
} // namespace mcdvfs

#endif // MCDVFS_SVC_CHARACTERIZATION_SERVICE_HH
