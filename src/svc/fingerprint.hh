/**
 * @file
 * Stable fingerprints of the inputs that determine a MeasuredGrid.
 *
 * A grid is a pure function of (workload profile, settings space,
 * system configuration) — GridRunner is deterministic by construction
 * (see common/rng.hh).  The cache therefore keys on content hashes of
 * those three inputs, not on object identity: two independently
 * constructed WorkloadProfiles with the same phase script hash the
 * same, and any calibration change to the SystemConfig changes the
 * key.
 *
 * Hashing is field-by-field FNV-1a (never raw struct bytes — padding
 * is indeterminate), with doubles hashed by bit pattern so keys are
 * exact, not tolerance-based.
 */

#ifndef MCDVFS_SVC_FINGERPRINT_HH
#define MCDVFS_SVC_FINGERPRINT_HH

#include <cstdint>
#include <string>

#include "common/hash.hh"
#include "sim/grid_runner.hh"

namespace mcdvfs
{
namespace svc
{

/**
 * Incremental FNV-1a hasher over typed fields, built on the shared
 * primitives in common/hash.hh (byte-wise mixing for avalanche
 * quality; see that header for the granularity trade-off).
 */
class HashBuilder
{
  public:
    HashBuilder &add(std::uint64_t value);
    HashBuilder &add(double value);
    HashBuilder &add(bool value);
    HashBuilder &add(const std::string &value);

    std::uint64_t digest() const { return hash_; }

  private:
    std::uint64_t hash_ = kFnvOffsetBasis;
};

/**
 * Content hash of a workload: name, sample count, and every sample's
 * post-jitter phase and trace seed.  Covers the script and the
 * workload-level RNG seed without needing access to either.
 */
std::uint64_t fingerprintWorkload(const WorkloadProfile &workload);

/**
 * Content hash of a settings space: the domain count and every
 * per-domain ladder (length plus steps).  Hashing the domain list —
 * not the flattened cross product — keeps a three-domain space from
 * colliding with a two-domain space that shares its CPU x mem prefix.
 */
std::uint64_t fingerprintSpace(const SettingsSpace &space);

/** Content hash of the full system configuration. */
std::uint64_t fingerprintConfig(const SystemConfig &config);

} // namespace svc
} // namespace mcdvfs

#endif // MCDVFS_SVC_FINGERPRINT_HH
