#include "svc/grid_cache.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace mcdvfs
{
namespace svc
{

namespace
{

/** Process-wide cache metrics (all GridCache instances share them). */
struct CacheMetrics
{
    obs::Counter hits;
    obs::Counter misses;
    obs::Counter evictions;
    obs::Counter inserts;
    obs::Gauge entries;

    CacheMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        hits = reg.counter("svc.cache.hits");
        misses = reg.counter("svc.cache.misses");
        evictions = reg.counter("svc.cache.evictions");
        inserts = reg.counter("svc.cache.inserts");
        entries = reg.gauge("svc.cache.entries");
    }
};

CacheMetrics &
cacheMetrics()
{
    static CacheMetrics metrics;
    return metrics;
}

} // namespace

std::uint64_t
GridKey::combined() const
{
    // FNV-style mix of the three component digests.
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const std::uint64_t part : {workload, space, config}) {
        for (int i = 0; i < 8; ++i)
            hash = (hash ^ ((part >> (8 * i)) & 0xff)) *
                   0x100000001b3ull;
    }
    return hash;
}

GridCache::GridCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity)
{
    if (capacity == 0)
        fatal("GridCache capacity must be at least 1");
    if (shards == 0)
        fatal("GridCache shard count must be at least 1");
    // More shards than entries would leave shards that can never hold
    // anything; cap so every shard has capacity >= 1.  The capacity is
    // then distributed exactly — remainder entries go to the first
    // shards — so the shard capacities sum to the configured total and
    // the cache can never hold more grids than asked for.
    shards = std::min(shards, capacity);
    const std::size_t base = capacity / shards;
    const std::size_t remainder = capacity % shards;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
        auto shard = std::make_unique<Shard>();
        shard->capacity = base + (i < remainder ? 1 : 0);
        shards_.push_back(std::move(shard));
    }
}

GridCache::~GridCache()
{
    // Return this instance's resident entries to the global gauge.
    std::size_t resident = 0;
    for (const auto &shard : shards_)
        resident += shard->lru.size();
    cacheMetrics().entries.add(-static_cast<std::int64_t>(resident));
}

GridCache::Shard &
GridCache::shardFor(const GridKey &key)
{
    return *shards_[key.combined() % shards_.size()];
}

std::shared_ptr<const MeasuredGrid>
GridCache::find(const GridKey &key)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key.combined());
    if (it == shard.index.end() || !(it->second->key == key)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        cacheMetrics().misses.add(1);
        return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    cacheMetrics().hits.add(1);
    return it->second->grid;
}

void
GridCache::insert(const GridKey &key,
                  std::shared_ptr<const MeasuredGrid> grid)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::uint64_t digest = key.combined();
    cacheMetrics().inserts.add(1);
    const auto it = shard.index.find(digest);
    if (it != shard.index.end()) {
        it->second->grid = std::move(grid);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    if (shard.lru.size() >= shard.capacity) {
        const Entry &victim = shard.lru.back();
        shard.index.erase(victim.key.combined());
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
        cacheMetrics().evictions.add(1);
        cacheMetrics().entries.add(-1);
    }
    shard.lru.push_front(Entry{key, std::move(grid)});
    shard.index.emplace(digest, shard.lru.begin());
    cacheMetrics().entries.add(1);
}

void
GridCache::clear()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        cacheMetrics().entries.add(
            -static_cast<std::int64_t>(shard->lru.size()));
        shard->lru.clear();
        shard->index.clear();
    }
}

GridCache::Stats
GridCache::stats() const
{
    Stats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        stats.entries += shard->lru.size();
    }
    return stats;
}

} // namespace svc
} // namespace mcdvfs
