#include "svc/grid_cache.hh"

#include "common/logging.hh"

namespace mcdvfs
{
namespace svc
{

std::uint64_t
GridKey::combined() const
{
    // FNV-style mix of the three component digests.
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const std::uint64_t part : {workload, space, config}) {
        for (int i = 0; i < 8; ++i)
            hash = (hash ^ ((part >> (8 * i)) & 0xff)) *
                   0x100000001b3ull;
    }
    return hash;
}

GridCache::GridCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity)
{
    if (capacity == 0)
        fatal("GridCache capacity must be at least 1");
    if (shards == 0)
        fatal("GridCache shard count must be at least 1");
    // More shards than entries would leave shards that can never hold
    // anything; cap so every shard has capacity >= 1.
    shards = std::min(shards, capacity);
    shardCapacity_ = (capacity + shards - 1) / shards;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

GridCache::Shard &
GridCache::shardFor(const GridKey &key)
{
    return *shards_[key.combined() % shards_.size()];
}

std::shared_ptr<const MeasuredGrid>
GridCache::find(const GridKey &key)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key.combined());
    if (it == shard.index.end() || !(it->second->key == key)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->grid;
}

void
GridCache::insert(const GridKey &key,
                  std::shared_ptr<const MeasuredGrid> grid)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::uint64_t digest = key.combined();
    const auto it = shard.index.find(digest);
    if (it != shard.index.end()) {
        it->second->grid = std::move(grid);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    if (shard.lru.size() >= shardCapacity_) {
        const Entry &victim = shard.lru.back();
        shard.index.erase(victim.key.combined());
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.push_front(Entry{key, std::move(grid)});
    shard.index.emplace(digest, shard.lru.begin());
}

void
GridCache::clear()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->lru.clear();
        shard->index.clear();
    }
}

GridCache::Stats
GridCache::stats() const
{
    Stats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        stats.entries += shard->lru.size();
    }
    return stats;
}

} // namespace svc
} // namespace mcdvfs
