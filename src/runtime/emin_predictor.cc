#include "runtime/emin_predictor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mcdvfs
{

EminPredictor::EminPredictor(double forgetting)
    : forgetting_(forgetting)
{
    if (forgetting <= 0.0 || forgetting > 1.0)
        fatal("emin predictor: forgetting factor must be in (0,1]");
    // P = delta * I with a large delta (uninformative prior).
    for (std::size_t i = 0; i < kFeatures; ++i)
        p_[i][i] = 1e3;
}

EminPredictor::Vector
EminPredictor::features(const SampleProfile &profile)
{
    // Observable from performance counters after a sample executes:
    // core CPI, cache miss rates, DRAM traffic and row locality.
    return Vector{
        1.0,
        profile.baseCpi,
        profile.l1Mpki / 10.0,
        profile.l2Mpki / 10.0,
        profile.dramPerInstr() * 1000.0,
        profile.rowHitFrac,
    };
}

void
EminPredictor::observe(const SampleProfile &profile, Joules true_emin)
{
    MCDVFS_ASSERT(true_emin > 0.0, "Emin must be positive");

    // Keep the regression target around O(1) for conditioning.
    if (targetScale_ <= 0.0)
        targetScale_ = true_emin;
    const double y = true_emin / targetScale_;
    const Vector x = features(profile);

    // Standard RLS update with forgetting factor lambda:
    //   k = P x / (lambda + x' P x)
    //   w += k (y - w' x)
    //   P = (P - k x' P) / lambda
    Vector px{};
    for (std::size_t i = 0; i < kFeatures; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < kFeatures; ++j)
            acc += p_[i][j] * x[j];
        px[i] = acc;
    }
    double denom = forgetting_;
    for (std::size_t i = 0; i < kFeatures; ++i)
        denom += x[i] * px[i];

    Vector gain{};
    for (std::size_t i = 0; i < kFeatures; ++i)
        gain[i] = px[i] / denom;

    double prediction = 0.0;
    for (std::size_t i = 0; i < kFeatures; ++i)
        prediction += weights_[i] * x[i];
    const double error = y - prediction;
    for (std::size_t i = 0; i < kFeatures; ++i)
        weights_[i] += gain[i] * error;

    // P update: (I - k x') P / lambda.  px holds x' P (P symmetric).
    for (std::size_t i = 0; i < kFeatures; ++i) {
        for (std::size_t j = 0; j < kFeatures; ++j) {
            p_[i][j] = (p_[i][j] - gain[i] * px[j]) / forgetting_;
        }
    }
    ++observations_;
}

Joules
EminPredictor::predict(const SampleProfile &profile) const
{
    if (targetScale_ <= 0.0)
        return 0.0;
    const Vector x = features(profile);
    double y = 0.0;
    for (std::size_t i = 0; i < kFeatures; ++i)
        y += weights_[i] * x[i];
    // Emin can never be negative; floor at a small fraction of scale.
    return std::max(y, 1e-3) * targetScale_;
}

double
EminPredictor::predictInefficiency(const SampleProfile &profile,
                                   Joules energy) const
{
    const Joules emin = predict(profile);
    return emin > 0.0 ? energy / emin : 0.0;
}

} // namespace mcdvfs
