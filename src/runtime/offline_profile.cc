#include "runtime/offline_profile.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace mcdvfs
{

OfflineProfile::OfflineProfile(std::string workload)
    : workload_(std::move(workload))
{
}

OfflineProfile
OfflineProfile::fromRegions(const std::string &workload,
                            const std::vector<StableRegion> &regions,
                            const SettingsSpace &space)
{
    OfflineProfile profile(workload);
    for (const StableRegion &region : regions) {
        ProfiledRegion out;
        out.first = region.first;
        out.last = region.last;
        out.setting = space.at(region.chosenSettingIndex);
        profile.addRegion(out);
    }
    return profile;
}

void
OfflineProfile::addRegion(const ProfiledRegion &region)
{
    if (region.last < region.first)
        fatal("offline profile: region end precedes start");
    if (!regions_.empty() && region.first != regions_.back().last + 1) {
        fatal("offline profile: regions must tile the run (expected "
              "start ", regions_.back().last + 1, ", got ",
              region.first, ")");
    }
    if (regions_.empty() && region.first != 0)
        fatal("offline profile: first region must start at sample 0");
    regions_.push_back(region);
}

std::string
OfflineProfile::serialize() const
{
    std::ostringstream os;
    os << "workload " << workload_ << '\n';
    for (const ProfiledRegion &region : regions_) {
        char line[128];
        std::snprintf(line, sizeof(line), "region %zu %zu %.0f %.0f\n",
                      region.first, region.last,
                      toMegaHertz(region.setting.cpu),
                      toMegaHertz(region.setting.mem));
        os << line;
    }
    return os.str();
}

OfflineProfile
OfflineProfile::parse(const std::string &text)
{
    std::istringstream is(text);
    std::string keyword;
    if (!(is >> keyword) || keyword != "workload")
        fatal("offline profile: missing 'workload' header");
    std::string name;
    if (!(is >> name))
        fatal("offline profile: missing workload name");

    OfflineProfile profile(name);
    while (is >> keyword) {
        if (keyword != "region")
            fatal("offline profile: unexpected token '", keyword, "'");
        std::size_t first = 0;
        std::size_t last = 0;
        double cpu_mhz = 0.0;
        double mem_mhz = 0.0;
        if (!(is >> first >> last >> cpu_mhz >> mem_mhz))
            fatal("offline profile: malformed region line");
        ProfiledRegion region;
        region.first = first;
        region.last = last;
        region.setting =
            FrequencySetting{megaHertz(cpu_mhz), megaHertz(mem_mhz)};
        profile.addRegion(region);
    }
    return profile;
}

const ProfiledRegion *
OfflineProfile::regionAt(std::size_t sample) const
{
    for (const ProfiledRegion &region : regions_) {
        if (sample >= region.first && sample <= region.last)
            return &region;
    }
    return nullptr;
}

} // namespace mcdvfs
