#include "runtime/budget_arbiter.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mcdvfs
{
namespace runtime
{

namespace
{

/** Process-wide arbiter metrics (all arbiters share them). */
struct ArbiterMetrics
{
    obs::Counter decisions;
    obs::Counter kept;
    obs::Counter retunes;
    obs::Counter capped;
    /** Labeled views of `capped` by active priority variant. */
    obs::Counter cappedCpuPriority;
    obs::Counter cappedGpuPriority;
    obs::Counter rowSwitches;

    ArbiterMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        decisions = reg.counter("runtime.arbiter.decisions");
        kept = reg.counter("runtime.arbiter.kept");
        retunes = reg.counter("runtime.arbiter.retunes");
        capped = reg.counter("runtime.arbiter.capped");
        cappedCpuPriority =
            reg.counter("runtime.arbiter.capped", {{"priority", "cpu"}});
        cappedGpuPriority =
            reg.counter("runtime.arbiter.capped", {{"priority", "gpu"}});
        rowSwitches = reg.counter("runtime.arbiter.row_switches");
    }
};

ArbiterMetrics &
arbiterMetrics()
{
    static ArbiterMetrics metrics;
    return metrics;
}

bool
capsAdmit(const DomainCaps &caps, const FrequencySetting &setting,
          bool has_gpu)
{
    return setting.cpu <= caps.cpu && setting.mem <= caps.mem &&
           (!has_gpu || setting.gpu <= caps.gpu);
}

void
validateVariant(const DomainCaps &caps, const FrequencySetting &min,
                bool has_gpu, const char *variant)
{
    if (!(caps.cpu > 0.0) || !(caps.mem > 0.0) ||
        (has_gpu && !(caps.gpu > 0.0)))
        fatal("budget arbiter: ", variant, " caps must be positive");
    if (!capsAdmit(caps, min, has_gpu))
        fatal("budget arbiter: ", variant,
              " caps exclude the minimum setting — the arbiter would "
              "have no legal choice");
}

} // namespace

BudgetArbiter::BudgetArbiter(const ClusterFinder &clusters, double budget,
                             double threshold, std::vector<CapRow> table,
                             Priority priority)
    : clusters_(clusters), budget_(budget), threshold_(threshold),
      table_(std::move(table)), priority_(priority)
{
    if (budget < 1.0)
        fatal("budget arbiter: inefficiency budget must be >= 1");
    if (threshold < 0.0)
        fatal("budget arbiter: threshold must be >= 0");

    const SettingsSpace &spc = space();
    const bool has_gpu = spc.hasGpu();
    const FrequencySetting min = spc.minSetting();
    for (std::size_t i = 0; i < table_.size(); ++i) {
        const CapRow &row = table_[i];
        if (!std::isfinite(row.budget) || row.budget < 0.0)
            fatal("budget arbiter: row budgets must be finite and "
                  ">= 0");
        if (i > 0 && !(row.budget > table_[i - 1].budget))
            fatal("budget arbiter: cap rows must be strictly "
                  "ascending in budget");
        validateVariant(row.cpuPriority, min, has_gpu, "cpu-priority");
        validateVariant(row.gpuPriority, min, has_gpu, "gpu-priority");
        // A cpu-priority row keeps the CPU at least as fast as its
        // gpu-priority sibling, and vice versa — anything else would
        // invert the meaning of the priority switch.
        if (row.cpuPriority.cpu < row.gpuPriority.cpu ||
            row.gpuPriority.gpu < row.cpuPriority.gpu)
            fatal("budget arbiter: priority inversion in cap row ", i);
        if (i > 0) {
            // More available power must never tighten a cap.
            const CapRow &prev = table_[i - 1];
            const auto monotone = [](const DomainCaps &lo,
                                     const DomainCaps &hi) {
                return hi.cpu >= lo.cpu && hi.mem >= lo.mem &&
                       hi.gpu >= lo.gpu;
            };
            if (!monotone(prev.cpuPriority, row.cpuPriority) ||
                !monotone(prev.gpuPriority, row.gpuPriority))
                fatal("budget arbiter: caps must not tighten as the "
                      "budget grows (row ", i, ")");
        }
    }

    settings_ = spc.all();
    rebuildAllowed();
}

const SettingsSpace &
BudgetArbiter::space() const
{
    return clusters_.finder().analysis().grid().space();
}

std::size_t
BudgetArbiter::activeRow() const
{
    if (table_.empty())
        return 0;
    // Floor-wise row match (sysedp style): the last row whose budget
    // does not exceed the available power; below the first row the
    // most restrictive row stays in force.
    std::size_t row = 0;
    for (std::size_t i = 0; i < table_.size(); ++i) {
        if (table_[i].budget <= systemBudget_)
            row = i;
        else
            break;
    }
    return row;
}

DomainCaps
BudgetArbiter::activeCaps() const
{
    if (table_.empty()) {
        DomainCaps unconstrained;
        unconstrained.cpu = kUnconstrainedBudget;
        unconstrained.mem = kUnconstrainedBudget;
        unconstrained.gpu = kUnconstrainedBudget;
        return unconstrained;
    }
    const CapRow &row = table_[activeRow()];
    return priority_ == Priority::Cpu ? row.cpuPriority
                                      : row.gpuPriority;
}

void
BudgetArbiter::rebuildAllowed()
{
    const DomainCaps caps = activeCaps();
    const bool has_gpu = space().hasGpu();
    allowed_ = SettingMask(settings_.size());
    for (std::size_t k = 0; k < settings_.size(); ++k) {
        if (capsAdmit(caps, settings_[k], has_gpu))
            allowed_.set(k);
    }
    MCDVFS_ASSERT(allowed_.any(),
                  "validated caps always admit the minimum setting");
}

void
BudgetArbiter::setSystemBudget(Watts budget)
{
    if (std::isnan(budget))
        fatal("budget arbiter: system budget must not be NaN");
    const std::size_t before = activeRow();
    systemBudget_ = budget;
    if (activeRow() != before) {
        arbiterMetrics().rowSwitches.add(1);
        rebuildAllowed();
    }
}

void
BudgetArbiter::setPriority(Priority priority)
{
    if (priority == priority_)
        return;
    priority_ = priority;
    rebuildAllowed();
}

FrequencySetting
BudgetArbiter::preferredIn(const SettingMask &mask) const
{
    bool have = false;
    FrequencySetting best{};
    for (const std::size_t k : mask) {
        if (!have || settingPreferred(settings_[k], best)) {
            have = true;
            best = settings_[k];
        }
    }
    MCDVFS_ASSERT(have, "preferredIn over an empty mask");
    return best;
}

FrequencySetting
BudgetArbiter::decide(const SampleObservation *last)
{
    obs::TraceSpan span("runtime.arbiter.decide");
    ArbiterMetrics &metrics = arbiterMetrics();
    metrics.decisions.add(1);
    ++decisions_;

    if (!last) {
        // Nothing observed yet: the fastest setting the caps admit
        // (the space maximum when unconstrained, exactly like the
        // plain inefficiency governor).
        current_ = preferredIn(allowed_);
        haveCurrent_ = true;
        return current_;
    }

    // Last-value phase prediction, same as InefficiencyGovernor: the
    // cluster of the sample that just finished.
    const PerformanceCluster cluster = clusters_.clusterForSample(
        last->sampleIndex, budget_, threshold_);

    if (haveCurrent_) {
        const std::size_t current_idx = space().indexOf(current_);
        if (cluster.contains(current_idx) &&
            allowed_.test(current_idx)) {
            // Still near-optimal and still affordable: no transition.
            metrics.kept.add(1);
            ++kept_;
            return current_;
        }
    }

    if (allowed_.test(cluster.optimal.settingIndex)) {
        metrics.retunes.add(1);
        ++retuned_;
        current_ = cluster.optimal.setting;
        haveCurrent_ = true;
        return current_;
    }

    // The caps vetoed the cluster optimum: fall back to the
    // most-preferred affordable cluster member, or — if power is so
    // short the whole cluster is out of reach — the most-preferred
    // affordable setting anywhere (the validated caps always admit at
    // least the minimum setting).
    metrics.capped.add(1);
    if (priority_ == Priority::Cpu)
        metrics.cappedCpuPriority.add(1);
    else
        metrics.cappedGpuPriority.add(1);
    ++capped_;
    bool have = false;
    FrequencySetting best{};
    for (const std::size_t k : cluster.settings) {
        if (!allowed_.test(k))
            continue;
        if (!have || settingPreferred(settings_[k], best)) {
            have = true;
            best = settings_[k];
        }
    }
    current_ = have ? best : preferredIn(allowed_);
    haveCurrent_ = true;
    return current_;
}

} // namespace runtime
} // namespace mcdvfs
