#include "runtime/phase_detector.hh"

#include <algorithm>
#include <cmath>

namespace mcdvfs
{

PhaseDetector::PhaseDetector(const PhaseDetectorParams &params)
    : params_(params)
{
}

PhaseDetector::Vector
PhaseDetector::features(const SampleProfile &profile)
{
    // Counter-derived behaviour vector; scaled so components are
    // commensurable.
    return Vector{
        profile.baseCpi,
        profile.l1Mpki / 10.0,
        profile.l2Mpki / 5.0,
        profile.dramPerInstr() * 500.0,
    };
}

double
PhaseDetector::distance(const Vector &a, const Vector &b)
{
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < kFeatures; ++i) {
        num += std::abs(a[i] - b[i]);
        den += std::abs(a[i]) + std::abs(b[i]);
    }
    return den > 0.0 ? 2.0 * num / den : 0.0;
}

bool
PhaseDetector::observe(const SampleProfile &profile)
{
    const Vector x = features(profile);
    ++observations_;
    if (observations_ == 1) {
        centroid_ = x;
        return true;  // the first sample starts the first phase
    }

    const bool changed =
        distance(x, centroid_) > params_.changeThreshold;
    if (changed) {
        ++changes_;
        centroid_ = x;  // restart the centroid at the new phase
    } else {
        for (std::size_t i = 0; i < kFeatures; ++i) {
            centroid_[i] = params_.ewmaAlpha * x[i] +
                           (1.0 - params_.ewmaAlpha) * centroid_[i];
        }
    }
    return changed;
}

} // namespace mcdvfs
