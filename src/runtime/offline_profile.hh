/**
 * @file
 * Offline application profiles (§VII, "Offline Analysis").
 *
 * An application is profiled once (its stable regions, their
 * positions, lengths and chosen settings) and the profile is consulted
 * at run time so the tuner knows how long it can go without tuning.
 * Profiles serialize to a line-oriented text format so they can be
 * shipped with an application.
 */

#ifndef MCDVFS_RUNTIME_OFFLINE_PROFILE_HH
#define MCDVFS_RUNTIME_OFFLINE_PROFILE_HH

#include <string>
#include <vector>

#include "core/stable_regions.hh"
#include "dvfs/settings_space.hh"

namespace mcdvfs
{

/** One profiled stable region. */
struct ProfiledRegion
{
    std::size_t first = 0;  ///< first sample (inclusive)
    std::size_t last = 0;   ///< last sample (inclusive)
    FrequencySetting setting{};
};

/** Persisted stable-region table for one application. */
class OfflineProfile
{
  public:
    /** Empty profile for @c workload. */
    explicit OfflineProfile(std::string workload);

    /** Build from an offline stable-region analysis. */
    static OfflineProfile fromRegions(
        const std::string &workload,
        const std::vector<StableRegion> &regions,
        const SettingsSpace &space);

    /**
     * Parse the text format produced by serialize().
     * @throws FatalError on malformed input.
     */
    static OfflineProfile parse(const std::string &text);

    /** Line-oriented text serialization. */
    std::string serialize() const;

    /** Region covering @c sample, or nullptr past the profiled run. */
    const ProfiledRegion *regionAt(std::size_t sample) const;

    /** Append one region (must continue the previous one). */
    void addRegion(const ProfiledRegion &region);

    const std::string &workload() const { return workload_; }
    const std::vector<ProfiledRegion> &regions() const { return regions_; }

  private:
    std::string workload_;
    std::vector<ProfiledRegion> regions_;
};

} // namespace mcdvfs

#endif // MCDVFS_RUNTIME_OFFLINE_PROFILE_HH
