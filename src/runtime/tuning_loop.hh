/**
 * @file
 * Online tuning-loop simulation (§VII).
 *
 * The paper proposes two ways a real tuner can avoid re-tuning every
 * interval: learning-based prediction of stable-region length, and
 * offline profiles.  TuningLoop simulates four re-tune schedules over
 * a measured grid, charging the §VI-C per-event tuning overhead, and
 * reports end-to-end time/energy, achieved inefficiency and budget
 * violations:
 *
 *  - oracle:        one tuning event per true stable region (upper
 *                   bound; requires future knowledge);
 *  - every-sample:  re-tune at every sample boundary using last-value
 *                   phase prediction;
 *  - predictive:    re-tune only when the run-length predictor says
 *                   the phase is due to change;
 *  - profile:       follow an offline stable-region profile.
 */

#ifndef MCDVFS_RUNTIME_TUNING_LOOP_HH
#define MCDVFS_RUNTIME_TUNING_LOOP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/stable_regions.hh"
#include "core/tuning_cost.hh"
#include "obs/journal.hh"
#include "runtime/offline_profile.hh"
#include "runtime/phase_detector.hh"
#include "runtime/stability_predictor.hh"

namespace mcdvfs
{

/** End-to-end outcome of one online schedule. */
struct TuningLoopResult
{
    std::string policy;
    Seconds time = 0.0;
    Joules energy = 0.0;
    Seconds timeWithOverhead = 0.0;
    Joules energyWithOverhead = 0.0;
    std::size_t tuningEvents = 0;
    std::size_t transitions = 0;
    /** Energy over the sum of per-sample Emin. */
    double achievedInefficiency = 0.0;
    /** Fraction of samples whose inefficiency exceeded the budget. */
    double budgetViolationFrac = 0.0;
};

/** Simulates online re-tune schedules over a measured grid. */
class TuningLoop
{
  public:
    /**
     * @param clusters cluster machinery (must outlive the loop)
     * @param regions stable-region machinery for the oracle schedule
     * @param cost per-event tuning overhead model
     */
    TuningLoop(const ClusterFinder &clusters,
               const StableRegionFinder &regions,
               const TuningCostModel &cost);

    /** One tuning event per true stable region (future knowledge). */
    TuningLoopResult runOracle(double budget, double threshold) const;

    /** Re-tune every sample with last-value prediction. */
    TuningLoopResult runEverySample(double budget,
                                    double threshold) const;

    /** Re-tune when the stability predictor schedules it. */
    TuningLoopResult runPredictive(
        double budget, double threshold,
        const StabilityPredictorParams &params = {}) const;

    /**
     * Re-tune when the counter-driven phase detector flags a phase
     * change (with the one-sample delay real counters impose).
     */
    TuningLoopResult runReactive(
        double budget, double threshold,
        const PhaseDetectorParams &params = {}) const;

    /** Follow an offline stable-region profile. */
    TuningLoopResult runProfileDriven(double budget, double threshold,
                                      const OfflineProfile &profile) const;

    /**
     * Attach a decision journal: every subsequent run appends one
     * record per sample (setting, inefficiency, cluster/region
     * membership, re-tune and transition flags, cumulative §VI-C
     * overhead).  Pass nullptr to detach.  The journal must outlive
     * the runs; journaling does not change any result.
     */
    void setJournal(obs::DecisionJournal *journal)
    {
        journal_ = journal;
    }

  private:
    /**
     * @param retuned one flag per sample: the schedule re-tuned at
     *        this sample boundary (flag count == tuning events)
     */
    TuningLoopResult evaluate(const std::string &policy,
                              const std::vector<std::size_t> &sequence,
                              const std::vector<std::uint8_t> &retuned,
                              double budget, double threshold) const;

    void journalRun(const std::string &policy,
                    const std::vector<std::size_t> &sequence,
                    const std::vector<std::uint8_t> &retuned,
                    double budget, double threshold) const;

    const ClusterFinder &clusters_;
    const StableRegionFinder &regions_;
    TuningCostModel cost_;
    obs::DecisionJournal *journal_ = nullptr;
};

} // namespace mcdvfs

#endif // MCDVFS_RUNTIME_TUNING_LOOP_HH
