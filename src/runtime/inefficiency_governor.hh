/**
 * @file
 * Inefficiency-budget governor.
 *
 * The governor implements the policy the paper argues for: stay within
 * an inefficiency budget while delivering the best performance, using
 * performance clusters to avoid needless transitions.  Being an online
 * policy it cannot know the upcoming sample; it uses last-value phase
 * prediction (the previous sample's cluster, §VII) and prefers keeping
 * the current setting whenever it is still inside that cluster.
 */

#ifndef MCDVFS_RUNTIME_INEFFICIENCY_GOVERNOR_HH
#define MCDVFS_RUNTIME_INEFFICIENCY_GOVERNOR_HH

#include "core/performance_clusters.hh"
#include "dvfs/governor.hh"

namespace mcdvfs
{

/** Cluster-based governor honouring an inefficiency budget. */
class InefficiencyGovernor : public Governor
{
  public:
    /**
     * @param clusters cluster source over the workload's measured
     *        grid (the governor consults only already-executed
     *        samples; must outlive the governor)
     * @param budget inefficiency budget (>= 1)
     * @param threshold cluster threshold, e.g. 0.03
     * @throws FatalError for invalid budget/threshold
     */
    InefficiencyGovernor(const ClusterFinder &clusters, double budget,
                         double threshold);

    FrequencySetting decide(const SampleObservation *last) override;
    std::string name() const override { return "inefficiency"; }

    /** Number of decisions that kept the previous setting. */
    std::size_t keptSetting() const { return kept_; }

    /** Number of decisions that re-tuned. */
    std::size_t retuned() const { return retuned_; }

  private:
    const ClusterFinder &clusters_;
    double budget_;
    double threshold_;
    FrequencySetting current_{};
    bool haveCurrent_ = false;
    std::size_t kept_ = 0;
    std::size_t retuned_ = 0;
};

} // namespace mcdvfs

#endif // MCDVFS_RUNTIME_INEFFICIENCY_GOVERNOR_HH
