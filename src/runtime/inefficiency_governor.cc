#include "runtime/inefficiency_governor.hh"

#include "common/logging.hh"

namespace mcdvfs
{

InefficiencyGovernor::InefficiencyGovernor(const ClusterFinder &clusters,
                                           double budget, double threshold)
    : clusters_(clusters), budget_(budget), threshold_(threshold)
{
    if (budget < 1.0)
        fatal("inefficiency governor: budget must be >= 1");
    if (threshold < 0.0)
        fatal("inefficiency governor: threshold must be >= 0");
}

FrequencySetting
InefficiencyGovernor::decide(const SampleObservation *last)
{
    const MeasuredGrid &grid = clusters_.finder().analysis().grid();

    if (!last) {
        // Nothing observed yet: start at the highest setting, which
        // is always performance-optimal (though possibly inefficient).
        current_ = grid.space().maxSetting();
        haveCurrent_ = true;
        return current_;
    }

    // Last-value phase prediction: assume the next sample behaves
    // like the one that just finished and consult its cluster.
    const PerformanceCluster cluster = clusters_.clusterForSample(
        last->sampleIndex, budget_, threshold_);

    if (haveCurrent_) {
        const std::size_t current_idx = grid.space().indexOf(current_);
        if (cluster.contains(current_idx)) {
            // Current setting is still near-optimal: avoid the
            // transition entirely.
            ++kept_;
            return current_;
        }
    }
    ++retuned_;
    current_ = cluster.optimal.setting;
    haveCurrent_ = true;
    return current_;
}

} // namespace mcdvfs
