/**
 * @file
 * System power-budget arbiter over the multi-domain settings space.
 *
 * The inefficiency governor answers "which joint setting is worth its
 * energy"; the arbiter answers the orthogonal question "which joint
 * settings may we afford right now".  It is modeled on the Tegra
 * sysedp dynamic-capping scheme: a calibrated cap table maps an
 * available system power budget to per-domain frequency caps, with two
 * variants per row — CPU-priority rows keep the CPU fast and throttle
 * the GPU harder, GPU-priority rows the reverse.  The arbiter layers
 * those caps on top of the paper's cluster policy: it consults the
 * same per-sample performance cluster as InefficiencyGovernor and
 * vetoes members the active caps cannot afford.
 *
 * With an unconstrained budget (empty table, or a top row admitting
 * every ladder step) the arbiter's decision sequence is bit-identical
 * to InefficiencyGovernor's — the cap layer is pure filtering and adds
 * no arithmetic to the cluster machinery.
 *
 * Observability: decisions are traced under "runtime.arbiter.decide"
 * and counted in the "runtime.arbiter.*" metrics family (see
 * docs/OBSERVABILITY.md).
 */

#ifndef MCDVFS_RUNTIME_BUDGET_ARBITER_HH
#define MCDVFS_RUNTIME_BUDGET_ARBITER_HH

#include <limits>
#include <vector>

#include "core/performance_clusters.hh"
#include "core/setting_mask.hh"
#include "dvfs/governor.hh"

namespace mcdvfs
{
namespace runtime
{

/** Which domain a cap-table row protects when power is short. */
enum class Priority
{
    Cpu,
    Gpu,
};

/** Per-domain frequency caps of one cap-table row variant. */
struct DomainCaps
{
    Hertz cpu = 0.0;
    Hertz mem = 0.0;
    /** Ignored on two-domain spaces. */
    Hertz gpu = 0.0;
};

/**
 * One row of the cap table: the caps in force once the available
 * system budget reaches @c budget watts (rows are matched floor-wise,
 * sysedp style — the last row whose budget does not exceed the
 * available power wins; below the first row the first row applies).
 */
struct CapRow
{
    Watts budget = 0.0;
    DomainCaps cpuPriority;
    DomainCaps gpuPriority;
};

/**
 * Budget-arbitrating governor: the paper's cluster policy under a
 * sysedp-style system power cap.
 */
class BudgetArbiter : public Governor
{
  public:
    /** Budget meaning "no cap row restriction". */
    static constexpr Watts kUnconstrainedBudget =
        std::numeric_limits<double>::infinity();

    /**
     * @param clusters cluster source over the workload's measured grid
     *        (must outlive the arbiter)
     * @param budget inefficiency budget (>= 1), as for
     *        InefficiencyGovernor
     * @param threshold cluster threshold, e.g. 0.03
     * @param table cap table, rows in strictly ascending budget order;
     *        empty means unconstrained
     * @param priority which domain to protect when power is short
     * @throws FatalError for invalid budget/threshold, a non-ascending
     *         table, caps that exclude the space's minimum setting
     *         (the arbiter must always have a legal choice), caps that
     *         tighten as the budget grows, or a priority inversion
     *         (a CPU-priority variant must never cap the CPU below its
     *         GPU-priority sibling, and vice versa for the GPU)
     */
    BudgetArbiter(const ClusterFinder &clusters, double budget,
                  double threshold, std::vector<CapRow> table,
                  Priority priority = Priority::Cpu);

    FrequencySetting decide(const SampleObservation *last) override;
    std::string name() const override { return "budget-arbiter"; }

    /** Update the available system power budget (watts). */
    void setSystemBudget(Watts budget);

    /** Switch the protected domain. */
    void setPriority(Priority priority);

    Watts systemBudget() const { return systemBudget_; }
    Priority priority() const { return priority_; }

    /** Caps currently in force (infinite when unconstrained). */
    DomainCaps activeCaps() const;

    /** Mask of settings the active caps admit. */
    const SettingMask &allowedMask() const { return allowed_; }

    /** @name Decision counters. */
    ///@{
    std::size_t decisions() const { return decisions_; }
    /** Decisions that kept the previous setting. */
    std::size_t keptSetting() const { return kept_; }
    /** Decisions that re-tuned inside the caps. */
    std::size_t retuned() const { return retuned_; }
    /** Decisions where the caps vetoed the cluster optimum. */
    std::size_t capped() const { return capped_; }
    ///@}

  private:
    const SettingsSpace &space() const;

    /** Index of the active cap row, or table_.size() if unconstrained. */
    std::size_t activeRow() const;

    /** Recompute the allowed mask from the active caps. */
    void rebuildAllowed();

    /** Most-preferred (§V ordering) setting in @c mask. */
    FrequencySetting preferredIn(const SettingMask &mask) const;

    const ClusterFinder &clusters_;
    double budget_;
    double threshold_;
    std::vector<CapRow> table_;
    Priority priority_;
    Watts systemBudget_ = kUnconstrainedBudget;

    std::vector<FrequencySetting> settings_;
    SettingMask allowed_;

    FrequencySetting current_{};
    bool haveCurrent_ = false;
    std::size_t decisions_ = 0;
    std::size_t kept_ = 0;
    std::size_t retuned_ = 0;
    std::size_t capped_ = 0;
};

} // namespace runtime
} // namespace mcdvfs

#endif // MCDVFS_RUNTIME_BUDGET_ARBITER_HH
