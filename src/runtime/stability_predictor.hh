/**
 * @file
 * Run-length phase-stability predictor (§VII, "Learning").
 *
 * Isci et al. showed that the duration of the current application
 * phase can be predicted from the durations of past phases; a tuner
 * can then skip re-tuning until the predicted phase end.  This
 * predictor tracks the lengths of completed stable runs (runs of
 * samples whose performance cluster kept a common setting) and
 * predicts how many more samples the current run will last, backing
 * off to short predictions when history disagrees with itself.
 */

#ifndef MCDVFS_RUNTIME_STABILITY_PREDICTOR_HH
#define MCDVFS_RUNTIME_STABILITY_PREDICTOR_HH

#include <cstddef>

namespace mcdvfs
{

/** Predictor calibration. */
struct StabilityPredictorParams
{
    /** EWMA smoothing factor for run-length history. */
    double ewmaAlpha = 0.4;
    /** Never predict more than this many samples ahead. */
    std::size_t maxPrediction = 16;
    /**
     * Relative run-length variability above which the predictor is
     * considered low-confidence and predicts a single sample.
     */
    double confidenceCv = 0.6;
};

/** EWMA run-length predictor over cluster-stability events. */
class StabilityPredictor
{
  public:
    explicit StabilityPredictor(
        const StabilityPredictorParams &params = {});

    /**
     * Feed one per-sample observation: did the tuner's setting remain
     * inside the sample's performance cluster?
     */
    void observe(bool remained_stable);

    /**
     * Predicted number of *additional* samples the current run stays
     * stable (0 = re-tune at the next sample boundary).
     */
    std::size_t predictRemainingStable() const;

    /** Length of the run currently in progress. */
    std::size_t currentRunLength() const { return currentRun_; }

    /** Smoothed completed-run length. */
    double expectedRunLength() const { return ewmaLength_; }

    /** Completed runs observed so far. */
    std::size_t completedRuns() const { return completedRuns_; }

  private:
    StabilityPredictorParams params_;
    std::size_t currentRun_ = 0;
    std::size_t completedRuns_ = 0;
    double ewmaLength_ = 1.0;
    double ewmaSquares_ = 1.0;  ///< EWMA of squared lengths (for CV)
};

} // namespace mcdvfs

#endif // MCDVFS_RUNTIME_STABILITY_PREDICTOR_HH
