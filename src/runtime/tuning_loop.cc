#include "runtime/tuning_loop.hh"

#include <cmath>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace mcdvfs
{

namespace
{

/**
 * Process-wide re-tune ledger: how many tuning events and setting
 * transitions the simulated schedules took, and the cumulative §VI-C
 * overhead they were charged (the paper's 500 us + 30 uJ per event),
 * in integer nanoseconds / nanojoules of simulated time and energy.
 */
struct TuningMetrics
{
    obs::Counter evaluations;
    obs::Counter events;
    obs::Counter transitions;
    obs::Counter overheadTimeNs;
    obs::Counter overheadEnergyNj;
    obs::Counter budgetViolations;

    TuningMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        evaluations = reg.counter("runtime.tuning.evaluations");
        events = reg.counter("runtime.tuning.events");
        transitions = reg.counter("runtime.tuning.transitions");
        overheadTimeNs = reg.counter("runtime.tuning.overhead_time_ns");
        overheadEnergyNj =
            reg.counter("runtime.tuning.overhead_energy_nj");
        budgetViolations =
            reg.counter("runtime.tuning.budget_violations");
    }
};

TuningMetrics &
tuningMetrics()
{
    static TuningMetrics metrics;
    return metrics;
}

/** Non-negative seconds/joules to integer nano-units. */
std::uint64_t
toNano(double value)
{
    return value > 0.0
               ? static_cast<std::uint64_t>(std::llround(value * 1e9))
               : 0;
}

} // namespace

TuningLoop::TuningLoop(const ClusterFinder &clusters,
                       const StableRegionFinder &regions,
                       const TuningCostModel &cost)
    : clusters_(clusters), regions_(regions), cost_(cost)
{
}

TuningLoopResult
TuningLoop::evaluate(const std::string &policy,
                     const std::vector<std::size_t> &sequence,
                     std::size_t tuning_events, double budget) const
{
    const InefficiencyAnalysis &analysis = clusters_.finder().analysis();
    const MeasuredGrid &grid = analysis.grid();
    MCDVFS_ASSERT(sequence.size() == grid.sampleCount(),
                  "sequence length mismatch");

    TuningLoopResult result;
    result.policy = policy;
    Joules emin_sum = 0.0;
    std::size_t violations = 0;
    for (std::size_t s = 0; s < sequence.size(); ++s) {
        result.time += grid.secondsAt(s, sequence[s]);
        result.energy += grid.energyAt(s, sequence[s]);
        emin_sum += analysis.sampleEmin(s);
        if (analysis.sampleInefficiency(s, sequence[s]) > budget + 1e-9)
            ++violations;
        if (s > 0 && sequence[s] != sequence[s - 1])
            ++result.transitions;
    }
    result.tuningEvents = tuning_events;
    const TuningOverhead overhead =
        cost_.overhead(tuning_events, grid.settingCount());
    result.timeWithOverhead = result.time + overhead.latency;
    result.energyWithOverhead = result.energy + overhead.energy;
    result.achievedInefficiency = result.energy / emin_sum;
    result.budgetViolationFrac =
        static_cast<double>(violations) /
        static_cast<double>(sequence.size());

    TuningMetrics &metrics = tuningMetrics();
    metrics.evaluations.add(1);
    metrics.events.add(tuning_events);
    metrics.transitions.add(result.transitions);
    metrics.overheadTimeNs.add(toNano(overhead.latency));
    metrics.overheadEnergyNj.add(toNano(overhead.energy));
    metrics.budgetViolations.add(violations);
    return result;
}

TuningLoopResult
TuningLoop::runOracle(double budget, double threshold) const
{
    const MeasuredGrid &grid = clusters_.finder().analysis().grid();
    const std::vector<StableRegion> regions =
        regions_.find(budget, threshold);
    std::vector<std::size_t> sequence(grid.sampleCount(), 0);
    for (const StableRegion &region : regions) {
        for (std::size_t s = region.first; s <= region.last; ++s)
            sequence[s] = region.chosenSettingIndex;
    }
    return evaluate("oracle", sequence, regions.size(), budget);
}

TuningLoopResult
TuningLoop::runEverySample(double budget, double threshold) const
{
    const MeasuredGrid &grid = clusters_.finder().analysis().grid();
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());

    std::vector<std::size_t> sequence;
    sequence.reserve(grid.sampleCount());
    std::size_t current = max_idx;
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        if (s > 0) {
            // Last-value prediction: consult the cluster of the sample
            // that just finished; keep the current setting when it is
            // still inside that cluster.
            const PerformanceCluster cluster =
                clusters_.clusterForSample(s - 1, budget, threshold);
            if (!cluster.contains(current))
                current = cluster.optimal.settingIndex;
        }
        sequence.push_back(current);
    }
    return evaluate("every-sample", sequence, grid.sampleCount(), budget);
}

TuningLoopResult
TuningLoop::runPredictive(double budget, double threshold,
                          const StabilityPredictorParams &params) const
{
    const MeasuredGrid &grid = clusters_.finder().analysis().grid();
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());

    StabilityPredictor predictor(params);
    std::vector<std::size_t> sequence;
    sequence.reserve(grid.sampleCount());
    std::size_t current = max_idx;
    std::size_t next_tune = 0;
    std::size_t events = 0;
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        if (s >= next_tune) {
            ++events;
            if (s > 0) {
                const PerformanceCluster cluster =
                    clusters_.clusterForSample(s - 1, budget, threshold);
                if (!cluster.contains(current))
                    current = cluster.optimal.settingIndex;
            }
            next_tune = s + 1 + predictor.predictRemainingStable();
        }
        sequence.push_back(current);
        // Post-hoc feedback (one-sample-delayed counters): was the
        // setting we ran inside this sample's true cluster?
        const PerformanceCluster truth =
            clusters_.clusterForSample(s, budget, threshold);
        predictor.observe(truth.contains(current));
    }
    return evaluate("predictive", sequence, events, budget);
}

TuningLoopResult
TuningLoop::runReactive(double budget, double threshold,
                        const PhaseDetectorParams &params) const
{
    const MeasuredGrid &grid = clusters_.finder().analysis().grid();
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());

    PhaseDetector detector(params);
    std::vector<std::size_t> sequence;
    sequence.reserve(grid.sampleCount());
    std::size_t current = max_idx;
    std::size_t events = 0;
    bool pending_retune = true;  // nothing known yet: tune at start
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        if (pending_retune) {
            ++events;
            if (s > 0) {
                const PerformanceCluster cluster =
                    clusters_.clusterForSample(s - 1, budget, threshold);
                if (!cluster.contains(current))
                    current = cluster.optimal.settingIndex;
            }
            pending_retune = false;
        }
        sequence.push_back(current);
        // Counters for sample s arrive after it ran; a flagged phase
        // change schedules a re-tune at the next boundary.
        pending_retune = detector.observe(grid.profile(s));
    }
    return evaluate("reactive", sequence, events, budget);
}

TuningLoopResult
TuningLoop::runProfileDriven(double budget, double threshold,
                             const OfflineProfile &profile) const
{
    (void)threshold;
    const MeasuredGrid &grid = clusters_.finder().analysis().grid();
    const SettingsSpace &space = grid.space();

    std::vector<std::size_t> sequence;
    sequence.reserve(grid.sampleCount());
    std::size_t events = 0;
    std::size_t current = space.indexOf(space.maxSetting());
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        const ProfiledRegion *region = profile.regionAt(s);
        if (region && s == region->first) {
            ++events;
            current = space.indexOf(region->setting);
        }
        sequence.push_back(current);
    }
    return evaluate("profile", sequence, events, budget);
}

} // namespace mcdvfs
