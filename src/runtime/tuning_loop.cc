#include "runtime/tuning_loop.hh"

#include <cmath>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mcdvfs
{

namespace
{

/**
 * Process-wide re-tune ledger: how many tuning events and setting
 * transitions the simulated schedules took, and the cumulative §VI-C
 * overhead they were charged (the paper's 500 us + 30 uJ per event),
 * in integer nanoseconds / nanojoules of simulated time and energy.
 */
struct TuningMetrics
{
    obs::Counter evaluations;
    obs::Counter events;
    obs::Counter transitions;
    obs::Counter overheadTimeNs;
    obs::Counter overheadEnergyNj;
    obs::Counter budgetViolations;
    /** Per-domain frequency changes; one transition can change all. */
    obs::Counter domainChanges;
    obs::Counter cpuChanges;
    obs::Counter memChanges;
    obs::Counter gpuChanges;

    TuningMetrics()
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        evaluations = reg.counter("runtime.tuning.evaluations");
        events = reg.counter("runtime.tuning.events");
        transitions = reg.counter("runtime.tuning.transitions");
        overheadTimeNs = reg.counter("runtime.tuning.overhead_time_ns");
        overheadEnergyNj =
            reg.counter("runtime.tuning.overhead_energy_nj");
        budgetViolations =
            reg.counter("runtime.tuning.budget_violations");
        domainChanges = reg.counter("runtime.tuning.domain_changes");
        cpuChanges = reg.counter("runtime.tuning.domain_changes",
                                 {{"domain", "cpu"}});
        memChanges = reg.counter("runtime.tuning.domain_changes",
                                 {{"domain", "mem"}});
        gpuChanges = reg.counter("runtime.tuning.domain_changes",
                                 {{"domain", "gpu"}});
    }
};

TuningMetrics &
tuningMetrics()
{
    static TuningMetrics metrics;
    return metrics;
}

/** Non-negative seconds/joules to integer nano-units. */
std::uint64_t
toNano(double value)
{
    return value > 0.0
               ? static_cast<std::uint64_t>(std::llround(value * 1e9))
               : 0;
}

} // namespace

TuningLoop::TuningLoop(const ClusterFinder &clusters,
                       const StableRegionFinder &regions,
                       const TuningCostModel &cost)
    : clusters_(clusters), regions_(regions), cost_(cost)
{
}

TuningLoopResult
TuningLoop::evaluate(const std::string &policy,
                     const std::vector<std::size_t> &sequence,
                     const std::vector<std::uint8_t> &retuned,
                     double budget, double threshold) const
{
    const InefficiencyAnalysis &analysis = clusters_.finder().analysis();
    const MeasuredGrid &grid = analysis.grid();
    MCDVFS_ASSERT(sequence.size() == grid.sampleCount(),
                  "sequence length mismatch");
    MCDVFS_ASSERT(retuned.size() == sequence.size(),
                  "retune flags length mismatch");

    obs::TraceSpan eval_span("runtime.tuning.evaluate",
                             sequence.size());

    TuningLoopResult result;
    result.policy = policy;
    Joules emin_sum = 0.0;
    std::size_t violations = 0;
    std::size_t tuning_events = 0;
    std::uint64_t cpu_changes = 0;
    std::uint64_t mem_changes = 0;
    std::uint64_t gpu_changes = 0;
    for (std::size_t s = 0; s < sequence.size(); ++s) {
        result.time += grid.secondsAt(s, sequence[s]);
        result.energy += grid.energyAt(s, sequence[s]);
        emin_sum += analysis.sampleEmin(s);
        if (analysis.sampleInefficiency(s, sequence[s]) > budget + 1e-9)
            ++violations;
        if (retuned[s] != 0) {
            ++tuning_events;
            obs::traceInstant("runtime.tuning.retune", s);
        }
        if (s > 0 && sequence[s] != sequence[s - 1]) {
            ++result.transitions;
            obs::traceInstant("runtime.tuning.transition", s);
            const SettingsSpace &space = grid.space();
            const FrequencySetting from = space.at(sequence[s - 1]);
            const FrequencySetting to = space.at(sequence[s]);
            cpu_changes += from.cpu != to.cpu ? 1 : 0;
            mem_changes += from.mem != to.mem ? 1 : 0;
            gpu_changes += from.gpu != to.gpu ? 1 : 0;
        }
    }
    result.tuningEvents = tuning_events;
    const TuningOverhead overhead =
        cost_.overhead(tuning_events, grid.settingCount());
    result.timeWithOverhead = result.time + overhead.latency;
    result.energyWithOverhead = result.energy + overhead.energy;
    result.achievedInefficiency = result.energy / emin_sum;
    result.budgetViolationFrac =
        static_cast<double>(violations) /
        static_cast<double>(sequence.size());

    TuningMetrics &metrics = tuningMetrics();
    metrics.evaluations.add(1);
    metrics.events.add(tuning_events);
    metrics.transitions.add(result.transitions);
    metrics.overheadTimeNs.add(toNano(overhead.latency));
    metrics.overheadEnergyNj.add(toNano(overhead.energy));
    metrics.budgetViolations.add(violations);
    metrics.domainChanges.add(cpu_changes + mem_changes + gpu_changes);
    if (cpu_changes > 0)
        metrics.cpuChanges.add(cpu_changes);
    if (mem_changes > 0)
        metrics.memChanges.add(mem_changes);
    if (gpu_changes > 0)
        metrics.gpuChanges.add(gpu_changes);

    if (journal_ != nullptr)
        journalRun(policy, sequence, retuned, budget, threshold);
    return result;
}

void
TuningLoop::journalRun(const std::string &policy,
                       const std::vector<std::size_t> &sequence,
                       const std::vector<std::uint8_t> &retuned,
                       double budget, double threshold) const
{
    const InefficiencyAnalysis &analysis = clusters_.finder().analysis();
    const MeasuredGrid &grid = analysis.grid();
    const SettingsSpace &space = grid.space();

    // Stable-region membership of every sample at this operating
    // point (region index, or -1 for samples outside every region).
    std::vector<long long> region_of(sequence.size(), -1);
    const std::vector<StableRegion> regions =
        regions_.find(budget, threshold);
    for (std::size_t r = 0; r < regions.size(); ++r) {
        for (std::size_t s = regions[r].first; s <= regions[r].last; ++s)
            region_of[s] = static_cast<long long>(r);
    }

    std::size_t events_so_far = 0;
    for (std::size_t s = 0; s < sequence.size(); ++s) {
        if (retuned[s] != 0)
            ++events_so_far;
        const TuningOverhead cumulative =
            cost_.overhead(events_so_far, grid.settingCount());

        obs::DecisionRecord record;
        record.workload = grid.workload();
        record.policy = policy;
        record.sample = s;
        record.requestId = obs::currentTraceContext().requestId;
        if (grid.hasProfiles()) {
            record.cpi = grid.profile(s).baseCpi;
            record.mpki = grid.profile(s).l2Mpki;
        }
        const FrequencySetting setting = space.at(sequence[s]);
        record.cpuMhz = toMegaHertz(setting.cpu);
        record.memMhz = toMegaHertz(setting.mem);
        if (space.hasGpu()) {
            record.hasGpu = true;
            record.gpuMhz = toMegaHertz(setting.gpu);
        }
        record.inefficiency =
            analysis.sampleInefficiency(s, sequence[s]);
        record.budget = budget;
        record.inCluster =
            clusters_.clusterForSample(s, budget, threshold)
                .contains(sequence[s]);
        record.region = region_of[s];
        record.retuned = retuned[s] != 0;
        record.transition = s > 0 && sequence[s] != sequence[s - 1];
        record.overheadNs = toNano(cumulative.latency);
        record.overheadNj = toNano(cumulative.energy);
        journal_->append(std::move(record));
    }
}

TuningLoopResult
TuningLoop::runOracle(double budget, double threshold) const
{
    const MeasuredGrid &grid = clusters_.finder().analysis().grid();
    const std::vector<StableRegion> regions =
        regions_.find(budget, threshold);
    std::vector<std::size_t> sequence(grid.sampleCount(), 0);
    std::vector<std::uint8_t> retuned(grid.sampleCount(), 0);
    for (const StableRegion &region : regions) {
        retuned[region.first] = 1;
        for (std::size_t s = region.first; s <= region.last; ++s)
            sequence[s] = region.chosenSettingIndex;
    }
    return evaluate("oracle", sequence, retuned, budget, threshold);
}

TuningLoopResult
TuningLoop::runEverySample(double budget, double threshold) const
{
    const MeasuredGrid &grid = clusters_.finder().analysis().grid();
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());

    std::vector<std::size_t> sequence;
    sequence.reserve(grid.sampleCount());
    std::size_t current = max_idx;
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        if (s > 0) {
            // Last-value prediction: consult the cluster of the sample
            // that just finished; keep the current setting when it is
            // still inside that cluster.
            const PerformanceCluster cluster =
                clusters_.clusterForSample(s - 1, budget, threshold);
            if (!cluster.contains(current))
                current = cluster.optimal.settingIndex;
        }
        sequence.push_back(current);
    }
    const std::vector<std::uint8_t> retuned(grid.sampleCount(), 1);
    return evaluate("every-sample", sequence, retuned, budget,
                    threshold);
}

TuningLoopResult
TuningLoop::runPredictive(double budget, double threshold,
                          const StabilityPredictorParams &params) const
{
    const MeasuredGrid &grid = clusters_.finder().analysis().grid();
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());

    StabilityPredictor predictor(params);
    std::vector<std::size_t> sequence;
    sequence.reserve(grid.sampleCount());
    std::vector<std::uint8_t> retuned(grid.sampleCount(), 0);
    std::size_t current = max_idx;
    std::size_t next_tune = 0;
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        if (s >= next_tune) {
            retuned[s] = 1;
            if (s > 0) {
                const PerformanceCluster cluster =
                    clusters_.clusterForSample(s - 1, budget, threshold);
                if (!cluster.contains(current))
                    current = cluster.optimal.settingIndex;
            }
            next_tune = s + 1 + predictor.predictRemainingStable();
        }
        sequence.push_back(current);
        // Post-hoc feedback (one-sample-delayed counters): was the
        // setting we ran inside this sample's true cluster?
        const PerformanceCluster truth =
            clusters_.clusterForSample(s, budget, threshold);
        predictor.observe(truth.contains(current));
    }
    return evaluate("predictive", sequence, retuned, budget, threshold);
}

TuningLoopResult
TuningLoop::runReactive(double budget, double threshold,
                        const PhaseDetectorParams &params) const
{
    const MeasuredGrid &grid = clusters_.finder().analysis().grid();
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());

    PhaseDetector detector(params);
    std::vector<std::size_t> sequence;
    sequence.reserve(grid.sampleCount());
    std::vector<std::uint8_t> retuned(grid.sampleCount(), 0);
    std::size_t current = max_idx;
    bool pending_retune = true;  // nothing known yet: tune at start
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        if (pending_retune) {
            retuned[s] = 1;
            if (s > 0) {
                const PerformanceCluster cluster =
                    clusters_.clusterForSample(s - 1, budget, threshold);
                if (!cluster.contains(current))
                    current = cluster.optimal.settingIndex;
            }
            pending_retune = false;
        }
        sequence.push_back(current);
        // Counters for sample s arrive after it ran; a flagged phase
        // change schedules a re-tune at the next boundary.
        pending_retune = detector.observe(grid.profile(s));
    }
    return evaluate("reactive", sequence, retuned, budget, threshold);
}

TuningLoopResult
TuningLoop::runProfileDriven(double budget, double threshold,
                             const OfflineProfile &profile) const
{
    const MeasuredGrid &grid = clusters_.finder().analysis().grid();
    const SettingsSpace &space = grid.space();

    std::vector<std::size_t> sequence;
    sequence.reserve(grid.sampleCount());
    std::vector<std::uint8_t> retuned(grid.sampleCount(), 0);
    std::size_t current = space.indexOf(space.maxSetting());
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        const ProfiledRegion *region = profile.regionAt(s);
        if (region && s == region->first) {
            retuned[s] = 1;
            current = space.indexOf(region->setting);
        }
        sequence.push_back(current);
    }
    return evaluate("profile", sequence, retuned, budget, threshold);
}

} // namespace mcdvfs
