/**
 * @file
 * Online phase-change detection (§VII cites Lau et al.'s phase
 * markers; this is the runtime-counter analogue).
 *
 * A tuner that re-tunes only when the workload's behaviour actually
 * changes needs a detector.  PhaseDetector watches the per-sample
 * counter vector (CPI proxy, miss rates, DRAM traffic) and flags a
 * phase change when the current sample's feature distance from the
 * running phase centroid exceeds a threshold; the centroid follows
 * the phase with an EWMA while samples stay inside it.
 */

#ifndef MCDVFS_RUNTIME_PHASE_DETECTOR_HH
#define MCDVFS_RUNTIME_PHASE_DETECTOR_HH

#include <array>
#include <cstddef>

#include "sim/sample_profile.hh"

namespace mcdvfs
{

/** Detector calibration. */
struct PhaseDetectorParams
{
    /** Relative feature distance that signals a new phase. */
    double changeThreshold = 0.25;
    /** EWMA factor for tracking the current phase centroid. */
    double ewmaAlpha = 0.3;
};

/** EWMA-centroid phase-change detector over sample counters. */
class PhaseDetector
{
  public:
    explicit PhaseDetector(const PhaseDetectorParams &params = {});

    /**
     * Feed the sample that just completed.
     *
     * @return true when it starts a new phase
     */
    bool observe(const SampleProfile &profile);

    /** Number of phase changes flagged so far. */
    std::size_t phaseChanges() const { return changes_; }

    /** Samples observed so far. */
    std::size_t observations() const { return observations_; }

  private:
    static constexpr std::size_t kFeatures = 4;
    using Vector = std::array<double, kFeatures>;

    static Vector features(const SampleProfile &profile);

    /** Normalized L1 distance between feature vectors. */
    static double distance(const Vector &a, const Vector &b);

    PhaseDetectorParams params_;
    Vector centroid_{};
    std::size_t observations_ = 0;
    std::size_t changes_ = 0;
};

} // namespace mcdvfs

#endif // MCDVFS_RUNTIME_PHASE_DETECTOR_HH
