#include "runtime/stability_predictor.hh"

#include <algorithm>
#include <cmath>

namespace mcdvfs
{

StabilityPredictor::StabilityPredictor(
    const StabilityPredictorParams &params)
    : params_(params)
{
}

void
StabilityPredictor::observe(bool remained_stable)
{
    if (remained_stable) {
        ++currentRun_;
        return;
    }
    // Run ended: fold its length into the EWMA history.
    const double len = static_cast<double>(std::max<std::size_t>(
        currentRun_, 1));
    if (completedRuns_ == 0) {
        ewmaLength_ = len;
        ewmaSquares_ = len * len;
    } else {
        ewmaLength_ = params_.ewmaAlpha * len +
                      (1.0 - params_.ewmaAlpha) * ewmaLength_;
        ewmaSquares_ = params_.ewmaAlpha * len * len +
                       (1.0 - params_.ewmaAlpha) * ewmaSquares_;
    }
    ++completedRuns_;
    currentRun_ = 0;
}

std::size_t
StabilityPredictor::predictRemainingStable() const
{
    if (completedRuns_ == 0)
        return 0;  // no history: re-tune every sample

    // Coefficient of variation of run lengths gates confidence.
    const double variance =
        std::max(0.0, ewmaSquares_ - ewmaLength_ * ewmaLength_);
    const double cv = ewmaLength_ > 0.0
                          ? std::sqrt(variance) / ewmaLength_
                          : 0.0;
    if (cv > params_.confidenceCv)
        return 0;

    const double remaining =
        ewmaLength_ - static_cast<double>(currentRun_);
    if (remaining <= 0.0)
        return 0;
    return std::min(params_.maxPrediction,
                    static_cast<std::size_t>(remaining));
}

} // namespace mcdvfs
