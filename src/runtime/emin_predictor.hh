/**
 * @file
 * Learning-based Emin prediction (§II-B, second method).
 *
 * Brute-force Emin needs the energy of a sample at *every* setting;
 * the paper proposes reducing that overhead by "predicting Emin based
 * on previous observations and by continuous learning".  EminPredictor
 * implements that: a recursive-least-squares linear model over
 * counter-derived features of a sample (its phase behaviour), trained
 * online from samples whose true Emin was computed the expensive way,
 * then used to estimate Emin — and hence inefficiency — for new
 * samples without a full-grid evaluation.
 */

#ifndef MCDVFS_RUNTIME_EMIN_PREDICTOR_HH
#define MCDVFS_RUNTIME_EMIN_PREDICTOR_HH

#include <array>
#include <cstddef>

#include "common/units.hh"
#include "sim/sample_profile.hh"

namespace mcdvfs
{

/** Online linear Emin model over sample features. */
class EminPredictor
{
  public:
    /** Number of model features (incl. the intercept). */
    static constexpr std::size_t kFeatures = 6;

    /**
     * @param forgetting RLS forgetting factor in (0, 1]; values below
     *        1 let the model track drifting workloads
     * @throws FatalError for an out-of-range factor
     */
    explicit EminPredictor(double forgetting = 0.99);

    /**
     * Learn from one completed sample.
     *
     * @param profile the sample's observable characteristics
     * @param true_emin its brute-force per-sample Emin
     */
    void observe(const SampleProfile &profile, Joules true_emin);

    /**
     * Predicted Emin for a sample with the given characteristics.
     * Clamped to be positive.  Meaningful once trained().
     */
    Joules predict(const SampleProfile &profile) const;

    /**
     * Predicted inefficiency of consuming @c energy on a sample with
     * the given characteristics.
     */
    double predictInefficiency(const SampleProfile &profile,
                               Joules energy) const;

    /** True once enough samples were observed to trust predictions. */
    bool trained() const { return observations_ >= kFeatures; }

    /** Number of training observations so far. */
    std::size_t observations() const { return observations_; }

  private:
    using Vector = std::array<double, kFeatures>;

    /** Feature extraction from observable per-sample counters. */
    static Vector features(const SampleProfile &profile);

    double forgetting_;
    std::size_t observations_ = 0;
    Vector weights_{};
    /** RLS inverse-covariance estimate, initialized to delta * I. */
    std::array<Vector, kFeatures> p_{};
    /** Target scale (running mean of |Emin|) for conditioning. */
    double targetScale_ = 0.0;
};

} // namespace mcdvfs

#endif // MCDVFS_RUNTIME_EMIN_PREDICTOR_HH
