#include "dvfs/settings_space.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace mcdvfs
{

std::string
FrequencySetting::label() const
{
    char buf[48];
    if (gpu > 0.0) {
        std::snprintf(buf, sizeof(buf), "%.0f/%.0f/%.0f",
                      toMegaHertz(cpu), toMegaHertz(mem),
                      toMegaHertz(gpu));
    } else {
        std::snprintf(buf, sizeof(buf), "%.0f/%.0f", toMegaHertz(cpu),
                      toMegaHertz(mem));
    }
    return buf;
}

bool
settingPreferred(const FrequencySetting &a, const FrequencySetting &b)
{
    if (a.cpu != b.cpu)
        return a.cpu > b.cpu;
    if (a.mem != b.mem)
        return a.mem > b.mem;
    return a.gpu > b.gpu;
}

SettingsSpace::SettingsSpace(FrequencyLadder cpu, FrequencyLadder mem)
    : cpu_(std::move(cpu)), mem_(std::move(mem))
{
}

SettingsSpace::SettingsSpace(FrequencyLadder cpu, FrequencyLadder mem,
                             FrequencyLadder gpu)
    : cpu_(std::move(cpu)), mem_(std::move(mem)), gpu_(std::move(gpu))
{
}

SettingsSpace
SettingsSpace::coarse()
{
    return SettingsSpace(FrequencyLadder::cpuCoarse(),
                         FrequencyLadder::memCoarse());
}

SettingsSpace
SettingsSpace::fine()
{
    return SettingsSpace(FrequencyLadder::cpuFine(),
                         FrequencyLadder::memFine());
}

SettingsSpace
SettingsSpace::coarse3()
{
    return SettingsSpace(FrequencyLadder::cpuCoarse(),
                         FrequencyLadder::memCoarse(),
                         FrequencyLadder::gpuCoarse());
}

FrequencySetting
SettingsSpace::at(std::size_t idx) const
{
    MCDVFS_ASSERT(idx < size(), "settings index out of range");
    FrequencySetting setting;
    if (gpu_) {
        const std::size_t g = gpu_->size();
        setting.gpu = gpu_->at(idx % g);
        idx /= g;
    }
    setting.cpu = cpu_.at(idx / mem_.size());
    setting.mem = mem_.at(idx % mem_.size());
    return setting;
}

std::size_t
SettingsSpace::indexOf(const FrequencySetting &setting) const
{
    const std::size_t ci = cpu_.closestIndex(setting.cpu);
    const std::size_t mi = mem_.closestIndex(setting.mem);
    if (std::abs(cpu_.at(ci) - setting.cpu) > 1.0 ||
        std::abs(mem_.at(mi) - setting.mem) > 1.0) {
        fatal("setting ", setting.label(), " is not in this space");
    }
    if (!gpu_) {
        if (setting.gpu != 0.0)
            fatal("setting ", setting.label(),
                  " names a GPU frequency but this space has no GPU "
                  "domain");
        return ci * mem_.size() + mi;
    }
    const std::size_t gi = gpu_->closestIndex(setting.gpu);
    if (std::abs(gpu_->at(gi) - setting.gpu) > 1.0)
        fatal("setting ", setting.label(), " is not in this space");
    return (ci * mem_.size() + mi) * gpu_->size() + gi;
}

FrequencySetting
SettingsSpace::maxSetting() const
{
    return FrequencySetting{cpu_.highest(), mem_.highest(),
                            gpu_ ? gpu_->highest() : 0.0};
}

FrequencySetting
SettingsSpace::minSetting() const
{
    return FrequencySetting{cpu_.lowest(), mem_.lowest(),
                            gpu_ ? gpu_->lowest() : 0.0};
}

const FrequencyLadder &
SettingsSpace::gpuLadder() const
{
    MCDVFS_ASSERT(gpu_.has_value(), "space has no GPU domain");
    return *gpu_;
}

std::vector<FrequencySetting>
SettingsSpace::all() const
{
    std::vector<FrequencySetting> out;
    out.reserve(size());
    for (std::size_t i = 0; i < size(); ++i)
        out.push_back(at(i));
    return out;
}

} // namespace mcdvfs
