#include "dvfs/settings_space.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace mcdvfs
{

std::string
FrequencySetting::label() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f/%.0f", toMegaHertz(cpu),
                  toMegaHertz(mem));
    return buf;
}

bool
settingPreferred(const FrequencySetting &a, const FrequencySetting &b)
{
    if (a.cpu != b.cpu)
        return a.cpu > b.cpu;
    return a.mem > b.mem;
}

SettingsSpace::SettingsSpace(FrequencyLadder cpu, FrequencyLadder mem)
    : cpu_(std::move(cpu)), mem_(std::move(mem))
{
}

SettingsSpace
SettingsSpace::coarse()
{
    return SettingsSpace(FrequencyLadder::cpuCoarse(),
                         FrequencyLadder::memCoarse());
}

SettingsSpace
SettingsSpace::fine()
{
    return SettingsSpace(FrequencyLadder::cpuFine(),
                         FrequencyLadder::memFine());
}

FrequencySetting
SettingsSpace::at(std::size_t idx) const
{
    MCDVFS_ASSERT(idx < size(), "settings index out of range");
    FrequencySetting setting;
    setting.cpu = cpu_.at(idx / mem_.size());
    setting.mem = mem_.at(idx % mem_.size());
    return setting;
}

std::size_t
SettingsSpace::indexOf(const FrequencySetting &setting) const
{
    const std::size_t ci = cpu_.closestIndex(setting.cpu);
    const std::size_t mi = mem_.closestIndex(setting.mem);
    if (std::abs(cpu_.at(ci) - setting.cpu) > 1.0 ||
        std::abs(mem_.at(mi) - setting.mem) > 1.0) {
        fatal("setting ", setting.label(), " is not in this space");
    }
    return ci * mem_.size() + mi;
}

FrequencySetting
SettingsSpace::maxSetting() const
{
    return FrequencySetting{cpu_.highest(), mem_.highest()};
}

FrequencySetting
SettingsSpace::minSetting() const
{
    return FrequencySetting{cpu_.lowest(), mem_.lowest()};
}

std::vector<FrequencySetting>
SettingsSpace::all() const
{
    std::vector<FrequencySetting> out;
    out.reserve(size());
    for (std::size_t i = 0; i < size(); ++i)
        out.push_back(at(i));
    return out;
}

} // namespace mcdvfs
