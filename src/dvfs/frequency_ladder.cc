#include "dvfs/frequency_ladder.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mcdvfs
{

FrequencyLadder::FrequencyLadder(Hertz lo, Hertz hi, Hertz step)
{
    if (lo <= 0.0 || hi < lo || step <= 0.0)
        fatal("frequency ladder: need 0 < lo <= hi and step > 0");
    for (Hertz f = lo; f <= hi + 1e-3; f += step)
        steps_.push_back(f);
    // Guarantee the top step is exactly hi even with rounding drift.
    if (std::abs(steps_.back() - hi) > 1.0)
        steps_.push_back(hi);
}

FrequencyLadder::FrequencyLadder(std::vector<Hertz> steps)
    : steps_(std::move(steps))
{
    if (steps_.empty())
        fatal("frequency ladder: empty step list");
    if (!std::is_sorted(steps_.begin(), steps_.end()))
        fatal("frequency ladder: steps must be ascending");
    if (steps_.front() <= 0.0)
        fatal("frequency ladder: frequencies must be positive");
}

FrequencyLadder
FrequencyLadder::cpuCoarse()
{
    return FrequencyLadder(megaHertz(100), megaHertz(1000),
                           megaHertz(100));
}

FrequencyLadder
FrequencyLadder::memCoarse()
{
    return FrequencyLadder(megaHertz(200), megaHertz(800), megaHertz(100));
}

FrequencyLadder
FrequencyLadder::cpuFine()
{
    return FrequencyLadder(megaHertz(100), megaHertz(1000), megaHertz(30));
}

FrequencyLadder
FrequencyLadder::memFine()
{
    return FrequencyLadder(megaHertz(200), megaHertz(800), megaHertz(40));
}

FrequencyLadder
FrequencyLadder::gpuCoarse()
{
    return FrequencyLadder(megaHertz(200), megaHertz(900), megaHertz(100));
}

FrequencyLadder
FrequencyLadder::gpuFine()
{
    return FrequencyLadder(megaHertz(200), megaHertz(900), megaHertz(50));
}

Hertz
FrequencyLadder::at(std::size_t idx) const
{
    MCDVFS_ASSERT(idx < steps_.size(), "ladder index out of range");
    return steps_[idx];
}

std::size_t
FrequencyLadder::closestIndex(Hertz freq) const
{
    std::size_t best = 0;
    double best_dist = std::abs(steps_[0] - freq);
    for (std::size_t i = 1; i < steps_.size(); ++i) {
        const double dist = std::abs(steps_[i] - freq);
        if (dist < best_dist) {
            best = i;
            best_dist = dist;
        }
    }
    return best;
}

} // namespace mcdvfs
