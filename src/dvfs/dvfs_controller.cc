#include "dvfs/dvfs_controller.hh"

namespace mcdvfs
{

FrequencyDriver::FrequencyDriver(std::string name, FrequencyLadder ladder,
                                 Seconds latency, Joules energy)
    : name_(std::move(name)), ladder_(std::move(ladder)),
      latency_(latency), energy_(energy),
      current_(ladder_.highest())
{
}

TransitionCost
FrequencyDriver::set(Hertz target)
{
    const Hertz snapped = ladder_.at(ladder_.closestIndex(target));
    TransitionCost cost;
    if (snapped == current_)
        return cost;
    current_ = snapped;
    ++transitions_;
    cost.latency = latency_;
    cost.energy = energy_;
    return cost;
}

DvfsController::DvfsController(const SettingsSpace &space,
                               const TransitionParams &params)
    : cpu_("cpufreq", space.cpuLadder(), params.cpuLatency,
           params.cpuEnergy),
      mem_("memfreq", space.memLadder(), params.memLatency,
           params.memEnergy)
{
}

TransitionCost
DvfsController::set(const FrequencySetting &setting)
{
    const FrequencySetting before = current();
    TransitionCost total;
    total += cpu_.set(setting.cpu);
    total += mem_.set(setting.mem);
    if (total.latency > 0.0 || total.energy > 0.0) {
        totalLatency_ += total.latency;
        totalEnergy_ += total.energy;
        if (log_.size() < kLogCapacity) {
            TransitionLogEntry entry;
            entry.sequence = sequence_;
            entry.from = before;
            entry.to = current();
            entry.cost = total;
            log_.push_back(entry);
        }
    }
    ++sequence_;
    return total;
}

FrequencySetting
DvfsController::current() const
{
    return FrequencySetting{cpu_.current(), mem_.current()};
}

void
DvfsController::updateCounters(const PmuCounters &delta)
{
    counters_.instructions += delta.instructions;
    counters_.cycles += delta.cycles;
    counters_.l1Misses += delta.l1Misses;
    counters_.l2Misses += delta.l2Misses;
    counters_.dramAccesses += delta.dramAccesses;
}

} // namespace mcdvfs
