/**
 * @file
 * Hardware frequency-transition cost model.
 *
 * Real PLL relocks and voltage ramps take tens of microseconds
 * (§VI.C); memory frequency changes additionally quiesce the DRAM
 * channel.  TransitionModel charges latency and energy whenever a
 * domain's frequency actually changes; re-selecting the current
 * setting is free.
 */

#ifndef MCDVFS_DVFS_TRANSITION_HH
#define MCDVFS_DVFS_TRANSITION_HH

#include "common/units.hh"
#include "dvfs/settings_space.hh"

namespace mcdvfs
{

/** Latency/energy price of one transition. */
struct TransitionCost
{
    Seconds latency = 0.0;
    Joules energy = 0.0;

    TransitionCost &
    operator+=(const TransitionCost &other)
    {
        latency += other.latency;
        energy += other.energy;
        return *this;
    }
};

/** Calibration of per-domain transition overheads. */
struct TransitionParams
{
    /** CPU PLL relock + voltage ramp. */
    Seconds cpuLatency = microSeconds(60.0);
    Joules cpuEnergy = microJoules(12.0);
    /** Memory controller retrain + DLL relock. */
    Seconds memLatency = microSeconds(40.0);
    Joules memEnergy = microJoules(8.0);
};

/** Charges per-domain costs for actual frequency changes. */
class TransitionModel
{
  public:
    explicit TransitionModel(const TransitionParams &params = {});

    /** Cost of moving @c from -> @c to (0 when nothing changes). */
    TransitionCost cost(const FrequencySetting &from,
                        const FrequencySetting &to) const;

    /** Number of domains whose frequency changes in @c from -> @c to. */
    static int domainsChanged(const FrequencySetting &from,
                              const FrequencySetting &to);

    const TransitionParams &params() const { return params_; }

  private:
    TransitionParams params_;
};

} // namespace mcdvfs

#endif // MCDVFS_DVFS_TRANSITION_HH
