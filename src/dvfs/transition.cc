#include "dvfs/transition.hh"

namespace mcdvfs
{

TransitionModel::TransitionModel(const TransitionParams &params)
    : params_(params)
{
}

int
TransitionModel::domainsChanged(const FrequencySetting &from,
                                const FrequencySetting &to)
{
    return (from.cpu != to.cpu ? 1 : 0) + (from.mem != to.mem ? 1 : 0);
}

TransitionCost
TransitionModel::cost(const FrequencySetting &from,
                      const FrequencySetting &to) const
{
    TransitionCost total;
    if (from.cpu != to.cpu) {
        total.latency += params_.cpuLatency;
        total.energy += params_.cpuEnergy;
    }
    if (from.mem != to.mem) {
        // The two domains can transition in parallel only partially
        // (the OS serializes the driver calls); charge latencies
        // additively, which is the conservative choice the paper's
        // overhead numbers imply.
        total.latency += params_.memLatency;
        total.energy += params_.memEnergy;
    }
    return total;
}

} // namespace mcdvfs
