/**
 * @file
 * The joint CPU x memory frequency setting space.
 *
 * A FrequencySetting is one (CPU frequency, memory frequency) pair; a
 * SettingsSpace is the cross product of the two ladders, indexable so
 * analyses can store per-setting data in flat arrays.
 */

#ifndef MCDVFS_DVFS_SETTINGS_SPACE_HH
#define MCDVFS_DVFS_SETTINGS_SPACE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hh"
#include "dvfs/frequency_ladder.hh"

namespace mcdvfs
{

/** One joint operating point of the two frequency domains. */
struct FrequencySetting
{
    Hertz cpu = 0.0;
    Hertz mem = 0.0;

    bool
    operator==(const FrequencySetting &other) const
    {
        return cpu == other.cpu && mem == other.mem;
    }

    /** "920/580" style label in MHz, for tables. */
    std::string label() const;
};

/**
 * Ordering used by the paper's tie-break: prefer the setting with the
 * highest CPU frequency, then the highest memory frequency.
 */
bool settingPreferred(const FrequencySetting &a, const FrequencySetting &b);

/** Indexed cross product of a CPU ladder and a memory ladder. */
class SettingsSpace
{
  public:
    SettingsSpace(FrequencyLadder cpu, FrequencyLadder mem);

    /** Paper's coarse 10 x 7 = 70-setting space. */
    static SettingsSpace coarse();

    /** Paper's fine 31 x 16 = 496-setting space. */
    static SettingsSpace fine();

    /** Total number of settings. */
    std::size_t size() const { return cpu_.size() * mem_.size(); }

    /** Setting at flat index (CPU-major). */
    FrequencySetting at(std::size_t idx) const;

    /** Flat index of a setting that must exist in the space. */
    std::size_t indexOf(const FrequencySetting &setting) const;

    /** Highest-performance setting (max CPU, max memory). */
    FrequencySetting maxSetting() const;

    /** Lowest setting (min CPU, min memory). */
    FrequencySetting minSetting() const;

    const FrequencyLadder &cpuLadder() const { return cpu_; }
    const FrequencyLadder &memLadder() const { return mem_; }

    /** All settings in flat-index order. */
    std::vector<FrequencySetting> all() const;

  private:
    FrequencyLadder cpu_;
    FrequencyLadder mem_;
};

} // namespace mcdvfs

#endif // MCDVFS_DVFS_SETTINGS_SPACE_HH
