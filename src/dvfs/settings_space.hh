/**
 * @file
 * The joint multi-domain frequency setting space.
 *
 * A FrequencySetting is one joint operating point of the frequency
 * domains — (CPU, memory) in the paper's two-domain configuration,
 * (CPU, memory, GPU) in the SysScale-style three-domain extension.  A
 * SettingsSpace is the cross product of the per-domain ladders,
 * indexable so analyses can store per-setting data in flat arrays.
 *
 * The GPU domain is optional: spaces built from two ladders behave
 * exactly as before (same indices, same labels, gpu pinned to 0), and
 * a third ladder extends the cross product with the GPU frequency as
 * the fastest-varying index digit.
 */

#ifndef MCDVFS_DVFS_SETTINGS_SPACE_HH
#define MCDVFS_DVFS_SETTINGS_SPACE_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hh"
#include "dvfs/frequency_ladder.hh"

namespace mcdvfs
{

/** One joint operating point of the frequency domains. */
struct FrequencySetting
{
    Hertz cpu = 0.0;
    Hertz mem = 0.0;
    /** GPU frequency; 0 in two-domain spaces (no GPU domain). */
    Hertz gpu = 0.0;

    bool
    operator==(const FrequencySetting &other) const
    {
        return cpu == other.cpu && mem == other.mem && gpu == other.gpu;
    }

    /** "920/580" ("920/580/600" with a GPU) label in MHz, for tables. */
    std::string label() const;
};

/**
 * Ordering used by the paper's tie-break: prefer the setting with the
 * highest CPU frequency, then the highest memory frequency, then the
 * highest GPU frequency.  Two-domain settings (gpu == 0 on both
 * sides) order exactly as before.
 */
bool settingPreferred(const FrequencySetting &a, const FrequencySetting &b);

/** Indexed cross product of the per-domain frequency ladders. */
class SettingsSpace
{
  public:
    SettingsSpace(FrequencyLadder cpu, FrequencyLadder mem);

    /** Three-domain space: CPU x memory x GPU. */
    SettingsSpace(FrequencyLadder cpu, FrequencyLadder mem,
                  FrequencyLadder gpu);

    /** Paper's coarse 10 x 7 = 70-setting space. */
    static SettingsSpace coarse();

    /** Paper's fine 31 x 16 = 496-setting space. */
    static SettingsSpace fine();

    /** Three-domain coarse 10 x 7 x 8 = 560-setting space. */
    static SettingsSpace coarse3();

    /** Number of frequency domains (2 or 3). */
    std::size_t domainCount() const { return gpu_ ? 3 : 2; }

    /** True when the space carries a GPU domain. */
    bool hasGpu() const { return gpu_.has_value(); }

    /** Total number of settings. */
    std::size_t
    size() const
    {
        return cpu_.size() * mem_.size() * (gpu_ ? gpu_->size() : 1);
    }

    /** Setting at flat index (CPU-major, GPU fastest-varying). */
    FrequencySetting at(std::size_t idx) const;

    /** Flat index of a setting that must exist in the space. */
    std::size_t indexOf(const FrequencySetting &setting) const;

    /** Highest-performance setting (max frequency in every domain). */
    FrequencySetting maxSetting() const;

    /** Lowest setting (min frequency in every domain). */
    FrequencySetting minSetting() const;

    const FrequencyLadder &cpuLadder() const { return cpu_; }
    const FrequencyLadder &memLadder() const { return mem_; }

    /** GPU ladder; only valid when hasGpu(). */
    const FrequencyLadder &gpuLadder() const;

    /** All settings in flat-index order. */
    std::vector<FrequencySetting> all() const;

  private:
    FrequencyLadder cpu_;
    FrequencyLadder mem_;
    std::optional<FrequencyLadder> gpu_;
};

} // namespace mcdvfs

#endif // MCDVFS_DVFS_SETTINGS_SPACE_HH
