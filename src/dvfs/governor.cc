#include "dvfs/governor.hh"

namespace mcdvfs
{

UserspaceGovernor::UserspaceGovernor(FrequencySetting setting)
    : setting_(setting)
{
}

FrequencySetting
UserspaceGovernor::decide(const SampleObservation *)
{
    return setting_;
}

PerformanceGovernor::PerformanceGovernor(const SettingsSpace &space)
    : max_(space.maxSetting())
{
}

FrequencySetting
PerformanceGovernor::decide(const SampleObservation *)
{
    return max_;
}

PowersaveGovernor::PowersaveGovernor(const SettingsSpace &space)
    : min_(space.minSetting())
{
}

FrequencySetting
PowersaveGovernor::decide(const SampleObservation *)
{
    return min_;
}

ConservativeGovernor::ConservativeGovernor(const SettingsSpace &space,
                                           double up_threshold,
                                           double down_threshold)
    : space_(space), upThreshold_(up_threshold),
      downThreshold_(down_threshold),
      cpuIdx_(space.cpuLadder().size() - 1),
      memIdx_(space.memLadder().size() - 1)
{
}

FrequencySetting
ConservativeGovernor::decide(const SampleObservation *last)
{
    if (last) {
        if (last->cpuBusyFrac > upThreshold_) {
            if (cpuIdx_ + 1 < space_.cpuLadder().size())
                ++cpuIdx_;
        } else if (last->cpuBusyFrac < downThreshold_ && cpuIdx_ > 0) {
            --cpuIdx_;
        }
        if (last->memBwUtil > upThreshold_) {
            if (memIdx_ + 1 < space_.memLadder().size())
                ++memIdx_;
        } else if (last->memBwUtil < downThreshold_ && memIdx_ > 0) {
            --memIdx_;
        }
    }
    return FrequencySetting{space_.cpuLadder().at(cpuIdx_),
                            space_.memLadder().at(memIdx_)};
}

SchedutilGovernor::SchedutilGovernor(const SettingsSpace &space,
                                     double margin)
    : space_(space), margin_(margin), current_(space.maxSetting())
{
}

FrequencySetting
SchedutilGovernor::decide(const SampleObservation *last)
{
    if (!last)
        return current_;

    // f_next = margin * util * f_current, snapped UP to the nearest
    // ladder step so capacity always covers demand.
    auto pick = [this](const FrequencyLadder &ladder, double util,
                       Hertz current) {
        const Hertz target = margin_ * util * current;
        for (std::size_t i = 0; i < ladder.size(); ++i) {
            if (ladder.at(i) >= target)
                return ladder.at(i);
        }
        return ladder.highest();
    };
    current_.cpu = pick(space_.cpuLadder(), last->cpuBusyFrac,
                        last->setting.cpu);
    current_.mem = pick(space_.memLadder(), last->memBwUtil,
                        last->setting.mem);
    return current_;
}

OndemandGovernor::OndemandGovernor(const SettingsSpace &space,
                                   double up_threshold,
                                   double down_threshold)
    : space_(space), upThreshold_(up_threshold),
      downThreshold_(down_threshold),
      cpuIdx_(space.cpuLadder().size() - 1),
      memIdx_(space.memLadder().size() - 1)
{
}

FrequencySetting
OndemandGovernor::decide(const SampleObservation *last)
{
    if (last) {
        // CPU: classic ondemand — jump to max on high utilization,
        // step down on low utilization.
        if (last->cpuBusyFrac > upThreshold_)
            cpuIdx_ = space_.cpuLadder().size() - 1;
        else if (last->cpuBusyFrac < downThreshold_ && cpuIdx_ > 0)
            --cpuIdx_;

        // Memory: devfreq-style bandwidth monitor.
        if (last->memBwUtil > upThreshold_) {
            if (memIdx_ + 1 < space_.memLadder().size())
                ++memIdx_;
        } else if (last->memBwUtil < downThreshold_ && memIdx_ > 0) {
            --memIdx_;
        }
    }
    return FrequencySetting{space_.cpuLadder().at(cpuIdx_),
                            space_.memLadder().at(memIdx_)};
}

} // namespace mcdvfs
