/**
 * @file
 * Discrete frequency ladders for the CPU and memory clock domains.
 *
 * The paper's coarse configuration is 10 CPU steps (100-1000 MHz,
 * 100 MHz apart) x 7 memory steps (200-800 MHz, 100 MHz apart) = 70
 * settings; its fine configuration is 31 x 16 = 496 settings (30 MHz
 * CPU steps, 40 MHz memory steps).
 */

#ifndef MCDVFS_DVFS_FREQUENCY_LADDER_HH
#define MCDVFS_DVFS_FREQUENCY_LADDER_HH

#include <cstddef>
#include <vector>

#include "common/units.hh"

namespace mcdvfs
{

/** Ordered list of selectable frequencies for one clock domain. */
class FrequencyLadder
{
  public:
    /**
     * Build a ladder of evenly spaced steps, inclusive of both ends.
     *
     * @param lo lowest frequency
     * @param hi highest frequency
     * @param step spacing between consecutive steps
     * @throws FatalError when the range or step is invalid
     */
    FrequencyLadder(Hertz lo, Hertz hi, Hertz step);

    /** Explicit list of steps (must be ascending and non-empty). */
    explicit FrequencyLadder(std::vector<Hertz> steps);

    /** @name Paper ladders. */
    ///@{
    static FrequencyLadder cpuCoarse();   ///< 100-1000 MHz / 100 MHz
    static FrequencyLadder memCoarse();   ///< 200-800 MHz / 100 MHz
    static FrequencyLadder cpuFine();     ///< 100-1000 MHz / 30 MHz
    static FrequencyLadder memFine();     ///< 200-800 MHz / 40 MHz
    ///@}

    /** @name GPU-domain extension ladders (SysScale-style 3rd domain). */
    ///@{
    static FrequencyLadder gpuCoarse();   ///< 200-900 MHz / 100 MHz
    static FrequencyLadder gpuFine();     ///< 200-900 MHz / 50 MHz
    ///@}

    std::size_t size() const { return steps_.size(); }
    Hertz at(std::size_t idx) const;
    Hertz lowest() const { return steps_.front(); }
    Hertz highest() const { return steps_.back(); }
    const std::vector<Hertz> &steps() const { return steps_; }

    /** Index of the closest ladder step to @c freq. */
    std::size_t closestIndex(Hertz freq) const;

  private:
    std::vector<Hertz> steps_;
};

} // namespace mcdvfs

#endif // MCDVFS_DVFS_FREQUENCY_LADDER_HH
