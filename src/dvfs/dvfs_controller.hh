/**
 * @file
 * The paper's Figure 1 system stack made concrete: per-domain
 * frequency drivers (cpufreq / memfreq), the DVFS controller device
 * the OS programs, and PMU-style counters the governors read.
 *
 * The drivers validate requested frequencies against their ladder,
 * snap to the nearest step, and account transition latency/energy;
 * the controller coordinates joint (CPU, memory) changes and keeps a
 * transition log, which is what the characterization analyses charge
 * as overhead.
 */

#ifndef MCDVFS_DVFS_DVFS_CONTROLLER_HH
#define MCDVFS_DVFS_DVFS_CONTROLLER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hh"
#include "dvfs/settings_space.hh"
#include "dvfs/transition.hh"

namespace mcdvfs
{

/** One frequency domain's driver (cpufreq- / devfreq-style). */
class FrequencyDriver
{
  public:
    /**
     * @param name driver name ("cpufreq", "memfreq")
     * @param ladder selectable frequencies
     * @param latency hardware relock latency per change
     * @param energy hardware energy per change
     */
    FrequencyDriver(std::string name, FrequencyLadder ladder,
                    Seconds latency, Joules energy);

    /**
     * Request a target frequency; snaps to the nearest ladder step.
     *
     * @return the transition cost (zero when already at the target)
     */
    TransitionCost set(Hertz target);

    /** Currently programmed frequency. */
    Hertz current() const { return current_; }

    /** Number of actual hardware transitions so far. */
    Count transitions() const { return transitions_; }

    const std::string &name() const { return name_; }
    const FrequencyLadder &ladder() const { return ladder_; }

  private:
    std::string name_;
    FrequencyLadder ladder_;
    Seconds latency_;
    Joules energy_;
    Hertz current_;
    Count transitions_ = 0;
};

/** One entry of the controller's transition log. */
struct TransitionLogEntry
{
    std::size_t sequence = 0;
    FrequencySetting from{};
    FrequencySetting to{};
    TransitionCost cost{};
};

/** PMU-style counters a governor can sample between decisions. */
struct PmuCounters
{
    Count instructions = 0;
    Count cycles = 0;
    Count l1Misses = 0;
    Count l2Misses = 0;
    Count dramAccesses = 0;

    /** Cycles per instruction; 0 when idle. */
    double
    cpi() const
    {
        return instructions
                   ? static_cast<double>(cycles) /
                         static_cast<double>(instructions)
                   : 0.0;
    }
};

/**
 * The DVFS controller device: the OS-visible interface that programs
 * both domains (paper Fig. 1, "DVFS Controller Device").
 */
class DvfsController
{
  public:
    /**
     * Build a controller over a settings space with the given
     * per-domain transition costs.
     */
    DvfsController(const SettingsSpace &space,
                   const TransitionParams &params = {});

    /**
     * Program a joint setting.  Frequencies snap to ladder steps;
     * only domains that actually change pay a transition.
     *
     * @return the combined transition cost
     */
    TransitionCost set(const FrequencySetting &setting);

    /** Currently programmed joint setting. */
    FrequencySetting current() const;

    /** Total latency spent in transitions so far. */
    Seconds totalTransitionLatency() const { return totalLatency_; }

    /** Total energy spent in transitions so far. */
    Joules totalTransitionEnergy() const { return totalEnergy_; }

    /** Full transition log (bounded to the last @c kLogCapacity). */
    const std::vector<TransitionLogEntry> &log() const { return log_; }

    /** Per-domain drivers (for inspection). */
    const FrequencyDriver &cpuDriver() const { return cpu_; }
    const FrequencyDriver &memDriver() const { return mem_; }

    /** Update the PMU registers after an execution window. */
    void updateCounters(const PmuCounters &delta);

    /** Current PMU register values (cumulative). */
    const PmuCounters &counters() const { return counters_; }

  private:
    static constexpr std::size_t kLogCapacity = 4096;

    FrequencyDriver cpu_;
    FrequencyDriver mem_;
    std::vector<TransitionLogEntry> log_;
    std::size_t sequence_ = 0;
    Seconds totalLatency_ = 0.0;
    Joules totalEnergy_ = 0.0;
    PmuCounters counters_{};
};

} // namespace mcdvfs

#endif // MCDVFS_DVFS_DVFS_CONTROLLER_HH
