/**
 * @file
 * Frequency governors in the style of Linux cpufreq/devfreq.
 *
 * A governor observes the sample that just completed and chooses the
 * joint setting for the next sample.  The simple governors here
 * (userspace, performance, powersave, ondemand) serve as baselines;
 * the inefficiency-budget governor built on the paper's clusters and
 * stable regions lives in src/runtime/.
 */

#ifndef MCDVFS_DVFS_GOVERNOR_HH
#define MCDVFS_DVFS_GOVERNOR_HH

#include <memory>
#include <string>

#include "common/units.hh"
#include "dvfs/settings_space.hh"

namespace mcdvfs
{

/** Feedback a governor receives about the sample that just ran. */
struct SampleObservation
{
    std::size_t sampleIndex = 0;
    FrequencySetting setting{};
    Seconds duration = 0.0;
    Joules energy = 0.0;
    /** Fraction of time the CPU was busy (not stalled on memory). */
    double cpuBusyFrac = 1.0;
    /** Fraction of usable DRAM bandwidth consumed. */
    double memBwUtil = 0.0;
};

/** Policy interface: pick the setting for the upcoming sample. */
class Governor
{
  public:
    virtual ~Governor() = default;

    /**
     * Decide the setting for the next sample.
     *
     * @param last observation of the previous sample, or nullptr
     *             before the first sample
     */
    virtual FrequencySetting decide(const SampleObservation *last) = 0;

    /** Governor name for reports. */
    virtual std::string name() const = 0;
};

/** Pins the frequencies the caller programmed (Linux "userspace"). */
class UserspaceGovernor : public Governor
{
  public:
    explicit UserspaceGovernor(FrequencySetting setting);

    /** Reprogram the pinned setting. */
    void set(FrequencySetting setting) { setting_ = setting; }

    FrequencySetting decide(const SampleObservation *last) override;
    std::string name() const override { return "userspace"; }

  private:
    FrequencySetting setting_;
};

/** Always the highest setting (Linux "performance"). */
class PerformanceGovernor : public Governor
{
  public:
    explicit PerformanceGovernor(const SettingsSpace &space);
    FrequencySetting decide(const SampleObservation *last) override;
    std::string name() const override { return "performance"; }

  private:
    FrequencySetting max_;
};

/** Always the lowest setting (Linux "powersave"). */
class PowersaveGovernor : public Governor
{
  public:
    explicit PowersaveGovernor(const SettingsSpace &space);
    FrequencySetting decide(const SampleObservation *last) override;
    std::string name() const override { return "powersave"; }

  private:
    FrequencySetting min_;
};

/**
 * Gradual utilization governor (Linux "conservative"): steps one
 * ladder position at a time in both directions instead of jumping to
 * max, trading reaction speed for fewer extreme transitions.
 */
class ConservativeGovernor : public Governor
{
  public:
    ConservativeGovernor(const SettingsSpace &space,
                         double up_threshold = 0.80,
                         double down_threshold = 0.40);

    FrequencySetting decide(const SampleObservation *last) override;
    std::string name() const override { return "conservative"; }

  private:
    const SettingsSpace &space_;
    double upThreshold_;
    double downThreshold_;
    std::size_t cpuIdx_;
    std::size_t memIdx_;
};

/**
 * Proportional utilization governor (Linux "schedutil"): picks the
 * lowest frequency whose capacity covers the observed utilization
 * with headroom, f = util * f_current / margin, snapped up to a
 * ladder step.  Memory frequency follows bandwidth utilization the
 * same way.
 */
class SchedutilGovernor : public Governor
{
  public:
    /** @param margin capacity headroom factor (Linux uses 1.25) */
    SchedutilGovernor(const SettingsSpace &space, double margin = 1.25);

    FrequencySetting decide(const SampleObservation *last) override;
    std::string name() const override { return "schedutil"; }

  private:
    const SettingsSpace &space_;
    double margin_;
    FrequencySetting current_;
};

/**
 * Utilization-driven governor: raises CPU frequency when the core is
 * busy, lowers it when it stalls; raises memory frequency when
 * bandwidth utilization is high (ondemand + a devfreq-style
 * bandwidth monitor).
 */
class OndemandGovernor : public Governor
{
  public:
    /**
     * @param space settings space to pick from
     * @param up_threshold raise frequency above this utilization
     * @param down_threshold lower frequency below this utilization
     */
    OndemandGovernor(const SettingsSpace &space, double up_threshold = 0.85,
                     double down_threshold = 0.50);

    FrequencySetting decide(const SampleObservation *last) override;
    std::string name() const override { return "ondemand"; }

  private:
    const SettingsSpace &space_;
    double upThreshold_;
    double downThreshold_;
    std::size_t cpuIdx_;
    std::size_t memIdx_;
};

} // namespace mcdvfs

#endif // MCDVFS_DVFS_GOVERNOR_HH
