#!/usr/bin/env bash
# Regenerate the committed bench_gate baselines from the five tiny
# perf_smoke benches.  Run this (and commit the result) whenever a
# deliberate performance or schema change moves the benches:
#
#   ./scripts/refresh_baselines.sh [BUILD_DIR]
#
# Baselines are tiny-run artifacts, so they are fast to produce and
# the gate's tolerance (default 25%) absorbs machine-to-machine noise;
# CI compares them against a fresh run of the same benches.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
out="$repo/bench/baselines"

if [ ! -x "$build/bench/micro_grid_kernel" ]; then
    echo "refresh_baselines: build the repo first (missing" \
         "$build/bench/micro_grid_kernel)" >&2
    exit 2
fi

mkdir -p "$out"
store="$(mktemp -d)"
trap 'rm -rf "$store"' EXIT

"$build/bench/micro_grid_kernel" --tiny \
    --out "$out/BENCH_grid_smoke.json" >/dev/null
"$build/bench/micro_analysis_kernel" --tiny --jobs 2 \
    --out "$out/BENCH_analysis_smoke.json" >/dev/null
"$build/bench/micro_incremental_analysis" --tiny \
    --out "$out/BENCH_incremental_smoke.json" >/dev/null
"$build/bench/micro_profile_dedup" --tiny --jobs 2 \
    --out "$out/BENCH_profile_smoke.json" >/dev/null
"$build/bench/fleet_sim" --tiny --store "$store/fleet_store" \
    --out "$out/BENCH_fleet.json" >/dev/null

# The metrics sidecars are run diagnostics, not baselines.
rm -f "$out"/*.metrics.json

echo "refreshed baselines in $out:"
ls "$out"
