#!/usr/bin/env bash
# Sanitizer passes over the test suite (docs/OBSERVABILITY.md,
# ROADMAP.md "verify"):
#
#   1. ASan + UBSan over the full suite — memory errors and UB
#      anywhere in the library;
#   2. TSan over the concurrency-heavy subset (exec thread pool and
#      its work-stealing strips, svc cache/service, the profile
#      cache's sharded LRU and the dedup grid evaluation, obs metrics
#      and trace rings, trace enable/disable toggling, the telemetry
#      sampler thread and SLO watchdog, the tuning daemon and its
#      snapshot store, the streaming-resume path, the snapshot
#      corruption fuzz and the three-domain daemon round-trip) — the
#      lock-free metric stripes, the strip CAS pop/steal protocol,
#      the seqlock-protected trace slots, the cache/coalescing paths,
#      the daemon's batcher/drain handoffs and the checkpoint store
#      probed/extended by concurrent daemon batches are where data
#      races would live.
#
# Usage: scripts/sanitize.sh [--asan-only|--tsan-only]
# Build trees land in build-asan/ and build-tsan/ next to build/.

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
run_asan=1
run_tsan=1
case "${1:-}" in
    --asan-only) run_tsan=0 ;;
    --tsan-only) run_asan=0 ;;
    "") ;;
    *)
        echo "usage: $0 [--asan-only|--tsan-only]" >&2
        exit 2
        ;;
esac

if [ "$run_asan" = 1 ]; then
    echo "== ASan + UBSan: full test suite =="
    cmake -B build-asan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DMCDVFS_SANITIZE=address,undefined
    cmake --build build-asan -j "$jobs"
    ctest --test-dir build-asan --output-on-failure -j "$jobs"
fi

if [ "$run_tsan" = 1 ]; then
    echo "== TSan: exec / svc / obs concurrency subset =="
    cmake -B build-tsan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DMCDVFS_SANITIZE=thread
    cmake --build build-tsan -j "$jobs" --target \
        exec_thread_pool_test exec_thread_pool_stress_test \
        exec_thread_pool_drain_test exec_thread_pool_steal_test \
        sim_profile_cache_test sim_profile_dedup_test \
        svc_grid_cache_test svc_grid_cache_property_test \
        svc_service_test sim_parallel_grid_test \
        obs_metrics_test obs_snapshot_golden_test \
        obs_instrumentation_test \
        obs_trace_test obs_trace_stress_test \
        obs_trace_toggle_stress_test \
        obs_timeseries_test obs_telemetry_test \
        daemon_snapshot_store_test daemon_tuning_daemon_test \
        svc_analysis_cache_test core_incremental_analysis_test \
        daemon_streaming_test \
        daemon_snapshot_fuzz_test integration_gpu_test
    ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
        -R 'ThreadPool|GridCache|Service|Obs|ParallelGrid|Trace|Daemon|SnapshotStore|AnalysisCache|Incremental|Streaming|ThreeDomain|Timeseries|Telemetry|SloWatchdog|ProfileCache|ProfileDedup|ProfileFingerprint|MemoizedCharacterization'
fi

echo "sanitize: all requested passes clean"
