/**
 * @file
 * Batched tuning through the characterization service.
 *
 * A device vendor profiling its app catalog wants stable-region tables
 * for many (workload, budget) pairs.  Instead of driving GridRunner
 * and the analysis chain by hand, this example submits one batch to
 * CharacterizationService: grid builds fan out over a thread pool,
 * requests sharing a workload reuse one characterization, and a second
 * round over the same catalog is served entirely from the grid cache.
 *
 *   ./batched_tuning [--jobs N] [--threshold PCT]
 */

#include <iostream>

#include "common/args.hh"
#include "common/table.hh"
#include "svc/characterization_service.hh"
#include "trace/workloads.hh"

using namespace mcdvfs;

namespace
{

void
report(const std::string &title,
       const std::vector<svc::TuningRequest> &requests,
       const std::vector<svc::TuningResult> &results)
{
    Table table({"workload", "budget", "regions", "mean length",
                 "transitions", "cached"});
    table.setTitle(title);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const svc::TuningResult &result = results[i];
        std::size_t transitions = 0;
        for (std::size_t r = 1; r < result.regions.size(); ++r) {
            if (result.regions[r].chosenSettingIndex !=
                result.regions[r - 1].chosenSettingIndex)
                ++transitions;
        }
        const double mean_length =
            result.regions.empty()
                ? 0.0
                : static_cast<double>(result.grid->sampleCount()) /
                      static_cast<double>(result.regions.size());
        table.addRow(
            {requests[i].workload.name(),
             Table::num(result.budget, 2),
             Table::num(static_cast<long long>(result.regions.size())),
             Table::num(mean_length, 1),
             Table::num(static_cast<long long>(transitions)),
             result.cacheHit ? "yes" : "no"});
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("batched_tuning");
    args.addOption("jobs");
    args.addOption("threshold");
    try {
        args.parse(argc, argv);

        svc::ServiceOptions options;
        options.jobs =
            static_cast<std::size_t>(args.getInt("jobs", 4, 1, 1024));
        svc::CharacterizationService service(
            SystemConfig::paperDefault(), options);
        const double threshold =
            args.getDouble("threshold", 3.0) / 100.0;

        // The catalog: every paper benchmark at a tight and a relaxed
        // budget.  Both budgets of one workload share a grid build.
        std::vector<svc::TuningRequest> requests;
        for (const WorkloadProfile &workload : standardWorkloads()) {
            for (const double budget : {1.1, 1.5}) {
                requests.push_back(svc::TuningRequest{
                    workload, SettingsSpace::coarse(), budget,
                    threshold});
            }
        }

        report("first round: characterize + tune (" +
                   Table::num(static_cast<long long>(service.jobs())) +
                   " jobs)",
               requests, service.submitBatch(requests));

        // Second round over the same catalog: pure cache hits.
        report("second round: same catalog, served from cache",
               requests, service.submitBatch(requests));

        const svc::GridCache::Stats stats = service.cacheStats();
        std::cout << "\ngrid cache: " << stats.hits << " hits, "
                  << stats.misses << " misses, " << stats.evictions
                  << " evictions, " << stats.entries
                  << " grids resident\n";
        return 0;
    } catch (const FatalError &err) {
        std::cerr << "error: " << err.what() << '\n';
        return 1;
    }
}
